"""Runtime benchmarks: fleet throughput, the fused kernel, and the FAR speedup.

Three measurements back the runtime subsystem:

* fleet throughput — a 1000-instance x 200-step deployment on the DC-motor
  loop, reported as instance-steps per second, with a hard floor gated on
  the fused float64 engine (``test_fleet_throughput_floor``);
* fused vs legacy before/after — both engines on the same attacked fleet
  workload, asserting identical float64 detector statistics and recording
  both throughputs in one benchmark record;
* FAR vectorization before/after — the batched benign-population generation
  of :class:`~repro.core.far.FalseAlarmEvaluator` against the historical
  one-Python-simulation-per-trial loop, asserting *identical* rates and a
  real speedup.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import run_once
from repro import (
    FalseAlarmEvaluator,
    RuntimeConfig,
    get_case_study,
    run_fleet,
)
from repro.detectors.cusum import CusumDetector
from repro.lti.simulate import SimulationOptions, simulate_closed_loop
from repro.utils.rng import spawn_rngs


def _fleet_config(
    n_instances: int = 1000, horizon: int = 200, engine: str = "legacy"
) -> RuntimeConfig:
    return RuntimeConfig(
        n_instances=n_instances,
        horizon=horizon,
        static_thresholds={"static": 0.1},
        detectors={"cusum": {"name": "cusum", "options": {"bias": 0.02, "threshold": 0.5}}},
        attacks=[{"template": "bias", "options": {"bias": 0.5}, "fraction": 0.1, "start": 50}],
        include_mdc=False,
        seed=0,
        engine=engine,
    )


def test_fleet_throughput(benchmark):
    """1000 monitored instances x 200 steps in one batched run_fleet call."""
    problem = get_case_study("dcmotor").problem
    config = _fleet_config()
    report = run_once(benchmark, lambda: run_fleet(config, problem))
    print(
        f"\n--- fleet throughput: {report.instance_steps} instance-steps in "
        f"{report.elapsed_seconds:.3f}s = {report.throughput:,.0f} instance-steps/s"
    )
    print(report)
    benchmark.extra_info["throughput"] = report.throughput
    benchmark.extra_info["elapsed_s"] = report.elapsed_seconds
    benchmark.extra_info["instance_steps"] = report.instance_steps
    assert report.n_instances == 1000 and report.horizon == 200
    assert report.stats("static").detection_rate == 1.0


def test_fleet_throughput_floor(benchmark):
    """Fused float64 clears >= 30M instance-steps/s, instrumentation compiled in.

    The metrics/tracing instrumentation in ``FleetSimulator.run`` ships in
    the default build with the registry *disabled*; this gate pins the floor
    the ROADMAP's scaling work builds on.  The workload is the benign
    FAR-calibration regime — static threshold + CUSUM over a 4000-instance
    DC-motor fleet, no attacks — where the batched stepper amortizes its
    fixed per-step Python cost over the instance axis (the legacy engine
    measures ~16M here; the fused block-GEMM engine ~35M; best-of-3 guards
    against scheduler noise).  The run asserts the fused GEMM path was
    actually taken, so a probe downgrade to the legacy stepper cannot pass
    silently at legacy speed.
    """
    problem = get_case_study("dcmotor").problem
    config = RuntimeConfig(
        n_instances=4000,
        horizon=200,
        static_thresholds={"static": 0.1},
        detectors={"cusum": {"name": "cusum", "options": {"bias": 0.02, "threshold": 0.5}}},
        include_mdc=False,
        seed=0,
        engine="fused",
    )
    reports: list = []

    def best_of_three():
        reports[:] = [run_fleet(config, problem) for _ in range(3)]
        return max(report.throughput for report in reports)

    best = run_once(benchmark, best_of_three)
    engine = reports[-1].metadata["engine"]
    print(
        f"\n--- fused float64 throughput floor: best of 3 = {best:,.0f} "
        f"instance-steps/s (fused_path={engine['fused_path']})"
    )
    benchmark.extra_info["throughput"] = best
    benchmark.extra_info["engine"] = engine
    # Wall-clock gates only bind in real benchmark runs; the CI smoke job
    # (--benchmark-disable) runs on shared machines where they'd flake.
    if not benchmark.disabled:
        assert engine["fused_path"], "probe downgraded the fused engine to legacy"
        assert best > 30_000_000


def test_fused_vs_legacy_before_after(benchmark):
    """Fused vs legacy on the attacked fleet workload: identical stats, one record.

    Both engines run the exact same 4000-instance attacked deployment; the
    float64 detector statistics must be identical (the equivalence contract,
    exercised at benchmark scale), and both throughputs plus the ratio land
    in this benchmark's record so ``repro.obs.watch`` tracks the speedup
    over time.  The attacked workload is heavier than the floor's benign one
    (attack injection and detection bookkeeping are on the hot path), so its
    absolute numbers sit below the floor's.
    """
    problem = get_case_study("dcmotor").problem
    legacy = run_fleet(_fleet_config(n_instances=4000, engine="legacy"), problem)
    fused = run_once(
        benchmark,
        lambda: run_fleet(_fleet_config(n_instances=4000, engine="fused"), problem),
    )
    speedup = fused.throughput / max(legacy.throughput, 1e-9)
    print(
        f"\n--- fused vs legacy (attacked, N=4000): legacy "
        f"{legacy.throughput:,.0f}, fused {fused.throughput:,.0f} "
        f"instance-steps/s (x{speedup:.2f})"
    )
    benchmark.extra_info["legacy_throughput"] = legacy.throughput
    benchmark.extra_info["fused_throughput"] = fused.throughput
    benchmark.extra_info["speedup"] = speedup
    # Bit-identity at benchmark scale: every detector statistic matches.
    assert set(fused.detectors) == set(legacy.detectors)
    for label in fused.detectors:
        assert fused.detectors[label].to_dict() == legacy.detectors[label].to_dict()
    # The speedup bound only binds in real benchmark runs; the CI smoke job
    # (--benchmark-disable) runs on shared machines where it would flake.
    if not benchmark.disabled:
        assert speedup > 1.1


def test_fleet_scales_with_instances(benchmark):
    """Batched stepping: 10x the fleet must cost far less than 10x the time."""
    problem = get_case_study("dcmotor").problem

    def deploy(n_instances: int):
        config = RuntimeConfig(
            n_instances=n_instances,
            horizon=200,
            static_thresholds={"static": 0.1},
            include_mdc=False,
            seed=0,
        )
        return run_fleet(config, problem)

    small = deploy(100)
    large = run_once(benchmark, lambda: deploy(1000))
    ratio = large.elapsed_seconds / max(small.elapsed_seconds, 1e-9)
    print(
        f"\n--- scaling: 100 instances {small.elapsed_seconds:.4f}s, "
        f"1000 instances {large.elapsed_seconds:.4f}s (x{ratio:.1f} for 10x work)"
    )
    # Wall-clock comparisons only bind in real benchmark runs; the CI smoke
    # job (--benchmark-disable) runs on shared machines where they'd flake.
    if not benchmark.disabled:
        assert ratio < 9.0


def _sequential_far(problem, detectors, count, seed):
    """The pre-vectorization FAR implementation (one Python simulation per trial)."""
    noise_model = FalseAlarmEvaluator.default_noise_model(problem)
    kept = []
    for rng in spawn_rngs(seed, count):
        measurement_noise = noise_model.sample(problem.horizon, rng)
        trace = simulate_closed_loop(
            problem.system,
            SimulationOptions(horizon=problem.horizon, x0=problem.x0),
            measurement_noise=measurement_noise,
        )
        if not problem.pfc_satisfied(trace):
            continue
        if problem.mdc_alarm(trace):
            continue
        kept.append(trace)
    return {
        label: float(
            np.mean([bool(np.any(threshold.alarms(trace.residues))) for trace in kept])
        )
        for label, threshold in detectors.items()
    }


def test_far_vectorization_before_after(benchmark):
    """Vectorized FAR: identical rates to the sequential loop, measurably faster."""
    problem = get_case_study("trajectory").problem
    count, seed = 300, 0
    detectors = {
        "loose": problem.static_threshold(1.0),
        "mid": problem.static_threshold(0.02),
        "tight": problem.static_threshold(1e-6),
    }

    started = time.perf_counter()
    sequential_rates = _sequential_far(problem, detectors, count, seed)
    sequential_seconds = time.perf_counter() - started

    def vectorized():
        evaluator = FalseAlarmEvaluator(problem, count=count, seed=seed)
        return evaluator.evaluate(detectors)

    started = time.perf_counter()
    study = run_once(benchmark, vectorized)
    vectorized_seconds = time.perf_counter() - started

    speedup = sequential_seconds / max(vectorized_seconds, 1e-9)
    print(
        f"\n--- FAR generation ({count} trials x T={problem.horizon}): "
        f"sequential {sequential_seconds:.3f}s, vectorized {vectorized_seconds:.3f}s "
        f"(x{speedup:.1f})"
    )
    # Identical rates: the batched path replays the exact same per-trial
    # noise streams and filters.
    assert study.rates == sequential_rates
    # The speedup bound only binds in real benchmark runs; the CI smoke job
    # (--benchmark-disable) runs on shared machines where wall-clock
    # comparisons flake (this repo already dropped one such assert in PR 1).
    if not benchmark.disabled:
        assert speedup > 1.5


def test_cusum_fleet_matches_offline_rates(benchmark):
    """Cross-check: online fleet FAR of a CUSUM equals its offline per-trace FAR."""
    problem = get_case_study("dcmotor").problem
    # Parameters chosen so the benign FAR is solidly non-zero (~14 %): the
    # equality below then checks real alarms, not two silent detectors.
    detector = CusumDetector(bias=0.005, threshold=0.05)
    count = 400

    def deploy():
        config = RuntimeConfig(
            n_instances=count,
            static_thresholds={"static": 0.05},
            include_mdc=False,
            noise_scale=1.0,
            seed=7,
        )
        return run_fleet(config, problem, detectors={"cusum": detector})

    report = run_once(benchmark, deploy)
    evaluator = FalseAlarmEvaluator(
        problem, count=count, seed=7, filter_pfc=False, filter_mdc=False
    )
    offline = np.mean(
        [detector.detects(trace.residues) for trace in evaluator.benign_traces()]
    )
    online = report.stats("cusum").false_alarm_rate
    print(f"\n--- cusum FAR: online fleet {online:.4f}, offline traces {float(offline):.4f}")
    assert online > 0.0
    assert online == float(offline)
