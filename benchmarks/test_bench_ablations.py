"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. Solver backend: LP branch enumeration vs the from-scratch DPLL(T)+simplex
   SMT backend vs the incomplete optimization falsifier (same verdict,
   different runtime).
2. Counterexample quality: maximally stealthy LP counterexamples vs plain
   feasibility vertices (margin_mode ablation) — convergence rounds of
   Algorithm 2.
3. Pivot rule of Algorithm 2 (max-residue vs first-violation) and step rule
   of Algorithm 3 (min-area vs fixed-width).
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once

from repro import (
    PivotThresholdSynthesizer,
    StepwiseThresholdSynthesizer,
    available_backends,
    get_case_study,
    synthesize_attack,
)
from repro.falsification.lp_backend import LPAttackBackend
from repro.utils.results import SolveStatus


def test_backend_ablation(benchmark):
    """All backends agree on the verdict; timings are reported informationally only."""
    problem = get_case_study("dcmotor", horizon=10).problem

    def run_all():
        rows = {}
        for backend in available_backends():
            start = time.monotonic()
            result = synthesize_attack(problem, threshold=None, backend=backend)
            rows[backend] = (result.status, time.monotonic() - start, result.verified)
        return rows

    rows = run_once(benchmark, run_all)

    print("\n--- Backend ablation (DC motor, T = 10, no residue detector)")
    print(f"{'backend':10s} {'verdict':>9s} {'verified':>9s} {'time [s]':>10s}")
    for backend, (status, elapsed, verified) in sorted(rows.items()):
        print(f"{backend:10s} {status.value:>9s} {str(verified):>9s} {elapsed:10.3f}")

    # Verdict agreement: both complete backends prove the loop attackable,
    # and every found attack simulates to a genuine stealthy violation.
    assert rows["lp"][0] is SolveStatus.SAT
    assert rows["smt"][0] is SolveStatus.SAT
    assert rows["lp"][2] and rows["smt"][2]
    # The optimizer is incomplete: it either finds a (verified) attack or gives up.
    assert rows["optimizer"][0] in (SolveStatus.SAT, SolveStatus.UNKNOWN)
    if rows["optimizer"][0] is SolveStatus.SAT:
        assert rows["optimizer"][2]


def test_counterexample_quality_ablation(benchmark):
    """Max-stealth-margin counterexamples make Algorithm 2 converge in far fewer rounds."""
    problem = get_case_study("trajectory").problem

    def run_both():
        smart = PivotThresholdSynthesizer(
            backend=LPAttackBackend(margin_mode="max-stealth-margin"), max_rounds=400
        ).synthesize(problem)
        plain = PivotThresholdSynthesizer(
            backend=LPAttackBackend(margin_mode="none"), max_rounds=400
        ).synthesize(problem)
        return smart, plain

    smart, plain = run_once(benchmark, run_both)
    print("\n--- Counterexample-quality ablation (Algorithm 2, trajectory system)")
    print(f"max-stealth-margin counterexamples: rounds={smart.rounds} converged={smart.converged}")
    print(f"plain feasibility vertices        : rounds={plain.rounds} converged={plain.converged}")
    assert smart.converged
    assert smart.rounds <= plain.rounds


def test_refinement_rule_ablation(benchmark):
    """Pivot-rule and step-rule variants still converge on the trajectory system."""
    problem = get_case_study("trajectory").problem

    def run_all():
        rows = {}
        rows["pivot/max-residue"] = PivotThresholdSynthesizer(
            backend="lp", pivot_rule="max-residue", max_rounds=400
        ).synthesize(problem)
        rows["pivot/first-violation"] = PivotThresholdSynthesizer(
            backend="lp", pivot_rule="first-violation", max_rounds=400
        ).synthesize(problem)
        rows["stepwise/min-area"] = StepwiseThresholdSynthesizer(
            backend="lp", step_rule="min-area", max_rounds=400
        ).synthesize(problem)
        rows["stepwise/fixed-width"] = StepwiseThresholdSynthesizer(
            backend="lp", step_rule="fixed-width", max_rounds=400
        ).synthesize(problem)
        return rows

    rows = run_once(benchmark, run_all)
    print("\n--- Refinement-rule ablation (trajectory system)")
    print(f"{'variant':24s} {'rounds':>7s} {'converged':>10s}")
    for label, result in rows.items():
        print(f"{label:24s} {result.rounds:7d} {str(result.converged):>10s}")
    assert all(result.converged for result in rows.values())
