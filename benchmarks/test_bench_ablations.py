"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. Solver backend: LP branch enumeration vs the from-scratch DPLL(T)+simplex
   SMT backend vs the incomplete optimization falsifier (same verdict,
   different runtime).
2. Counterexample quality: maximally stealthy LP counterexamples vs plain
   feasibility vertices (margin_mode ablation) — convergence rounds of
   Algorithm 2.
3. Pivot rule of Algorithm 2 (max-residue vs first-violation) and step rule
   of Algorithm 3 (min-area vs fixed-width).
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once

from repro import PivotThresholdSynthesizer, StepwiseThresholdSynthesizer, synthesize_attack
from repro.falsification.lp_backend import LPAttackBackend
from repro.systems import build_dcmotor_case_study, build_trajectory_case_study
from repro.utils.results import SolveStatus


def test_backend_ablation(benchmark):
    """All backends agree on the verdict; runtimes differ by orders of magnitude."""
    problem = build_dcmotor_case_study(horizon=10).problem

    def run_all():
        rows = {}
        for backend in ("lp", "smt", "optimizer"):
            start = time.monotonic()
            result = synthesize_attack(problem, threshold=None, backend=backend)
            rows[backend] = (result.status, time.monotonic() - start, result.verified)
        return rows

    rows = run_once(benchmark, run_all)

    print("\n--- Backend ablation (DC motor, T = 10, no residue detector)")
    print(f"{'backend':10s} {'verdict':>9s} {'verified':>9s} {'time [s]':>10s}")
    for backend, (status, elapsed, verified) in rows.items():
        print(f"{backend:10s} {status.value:>9s} {str(verified):>9s} {elapsed:10.3f}")

    assert rows["lp"][0] is SolveStatus.SAT
    assert rows["smt"][0] is SolveStatus.SAT
    # The optimizer is incomplete: it either finds a (verified) attack or gives up.
    assert rows["optimizer"][0] in (SolveStatus.SAT, SolveStatus.UNKNOWN)
    # The LP backend is the fastest of the complete ones.
    assert rows["lp"][1] <= rows["smt"][1]


def test_counterexample_quality_ablation(benchmark):
    """Max-stealth-margin counterexamples make Algorithm 2 converge in far fewer rounds."""
    problem = build_trajectory_case_study().problem

    def run_both():
        smart = PivotThresholdSynthesizer(
            backend=LPAttackBackend(margin_mode="max-stealth-margin"), max_rounds=400
        ).synthesize(problem)
        plain = PivotThresholdSynthesizer(
            backend=LPAttackBackend(margin_mode="none"), max_rounds=400
        ).synthesize(problem)
        return smart, plain

    smart, plain = run_once(benchmark, run_both)
    print("\n--- Counterexample-quality ablation (Algorithm 2, trajectory system)")
    print(f"max-stealth-margin counterexamples: rounds={smart.rounds} converged={smart.converged}")
    print(f"plain feasibility vertices        : rounds={plain.rounds} converged={plain.converged}")
    assert smart.converged
    assert smart.rounds <= plain.rounds


def test_refinement_rule_ablation(benchmark):
    """Pivot-rule and step-rule variants still converge on the trajectory system."""
    problem = build_trajectory_case_study().problem

    def run_all():
        rows = {}
        rows["pivot/max-residue"] = PivotThresholdSynthesizer(
            backend="lp", pivot_rule="max-residue", max_rounds=400
        ).synthesize(problem)
        rows["pivot/first-violation"] = PivotThresholdSynthesizer(
            backend="lp", pivot_rule="first-violation", max_rounds=400
        ).synthesize(problem)
        rows["stepwise/min-area"] = StepwiseThresholdSynthesizer(
            backend="lp", step_rule="min-area", max_rounds=400
        ).synthesize(problem)
        rows["stepwise/fixed-width"] = StepwiseThresholdSynthesizer(
            backend="lp", step_rule="fixed-width", max_rounds=400
        ).synthesize(problem)
        return rows

    rows = run_once(benchmark, run_all)
    print("\n--- Refinement-rule ablation (trajectory system)")
    print(f"{'variant':24s} {'rounds':>7s} {'converged':>10s}")
    for label, result in rows.items():
        print(f"{label:24s} {result.rounds:7d} {str(result.converged):>10s}")
    assert all(result.converged for result in rows.values())
