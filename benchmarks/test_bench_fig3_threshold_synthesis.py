"""Figure 3 — output of the variable-threshold synthesis algorithms on the VSC.

Prints the final threshold vectors produced by Algorithm 2 (pivot-based) and
Algorithm 3 (step-wise) over the 50-sample horizon, in sigma units of the
noise-normalised residue.

Shape targets: both algorithms terminate with a certificate that no stealthy
successful attack remains; both vectors are monotonically decreasing; the
step-wise vector is a staircase (few distinct levels); thresholds start high
(where the first counterexample produced its largest residues) and end low.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_series, run_once


def test_fig3_threshold_vectors(benchmark, vsc_case, vsc_synthesis):
    problem = vsc_case.problem

    def collect():
        return (
            vsc_synthesis["pivot"].threshold.effective(problem.horizon),
            vsc_synthesis["stepwise"].threshold.effective(problem.horizon),
        )

    pivot_values, stepwise_values = run_once(benchmark, collect)
    times = problem.dt * np.arange(1, problem.horizon + 1)
    print_series(
        "Fig. 3: synthesized variable thresholds (sigma units)",
        times,
        {
            "Algorithm 2 (pivot)": pivot_values,
            "Algorithm 3 (step-wise)": stepwise_values,
        },
    )
    print(
        "step edges (Algorithm 3):",
        vsc_synthesis["stepwise"].threshold.step_edges(),
    )

    pivot = vsc_synthesis["pivot"]
    stepwise = vsc_synthesis["stepwise"]
    # Both algorithms certify that no stealthy successful attack remains.
    assert pivot.converged and stepwise.converged
    # Monotonically decreasing threshold vectors (the paper's hypothesis).
    assert pivot.threshold.is_monotone_decreasing()
    assert stepwise.threshold.is_monotone_decreasing()
    # Decreasing shape: the first finite threshold dominates the last one.
    finite_pivot = pivot_values[np.isfinite(pivot_values)]
    assert finite_pivot[0] > finite_pivot[-1]
    finite_stepwise = stepwise_values[np.isfinite(stepwise_values)]
    assert finite_stepwise[0] > finite_stepwise[-1]
    # The step-wise result is a staircase with far fewer levels than samples.
    distinct_levels = np.unique(np.round(finite_stepwise, 9)).size
    assert distinct_levels <= problem.horizon // 2


def test_fig3_relaxed_thresholds_keep_guarantee(benchmark, vsc_case, vsc_synthesis):
    """The FAR-minimising relaxation pass may only raise thresholds."""
    problem = vsc_case.problem

    def collect():
        return (
            vsc_synthesis["pivot_relaxed"].threshold.effective(problem.horizon),
            vsc_synthesis["stepwise_relaxed"].threshold.effective(problem.horizon),
        )

    pivot_relaxed, stepwise_relaxed = run_once(benchmark, collect)
    pivot_raw = vsc_synthesis["pivot"].threshold.effective(problem.horizon)
    stepwise_raw = vsc_synthesis["stepwise"].threshold.effective(problem.horizon)

    assert np.all(pivot_relaxed >= pivot_raw - 1e-12)
    assert np.all(stepwise_relaxed >= stepwise_raw - 1e-12)
    assert vsc_synthesis["pivot_relaxed"].certified
    assert vsc_synthesis["stepwise_relaxed"].certified
