"""Figure 1 — trajectory-tracking motivational example.

Fig. 1a: deviation from the set point under (i) no noise, (ii) measurement
noise, (iii) a synthesized stealthy attack.
Fig. 1b: residue traces under noise and under attack, compared against a
small static threshold ``th``, a large static threshold ``Th`` and the
synthesized variable threshold ``vth``.

Shape targets (see EXPERIMENTS.md): the attack keeps the system away from the
set point while noise does not; ``th`` flags the harmless noise, ``Th``
misses the attack, the variable threshold does neither.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_series, run_once


def test_fig1a_deviation(benchmark, trajectory_case, trajectory_attack):
    problem = trajectory_case.problem
    target = trajectory_case.extras["target_position"]
    tolerance = trajectory_case.extras["tolerance"]

    def experiment():
        clean = problem.simulate()
        noisy = problem.simulate(with_noise=True, seed=4)
        attacked = trajectory_attack.trace
        return clean, noisy, attacked

    clean, noisy, attacked = run_once(benchmark, experiment)

    times = clean.times()
    series = {
        "deviation (no noise)": np.abs(clean.states[1:, 0] - target),
        "deviation (noise)": np.abs(noisy.states[1:, 0] - target),
        "deviation (attack)": np.abs(attacked.states[1:, 0] - target),
    }
    print_series("Fig. 1a: trajectory deviation [m]", times, series)

    # Shape assertions: noise stays inside the acceptance band at the end,
    # the attack does not.
    assert trajectory_attack.found
    assert series["deviation (no noise)"][-1] <= tolerance
    assert series["deviation (attack)"][-1] > tolerance
    assert problem.pfc_satisfied(noisy)
    assert not problem.pfc_satisfied(attacked)


def test_fig1b_thresholds(benchmark, trajectory_case, trajectory_attack, trajectory_synthesis):
    problem = trajectory_case.problem
    small_th = float(trajectory_synthesis["static"].threshold.values[0])

    def experiment():
        # Pick a representative noisy (benign) run the way the figure does:
        # one whose noise-induced residues actually brush the safe static
        # threshold while the performance criterion stays satisfied.
        chosen = None
        for seed in range(40):
            candidate = problem.simulate(with_noise=True, seed=seed)
            if not problem.pfc_satisfied(candidate):
                continue
            if chosen is None:
                chosen = candidate
            if np.max(problem.residue_norms(candidate.residues)) >= small_th:
                return candidate
        return chosen

    noisy = run_once(benchmark, experiment)
    attacked = trajectory_attack.trace

    residue_noise = problem.residue_norms(noisy.residues)
    residue_attack = problem.residue_norms(attacked.residues)

    big_th = float(1.5 * residue_noise.max() + residue_attack.max())
    variable = trajectory_synthesis["pivot"].threshold.effective(problem.horizon)

    print_series(
        "Fig. 1b: residues vs thresholds",
        noisy.times(),
        {
            "residue (noise)": residue_noise,
            "residue (attack)": residue_attack,
            "th (static, safe)": np.full(problem.horizon, small_th),
            "Th (static, loose)": np.full(problem.horizon, big_th),
            "vth (variable)": variable,
        },
    )

    # Th lets the attack through everywhere (it is sized above every residue).
    assert np.all(residue_attack < big_th)
    # The variable threshold provably blocks every stealthy attack ...
    assert trajectory_synthesis["pivot"].converged
    # ... while being far more permissive than th early on (where benign
    # transients and noise live) and tighter late (where small injections
    # suffice to break the criterion).
    finite = variable[np.isfinite(variable)]
    assert finite.max() > small_th
    assert finite.min() <= small_th + 1e-9
    # The representative benign run's verdicts: if its residues brush th the
    # static detector false-alarms on it; the number of benign samples the
    # variable threshold flags is reported above for the record.
    noise_alarms_static = int(np.sum(residue_noise >= small_th))
    noise_alarms_variable = int(np.sum(residue_noise >= variable))
    print(
        f"benign samples flagged: static th -> {noise_alarms_static}, "
        f"variable vth -> {noise_alarms_variable}"
    )
