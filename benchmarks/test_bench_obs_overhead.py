"""Observability benchmarks: the disabled-registry tax on the hot path.

``repro.obs`` instrumentation ships compiled into ``FleetSimulator.run``;
the contract that makes that acceptable is that a *disabled* registry (the
default) costs near zero on the batched step loop.  Two measurements back
it:

* the fleet step loop with ``metrics=None`` (instrumentation resolved
  against the disabled default registry) versus ``metrics=False``
  (instrumentation compiled out entirely) must agree within 3%;
* an *enabled* registry end to end: a fleet run recorded into a live
  registry must produce a Prometheus exposition that parses back to the
  registry's own snapshot, with the counters matching the report.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro import RuntimeConfig, get_case_study, run_fleet
from repro.obs import MetricsRegistry, parse_prometheus_text, prometheus_text


def _fleet_config(n_instances: int = 1000, horizon: int = 200) -> RuntimeConfig:
    """An attacked fleet whose detectors alarm throughout the horizon."""
    return RuntimeConfig(
        n_instances=n_instances,
        horizon=horizon,
        static_thresholds={"static": 0.1},
        detectors={"cusum": {"name": "cusum", "options": {"bias": 0.02, "threshold": 0.5}}},
        attacks=[{"template": "bias", "options": {"bias": 0.5}, "fraction": 0.1, "start": 50}],
        include_mdc=False,
        seed=0,
    )


def test_disabled_registry_overhead(benchmark):
    """Disabled metrics must cost < 3% on the batched fleet step loop.

    Baseline is ``metrics=False`` (instrumentation skipped entirely); the
    candidate is the default wiring — instruments resolved against the
    process registry, which is disabled, so every counter call is one
    attribute check.  Alarms fire throughout this workload (attacked fleet,
    tight static threshold), so the per-alarm-step counter call is on the
    measured path, not skipped.  Best-of-7, interleaved, so scheduler noise
    hits both sides equally; a ratio past the gate re-measures once (the
    true overhead sits well under 1%, so a first-pass excursion is noise,
    not instrumentation cost).
    """
    problem = get_case_study("dcmotor").problem
    config = _fleet_config()
    # Warm both paths once (imports, allocator) before measuring.
    run_fleet(config, problem, metrics=False)
    run_fleet(config, problem, metrics=None)

    def measure():
        baseline, instrumented = [], []
        for _ in range(7):
            baseline.append(run_fleet(config, problem, metrics=False).elapsed_seconds)
            instrumented.append(run_fleet(config, problem, metrics=None).elapsed_seconds)
        return min(baseline), min(instrumented)

    baseline, instrumented = run_once(benchmark, measure)
    ratio = instrumented / max(baseline, 1e-9)
    if ratio >= 1.03 and not benchmark.disabled:
        baseline, instrumented = measure()
        ratio = instrumented / max(baseline, 1e-9)
    print(
        f"\n--- disabled-registry overhead: baseline {baseline:.4f}s, "
        f"instrumented {instrumented:.4f}s (x{ratio:.4f})"
    )
    benchmark.extra_info["overhead_ratio"] = ratio
    benchmark.extra_info["baseline_s"] = baseline
    benchmark.extra_info["instrumented_s"] = instrumented
    # Wall-clock comparisons only bind in real benchmark runs; the CI smoke
    # job (--benchmark-disable) runs on shared machines where they'd flake.
    if not benchmark.disabled:
        assert ratio < 1.03


def test_enabled_metrics_exposition_round_trips(benchmark):
    """An enabled registry over a real fleet run exports losslessly.

    Runs the attacked fleet with a live private registry, renders the
    Prometheus text exposition, and asserts the parse-back equals the
    registry's snapshot — the exposition is a transport, not just a
    display.
    """
    problem = get_case_study("dcmotor").problem
    registry = MetricsRegistry(enabled=True)
    config = _fleet_config(n_instances=200, horizon=100)

    report = run_once(benchmark, lambda: run_fleet(config, problem, metrics=registry))
    assert report.n_instances == 200
    assert registry.get("fleet_steps_total").total() == report.instance_steps
    assert int(registry.get("fleet_alarms_total").total()) == sum(
        stats.alarm_count for stats in report.detectors.values()
    )
    snapshot = registry.snapshot()
    assert parse_prometheus_text(prometheus_text(registry)) == snapshot
    alarms = np.sum(
        [cell["value"] for cell in snapshot["counters"]["fleet_alarms_total"]["values"]]
    )
    print(f"\n--- enabled-metrics fleet: {int(alarms)} alarms exported and round-tripped")
