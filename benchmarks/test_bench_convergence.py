"""§IV convergence comparison — rounds needed by Algorithms 2 and 3.

The paper reports that, on the VSC, Algorithm 2 terminates in the 56th round
while Algorithm 3 terminates much faster, in the 37th round.

Shape targets: both algorithms converge (final Algorithm 1 call returns
UNSAT) within the round budget, and the step-wise Algorithm 3 needs no more
rounds than the pivot-based Algorithm 2.  Absolute round counts depend on the
counterexample generator (we use maximally stealthy LP counterexamples,
Z3 produced arbitrary ones) and are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from benchmarks.conftest import run_once


def test_convergence_rounds(benchmark, vsc_case, vsc_synthesis):
    def collect():
        return {
            "Algorithm 2 (pivot)": vsc_synthesis["pivot"],
            "Algorithm 3 (step-wise)": vsc_synthesis["stepwise"],
            "static baseline": vsc_synthesis["static"],
        }

    results = run_once(benchmark, collect)

    print("\n--- Convergence of the threshold-synthesis algorithms (VSC, T = 50)")
    print(f"{'algorithm':26s} {'rounds':>7s} {'converged':>10s} {'solver time [s]':>16s}")
    for label, result in results.items():
        print(
            f"{label:26s} {result.rounds:7d} {str(result.converged):>10s} "
            f"{result.total_solver_time:16.2f}"
        )
    paper = {"Algorithm 2 (pivot)": 56, "Algorithm 3 (step-wise)": 37}
    print(f"paper reference rounds: {paper}")

    pivot = results["Algorithm 2 (pivot)"]
    stepwise = results["Algorithm 3 (step-wise)"]
    assert pivot.converged
    assert stepwise.converged
    # The paper's headline comparison: Algorithm 3 converges in fewer rounds.
    assert stepwise.rounds <= pivot.rounds


def test_trajectory_convergence(benchmark, trajectory_case, trajectory_synthesis):
    """Same comparison on the (much smaller) trajectory-tracking system."""

    results = run_once(benchmark, lambda: trajectory_synthesis)
    print("\n--- Convergence on the trajectory-tracking system (T = 10)")
    for label in ("pivot", "stepwise", "static"):
        result = results[label]
        print(
            f"{label:10s} rounds={result.rounds:4d} converged={result.converged} "
            f"solver_time={result.total_solver_time:.2f}s"
        )
    assert results["pivot"].converged
    assert results["stepwise"].converged
    assert results["static"].converged
