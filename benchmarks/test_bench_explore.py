"""Exploration benchmarks: store reuse and adaptive-sampler efficiency.

Four guarantees back the ``repro.explore`` subsystem:

* **warm-store re-runs are free** — re-exploring a 24-point space against a
  populated content-addressed store issues *zero* solver calls and is at
  least 10x faster than the cold run;
* **store hits are bit-identical** — the rows served from disk equal the
  fresh computation exactly, field for field;
* **evaluation-only variations reuse the synthesis half** — a 24-point
  exploration that varies *only* the benign-noise scale over an
  already-synthesized space finds every point's synthesis (and relaxation)
  record under its synthesis key and issues *zero* solver calls, re-running
  only the cheap FAR/probe evaluation half;
* **adaptive bisection beats the grid** — on the DC-motor noise-scale sweep
  the adaptive sampler recovers the exhaustive grid's Pareto front with at
  most half of the grid's synthesis (Algorithm 1) calls, by never stepping
  into the interior of metric plateaus.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.core.session import SynthesisSession
from repro.explore import Explorer, SearchSpace


class SolverCallCounter:
    """Counts every Algorithm 1 (``SynthesisSession.solve``) invocation."""

    def __init__(self, monkeypatch):
        self.calls = 0
        original = SynthesisSession.solve

        def counted(session, *args, **kwargs):
            self.calls += 1
            return original(session, *args, **kwargs)

        monkeypatch.setattr(SynthesisSession, "solve", counted)

    def take(self) -> int:
        calls, self.calls = self.calls, 0
        return calls


def test_warm_store_rerun_is_free_and_bit_identical(benchmark, tmp_path, monkeypatch):
    """(a) + (c): zero solver calls, >= 10x faster, rows exactly equal."""
    space = SearchSpace(
        case_studies=("dcmotor",),
        synthesizers=("stepwise", "static"),
        horizons=(8,),
        min_thresholds=(0.0, 0.01, 0.02, 0.03),
        noise_scales=(0.5, 1.0, 2.0),
        far_count=20,
        probe_instances=6,
        max_rounds=100,
    )
    assert space.size >= 24
    counter = SolverCallCounter(monkeypatch)

    def cold_then_warm():
        t0 = time.perf_counter()
        cold = Explorer(space, "grid", store=tmp_path / "store").run()
        cold_s = time.perf_counter() - t0
        cold_calls = counter.take()

        t0 = time.perf_counter()
        warm = Explorer(space, "grid", store=tmp_path / "store").run()
        warm_s = time.perf_counter() - t0
        warm_calls = counter.take()
        return cold, cold_s, cold_calls, warm, warm_s, warm_calls

    cold, cold_s, cold_calls, warm, warm_s, warm_calls = run_once(benchmark, cold_then_warm)

    print(
        f"\n--- warm-store re-run: {space.size} points, cold {cold_s:.2f}s "
        f"({cold_calls} solver calls) vs warm {warm_s:.4f}s ({warm_calls} solver "
        f"calls) = {cold_s / warm_s:.0f}x"
    )
    assert cold.stats["units_executed"] == space.size
    assert cold_calls > 0

    # (a) the warm pass issues zero solver calls and is >= 10x faster.
    assert warm_calls == 0
    assert warm.stats["units_executed"] == 0
    assert warm.stats["store_hits"] == space.size
    assert warm_s < cold_s / 10.0

    # (c) store hits are bit-identical to the fresh computation.
    assert warm.summary_rows() == cold.summary_rows()
    assert warm.front_signature() == cold.front_signature()


def test_noise_scale_variations_reuse_synthesis_with_zero_solver_calls(
    benchmark, tmp_path, monkeypatch
):
    """Synthesis/evaluation key split: 24 noise-only points, 0 solver calls.

    The seed pass synthesizes (and relaxes) one point per synthesizer at one
    noise scale; the 24-point pass varies only the benign-noise scale — an
    evaluation-half change — so every unit misses as a full row but finds
    its synthesis record under the synthesis key and re-runs only the
    FAR study and the probe fleet.
    """
    settings = dict(
        case_studies=("dcmotor",),
        synthesizers=("stepwise", "static"),
        horizons=(8,),
        min_thresholds=(0.02,),
        relax=True,
        far_count=20,
        probe_instances=6,
        max_rounds=100,
    )
    seed_space = SearchSpace(noise_scales=(1.0,), **settings)
    sweep_space = SearchSpace(
        noise_scales=tuple(0.25 + 0.25 * i for i in range(12)), **settings
    )
    assert sweep_space.size == 24
    counter = SolverCallCounter(monkeypatch)

    def seed_then_sweep():
        t0 = time.perf_counter()
        seed = Explorer(seed_space, "grid", store=tmp_path / "store").run()
        seed_s = time.perf_counter() - t0
        seed_calls = counter.take()

        t0 = time.perf_counter()
        sweep = Explorer(sweep_space, "grid", store=tmp_path / "store").run()
        sweep_s = time.perf_counter() - t0
        sweep_calls = counter.take()
        return seed, seed_s, seed_calls, sweep, sweep_s, sweep_calls

    seed, seed_s, seed_calls, sweep, sweep_s, sweep_calls = run_once(
        benchmark, seed_then_sweep
    )

    print(
        f"\n--- synthesis-key reuse: seed {seed_space.size} point(s) in {seed_s:.2f}s "
        f"({seed_calls} solver calls), then {sweep_space.size} noise-scale "
        f"variations in {sweep_s:.2f}s ({sweep_calls} solver calls, "
        f"{sweep.stats['synthesis_reused']} synthesis records reused)"
    )
    assert seed_calls > 0

    # The whole 24-point sweep issues zero Algorithm 1 calls: every point's
    # synthesis half is served from the store.
    assert sweep_calls == 0
    # The seeded noise scale is a full-row hit; the other 22 units execute
    # their evaluation half from a reused synthesis record.
    assert sweep.stats["store_hits"] == 2
    assert sweep.stats["synthesis_reused"] == 22
    assert sweep.stats["units_executed"] == 22
    # Every variation measured a FAR — the evaluation half really ran.
    assert all(row["false_alarm_rate"] is not None for row in sweep.rows)


def test_adaptive_sampler_recovers_grid_front_with_half_the_calls(benchmark, monkeypatch):
    """(b): same DC-motor Pareto front, <= 50% of the grid's synthesis calls.

    The noise-scale axis has a long FAR = 0 plateau (benign noise far below
    the synthesized thresholds) followed by a rising tail; the bisection
    sampler proves the plateau with two endpoint evaluations per interval
    and spends its budget on the tail only.
    """
    plateau = tuple(round(0.05 + 0.05 * i, 4) for i in range(25))   # 0.05 .. 1.25
    tail = (1.5, 2.0, 2.5, 3.0, 3.5, 4.0)
    space = SearchSpace(
        case_studies=("dcmotor",),
        synthesizers=("stepwise",),
        horizons=(8,),
        min_thresholds=(0.02,),
        noise_scales=plateau + tail,
        far_count=40,
        probe_instances=6,
        max_rounds=100,
    )
    counter = SolverCallCounter(monkeypatch)

    def grid_then_adaptive():
        grid = Explorer(space, "grid").run()
        grid_calls = counter.take()
        adaptive = Explorer(space, "adaptive-bisection").run()
        adaptive_calls = counter.take()
        return grid, grid_calls, adaptive, adaptive_calls

    grid, grid_calls, adaptive, adaptive_calls = run_once(benchmark, grid_then_adaptive)

    print(
        f"\n--- adaptive vs grid on dcmotor ({space.size} grid points): "
        f"grid {grid.stats['units_executed']} evaluations / {grid_calls} solver calls, "
        f"adaptive {adaptive.stats['units_executed']} evaluations / "
        f"{adaptive_calls} solver calls "
        f"({100 * adaptive_calls / grid_calls:.0f}%) in "
        f"{adaptive.stats['rounds']} refinement rounds"
    )
    assert grid.stats["units_executed"] == space.size

    # Identical non-dominated front (as objective vectors) ...
    assert adaptive.front_signature() == grid.front_signature()
    # ... from at most half of the synthesis calls.
    assert adaptive_calls <= 0.5 * grid_calls
    assert adaptive.stats["units_executed"] <= 0.5 * grid.stats["units_executed"]
