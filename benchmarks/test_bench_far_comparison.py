"""§IV false-alarm-rate study.

The paper draws 1000 random bounded measurement-noise vectors, discards those
that violate the performance criterion or trip the existing monitors, and
reports the fraction of the remaining benign traces on which each detector
raises an alarm:

    Algorithm 2 (pivot)    : 61.5 %
    Algorithm 3 (step-wise): 45.6 %
    static threshold       : 98.9 %

Shape target: the provably safe static threshold alarms on essentially every
benign trace.  Under our substituted VSC model the synthesized variable
thresholds end up noise-level tight at most instants (the LP counterexamples
exploit track-covering attacks, see EXPERIMENTS.md), so — unlike in the
paper — their measured FAR is not substantially lower than the static one;
the benchmark prints both the measured and the paper values and asserts only
the robust part of the shape.
"""

from __future__ import annotations

from benchmarks.conftest import run_once

PAPER_FAR = {"Algorithm 2 (pivot)": 0.615, "Algorithm 3 (step-wise)": 0.456, "static": 0.989}


def test_far_comparison(benchmark, vsc_case, vsc_synthesis, vsc_far_evaluator):
    detectors = {
        "Algorithm 2 (pivot)": vsc_synthesis["pivot_relaxed"].threshold,
        "Algorithm 3 (step-wise)": vsc_synthesis["stepwise_relaxed"].threshold,
        "static": vsc_synthesis["static"].threshold,
    }

    study = run_once(benchmark, lambda: vsc_far_evaluator.evaluate(detectors))

    print("\n--- §IV false-alarm-rate study (VSC)")
    print(
        f"benign population: generated={study.generated} kept={study.kept} "
        f"(discarded {study.discarded_pfc} by pfc, {study.discarded_mdc} by mdc)"
    )
    print(f"{'detector':26s} {'measured FAR':>14s} {'paper FAR':>11s}")
    for label, rate in study.rates.items():
        paper = PAPER_FAR.get(label)
        paper_text = f"{100 * paper:9.1f} %" if paper is not None else "        —"
        print(f"{label:26s} {100 * rate:12.1f} % {paper_text}")

    # Robust shape assertions.
    assert study.kept > 0
    # The provably safe static threshold is essentially always triggered by
    # benign noise (paper: 98.9 %).
    assert study.rates["static"] >= 0.9
    # All detectors keep the formal no-stealthy-attack guarantee; their FARs
    # are reported above (see EXPERIMENTS.md for the discussion of the
    # deviation from the paper's variable-threshold FAR values).
    assert vsc_synthesis["pivot"].converged
    assert vsc_synthesis["stepwise"].converged
    assert vsc_synthesis["static"].converged


def test_far_trajectory_static_vs_variable(benchmark, trajectory_case, trajectory_synthesis):
    """Complementary FAR measurement on the trajectory-tracking system."""
    from repro import FalseAlarmEvaluator

    problem = trajectory_case.problem
    reproduction = trajectory_case.extras["reproduction"]
    evaluator = FalseAlarmEvaluator(
        problem,
        noise_model=FalseAlarmEvaluator.default_noise_model(
            problem, scale=reproduction["far_noise_scale"]
        ),
        count=min(500, reproduction["far_count"]),
        seed=0,
        initial_state_spread=reproduction["far_initial_state_spread"],
    )
    detectors = {
        "pivot": trajectory_synthesis["pivot_relaxed"].threshold,
        "stepwise": trajectory_synthesis["stepwise_relaxed"].threshold,
        "static": trajectory_synthesis["static"].threshold,
    }
    study = run_once(benchmark, lambda: evaluator.evaluate(detectors))
    print("\n--- FAR on the trajectory-tracking system")
    for label, rate in study.rates.items():
        print(f"  {label:9s}: {100 * rate:5.1f} %  (kept {study.kept}/{study.generated})")
    assert study.kept > 0
    assert all(0.0 <= rate <= 1.0 for rate in study.rates.values())
