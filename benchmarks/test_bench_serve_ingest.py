"""Serving benchmarks: ingest → lockstep round → sink throughput.

The always-on service trades the fleet simulator's closed ``(T, N, m)``
block for per-sample, per-instance ingest through ring buffers.  The
measurement here is the cost of that path end to end — Python-level
ring pushes, lockstep drains through the batched detector bank, and
alarm emission into a back-pressured sink — reported as instance-steps
per second so it is directly comparable to the ``run_fleet`` number in
:mod:`benchmarks.test_bench_runtime_fleet`.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro import ServiceConfig, run_service
from repro.runtime.events import InMemorySink
from repro.utils.rng import spawn_rngs


def test_service_ingest_throughput(benchmark):
    """100 attached instances x 200 rounds through the live service."""
    n_instances, rounds = 100, 200
    sink = InMemorySink()
    config = ServiceConfig(
        case_study="dcmotor",
        static_thresholds={"static": 0.1},
        detectors={"cusum": {"name": "cusum", "options": {"bias": 0.02, "threshold": 0.5}}},
        include_mdc=False,
        sink_capacity=4096,
        sink_policy="block",
    )
    service = run_service(config, sinks=[sink])
    for _ in range(n_instances):
        service.attach()
    m = service.system.plant.n_outputs
    # One fixed stream per instance, drawn up front so the measured region
    # is ingest + drain + emit, not random number generation.
    streams = [rng.normal(size=(rounds, m)) for rng in spawn_rngs(0, n_instances)]

    def serve():
        for k in range(rounds):
            for instance in range(n_instances):
                service.ingest(instance, streams[instance][k])
        return service.stats()

    stats = run_once(benchmark, serve)
    elapsed = benchmark.stats.stats.total if not benchmark.disabled else float("nan")
    instance_steps = n_instances * rounds
    print(
        f"\n--- service ingest: {instance_steps} instance-steps in "
        f"{elapsed:.3f}s = {instance_steps / elapsed:,.0f} instance-steps/s"
        if not benchmark.disabled
        else f"\n--- service ingest: {instance_steps} instance-steps (timing disabled)"
    )
    print(stats)
    assert stats["rounds_processed"] == rounds
    assert stats["samples_ingested"] == instance_steps
    assert stats["samples_dropped"] == 0
    service.close()
    benchmark.extra_info["instance_steps"] = instance_steps
    if not benchmark.disabled:
        benchmark.extra_info["throughput"] = instance_steps / elapsed
        benchmark.extra_info["elapsed_s"] = elapsed
    # Wall-clock gates only bind in real benchmark runs; the CI smoke job
    # (--benchmark-disable) runs on shared machines where they'd flake.
    if not benchmark.disabled:
        throughput = instance_steps / elapsed
        # Conservative floor: the batched fleet path clears millions of
        # instance-steps/s, the per-sample service path must still clear
        # tens of thousands (measured ~50k in isolation; the floor leaves
        # headroom for loaded full-suite runs, where this gate also binds).
        assert throughput > 10_000


def test_service_cost_scales_linearly_with_members(benchmark):
    """20x the members must cost ~20x, not quadratically.

    Every ingest checks lockstep readiness; done naively (scan all rings)
    that check makes a round O(N^2) and this ratio blows past 100x.  The
    service keeps an O(1) readiness counter instead.
    """

    def serve(n_instances: int, rounds: int = 100):
        config = ServiceConfig(
            case_study="dcmotor", static_thresholds={"static": 0.1}, include_mdc=False
        )
        service = run_service(config)
        for _ in range(n_instances):
            service.attach()
        m = service.system.plant.n_outputs
        rng = np.random.default_rng(1)
        samples = rng.normal(size=(rounds, n_instances, m))
        import time

        started = time.perf_counter()
        for k in range(rounds):
            for instance in range(n_instances):
                service.ingest(instance, samples[k, instance])
        elapsed = time.perf_counter() - started
        assert service.rounds_processed == rounds
        service.close()
        return elapsed

    small = serve(20)
    large = run_once(benchmark, lambda: serve(400))
    ratio = large / max(small, 1e-9)
    print(
        f"\n--- member scaling: 20 members {small:.4f}s, "
        f"400 members {large:.4f}s (x{ratio:.1f} for 20x work)"
    )
    if not benchmark.disabled:
        assert ratio < 30.0
