"""Figure 2 — attack demonstration on the Vehicle Stability Controller.

Fig. 2a: the plant's yaw rate under the synthesized attack misses the
performance criterion.
Fig. 2b: the attacked lateral-acceleration measurement stays within the range
and gradient monitors (no sustained violation).
Fig. 2c: the attacked yaw-rate measurement stays within the range, gradient
and relation monitors.

Shape target: the formally synthesized false-data-injection attack bypasses
the complete industrial monitoring system while preventing the yaw rate from
reaching 80 % of its set point within 50 samples.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_series, run_once


def test_fig2a_yaw_rate_under_attack(benchmark, vsc_case, vsc_attack):
    problem = vsc_case.problem
    params = vsc_case.extras["params"]

    trace = run_once(benchmark, lambda: vsc_attack.trace)
    nominal = problem.simulate()

    times = trace.times()
    print_series(
        "Fig. 2a: plant yaw rate gamma [rad/s]",
        times,
        {
            "gamma (nominal)": nominal.states[1:, 1],
            "gamma (under attack)": trace.states[1:, 1],
            "pfc bound (0.8 * desired)": np.full(
                problem.horizon, params.pfc_fraction * params.desired_yaw_rate
            ),
        },
    )

    assert vsc_attack.found and vsc_attack.verified
    assert problem.pfc_satisfied(nominal)
    assert not problem.pfc_satisfied(trace)
    final_yaw = trace.states[problem.horizon, 1]
    assert final_yaw < params.pfc_fraction * params.desired_yaw_rate


def test_fig2b_ay_monitors_not_triggered(benchmark, vsc_case, vsc_attack):
    problem = vsc_case.problem
    params = vsc_case.extras["params"]
    trace = vsc_attack.trace

    def evaluate_monitors():
        return problem.mdc.member_reports(trace.measurements, problem.dt)

    reports = {report.name: report for report in run_once(benchmark, evaluate_monitors)}

    ay = trace.measurements[:, 1]
    gradient = np.abs(np.diff(ay, prepend=ay[0])) / problem.dt
    print_series(
        "Fig. 2b: attacked lateral acceleration vs its monitors",
        trace.times(),
        {
            "ay measured [m/s^2]": ay,
            "ay range limit": np.full(problem.horizon, params.ay_range),
            "|d ay/dt| [m/s^3]": gradient,
            "ay gradient limit": np.full(problem.horizon, params.ay_gradient),
        },
    )
    print("monitor alarms:", {name: report.any_alarm for name, report in reports.items()})

    assert np.all(np.abs(ay) <= params.ay_range + 1e-9)
    assert not reports["deadzone(ay-range)"].any_alarm
    assert not reports["deadzone(ay-gradient)"].any_alarm


def test_fig2c_gamma_monitors_not_triggered(benchmark, vsc_case, vsc_attack):
    problem = vsc_case.problem
    params = vsc_case.extras["params"]
    trace = vsc_attack.trace

    def evaluate_monitors():
        return problem.mdc.member_reports(trace.measurements, problem.dt)

    reports = {report.name: report for report in run_once(benchmark, evaluate_monitors)}

    gamma = trace.measurements[:, 0]
    gradient = np.abs(np.diff(gamma, prepend=gamma[0])) / problem.dt
    relation_mismatch = np.abs(gamma - trace.measurements[:, 1] / params.speed)
    print_series(
        "Fig. 2c: attacked yaw rate vs its monitors",
        trace.times(),
        {
            "gamma measured [rad/s]": gamma,
            "gamma range limit": np.full(problem.horizon, params.gamma_range),
            "|d gamma/dt| [rad/s^2]": gradient,
            "gamma gradient limit": np.full(problem.horizon, params.gamma_gradient),
            "|gamma - ay/vx| [rad/s]": relation_mismatch,
            "allowedDiff": np.full(problem.horizon, params.allowed_diff),
        },
    )
    print("monitor alarms:", {name: report.any_alarm for name, report in reports.items()})

    assert np.all(np.abs(gamma) <= params.gamma_range + 1e-9)
    assert not reports["deadzone(gamma-range)"].any_alarm
    assert not reports["deadzone(gamma-gradient)"].any_alarm
    assert not reports["deadzone(gamma-ay-relation)"].any_alarm
    # No monitor of the bank raises an alarm on the attacked trace at all.
    assert not problem.mdc_alarm(trace)
