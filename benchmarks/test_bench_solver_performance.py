"""Micro-benchmarks of the formal substrate itself.

Not part of the paper's evaluation, but useful for downstream users sizing
their own problems: how Algorithm 1's runtime scales with the analysis
horizon, and how the from-scratch simplex compares to scipy's HiGHS on the
same feasibility problem.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import linprog

from benchmarks.conftest import run_once

from repro import StepwiseThresholdSynthesizer, get_case_study, synthesize_attack
from repro.core import encoding as encoding_module
from repro.core.session import SynthesisSession
from repro.falsification.lp_backend import LPAttackBackend
from repro.smt.linear import LinearExpr
from repro.smt.simplex import SimplexSolver
from repro.systems import build_dcmotor_case_study


def test_attack_synthesis_scaling_with_horizon(benchmark):
    """Algorithm 1 runtime as the analysis window grows."""

    def sweep():
        rows = []
        for horizon in (10, 20, 40, 80):
            problem = build_dcmotor_case_study(horizon=horizon).problem
            start = time.monotonic()
            result = synthesize_attack(problem, threshold=problem.static_threshold(1.0))
            rows.append((horizon, time.monotonic() - start, result.status.value))
        return rows

    rows = run_once(benchmark, sweep)
    print("\n--- Algorithm 1 (LP backend) scaling with horizon, DC motor")
    print(f"{'horizon':>8s} {'time [s]':>10s} {'verdict':>9s}")
    for horizon, elapsed, verdict in rows:
        print(f"{horizon:8d} {elapsed:10.3f} {verdict:>9s}")
    assert all(verdict in ("sat", "unsat") for _, _, verdict in rows)


def _legacy_stepwise_workload(problem, floor):
    """The seed's per-call CEGIS path for the stepwise × lp workload.

    Every Algorithm 1 call rebuilds the full ``AttackEncoding`` (horizon
    unrolling + every constraint block) and the LP backend runs the
    historical feasibility-then-margin two-LP sequence per branch.
    """
    backend = LPAttackBackend(margin_strategy="two-phase")
    vulnerability = synthesize_attack(problem, threshold=None, backend=backend)
    synthesizer = StepwiseThresholdSynthesizer(
        backend=backend, min_threshold=floor, reuse_session=False
    )
    return vulnerability, synthesizer.synthesize(problem)


def _session_stepwise_workload(problem, floor):
    """The same workload through one incremental SynthesisSession."""
    session = SynthesisSession(problem, backend="lp")
    vulnerability = session.solve(None)
    synthesizer = StepwiseThresholdSynthesizer(backend="lp", min_threshold=floor)
    return vulnerability, synthesizer.synthesize(problem, session=session)


def _timed(fn, repeats):
    best, out = None, None
    for _ in range(repeats):
        start = time.monotonic()
        out = fn()
        elapsed = time.monotonic() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, out


def test_incremental_session_vs_legacy_cegis(benchmark):
    """Session engine vs the seed's per-call path: identical results, 1 build.

    Asserted on every case study: the session path returns bit-identical
    thresholds, rounds and statuses, with exactly ONE encoding build per
    problem where the legacy path builds one per round.  Wall-clock: the
    issue that motivated sessions assumed the encoding rebuild dominated the
    round; profiling shows the HiGHS solve is ~75% of a round on the vsc
    workload, so eliminating the rebuild + the redundant feasibility LP
    (margin-first single-LP strategy) + the repeated detector-free query
    yields a measured ~1.6-2.0x end-to-end (≈1.7-1.8x on stepwise × lp vsc,
    up to ≈2x on pivot workloads) — the assertion below uses 1.4x as the
    noise-robust floor, and the per-round *redundant work* (encoding builds,
    duplicate LPs) is verified eliminated exactly.
    """
    cases = ("vsc", "trajectory", "dcmotor", "quadtank", "cruise")

    def sweep():
        rows = []
        for name in cases:
            case = get_case_study(name)
            problem = case.problem
            floor = case.extras.get("reproduction", {}).get("min_threshold", 0.0)
            repeats = 3 if name == "vsc" else 1
            # warm both paths once so timing excludes first-touch effects
            _legacy_stepwise_workload(problem, floor)
            _session_stepwise_workload(problem, floor)

            before = encoding_module.encoding_build_count()
            legacy_time, (legacy_vuln, legacy) = _timed(
                lambda: _legacy_stepwise_workload(problem, floor), repeats
            )
            legacy_builds = (
                encoding_module.encoding_build_count() - before
            ) // repeats
            before = encoding_module.encoding_build_count()
            session_time, (session_vuln, incremental) = _timed(
                lambda: _session_stepwise_workload(problem, floor), repeats
            )
            session_builds = (
                encoding_module.encoding_build_count() - before
            ) // repeats
            rows.append(
                {
                    "case": name,
                    "legacy_time": legacy_time,
                    "session_time": session_time,
                    "legacy_builds": legacy_builds,
                    "session_builds": session_builds,
                    "rounds": legacy.rounds,
                    "identical": bool(
                        np.array_equal(
                            legacy.threshold.values, incremental.threshold.values
                        )
                        and legacy.rounds == incremental.rounds
                        and legacy.status == incremental.status
                        and legacy_vuln.status == session_vuln.status
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print("\n--- Incremental sessions vs legacy per-call CEGIS (stepwise x lp)")
    print(
        f"{'case':>12s} {'rounds':>7s} {'builds':>12s} {'legacy [s]':>11s} "
        f"{'session [s]':>12s} {'speedup':>8s} {'identical':>10s}"
    )
    for row in rows:
        speedup = row["legacy_time"] / row["session_time"]
        builds = f"{row['legacy_builds']}->{row['session_builds']}"
        print(
            f"{row['case']:>12s} {row['rounds']:7d} {builds:>12s} "
            f"{row['legacy_time']:11.3f} {row['session_time']:12.3f} "
            f"{speedup:7.2f}x {str(row['identical']):>10s}"
        )

    # Bit-identical synthesis results on every case study.
    assert all(row["identical"] for row in rows)
    # The session builds the encoding once per problem; the legacy path
    # builds one per Algorithm 1 call (rounds + the vulnerability check).
    assert all(row["session_builds"] == 1 for row in rows)
    assert all(row["legacy_builds"] == row["rounds"] + 1 for row in rows)
    # Wall-clock reduction on the vsc stepwise x lp workload (noise-robust
    # floor; measured ~1.7-1.8x on an idle machine, see docstring).  Skipped
    # in --benchmark-disable smoke runs, where shared-runner scheduling noise
    # would make a timing assert flaky; the identity and build-count asserts
    # above are deterministic and always run.
    if not benchmark.disabled:
        vsc = next(row for row in rows if row["case"] == "vsc")
        assert vsc["legacy_time"] / vsc["session_time"] >= 1.4


def test_simplex_vs_scipy(benchmark):
    """Feasibility checking: from-scratch simplex vs scipy HiGHS."""
    rng = np.random.default_rng(0)
    n_vars, n_cons = 20, 60
    A = rng.normal(size=(n_cons, n_vars))
    b = rng.normal(size=n_cons) + 1.0

    def run_both():
        solver = SimplexSolver()
        for i in range(n_cons):
            solver.add_expression(
                LinearExpr({f"v{j}": A[i, j] for j in range(n_vars)}, -float(b[i]))
            )
        start = time.monotonic()
        ours = solver.check()
        ours_time = time.monotonic() - start
        start = time.monotonic()
        reference = linprog(
            np.zeros(n_vars), A_ub=A, b_ub=b, bounds=[(None, None)] * n_vars, method="highs"
        )
        scipy_time = time.monotonic() - start
        return ours, ours_time, reference, scipy_time

    ours, ours_time, reference, scipy_time = run_once(benchmark, run_both)
    print("\n--- Simplex micro-benchmark (20 variables, 60 constraints)")
    print(f"from-scratch simplex: feasible={ours.feasible} in {ours_time * 1e3:.2f} ms")
    print(f"scipy HiGHS         : feasible={reference.status == 0} in {scipy_time * 1e3:.2f} ms")
    assert ours.feasible == (reference.status == 0)
