"""Micro-benchmarks of the formal substrate itself.

Not part of the paper's evaluation, but useful for downstream users sizing
their own problems: how Algorithm 1's runtime scales with the analysis
horizon, and how the from-scratch simplex compares to scipy's HiGHS on the
same feasibility problem.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import linprog

from benchmarks.conftest import run_once

from repro import synthesize_attack
from repro.smt.linear import LinearExpr
from repro.smt.simplex import SimplexSolver
from repro.systems import build_dcmotor_case_study


def test_attack_synthesis_scaling_with_horizon(benchmark):
    """Algorithm 1 runtime as the analysis window grows."""

    def sweep():
        rows = []
        for horizon in (10, 20, 40, 80):
            problem = build_dcmotor_case_study(horizon=horizon).problem
            start = time.monotonic()
            result = synthesize_attack(problem, threshold=problem.static_threshold(1.0))
            rows.append((horizon, time.monotonic() - start, result.status.value))
        return rows

    rows = run_once(benchmark, sweep)
    print("\n--- Algorithm 1 (LP backend) scaling with horizon, DC motor")
    print(f"{'horizon':>8s} {'time [s]':>10s} {'verdict':>9s}")
    for horizon, elapsed, verdict in rows:
        print(f"{horizon:8d} {elapsed:10.3f} {verdict:>9s}")
    assert all(verdict in ("sat", "unsat") for _, _, verdict in rows)


def test_simplex_vs_scipy(benchmark):
    """Feasibility checking: from-scratch simplex vs scipy HiGHS."""
    rng = np.random.default_rng(0)
    n_vars, n_cons = 20, 60
    A = rng.normal(size=(n_cons, n_vars))
    b = rng.normal(size=n_cons) + 1.0

    def run_both():
        solver = SimplexSolver()
        for i in range(n_cons):
            solver.add_expression(
                LinearExpr({f"v{j}": A[i, j] for j in range(n_vars)}, -float(b[i]))
            )
        start = time.monotonic()
        ours = solver.check()
        ours_time = time.monotonic() - start
        start = time.monotonic()
        reference = linprog(
            np.zeros(n_vars), A_ub=A, b_ub=b, bounds=[(None, None)] * n_vars, method="highs"
        )
        scipy_time = time.monotonic() - start
        return ours, ours_time, reference, scipy_time

    ours, ours_time, reference, scipy_time = run_once(benchmark, run_both)
    print("\n--- Simplex micro-benchmark (20 variables, 60 constraints)")
    print(f"from-scratch simplex: feasible={ours.feasible} in {ours_time * 1e3:.2f} ms")
    print(f"scipy HiGHS         : feasible={reference.status == 0} in {scipy_time * 1e3:.2f} ms")
    assert ours.feasible == (reference.status == 0)
