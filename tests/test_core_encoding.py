"""Unit tests for the attack-synthesis constraint encoding."""

import dataclasses

import numpy as np
import pytest

from repro.core.encoding import AttackEncoding
from repro.utils.validation import ValidationError


class TestStructure:
    def test_no_threshold_means_no_stealth_constraints(self, trajectory_problem):
        encoding = AttackEncoding(problem=trajectory_problem, threshold=None)
        assert all(c.kind != "stealth" for c in encoding.base_constraints())

    def test_stealth_constraints_only_for_finite_entries(self, trajectory_problem):
        threshold = trajectory_problem.fresh_threshold()
        threshold.set_value(2, 0.5)
        threshold.set_value(7, 0.1)
        encoding = AttackEncoding(problem=trajectory_problem, threshold=threshold)
        stealth = [c for c in encoding.base_constraints() if c.kind == "stealth"]
        # Two finite entries, one output channel, two sides each.
        assert len(stealth) == 2 * 2

    def test_full_threshold_constraint_count(self, trajectory_problem):
        threshold = trajectory_problem.static_threshold(0.5)
        encoding = AttackEncoding(problem=trajectory_problem, threshold=threshold)
        stealth = [c for c in encoding.base_constraints() if c.kind == "stealth"]
        assert len(stealth) == trajectory_problem.horizon * 2

    def test_monitor_constraints_present(self, trajectory_problem):
        encoding = AttackEncoding(problem=trajectory_problem, threshold=None)
        mdc = [c for c in encoding.base_constraints() if c.kind == "mdc"]
        assert len(mdc) > 0

    def test_violation_branches_match_pfc(self, trajectory_problem):
        encoding = AttackEncoding(problem=trajectory_problem, threshold=None)
        # ReachSetCriterion on one component: two ways to violate (below / above).
        assert len(encoding.violation_branches()) == 2

    def test_bounds_length(self, trajectory_problem):
        encoding = AttackEncoding(problem=trajectory_problem)
        assert len(encoding.variable_bounds()) == encoding.n_variables

    def test_rejects_non_inf_norm(self, trajectory_problem):
        problem = dataclasses.replace(trajectory_problem, residue_norm=2)
        with pytest.raises(ValidationError):
            AttackEncoding(problem=problem)


class TestSemantics:
    def test_zero_attack_satisfies_base_but_not_violation(self, trajectory_problem):
        """The nominal run is stealthy (monitors quiet) and meets pfc."""
        threshold = trajectory_problem.static_threshold(10.0)
        encoding = AttackEncoding(problem=trajectory_problem, threshold=threshold)
        theta = np.zeros(encoding.n_variables)
        assert encoding.theta_satisfies_base(theta)
        assert not encoding.theta_violates_pfc(theta)

    def test_large_attack_violates_base_monitors(self, trajectory_problem):
        encoding = AttackEncoding(problem=trajectory_problem, threshold=None)
        theta = np.full(encoding.n_variables, 10.0)  # measured position far out of range
        assert not encoding.theta_satisfies_base(theta)

    def test_stealth_violated_by_large_attack_when_threshold_tight(self, trajectory_problem):
        threshold = trajectory_problem.static_threshold(0.01)
        encoding = AttackEncoding(problem=trajectory_problem, threshold=threshold)
        theta = np.full(encoding.n_variables, 0.3)
        assert not encoding.theta_satisfies_base(theta)

    def test_consistency_with_simulation_verdicts(self, trajectory_problem):
        """Encoding verdicts must agree with simulating the same attack."""
        threshold = trajectory_problem.static_threshold(0.2)
        encoding = AttackEncoding(problem=trajectory_problem, threshold=threshold)
        unrolling = encoding.unrolling
        rng = np.random.default_rng(5)
        for _ in range(10):
            theta = rng.uniform(-0.2, 0.2, size=encoding.n_variables)
            attack = unrolling.attack_from_theta(theta)
            trace = trajectory_problem.simulate(attack=attack)
            sim_stealthy = (not trajectory_problem.mdc_alarm(trace)) and (
                not trajectory_problem.detector_alarm(trace, threshold)
            )
            sim_violates = not trajectory_problem.pfc_satisfied(trace)
            # The encoding applies a strictness margin, so it may be more
            # conservative than the simulator but never less.
            if encoding.theta_satisfies_base(theta):
                assert sim_stealthy
            if encoding.theta_violates_pfc(theta):
                assert sim_violates

    def test_weighted_stealth_scaling(self, dcmotor_problem):
        """Residue weights rescale the stealth constraints."""
        problem = dataclasses.replace(dcmotor_problem, residue_weights=np.array([2.0]))
        threshold = problem.static_threshold(1.0)
        encoding = AttackEncoding(problem=problem, threshold=threshold)
        stealth = [c for c in encoding.base_constraints() if c.kind == "stealth"]
        unweighted = AttackEncoding(
            problem=dcmotor_problem, threshold=dcmotor_problem.static_threshold(1.0)
        )
        stealth_unweighted = [
            c for c in unweighted.base_constraints() if c.kind == "stealth"
        ]
        # Same structure, scaled rows.
        assert len(stealth) == len(stealth_unweighted)
        np.testing.assert_allclose(stealth[0].row * 2.0, stealth_unweighted[0].row, atol=1e-12)
