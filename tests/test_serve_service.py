"""Tests for the always-on monitoring service: ingest, membership, hot swap."""

import numpy as np
import pytest

from repro.detectors.chi_square import ChiSquareDetector
from repro.detectors.cusum import CusumDetector
from repro.detectors.threshold import ThresholdVector
from repro.registry import ATTACK_TEMPLATES
from repro.runtime.engine import _innovation_covariance
from repro.runtime.events import InMemorySink
from repro.runtime.fleet import FleetSimulator, ScheduledAttack
from repro.serve import BatchObserver, MonitorService, RingBuffer
from repro.utils.validation import ValidationError


class TestRingBuffer:
    def test_fifo_order_and_wraparound(self):
        ring = RingBuffer(3, 2)
        for value in range(3):
            assert ring.push([value, value])
        assert ring.is_full and not ring.push([9, 9])
        np.testing.assert_array_equal(ring.pop(), [0, 0])
        assert ring.push([3, 3])
        for expected in (1, 2, 3):
            np.testing.assert_array_equal(ring.pop(), [expected, expected])
        assert len(ring) == 0

    def test_drop_oldest_makes_room(self):
        ring = RingBuffer(2, 1)
        ring.push([1.0])
        ring.push([2.0])
        ring.drop_oldest()
        ring.push([3.0])
        np.testing.assert_array_equal(ring.pop(), [2.0])
        np.testing.assert_array_equal(ring.pop(), [3.0])

    def test_width_and_empty_validation(self):
        ring = RingBuffer(2, 2)
        with pytest.raises(ValidationError):
            ring.push([1.0])
        with pytest.raises(ValidationError):
            ring.pop()
        with pytest.raises(ValidationError):
            ring.peek()

    def test_peek_and_clear(self):
        ring = RingBuffer(4, 1)
        ring.push([5.0])
        ring.push([6.0])
        np.testing.assert_array_equal(ring.peek(), [5.0])
        assert len(ring) == 2
        assert ring.clear() == 2
        assert len(ring) == 0


class TestMembership:
    def _service(self, dcmotor_problem, **kwargs):
        return MonitorService(
            dcmotor_problem.system,
            {"static": dcmotor_problem.static_threshold(0.5)},
            **kwargs,
        )

    def test_needs_a_detector(self, dcmotor_problem):
        with pytest.raises(ValidationError):
            MonitorService(dcmotor_problem.system, {})

    def test_attach_assigns_increasing_ids(self, dcmotor_problem):
        service = self._service(dcmotor_problem)
        assert service.attach() == 0
        assert service.attach() == 1
        assert service.attach(7) == 7
        assert service.attach() == 8
        assert service.members == (0, 1, 7, 8)

    def test_duplicate_attach_and_unknown_detach_rejected(self, dcmotor_problem):
        service = self._service(dcmotor_problem)
        service.attach(3)
        with pytest.raises(ValidationError):
            service.attach(3)
        with pytest.raises(ValidationError):
            service.detach(99)
        with pytest.raises(ValidationError):
            service.ingest(99, [0.0])

    def test_detach_keeps_other_instances_state(self, dcmotor_problem):
        detector = CusumDetector(bias=0.01, threshold=50.0)
        service = MonitorService(dcmotor_problem.system, {"cusum": detector})
        for _ in range(3):
            service.attach()
        rng = np.random.default_rng(3)
        m = dcmotor_problem.system.plant.n_outputs
        for _ in range(6):
            for i in range(3):
                service.ingest(i, rng.normal(size=m) * (i + 1))
        before = service.detectors["cusum"].state["statistic"].copy()
        service.detach(1)
        after = service.detectors["cusum"].state["statistic"]
        np.testing.assert_array_equal(after, before[[0, 2]])
        assert service.members == (0, 2)

    def test_observer_mode_rejects_explicit_residues(self, dcmotor_problem):
        service = self._service(dcmotor_problem)
        service.attach()
        with pytest.raises(ValidationError):
            service.ingest(0, [0.1], residue=[0.1])

    def test_ingest_mode_requires_residues_for_residue_detectors(self, dcmotor_problem):
        service = self._service(dcmotor_problem, residue_source="ingest")
        service.attach()
        with pytest.raises(ValidationError):
            service.ingest(0, [0.1])
        assert service.ingest(0, [0.1], residue=[0.1])


class TestOverflowPolicies:
    def _tiny_service(self, dcmotor_problem, overflow):
        service = MonitorService(
            dcmotor_problem.system,
            {"static": dcmotor_problem.static_threshold(0.5)},
            ring_capacity=2,
            overflow=overflow,
            auto_drain=False,
        )
        service.attach()
        return service

    def test_drop_newest_refuses_and_counts(self, dcmotor_problem):
        service = self._tiny_service(dcmotor_problem, "drop-newest")
        assert service.ingest(0, [1.0]) and service.ingest(0, [2.0])
        assert not service.ingest(0, [3.0])
        assert service.samples_dropped == 1
        # The refused sample never entered the stream: draining sees 1, 2.
        service.drain()
        assert service.rounds_processed == 2

    def test_drop_oldest_evicts_and_counts(self, dcmotor_problem):
        service = self._tiny_service(dcmotor_problem, "drop-oldest")
        for value in (1.0, 2.0, 3.0, 4.0):
            assert service.ingest(0, [value])
        assert service.samples_dropped == 2
        assert service.pending() == {0: 2}

    def test_error_policy_raises(self, dcmotor_problem):
        service = self._tiny_service(dcmotor_problem, "error")
        service.ingest(0, [1.0])
        service.ingest(0, [2.0])
        with pytest.raises(ValidationError):
            service.ingest(0, [3.0])

    def test_lockstep_waits_for_every_member(self, dcmotor_problem):
        service = MonitorService(
            dcmotor_problem.system,
            {"static": dcmotor_problem.static_threshold(0.5)},
            auto_drain=False,
        )
        service.attach()
        service.attach()
        service.ingest(0, [1.0])
        assert service.drain() == 0  # instance 1 has nothing pending
        service.ingest(1, [1.0])
        assert service.drain() == 1


class TestOfflineEquivalence:
    """The service must reproduce FleetSimulator's alarms bit for bit."""

    def _fleet_run(self, problem, bank, n_instances=6):
        sink = InMemorySink()
        simulator = FleetSimulator(
            problem.system,
            n_instances,
            problem.horizon,
            detectors={label: obj for label, obj in bank.items()},
            attacks=[
                ScheduledAttack(
                    template=ATTACK_TEMPLATES.create("ramp", slope=0.4),
                    start=3,
                    instances=(1, 4),
                )
            ],
            sinks=[sink],
            seed=7,
            record_traces=True,
            x0=problem.x0,
        )
        simulator.run()
        return simulator.trace, list(sink.events)

    def test_observer_service_is_bit_identical_to_fleet(self, dcmotor_problem):
        problem = dcmotor_problem
        bank = {
            "static": problem.static_threshold(0.4),
            "cusum": CusumDetector(bias=0.1, threshold=1.0, norm=2),
            "chi": ChiSquareDetector(
                innovation_cov=_innovation_covariance(problem), threshold=5.0
            ),
            "mdc": problem.mdc,
        }
        trace, fleet_events = self._fleet_run(problem, bank)
        assert fleet_events, "the scenario must actually raise alarms"

        sink = InMemorySink()
        service = MonitorService(problem.system, dict(bank), sinks=[sink])
        for _ in range(trace.n_instances):
            service.attach()
        for k in range(trace.horizon):
            for i in range(trace.n_instances):
                service.ingest(i, trace.measurements[i, k])
        assert list(sink.events) == fleet_events

    def test_attach_detach_leaves_other_instances_bit_identical(self, dcmotor_problem):
        # Ingest mode feeds the recorded residues directly, so every detector
        # op is row-elementwise and the mid-run batch-size change cannot
        # perturb instances 0..5 even at the bit level.
        problem = dcmotor_problem
        bank = {
            "static": problem.static_threshold(0.4),
            "cusum": CusumDetector(bias=0.1, threshold=1.0, norm=2),
            "mdc": problem.mdc,
        }
        trace, fleet_events = self._fleet_run(problem, bank)
        N, T = trace.n_instances, trace.horizon

        sink = InMemorySink()
        service = MonitorService(
            problem.system, dict(bank), residue_source="ingest", sinks=[sink]
        )
        for _ in range(N):
            service.attach()
        guest = None
        rng = np.random.default_rng(11)
        m = problem.system.plant.n_outputs
        for k in range(T):
            if k == T // 3:
                guest = service.attach()
            if k == 2 * T // 3:
                service.detach(guest)
                guest = None
            for i in range(N):
                service.ingest(
                    i, trace.measurements[i, k], residue=trace.residues[i, k]
                )
            if guest is not None:
                service.ingest(
                    guest, rng.normal(size=m), residue=rng.normal(size=m) * 0.5
                )
        original = [event for event in sink.events if event.instance < N]
        assert original == fleet_events


class TestHotSwap:
    def test_swap_preserves_cusum_state_vs_no_swap_run(self, dcmotor_problem):
        problem = dcmotor_problem
        old = CusumDetector(bias=0.05, threshold=100.0)
        new = CusumDetector(bias=0.5, threshold=100.0)
        rng = np.random.default_rng(5)
        m = problem.system.plant.n_outputs
        stream = rng.normal(size=(20, m))

        swapped = MonitorService(problem.system, {"cusum": old}, residue_source="ingest")
        fresh = MonitorService(problem.system, {"cusum": new}, residue_source="ingest")
        for service in (swapped, fresh):
            service.attach()
        for k in range(10):
            for service in (swapped, fresh):
                service.ingest(0, np.zeros(m), residue=stream[k])

        before = swapped.detectors["cusum"].state
        swapped.swap_thresholds({"cusum": new})
        after = swapped.detectors["cusum"].state
        # The swap itself changes nothing but the parameters: accumulator and
        # position survive untouched.
        np.testing.assert_array_equal(after["statistic"], before["statistic"])
        assert after["step"] == before["step"]

        for k in range(10, 20):
            for service in (swapped, fresh):
                service.ingest(0, np.zeros(m), residue=stream[k])
        # Both ran the final 10 samples under identical parameters, but the
        # swapped run carries the bias=0.05 history: had the swap reset the
        # accumulator, the two statistics would agree.
        assert (
            swapped.detectors["cusum"].state["statistic"][0]
            != fresh.detectors["cusum"].state["statistic"][0]
        )

    def test_threshold_swap_keeps_per_instance_position(self, dcmotor_problem):
        problem = dcmotor_problem
        T = problem.horizon
        quiet = ThresholdVector(np.full(T, 10.0))
        service = MonitorService(problem.system, {"static": quiet}, residue_source="ingest")
        sink = InMemorySink()
        service.sinks.append(sink)
        service.attach()
        m = problem.system.plant.n_outputs
        for _ in range(5):
            service.ingest(0, np.zeros(m), residue=np.full(m, 1.0))
        assert not sink.events

        # Sensitive only from position 5 on: an alarm on the next sample
        # proves the detector kept its position through the swap (a reset
        # would compare against position 0's 10.0 and stay silent).
        values = np.full(T, 10.0)
        values[5:] = 0.01
        service.swap_thresholds({"static": ThresholdVector(values)})
        service.ingest(0, np.zeros(m), residue=np.full(m, 1.0))
        assert [event.step for event in sink.events] == [5]

    def test_swap_is_atomic_across_labels(self, dcmotor_problem):
        problem = dcmotor_problem
        service = MonitorService(
            problem.system,
            {
                "static": problem.static_threshold(0.4),
                "cusum": CusumDetector(bias=0.1, threshold=1.0),
            },
            residue_source="ingest",
        )
        service.attach()
        original = service.detectors["static"].threshold
        with pytest.raises(ValidationError):
            service.swap_thresholds(
                {
                    "static": ThresholdVector(np.full(problem.horizon, 2.0)),
                    "cusum": "not a cusum detector",
                }
            )
        # The valid half of the failed batch must not have been applied.
        assert service.detectors["static"].threshold is original
        assert service.swaps_applied == 0

    def test_unknown_label_rejected(self, dcmotor_problem):
        service = MonitorService(
            dcmotor_problem.system,
            {"static": dcmotor_problem.static_threshold(0.4)},
        )
        with pytest.raises(ValidationError):
            service.swap_thresholds({"nope": ThresholdVector(np.ones(3))})


class TestBatchObserver:
    def test_matches_fleet_estimator_bit_for_bit(self, dcmotor_problem):
        problem = dcmotor_problem
        simulator = FleetSimulator(
            problem.system,
            4,
            problem.horizon,
            seed=9,
            record_traces=True,
            x0=problem.x0,
        )
        simulator.run()
        trace = simulator.trace
        observer = BatchObserver(problem.system)
        observer.grow(4)
        for k in range(trace.horizon):
            residues = observer.step(trace.measurements[:, k])
            np.testing.assert_array_equal(residues, trace.residues[:, k])

    def test_grow_and_compact_validate(self, dcmotor_problem):
        observer = BatchObserver(dcmotor_problem.system)
        with pytest.raises(ValidationError):
            observer.grow(0)
        observer.grow(3)
        with pytest.raises(ValidationError):
            observer.compact(np.array([0, 3]))
        observer.compact(np.array([0, 2]))
        assert observer.n_instances == 2


class TestFusedEngineRounds:
    """The fused round engine against the legacy per-core loop.

    Regression scope: the fused engine caches a version-keyed execution plan
    over the detector bank, and growing or compacting the bank mid-run (an
    attach/detach) or hot-swapping thresholds must rebuild that plan without
    resetting any surviving instance's detector state.  Every test drives the
    identical scenario through both engines and requires bit-identical alarm
    streams and counters.
    """

    def _drive(self, problem, engine, *, swap_at=None, membership_churn=False):
        bank = {
            "static": problem.static_threshold(0.4),
            "cusum": CusumDetector(bias=0.1, threshold=1.0, norm=2),
        }
        sink = InMemorySink()
        service = MonitorService(
            problem.system,
            bank,
            residue_source="ingest",
            sinks=[sink],
            engine=engine,
        )
        ids = [service.attach() for _ in range(6)]
        rng = np.random.default_rng(23)
        m = problem.system.plant.n_outputs
        for k in range(40):
            if membership_churn and k == 12:
                ids.append(service.attach())
            if membership_churn and k == 28:
                service.detach(ids.pop(3))
            if swap_at is not None and k == swap_at:
                service.swap_thresholds(
                    {"cusum": CusumDetector(bias=0.05, threshold=0.6, norm=2)}
                )
            for i in ids:
                service.ingest(
                    i, rng.normal(size=m), residue=rng.normal(size=m) * 0.4
                )
        stats = service.stats()
        service.close()
        return list(sink.events), stats

    def test_fused_rounds_match_legacy_bit_for_bit(self, dcmotor_problem):
        legacy_events, legacy_stats = self._drive(dcmotor_problem, "legacy")
        fused_events, fused_stats = self._drive(dcmotor_problem, "fused")
        assert legacy_events, "the scenario must actually raise alarms"
        assert fused_events == legacy_events
        assert fused_stats == legacy_stats

    def test_grow_compact_mid_run_rebuilds_the_plan_without_resets(
        self, dcmotor_problem
    ):
        # The latent edge this PR fixes: an attach after the fused plan was
        # built must invalidate it (the cores' version counters bump) while
        # survivors keep their CUSUM accumulators and threshold positions.
        legacy_events, legacy_stats = self._drive(
            dcmotor_problem, "legacy", membership_churn=True
        )
        fused_events, fused_stats = self._drive(
            dcmotor_problem, "fused", membership_churn=True
        )
        assert legacy_events, "the scenario must actually raise alarms"
        assert fused_events == legacy_events
        assert fused_stats == legacy_stats

    def test_hot_swap_after_plan_build_takes_effect(self, dcmotor_problem):
        # The swap lands mid-run, after rounds have cached a fused plan; the
        # rebind bumps the core's version, so the stale pre-swap parameters
        # must never be applied to a post-swap round.
        legacy_events, legacy_stats = self._drive(dcmotor_problem, "legacy", swap_at=15)
        fused_events, fused_stats = self._drive(dcmotor_problem, "fused", swap_at=15)
        assert legacy_events, "the scenario must actually raise alarms"
        assert fused_events == legacy_events
        assert fused_stats == legacy_stats

    def test_config_round_trip_carries_the_engine(self, dcmotor_problem):
        from repro.api.config import ServiceConfig
        from repro.serve.engine import run_service

        config = ServiceConfig(
            static_thresholds={"static": 0.4},
            include_mdc=False,
            engine="fused",
            engine_options={},
        )
        rebuilt = ServiceConfig.from_dict(config.to_dict())
        assert rebuilt.engine == "fused"
        service = run_service(rebuilt, dcmotor_problem)
        assert service.engine == "fused"
        start = service.log.events[0]
        assert start.data["engine"] == "fused"
        service.close()
