"""Per-rule fixture tests for ``repro.lint``.

Each REP rule gets at least one planted-violation snippet (the rule must
fire) and one clean snippet (the rule must stay quiet), plus tests for the
suppression-pragma grammar: a justified pragma is accepted and suppresses,
a bare ``# repro: noqa`` or a justification-less pragma is itself a
``REP000`` finding, and a pragma whose excused finding no longer exists is
reported as unused.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import known_codes, parse_pragmas, run_lint
from repro.lint.cli import main as lint_main


def lint_snippet(tmp_path: Path, source: str, name: str = "mod.py", select=None):
    """Write ``source`` under ``tmp_path`` and lint it."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return run_lint([tmp_path], select=select)


def codes_of(result) -> list[str]:
    """Codes of the unsuppressed findings, in report order."""
    return [finding.code for finding in result.unsuppressed]


# ----------------------------------------------------------------------
# REP001 — wall-clock confinement
# ----------------------------------------------------------------------


def test_rep001_flags_wall_clock_reads(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import time\n"
        "from time import perf_counter\n"
        "import datetime\n"
        "a = time.time()\n"
        "b = perf_counter()\n"
        "c = datetime.datetime.now()\n",
        select=["REP001"],
    )
    assert codes_of(result) == ["REP001", "REP001", "REP001"]
    messages = "\n".join(f.message for f in result.unsuppressed)
    assert "time.time" in messages
    assert "time.perf_counter" in messages
    assert "datetime.now" in messages


def test_rep001_clean_stopwatch_snippet(tmp_path):
    result = lint_snippet(
        tmp_path,
        "from repro.obs.clock import Stopwatch\n"
        "def timed():\n"
        "    watch = Stopwatch()\n"
        "    return watch.elapsed()\n",
        select=["REP001"],
    )
    assert codes_of(result) == []


def test_rep001_exempts_repro_obs_and_benchmarks(tmp_path):
    for relative in ("repro/__init__.py", "repro/obs/__init__.py"):
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('"""pkg."""\n', encoding="utf-8")
    result = lint_snippet(
        tmp_path,
        "import time\nSTARTED = time.time()\n",
        name="repro/obs/clockish.py",
        select=["REP001"],
    )
    assert codes_of(result) == []

    result = lint_snippet(
        tmp_path,
        "import time\nSTARTED = time.monotonic()\n",
        name="benchmarks/bench_thing.py",
        select=["REP001"],
    )
    assert codes_of(result) == []


# ----------------------------------------------------------------------
# REP002 — no legacy global NumPy RNG
# ----------------------------------------------------------------------


def test_rep002_flags_legacy_and_unseeded_rng(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import numpy as np\n"
        "np.random.seed(0)\n"
        "x = np.random.normal(size=3)\n"
        "rng = np.random.default_rng()\n",
        select=["REP002"],
    )
    assert codes_of(result) == ["REP002", "REP002", "REP002"]


def test_rep002_clean_seeded_generator(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import numpy as np\n"
        "rng = np.random.default_rng(1234)\n"
        "x = rng.normal(size=3)\n",
        select=["REP002"],
    )
    assert codes_of(result) == []


# ----------------------------------------------------------------------
# REP003 — exception hygiene
# ----------------------------------------------------------------------


def test_rep003_flags_bare_and_broad_except(tmp_path):
    result = lint_snippet(
        tmp_path,
        "try:\n"
        "    pass\n"
        "except:\n"
        "    pass\n"
        "try:\n"
        "    pass\n"
        "except Exception:\n"
        "    pass\n",
        select=["REP003"],
    )
    assert codes_of(result) == ["REP003", "REP003"]


def test_rep003_clean_specific_except(tmp_path):
    result = lint_snippet(
        tmp_path,
        "try:\n"
        "    pass\n"
        "except (ValueError, KeyError) as error:\n"
        "    raise RuntimeError('no') from error\n",
        select=["REP003"],
    )
    assert codes_of(result) == []


# ----------------------------------------------------------------------
# REP004 — registry integrity
# ----------------------------------------------------------------------


def _write_package(tmp_path: Path, files: dict[str, str]) -> None:
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")


def test_rep004_flags_duplicate_registration(tmp_path):
    _write_package(
        tmp_path,
        {
            "pkg/__init__.py": (
                '"""pkg."""\nfrom .mod_a import DetA\nfrom .mod_b import DetB\n'
            ),
            "pkg/mod_a.py": (
                "from repro.registry import DETECTORS\n"
                "@DETECTORS.register('dup')\n"
                "class DetA:\n"
                "    pass\n"
            ),
            "pkg/mod_b.py": (
                "from repro.registry import DETECTORS\n"
                "@DETECTORS.register('dup')\n"
                "class DetB:\n"
                "    pass\n"
            ),
        },
    )
    result = run_lint([tmp_path], select=["REP004"])
    assert codes_of(result) == ["REP004"]
    assert "registered more than once" in result.unsuppressed[0].message


def test_rep004_flags_unreachable_module(tmp_path):
    _write_package(
        tmp_path,
        {
            "pkg/__init__.py": '"""pkg — never imports mod_hidden."""\n',
            "pkg/mod_hidden.py": (
                "from repro.registry import BACKENDS\n"
                "@BACKENDS.register('ghost')\n"
                "class Ghost:\n"
                "    pass\n"
            ),
        },
    )
    result = run_lint([tmp_path], select=["REP004"])
    assert codes_of(result) == ["REP004"]
    assert "never imports it" in result.unsuppressed[0].message


def test_rep004_clean_unique_and_reachable(tmp_path):
    _write_package(
        tmp_path,
        {
            "pkg/__init__.py": '"""pkg."""\nfrom .mod_a import Solo\n',
            "pkg/mod_a.py": (
                "from repro.registry import SYNTHESIZERS, register_sampler\n"
                "@SYNTHESIZERS.register('solo')\n"
                "class Solo:\n"
                "    pass\n"
            ),
        },
    )
    result = run_lint([tmp_path], select=["REP004"])
    assert codes_of(result) == []


def test_rep004_sees_module_level_and_generic_register_calls(tmp_path):
    _write_package(
        tmp_path,
        {
            "pkg/__init__.py": '"""pkg."""\nfrom .mod_a import A\nfrom .mod_b import B\n',
            "pkg/mod_a.py": (
                "from repro.registry import BACKENDS\n"
                "class A:\n"
                "    pass\n"
                "BACKENDS.register('twin', A)\n"
            ),
            "pkg/mod_b.py": (
                "from repro.registry import register\n"
                "class B:\n"
                "    pass\n"
                "register('backend', 'twin', B)\n"
            ),
        },
    )
    result = run_lint([tmp_path], select=["REP004"])
    assert codes_of(result) == ["REP004"]


# ----------------------------------------------------------------------
# REP005 — config round-trip
# ----------------------------------------------------------------------


def test_rep005_flags_one_way_to_json(tmp_path):
    result = lint_snippet(
        tmp_path,
        "class Config:\n"
        "    def to_json(self):\n"
        "        return '{}'\n",
        select=["REP005"],
    )
    assert codes_of(result) == ["REP005"]
    assert "no from_json counterpart" in result.unsuppressed[0].message


def test_rep005_flags_to_dict_dropping_a_field(tmp_path):
    result = lint_snippet(
        tmp_path,
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Config:\n"
        "    horizon: int\n"
        "    seed: int\n"
        "    def to_dict(self):\n"
        "        return {'horizon': self.horizon}\n"
        "    @classmethod\n"
        "    def from_dict(cls, data):\n"
        "        return cls(**data)\n",
        select=["REP005"],
    )
    assert codes_of(result) == ["REP005"]
    assert "seed" in result.unsuppressed[0].message


def test_rep005_clean_round_trip(tmp_path):
    result = lint_snippet(
        tmp_path,
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Config:\n"
        "    horizon: int\n"
        "    seed: int\n"
        "    def to_dict(self):\n"
        "        return {'horizon': self.horizon, 'seed': self.seed, 'kind': 'cfg'}\n"
        "    @classmethod\n"
        "    def from_dict(cls, data):\n"
        "        return cls(horizon=data['horizon'], seed=data['seed'])\n"
        "    def to_json(self):\n"
        "        return '{}'\n"
        "    @classmethod\n"
        "    def from_json(cls, text):\n"
        "        return cls(0, 0)\n",
        select=["REP005"],
    )
    assert codes_of(result) == []


# ----------------------------------------------------------------------
# REP006 — metric conventions
# ----------------------------------------------------------------------


def test_rep006_flags_bad_names_and_buckets(tmp_path):
    result = lint_snippet(
        tmp_path,
        "def instruments(registry):\n"
        "    a = registry.counter('events')\n"
        "    b = registry.gauge('queue_depth_total')\n"
        "    c = registry.histogram('latency_s', 'help', buckets=(0.1, 0.1, 1.0))\n",
        select=["REP006"],
    )
    assert codes_of(result) == ["REP006", "REP006", "REP006"]


def test_rep006_clean_instruments(tmp_path):
    result = lint_snippet(
        tmp_path,
        "def instruments(registry):\n"
        "    a = registry.counter('events_total')\n"
        "    b = registry.gauge('queue_depth')\n"
        "    c = registry.histogram('latency_s', 'help', buckets=(0.1, 0.5, 1.0))\n",
        select=["REP006"],
    )
    assert codes_of(result) == []


# ----------------------------------------------------------------------
# Suppression pragmas
# ----------------------------------------------------------------------


def test_justified_pragma_suppresses_finding(tmp_path):
    result = lint_snippet(
        tmp_path,
        "try:\n"
        "    pass\n"
        "except Exception:  # repro: noqa REP003 — fixture exercises suppression\n"
        "    pass\n",
    )
    assert codes_of(result) == []
    assert [f.code for f in result.suppressed] == ["REP003"]
    assert result.suppressed[0].justification == "fixture exercises suppression"
    assert result.exit_code == 0


def test_bare_noqa_is_rejected(tmp_path):
    result = lint_snippet(
        tmp_path,
        "try:\n"
        "    pass\n"
        "except Exception:  # repro: noqa\n"
        "    pass\n",
    )
    # The blanket pragma suppresses nothing, so both the REP000 pragma
    # finding and the underlying REP003 finding gate the run.
    assert sorted(codes_of(result)) == ["REP000", "REP003"]
    assert result.exit_code == 1


def test_pragma_without_justification_is_rejected(tmp_path):
    result = lint_snippet(
        tmp_path,
        "try:\n"
        "    pass\n"
        "except Exception:  # repro: noqa REP003\n"
        "    pass\n",
    )
    assert sorted(codes_of(result)) == ["REP000", "REP003"]
    rep000 = next(f for f in result.unsuppressed if f.code == "REP000")
    assert "justification" in rep000.message


def test_unknown_code_in_pragma_is_rejected(tmp_path):
    result = lint_snippet(
        tmp_path,
        "x = 1  # repro: noqa REP999 — no such rule\n",
    )
    assert codes_of(result) == ["REP000"]
    assert "unknown rule code" in result.unsuppressed[0].message


def test_unused_pragma_is_reported(tmp_path):
    result = lint_snippet(
        tmp_path,
        "x = 1  # repro: noqa REP003 — nothing here raises\n",
    )
    assert codes_of(result) == ["REP000"]
    assert "unused suppression" in result.unsuppressed[0].message


def test_parse_pragmas_ignores_strings_and_docstrings(tmp_path):
    source = (
        '"""Docs showing `# repro: noqa REP003` are not pragmas."""\n'
        "text = '# repro: noqa REP001'\n"
        "y = 2  # repro: noqa REP006 — a real comment pragma\n"
    )
    pragmas, findings = parse_pragmas(source, tmp_path / "mod.py", known_codes())
    assert findings == []
    assert list(pragmas) == [3]
    assert pragmas[3].codes == ("REP006",)
    assert pragmas[3].justification == "a real comment pragma"


def test_multi_code_pragma_covers_each_named_code(tmp_path):
    result = lint_snippet(
        tmp_path,
        "import time\n"
        "try:\n"
        "    pass\n"
        "except Exception:  # repro: noqa REP003, REP001 — fixture: joint suppression\n"
        "    t = time.time()\n",
    )
    # REP003 sits on the pragma line and is suppressed; the REP001 read on
    # the *next* line is not (pragmas are same-line only), and the pragma's
    # REP001 code is therefore unused.
    assert sorted(codes_of(result)) == ["REP000", "REP001"]
    assert [f.code for f in result.suppressed] == ["REP003"]


def test_syntax_error_is_a_rep000_finding(tmp_path):
    result = lint_snippet(tmp_path, "def broken(:\n    pass\n")
    assert codes_of(result) == ["REP000"]
    assert "syntax" in result.unsuppressed[0].message.lower()


# ----------------------------------------------------------------------
# CLI and reports
# ----------------------------------------------------------------------


def test_cli_json_output_and_exit_code(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("try:\n    pass\nexcept:\n    pass\n", encoding="utf-8")
    report_path = tmp_path / "report.json"
    status = lint_main([str(bad), "--format", "json", "--output", str(report_path)])
    assert status == 1
    payload = json.loads(report_path.read_text(encoding="utf-8"))
    assert payload["summary"]["unsuppressed"] == 1
    assert payload["findings"][0]["code"] == "REP003"
    assert "1 unsuppressed finding(s)" in capsys.readouterr().err


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n", encoding="utf-8")
    status = lint_main([str(good)])
    assert status == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_rejects_unknown_select_code(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("x = 1\n", encoding="utf-8")
    status = lint_main([str(good), "--select", "REP777"])
    assert status == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    output = capsys.readouterr().out
    for code in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
        assert code in output
