"""Tests for repro.explore.engine + report + pareto: the exploration loop."""

import pytest

from repro.explore import (
    ExplorationReport,
    ExploreConfig,
    Explorer,
    ResultStore,
    SearchSpace,
    dominates,
    pareto_front,
    run_exploration,
    sensitivity,
)
from repro.utils.validation import ValidationError


def _tiny_space(**overrides) -> SearchSpace:
    settings = dict(
        case_studies=("dcmotor",),
        synthesizers=("stepwise", "static"),
        horizons=(8,),
        min_thresholds=(0.0, 0.02),
        noise_scales=(1.0,),
        far_count=20,
        probe_instances=6,
        max_rounds=100,
    )
    settings.update(overrides)
    return SearchSpace(**settings)


@pytest.fixture(scope="module")
def tiny_report() -> ExplorationReport:
    return Explorer(_tiny_space(), "grid").run()


class TestExplorer:
    def test_grid_exploration_covers_space(self, tiny_report):
        space = _tiny_space()
        assert len(tiny_report.rows) == space.size == 4
        assert tiny_report.errors == []
        assert tiny_report.stats["units_executed"] == 4
        coords = {(r["synthesizer"], r["min_threshold"]) for r in tiny_report.rows}
        assert len(coords) == 4

    def test_rows_carry_coordinates_outcome_and_metrics(self, tiny_report):
        row = tiny_report.summary_rows()[0]
        for field in ("case_study", "synthesizer", "backend", "detector", "horizon",
                      "noise_scale", "min_threshold", "far_budget", "status",
                      "false_alarm_rate", "feasible", "key"):
            assert field in row
        stepwise = [r for r in tiny_report.rows if r["synthesizer"] == "stepwise"]
        assert all(r.get("stealth_margin") is not None for r in stepwise)
        assert all(r.get("mean_detection_latency") is not None for r in stepwise)

    def test_store_round_trip_is_bit_identical_with_zero_executions(self, tmp_path):
        space = _tiny_space()
        cold = Explorer(space, "grid", store=tmp_path / "s").run()
        warm = Explorer(space, "grid", store=tmp_path / "s").run()
        assert cold.stats["units_executed"] == 4
        assert warm.stats["units_executed"] == 0
        assert warm.stats["store_hits"] == 4
        assert warm.summary_rows() == cold.summary_rows()

    def test_interrupted_exploration_resumes(self, tmp_path):
        """A partial store serves its points; only the remainder executes."""
        store = ResultStore(tmp_path / "s")
        partial = _tiny_space(synthesizers=("stepwise",))
        Explorer(partial, "grid", store=store).run()
        report = Explorer(_tiny_space(), "grid", store=store).run()
        assert report.stats["store_hits"] == 2
        assert report.stats["units_executed"] == 2
        assert len(report.rows) == 4

    def test_far_budget_fans_out_without_recomputation(self):
        space = _tiny_space(far_budgets=(0.05, 1.0))
        report = Explorer(space, "grid").run()
        assert len(report.rows) == 8          # one row per budgeted point
        assert report.stats["units"] == 4     # but only 4 computations
        tight = [r for r in report.rows if r["far_budget"] == 0.05]
        loose = [r for r in report.rows if r["far_budget"] == 1.0]
        assert all(r["feasible"] for r in loose if r["error"] is None)
        infeasible = [r for r in tight if not r["feasible"]]
        assert infeasible, "expected some points to blow the tight FAR budget"
        front_budgets = {r["far_budget"] for r in report.front()}
        assert front_budgets  # infeasible rows never enter the front

    def test_max_points_truncates(self):
        report = Explorer(_tiny_space(), "grid", max_points=2).run()
        assert len(report.rows) == 2
        assert report.stats["truncated"] is True

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValidationError, match="sampler"):
            Explorer(_tiny_space(), "no-such-sampler")

    def test_sampler_receives_run_objectives(self):
        """Metric-aware samplers must refine over the front's objectives."""
        from repro.explore import GridSampler
        from repro.registry import SAMPLERS, register_sampler

        captured = {}

        @register_sampler("test-capture-objectives")
        class CaptureSampler(GridSampler):
            def __init__(self, objectives=None):
                captured["objectives"] = objectives

        try:
            explorer = Explorer(
                _tiny_space(), "test-capture-objectives",
                objectives=("false_alarm_rate", "detection_rate"),
            )
            explorer._build_sampler()
            assert captured["objectives"] == ("false_alarm_rate", "detection_rate")
            # Explicit sampler options still win over the run default.
            Explorer(
                _tiny_space(), "test-capture-objectives",
                sampler_options={"objectives": ("rounds",)},
            )._build_sampler()
            assert captured["objectives"] == ("rounds",)
        finally:
            SAMPLERS.unregister("test-capture-objectives")

    def test_report_json_round_trip(self, tiny_report):
        rebuilt = ExplorationReport.from_json(tiny_report.to_json())
        assert rebuilt.summary_rows() == tiny_report.summary_rows()
        assert rebuilt.front() == tiny_report.front()
        assert rebuilt.stats == tiny_report.stats

    def test_sensitivity_and_best(self, tiny_report):
        summary = tiny_report.sensitivity("min_threshold")
        assert set(summary) == {0.0, 0.02}
        assert all(entry["count"] == 2 for entry in summary.values())
        best = tiny_report.best("false_alarm_rate")
        assert best is not None
        assert best["false_alarm_rate"] == min(
            r["false_alarm_rate"]
            for r in tiny_report.rows
            if r.get("false_alarm_rate") is not None
        )


class TestExploreConfig:
    def test_json_round_trip(self, tmp_path):
        config = ExploreConfig(
            space=_tiny_space(),
            sampler="adaptive-bisection",
            sampler_options={"tolerance": 0.05},
            store_path=str(tmp_path / "s"),
            max_points=100,
            name="cfg-test",
        )
        assert ExploreConfig.from_json(config.to_json()) == config

    def test_run_exploration_accepts_config_and_dict(self, tmp_path):
        config = ExploreConfig(
            space=_tiny_space(synthesizers=("static",), probe_instances=0, far_count=10),
            store_path=str(tmp_path / "s"),
        )
        first = run_exploration(config)
        again = run_exploration(config.to_dict())
        assert len(first.rows) == len(again.rows) == 2
        assert again.stats["store_hits"] == 2

    def test_validation(self):
        with pytest.raises(ValidationError, match="sampler"):
            ExploreConfig(space=_tiny_space(), sampler="bogus")
        with pytest.raises(ValidationError, match="max_points"):
            ExploreConfig(space=_tiny_space(), max_points=0)


class TestPareto:
    def test_dominates(self):
        assert dominates((0.1, 1.0), (0.2, 1.0))
        assert not dominates((0.2, 1.0), (0.1, 1.0))
        assert not dominates((0.1, 1.0), (0.1, 1.0))

    def test_front_extraction_and_feasibility(self):
        rows = [
            {"false_alarm_rate": 0.5, "stealth_margin": 0.1, "error": None},
            {"false_alarm_rate": 0.1, "stealth_margin": 0.5, "error": None},
            {"false_alarm_rate": 0.5, "stealth_margin": 0.5, "error": None},  # dominated
            {"false_alarm_rate": 0.0, "stealth_margin": 0.0, "error": "boom"},
            {"false_alarm_rate": 0.0, "stealth_margin": 0.0, "error": None, "feasible": False},
        ]
        front = pareto_front(rows, objectives=("false_alarm_rate", "stealth_margin"))
        assert front == rows[:2]

    def test_missing_objective_is_worst_case(self):
        rows = [
            {"false_alarm_rate": 0.2, "stealth_margin": 0.3, "error": None},
            {"false_alarm_rate": 0.1, "stealth_margin": None, "error": None},
        ]
        front = pareto_front(rows, objectives=("false_alarm_rate", "stealth_margin"))
        assert front == rows  # the None row survives through its lower FAR

    def test_sensitivity_groups(self):
        rows = [
            {"noise_scale": 0.5, "false_alarm_rate": 0.0, "error": None},
            {"noise_scale": 0.5, "false_alarm_rate": 0.2, "error": None},
            {"noise_scale": 1.0, "false_alarm_rate": 0.4, "error": None},
        ]
        summary = sensitivity(rows, "noise_scale", objectives=("false_alarm_rate",))
        assert summary[0.5]["count"] == 2
        assert summary[0.5]["false_alarm_rate"]["mean"] == pytest.approx(0.1)
        assert summary[1.0]["false_alarm_rate"]["max"] == 0.4
