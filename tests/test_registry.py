"""Tests for the shared plugin registries (repro.registry)."""

import pytest

import repro
from repro.falsification.base import AttackBackend
from repro.falsification.lp_backend import LPAttackBackend
from repro.falsification.registry import get_backend
from repro.registry import (
    ATTACK_TEMPLATES,
    BACKENDS,
    CASE_STUDIES,
    DETECTORS,
    NOISE_MODELS,
    SYNTHESIZERS,
    Registry,
    RegistryError,
    available_attack_templates,
    available_backends,
    available_case_studies,
    available_detectors,
    available_noise_models,
    available_synthesizers,
    get_registry,
    register,
)
from repro.utils.validation import ValidationError


class TestBuiltinRegistrations:
    def test_all_six_registries_resolve_the_builtin_names(self):
        assert set(available_backends()) == {"lp", "smt", "optimizer"}
        assert set(available_synthesizers()) == {"pivot", "stepwise", "static"}
        assert set(available_detectors()) == {
            "residue",
            "chi-square",
            "cusum",
            "online-residue",
            "online-chi-square",
            "online-cusum",
        }
        assert set(available_noise_models()) == {
            "zero",
            "gaussian",
            "bounded-uniform",
            "truncated-gaussian",
        }
        assert set(available_case_studies()) == {
            "vsc",
            "trajectory",
            "dcmotor",
            "quadtank",
            "cruise",
            "pendulum",
        }
        assert set(available_attack_templates()) == {
            "none",
            "bias",
            "ramp",
            "surge",
            "geometric",
            "replay",
        }

    def test_resolved_objects_are_the_public_classes(self):
        assert BACKENDS.get("lp") is LPAttackBackend
        assert SYNTHESIZERS.get("pivot") is repro.PivotThresholdSynthesizer
        assert SYNTHESIZERS.get("stepwise") is repro.StepwiseThresholdSynthesizer
        assert SYNTHESIZERS.get("static") is repro.StaticThresholdSynthesizer
        assert DETECTORS.get("cusum") is repro.CusumDetector
        assert DETECTORS.get("online-cusum") is repro.OnlineCusum
        assert DETECTORS.get("online-residue") is repro.OnlineResidueDetector
        assert CASE_STUDIES.get("vsc") is repro.build_vsc_case_study

    def test_classical_baselines_listed_and_constructible(self):
        # The classical baseline detectors are first-class registry citizens:
        # available_detectors() lists them and create() builds working instances.
        assert {"cusum", "chi-square"} <= set(available_detectors())
        cusum = DETECTORS.create("cusum", bias=0.1, threshold=1.0)
        assert cusum.detects([[5.0], [5.0], [5.0], [5.0], [5.0], [5.0], [5.0], [5.0]])
        import numpy as np

        chi = DETECTORS.create("chi-square", innovation_cov=np.eye(2), threshold=9.0)
        assert not chi.detects(np.zeros((4, 2)))

    def test_unknown_detector_error_lists_every_registered_name(self):
        with pytest.raises(RegistryError) as excinfo:
            DETECTORS.get("sprt")
        message = str(excinfo.value)
        for name in (
            "residue",
            "chi-square",
            "cusum",
            "online-residue",
            "online-chi-square",
            "online-cusum",
        ):
            assert name in message
        # The message stays dynamic: a user registration shows up immediately.
        DETECTORS.register("test-sprt", object)
        try:
            with pytest.raises(RegistryError, match="test-sprt"):
                DETECTORS.get("sprt")
        finally:
            DETECTORS.unregister("test-sprt")
        with pytest.raises(RegistryError) as excinfo:
            DETECTORS.get("sprt")
        assert "test-sprt" not in str(excinfo.value)

    def test_unknown_attack_template_error_lists_available(self):
        with pytest.raises(RegistryError) as excinfo:
            ATTACK_TEMPLATES.get("square-wave")
        message = str(excinfo.value)
        for name in ("bias", "ramp", "surge", "geometric", "replay", "none"):
            assert name in message

    def test_attack_template_create(self):
        template = ATTACK_TEMPLATES.create("bias", bias=0.5, start=3)
        attack = template.generate(10, 2)
        assert attack.values.shape == (10, 2)
        assert attack.support().min() == 3
        assert repro.get_attack_template("none").generate(4, 1).is_zero()

    def test_create_forwards_kwargs(self):
        case = CASE_STUDIES.create("dcmotor", horizon=12)
        assert case.problem.horizon == 12
        noise = NOISE_MODELS.create("bounded-uniform", bounds=[0.1, 0.2])
        assert noise.dimension == 2

    def test_factory_conveniences(self):
        assert repro.get_case_study("trajectory").name
        assert repro.get_noise_model("zero", size=3).dimension == 3
        synthesizer = repro.get_synthesizer("pivot", max_rounds=7)
        assert synthesizer.max_rounds == 7

    def test_introspection_exported_from_top_level(self):
        assert repro.available_backends() == available_backends()
        assert repro.available_case_studies() == available_case_studies()


class TestRegistryMechanics:
    def test_unknown_name_error_lists_available(self):
        with pytest.raises(RegistryError) as excinfo:
            BACKENDS.get("z3")
        message = str(excinfo.value)
        assert "lp" in message and "smt" in message and "optimizer" in message

    def test_registry_error_is_a_validation_error(self):
        assert issubclass(RegistryError, ValidationError)

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("a", int)
        with pytest.raises(RegistryError):
            registry.register("a", float)
        # Same object again is an idempotent no-op; overwrite replaces.
        registry.register("a", int)
        registry.register("a", float, overwrite=True)
        assert registry.get("a") is float

    def test_register_as_decorator(self):
        registry = Registry("widget")

        @registry.register("thing")
        class Thing:
            pass

        assert registry.get("thing") is Thing
        assert "thing" in registry
        assert list(registry) == ["thing"]
        assert len(registry) == 1

    def test_invalid_names_rejected(self):
        registry = Registry("widget")
        with pytest.raises(RegistryError):
            registry.register("", int)
        with pytest.raises(RegistryError):
            registry.register(3, int)

    def test_unregister(self):
        registry = Registry("widget")
        registry.register("a", int)
        assert registry.unregister("a") is int
        with pytest.raises(RegistryError):
            registry.unregister("a")

    def test_get_registry_and_generic_register(self):
        assert get_registry("backend") is BACKENDS
        assert get_registry("case_study") is CASE_STUDIES
        with pytest.raises(RegistryError):
            get_registry("widgets")

        class Dummy:
            pass

        register("detector", "test-dummy-detector", Dummy)
        try:
            assert DETECTORS.get("test-dummy-detector") is Dummy
        finally:
            DETECTORS.unregister("test-dummy-detector")


class TestBackendResolution:
    def test_instance_passthrough(self):
        backend = get_backend("lp")
        assert isinstance(backend, LPAttackBackend)
        assert get_backend(backend) is backend

    def test_user_registered_backend_resolves_everywhere(self, dcmotor_problem):
        class EchoBackend(AttackBackend):
            def solve(self, encoding, time_budget=None):  # pragma: no cover
                raise NotImplementedError

        BACKENDS.register("test-echo", EchoBackend)
        try:
            assert "test-echo" in available_backends()
            assert isinstance(get_backend("test-echo"), EchoBackend)
            # The dynamic error message now includes the new name too.
            with pytest.raises(RegistryError, match="test-echo"):
                get_backend("nope")
        finally:
            BACKENDS.unregister("test-echo")
        assert "test-echo" not in available_backends()
