"""Unit tests for the closed-loop simulation engine."""

import numpy as np
import pytest

from repro.lti.simulate import (
    ClosedLoopSystem,
    SimulationOptions,
    simulate_closed_loop,
)
from repro.utils.validation import ValidationError


class TestClosedLoopSystem:
    def test_gain_shapes_validated(self, double_integrator):
        with pytest.raises(ValidationError):
            ClosedLoopSystem(plant=double_integrator, K=np.zeros((2, 2)), L=np.zeros((2, 1)))
        with pytest.raises(ValidationError):
            ClosedLoopSystem(plant=double_integrator, K=np.zeros((1, 2)), L=np.zeros((1, 1)))

    def test_requires_discrete_plant(self, double_integrator_continuous):
        with pytest.raises(ValidationError):
            ClosedLoopSystem(
                plant=double_integrator_continuous, K=np.zeros((1, 2)), L=np.zeros((2, 1))
            )

    def test_control_law(self, simple_closed_loop):
        xhat = np.array([1.0, 2.0])
        expected = -simple_closed_loop.K @ xhat
        np.testing.assert_allclose(simple_closed_loop.control(xhat), expected)

    def test_closed_loop_matrix_stable(self, simple_closed_loop):
        eigenvalues = np.linalg.eigvals(simple_closed_loop.closed_loop_matrix())
        assert np.all(np.abs(eigenvalues) < 1.0)

    def test_estimator_matrix_stable(self, simple_closed_loop):
        eigenvalues = np.linalg.eigvals(simple_closed_loop.estimator_matrix())
        assert np.all(np.abs(eigenvalues) < 1.0)


class TestSimulation:
    def test_trace_shapes(self, simple_closed_loop):
        trace = simulate_closed_loop(simple_closed_loop, SimulationOptions(horizon=20))
        assert trace.states.shape == (21, 2)
        assert trace.estimates.shape == (21, 2)
        assert trace.inputs.shape == (21, 1)
        assert trace.residues.shape == (20, 1)
        assert trace.measurements.shape == (20, 1)
        assert trace.horizon == 20

    def test_regulation_decays_to_origin(self, simple_closed_loop):
        options = SimulationOptions(horizon=100, x0=[1.0, 0.0])
        trace = simulate_closed_loop(simple_closed_loop, options)
        assert np.linalg.norm(trace.final_state()) < 1e-2

    def test_noiseless_run_is_deterministic(self, simple_closed_loop):
        options = SimulationOptions(horizon=30, x0=[1.0, -1.0])
        a = simulate_closed_loop(simple_closed_loop, options)
        b = simulate_closed_loop(simple_closed_loop, options)
        np.testing.assert_allclose(a.states, b.states)

    def test_seeded_noise_is_reproducible(self, simple_closed_loop):
        options = SimulationOptions(horizon=30, with_noise=True, seed=5)
        a = simulate_closed_loop(simple_closed_loop, options)
        b = simulate_closed_loop(simple_closed_loop, options)
        np.testing.assert_allclose(a.states, b.states)
        np.testing.assert_allclose(a.measurement_noise, b.measurement_noise)

    def test_different_seeds_differ(self, simple_closed_loop):
        a = simulate_closed_loop(simple_closed_loop, SimulationOptions(horizon=30, with_noise=True, seed=1))
        b = simulate_closed_loop(simple_closed_loop, SimulationOptions(horizon=30, with_noise=True, seed=2))
        assert not np.allclose(a.measurement_noise, b.measurement_noise)

    def test_explicit_noise_overrides_random(self, simple_closed_loop):
        noise = np.full((10, 1), 0.5)
        trace = simulate_closed_loop(
            simple_closed_loop,
            SimulationOptions(horizon=10, with_noise=False),
            measurement_noise=noise,
        )
        np.testing.assert_allclose(trace.measurement_noise, noise)
        # The first measurement equals C x0 + noise since u0 = 0 and x0 = 0.
        assert trace.measurements[0, 0] == pytest.approx(0.5)

    def test_attack_is_recorded_and_applied(self, simple_closed_loop):
        attack = np.zeros((10, 1))
        attack[3, 0] = 1.0
        trace = simulate_closed_loop(
            simple_closed_loop, SimulationOptions(horizon=10), attack=attack
        )
        np.testing.assert_allclose(trace.attacks, attack)
        assert trace.is_attacked()
        # The attacked measurement differs from the true output exactly by the attack.
        np.testing.assert_allclose(trace.measurements - trace.true_outputs, attack)

    def test_attack_changes_trajectory(self, simple_closed_loop):
        clean = simulate_closed_loop(simple_closed_loop, SimulationOptions(horizon=20, x0=[1.0, 0.0]))
        attack = np.full((20, 1), 0.2)
        attacked = simulate_closed_loop(
            simple_closed_loop, SimulationOptions(horizon=20, x0=[1.0, 0.0]), attack=attack
        )
        assert not np.allclose(clean.states, attacked.states)

    def test_residue_definition(self, simple_closed_loop):
        """The residue equals measurement minus predicted output from the estimate."""
        trace = simulate_closed_loop(
            simple_closed_loop, SimulationOptions(horizon=15, with_noise=True, seed=0, x0=[0.3, 0.0])
        )
        plant = simple_closed_loop.plant
        for k in range(trace.horizon):
            predicted = plant.C @ trace.estimates[k] + plant.D @ trace.inputs[k]
            np.testing.assert_allclose(trace.residues[k], trace.measurements[k] - predicted, atol=1e-12)

    def test_wrong_shape_rejected(self, simple_closed_loop):
        with pytest.raises(ValidationError):
            simulate_closed_loop(
                simple_closed_loop, SimulationOptions(horizon=10), attack=np.zeros((5, 1))
            )
        with pytest.raises(ValidationError):
            simulate_closed_loop(
                simple_closed_loop,
                SimulationOptions(horizon=10),
                process_noise=np.zeros((10, 1)),
            )

    def test_bad_horizon(self):
        with pytest.raises(ValidationError):
            SimulationOptions(horizon=0)


class TestTraceHelpers:
    def test_residue_norms(self, simple_closed_loop):
        trace = simulate_closed_loop(
            simple_closed_loop, SimulationOptions(horizon=10, x0=[1.0, 0.0])
        )
        norms_two = trace.residue_norms(2)
        norms_inf = trace.residue_norms("inf")
        assert norms_two.shape == (10,)
        np.testing.assert_allclose(norms_two, norms_inf)  # single output channel

    def test_state_deviation(self, simple_closed_loop):
        trace = simulate_closed_loop(simple_closed_loop, SimulationOptions(horizon=10, x0=[1.0, 0.0]))
        deviation = trace.state_deviation(np.zeros(2))
        assert deviation.shape == (10,)
        assert deviation[0] == pytest.approx(1.0)

    def test_times(self, simple_closed_loop):
        trace = simulate_closed_loop(simple_closed_loop, SimulationOptions(horizon=5))
        np.testing.assert_allclose(trace.times(), 0.1 * np.arange(1, 6))

    def test_output_trajectory(self, simple_closed_loop):
        trace = simulate_closed_loop(simple_closed_loop, SimulationOptions(horizon=5, x0=[1.0, 0.0]))
        assert trace.output_trajectory(0).shape == (5,)
