"""Tests for Algorithms 2 and 3 and the static baseline synthesizer."""

import numpy as np
import pytest

from repro.core.attack_synthesis import synthesize_attack
from repro.core.pivot import PivotThresholdSynthesizer
from repro.core.static_synthesis import StaticThresholdSynthesizer, verify_no_attack
from repro.core.stepwise import StepwiseThresholdSynthesizer, min_area_rectangle
from repro.detectors.threshold import ThresholdVector
from repro.utils.results import SolveStatus
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def pivot_result(trajectory_problem):
    return PivotThresholdSynthesizer(backend="lp", max_rounds=200).synthesize(trajectory_problem)


@pytest.fixture(scope="module")
def stepwise_result(trajectory_problem):
    return StepwiseThresholdSynthesizer(backend="lp", max_rounds=200).synthesize(trajectory_problem)


@pytest.fixture(scope="module")
def static_result(trajectory_problem):
    return StaticThresholdSynthesizer(backend="lp").synthesize(trajectory_problem)


class TestPivotSynthesis:
    def test_converges(self, pivot_result):
        assert pivot_result.converged
        assert pivot_result.status is SolveStatus.UNSAT
        assert pivot_result.vulnerable_without_detector

    def test_threshold_blocks_all_attacks(self, trajectory_problem, pivot_result):
        assert verify_no_attack(trajectory_problem, pivot_result.threshold, backend="lp")

    def test_monotone_decreasing(self, pivot_result):
        assert pivot_result.threshold.is_monotone_decreasing()

    def test_history_recorded(self, pivot_result):
        assert len(pivot_result.history) >= 1
        assert pivot_result.rounds >= len(pivot_result.history)

    def test_invalid_pivot_rule(self):
        with pytest.raises(ValidationError):
            PivotThresholdSynthesizer(pivot_rule="bogus")

    def test_ablation_pivot_rule_also_converges(self, trajectory_problem):
        result = PivotThresholdSynthesizer(
            backend="lp", max_rounds=200, pivot_rule="first-violation"
        ).synthesize(trajectory_problem)
        assert result.converged

    def test_secure_problem_needs_no_threshold(self, dcmotor_problem):
        """With a tiny attack bound the monitors alone stop every attack."""
        import dataclasses

        secure = dataclasses.replace(dcmotor_problem, attack_bound=1e-6)
        result = PivotThresholdSynthesizer(backend="lp").synthesize(secure)
        assert not result.vulnerable_without_detector
        assert result.converged
        assert result.threshold.set_indices().size == 0


class TestStepwiseSynthesis:
    def test_converges(self, stepwise_result):
        assert stepwise_result.converged

    def test_threshold_blocks_all_attacks(self, trajectory_problem, stepwise_result):
        assert verify_no_attack(trajectory_problem, stepwise_result.threshold, backend="lp")

    def test_staircase_structure(self, stepwise_result):
        threshold = stepwise_result.threshold
        assert threshold.is_fully_set
        assert threshold.is_monotone_decreasing()

    def test_faster_than_pivot(self, pivot_result, stepwise_result):
        """The paper's headline scheduling result: Algorithm 3 needs fewer rounds."""
        assert stepwise_result.rounds <= pivot_result.rounds

    def test_fixed_width_ablation_converges(self, trajectory_problem):
        result = StepwiseThresholdSynthesizer(
            backend="lp", max_rounds=300, step_rule="fixed-width"
        ).synthesize(trajectory_problem)
        assert result.converged


class TestMinAreaRectangle:
    def test_picks_cheapest_cut(self):
        threshold = ThresholdVector(np.array([5.0, 3.0, 1.0]))
        norms = np.array([4.0, 1.5, 0.2])
        # Cutting at index 0 removes 1+1.5+0.8, at index 1 removes 1.5+0,
        # at index 2 removes 0.8 -> index 2 is the cheapest.
        assert min_area_rectangle(norms, threshold) == 2

    def test_respects_floor(self):
        threshold = ThresholdVector(np.array([5.0, 1.0]))
        norms = np.array([4.0, 0.0])
        assert min_area_rectangle(norms, threshold, floor=2.0) == 0

    def test_none_when_no_candidate(self):
        threshold = ThresholdVector(np.array([1.0, 1.0]))
        norms = np.array([2.0, 3.0])
        assert min_area_rectangle(norms, threshold) is None

    def test_ignores_unset_entries(self):
        threshold = ThresholdVector(np.array([np.inf, 2.0]))
        norms = np.array([5.0, 1.0])
        assert min_area_rectangle(norms, threshold) == 1


class TestStaticSynthesis:
    def test_converges_and_blocks(self, trajectory_problem, static_result):
        assert static_result.converged
        assert static_result.threshold.is_static
        assert verify_no_attack(trajectory_problem, static_result.threshold, backend="lp")

    def test_value_is_maximal_up_to_tolerance(self, trajectory_problem, static_result):
        """A slightly larger static threshold must admit an attack again."""
        value = static_result.threshold.values[0]
        synthesizer = StaticThresholdSynthesizer(backend="lp")
        larger = trajectory_problem.static_threshold(value + 10 * synthesizer.tolerance)
        result = synthesize_attack(trajectory_problem, threshold=larger, backend="lp")
        assert result.found

    def test_static_is_below_variable_maxima(self, static_result, pivot_result):
        """The safe static value cannot exceed the largest variable threshold."""
        finite = pivot_result.threshold.values[np.isfinite(pivot_result.threshold.values)]
        assert static_result.threshold.values[0] <= np.max(finite) + 1e-6

    def test_tolerance_validation(self):
        with pytest.raises(ValidationError):
            StaticThresholdSynthesizer(tolerance=0.0)
