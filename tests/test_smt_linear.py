"""Unit and property-based tests for linear expressions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.linear import LinearExpr, RealVar
from repro.utils.validation import ValidationError


class TestConstruction:
    def test_from_constant(self):
        expr = LinearExpr.from_constant(3.0)
        assert expr.is_constant
        assert expr.evaluate({}) == 3.0

    def test_from_variable(self):
        expr = LinearExpr.from_variable("x", 2.0)
        assert expr.coefficient("x") == 2.0
        assert expr.variables() == {"x"}

    def test_coerce(self):
        assert LinearExpr.coerce(5).constant == 5.0
        assert LinearExpr.coerce(RealVar("y")).coefficient("y") == 1.0
        expr = LinearExpr.from_variable("x")
        assert LinearExpr.coerce(expr) is expr
        with pytest.raises(ValidationError):
            LinearExpr.coerce("not a number")

    def test_tiny_coefficients_dropped(self):
        expr = LinearExpr({"x": 1e-20})
        assert expr.is_constant


class TestArithmetic:
    def test_addition_merges_terms(self):
        x, y = RealVar("x"), RealVar("y")
        expr = x + 2 * y + 3 + x
        assert expr.coefficient("x") == 2.0
        assert expr.coefficient("y") == 2.0
        assert expr.constant == 3.0

    def test_subtraction_and_negation(self):
        x = RealVar("x")
        expr = 5 - 2 * x
        assert expr.coefficient("x") == -2.0
        assert expr.constant == 5.0
        assert (-expr).constant == -5.0

    def test_scalar_multiplication_and_division(self):
        x = RealVar("x")
        expr = (3 * x + 6) / 3
        assert expr.coefficient("x") == pytest.approx(1.0)
        assert expr.constant == pytest.approx(2.0)

    def test_nonlinear_rejected(self):
        x = RealVar("x")
        with pytest.raises(ValidationError):
            _ = x.to_linear() * x.to_linear()
        with pytest.raises(ValidationError):
            _ = x.to_linear() / 0

    def test_evaluate_missing_variable(self):
        expr = LinearExpr.from_variable("x")
        with pytest.raises(ValidationError):
            expr.evaluate({})

    def test_cancellation_removes_variable(self):
        x = RealVar("x")
        expr = x - x
        assert expr.is_constant


@st.composite
def linear_exprs(draw):
    names = ["a", "b", "c"]
    coefficients = {
        name: draw(st.floats(min_value=-10, max_value=10, allow_nan=False))
        for name in draw(st.sets(st.sampled_from(names), max_size=3))
    }
    constant = draw(st.floats(min_value=-10, max_value=10, allow_nan=False))
    return LinearExpr(coefficients, constant)


_ASSIGNMENT = {"a": 1.7, "b": -0.3, "c": 2.5}


class TestAlgebraicProperties:
    @settings(max_examples=100, deadline=None)
    @given(linear_exprs(), linear_exprs())
    def test_addition_commutes(self, left, right):
        lhs = (left + right).evaluate(_ASSIGNMENT)
        rhs = (right + left).evaluate(_ASSIGNMENT)
        assert lhs == pytest.approx(rhs, abs=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(linear_exprs(), linear_exprs(), linear_exprs())
    def test_addition_associates(self, a, b, c):
        lhs = ((a + b) + c).evaluate(_ASSIGNMENT)
        rhs = (a + (b + c)).evaluate(_ASSIGNMENT)
        assert lhs == pytest.approx(rhs, abs=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(linear_exprs(), st.floats(min_value=-5, max_value=5, allow_nan=False))
    def test_scaling_distributes(self, expr, factor):
        lhs = (expr * factor).evaluate(_ASSIGNMENT)
        rhs = factor * expr.evaluate(_ASSIGNMENT)
        assert lhs == pytest.approx(rhs, abs=1e-7)

    @settings(max_examples=100, deadline=None)
    @given(linear_exprs())
    def test_subtracting_self_is_zero(self, expr):
        assert (expr - expr).evaluate(_ASSIGNMENT) == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(linear_exprs())
    def test_canonical_key_is_stable(self, expr):
        assert expr.canonical_key() == LinearExpr(dict(expr.coefficients), expr.constant).canonical_key()
