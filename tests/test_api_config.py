"""Tests for the declarative configs and run_pipeline (repro.api)."""

import json

import pytest

from repro.api import ExperimentSpec, FARConfig, PipelineReport, SynthesisConfig, run_pipeline
from repro.core.pipeline import SynthesisPipeline
from repro.core.static_synthesis import StaticThresholdSynthesizer
from repro.falsification.lp_backend import LPAttackBackend
from repro.noise.models import BoundedUniformNoise
from repro.utils.validation import ValidationError


class TestSynthesisConfig:
    def test_round_trips_through_dict_and_json(self):
        config = SynthesisConfig(
            algorithms=("pivot", "static"),
            backend="smt",
            max_rounds=33,
            min_threshold=0.01,
            backend_options={"margin_mode": "none"},
            algorithm_options={"pivot": {"pivot_rule": "first-violation"}},
        )
        assert SynthesisConfig.from_dict(config.to_dict()) == config
        assert SynthesisConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config

    def test_list_input_normalised_to_tuple(self):
        config = SynthesisConfig(algorithms=["static"])
        assert config.algorithms == ("static",)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValidationError, match="pivot"):
            SynthesisConfig(algorithms=("magic",))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="lp"):
            SynthesisConfig(backend="z3")

    def test_unknown_dict_field_rejected(self):
        with pytest.raises(ValidationError, match="bakend"):
            SynthesisConfig.from_dict({"bakend": "lp"})

    def test_build_synthesizer_filters_unsupported_kwargs(self):
        config = SynthesisConfig(min_threshold=0.5, max_rounds=44)
        static = config.build_synthesizer("static")
        assert isinstance(static, StaticThresholdSynthesizer)
        assert static.max_rounds == 44  # static has no min_threshold knob
        pivot = config.build_synthesizer("pivot")
        assert pivot.min_threshold == 0.5
        assert pivot.max_rounds == 44

    def test_build_synthesizer_applies_per_algorithm_options(self):
        config = SynthesisConfig(algorithm_options={"pivot": {"pivot_rule": "first-violation"}})
        assert config.build_synthesizer("pivot").pivot_rule == "first-violation"

    def test_misspelled_algorithm_option_fails_loudly(self):
        config = SynthesisConfig(algorithm_options={"pivot": {"pivot_rul": "x"}})
        with pytest.raises(TypeError, match="pivot_rul"):
            config.build_synthesizer("pivot")

    def test_options_for_unselected_algorithm_rejected(self):
        with pytest.raises(ValidationError, match="static"):
            SynthesisConfig(algorithms=("pivot",), algorithm_options={"static": {}})

    def test_build_backend_uses_options(self):
        config = SynthesisConfig(backend="lp", backend_options={"margin_mode": "none"})
        backend = config.build_backend()
        assert isinstance(backend, LPAttackBackend)
        assert backend.margin_mode == "none"


class TestFARConfig:
    def test_round_trips_through_dict(self):
        config = FARConfig(
            count=77,
            seed=5,
            noise_model="bounded-uniform",
            noise_options={"bounds": [0.1, 0.2]},
            initial_state_spread=[0.05, 0.0],
            filter_mdc=False,
        )
        assert FARConfig.from_dict(config.to_dict()) == config

    def test_unknown_noise_model_rejected(self):
        with pytest.raises(ValidationError, match="gaussian"):
            FARConfig(noise_model="pink")

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            FARConfig(count=-1)

    def test_build_evaluator_resolves_registry_noise_model(self, trajectory_problem):
        config = FARConfig(
            count=10, noise_model="bounded-uniform", noise_options={"bounds": [0.01]}
        )
        evaluator = config.build_evaluator(trajectory_problem)
        assert isinstance(evaluator.noise_model, BoundedUniformNoise)
        assert evaluator.count == 10

    def test_build_evaluator_instance_override_wins(self, trajectory_problem):
        override = BoundedUniformNoise(bounds=[0.02])
        config = FARConfig(count=5, noise_model="zero", noise_options={"size": 1})
        evaluator = config.build_evaluator(trajectory_problem, noise_model=override)
        assert evaluator.noise_model is override


class TestRunPipeline:
    def test_full_run_on_trajectory(self, trajectory_problem):
        report = run_pipeline(
            trajectory_problem,
            SynthesisConfig(min_threshold=0.005),
            FARConfig(count=50),
        )
        assert isinstance(report, PipelineReport)
        assert report.is_vulnerable
        assert set(report.synthesis) == {"pivot", "stepwise", "static"}
        assert report.far_study is not None
        rows = report.summary_rows()
        assert [row["algorithm"] for row in rows] == ["pivot", "static", "stepwise"]
        assert all("false_alarm_rate" in row for row in rows)

    def test_far_skipped_without_config(self, trajectory_problem):
        report = run_pipeline(trajectory_problem, SynthesisConfig(algorithms=("static",)))
        assert report.far_study is None

    def test_backend_instance_override(self, trajectory_problem):
        backend = LPAttackBackend()
        report = run_pipeline(
            trajectory_problem,
            SynthesisConfig(algorithms=("static",), backend="smt"),
            backend=backend,
        )
        # The LP instance was used (an SMT run on this problem also works but
        # the shared-instance path must not rebuild from the config name).
        assert report.synthesis["static"].converged


class TestSynthesisPipelineCompatShim:
    def test_old_constructor_still_runs(self, trajectory_problem):
        with pytest.warns(DeprecationWarning):
            pipeline = SynthesisPipeline(
                problem=trajectory_problem,
                algorithms=("pivot", "static"),
                far_count=30,
                min_threshold=0.005,
            )
        report = pipeline.run()
        assert report.is_vulnerable
        assert set(report.synthesis) == {"pivot", "static"}
        assert report.far_study is not None

    def test_old_constructor_rejects_unknown_algorithm(self, trajectory_problem):
        with pytest.warns(DeprecationWarning), pytest.raises(ValidationError):
            SynthesisPipeline(problem=trajectory_problem, algorithms=("magic",))

    def test_to_configs_translation(self, trajectory_problem):
        with pytest.warns(DeprecationWarning):
            pipeline = SynthesisPipeline(
                problem=trajectory_problem,
                algorithms=("static",),
                far_count=40,
                seed=7,
                max_rounds=20,
                far_initial_state_spread=[0.05, 0.0],
            )
        synthesis, far = pipeline.to_configs()
        assert synthesis.algorithms == ("static",)
        assert synthesis.max_rounds == 20
        assert far == FARConfig(count=40, seed=7, initial_state_spread=[0.05, 0.0])

    def test_far_disabled_maps_to_no_config(self, trajectory_problem):
        with pytest.warns(DeprecationWarning):
            pipeline = SynthesisPipeline(problem=trajectory_problem, far_count=0)
        _, far = pipeline.to_configs()
        assert far is None


class TestExperimentSpec:
    def test_round_trips_through_json(self):
        spec = ExperimentSpec(
            name="sweep",
            case_studies=("dcmotor", "trajectory"),
            backends=("lp", "smt"),
            algorithms=("pivot", "static"),
            case_study_options={"dcmotor": {"horizon": 10}},
            min_threshold=0.01,
            far=FARConfig(count=25),
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_grid_expansion_covers_the_product_in_order(self):
        spec = ExperimentSpec(
            case_studies=("dcmotor", "trajectory"),
            backends=("lp", "smt"),
            algorithms=("pivot", "static"),
        )
        units = spec.expand()
        assert spec.size == len(units) == 8
        combos = [(u.case_study, u.backend, u.algorithm) for u in units]
        assert len(set(combos)) == 8
        assert combos[0] == ("dcmotor", "lp", "pivot")
        assert combos[-1] == ("trajectory", "smt", "static")
        # Per-case options only land on their own case study.
        spec.case_study_options["dcmotor"] = {"horizon": 9}
        units = spec.expand()
        assert all(
            (u.case_study_options == {"horizon": 9}) == (u.case_study == "dcmotor")
            for u in units
        )

    def test_unknown_names_rejected(self):
        with pytest.raises(ValidationError, match="vsc"):
            ExperimentSpec(case_studies=("warp-drive",))
        with pytest.raises(ValidationError):
            ExperimentSpec(backends=("z3",))
        with pytest.raises(ValidationError):
            ExperimentSpec(algorithms=("magic",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentSpec(case_studies=())

    def test_options_for_unswept_case_rejected(self):
        with pytest.raises(ValidationError, match="vsc"):
            ExperimentSpec(case_studies=("dcmotor",), case_study_options={"vsc": {}})

    def test_far_dict_coerced(self):
        spec = ExperimentSpec(far={"count": 10})
        assert spec.far == FARConfig(count=10)


class TestRuntimeConfigExport:
    def test_runtime_config_is_part_of_the_api_package(self):
        from repro.api import RuntimeConfig, run_fleet

        config = RuntimeConfig(n_instances=5, static_thresholds={"paper": 1.0})
        assert RuntimeConfig.from_json(config.to_json()) == config
        assert callable(run_fleet)
