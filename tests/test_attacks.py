"""Unit tests for attack models, templates and the injector."""

import numpy as np
import pytest

from repro.attacks.fdi import AttackChannelMask, FDIAttack
from repro.attacks.injector import AttackInjector
from repro.attacks.templates import (
    BiasAttack,
    GeometricAttack,
    NoAttack,
    RampAttack,
    ReplayAttack,
    SurgeAttack,
)
from repro.lti.simulate import SimulationOptions
from repro.utils.validation import ValidationError


class TestAttackChannelMask:
    def test_all_and_none(self):
        full = AttackChannelMask.all_channels(3)
        assert full.attackable == (0, 1, 2)
        assert full.protected == ()
        empty = AttackChannelMask.none(3)
        assert empty.attackable == ()
        assert empty.protected == (0, 1, 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            AttackChannelMask(n_outputs=2, attackable=(2,))

    def test_project_zeroes_protected(self):
        mask = AttackChannelMask(n_outputs=3, attackable=(1,))
        projected = mask.project(np.ones((4, 3)))
        np.testing.assert_allclose(projected[:, [0, 2]], 0.0)
        np.testing.assert_allclose(projected[:, 1], 1.0)

    def test_bool_array(self):
        mask = AttackChannelMask(n_outputs=3, attackable=(0, 2))
        np.testing.assert_array_equal(mask.as_bool_array(), [True, False, True])


class TestFDIAttack:
    def test_basic_properties(self):
        attack = FDIAttack(np.array([[1.0, 0.0], [0.0, -2.0]]))
        assert attack.horizon == 2
        assert attack.n_outputs == 2
        assert attack.peak() == 2.0
        assert not attack.is_zero()
        assert attack.magnitude("inf") == pytest.approx(3.0)

    def test_zeros_constructor(self):
        attack = FDIAttack.zeros(5, 2)
        assert attack.is_zero()
        assert attack.support().size == 0

    def test_mask_violation_rejected(self):
        mask = AttackChannelMask(n_outputs=2, attackable=(0,))
        with pytest.raises(ValidationError):
            FDIAttack(np.ones((3, 2)), mask=mask)

    def test_mask_respected_passes(self):
        mask = AttackChannelMask(n_outputs=2, attackable=(0,))
        values = np.zeros((3, 2))
        values[:, 0] = 1.0
        attack = FDIAttack(values, mask=mask)
        assert attack.support().size == 3

    def test_truncate_and_scale(self):
        attack = FDIAttack(np.arange(6, dtype=float).reshape(3, 2))
        truncated = attack.truncated(2)
        assert truncated.horizon == 2
        scaled = attack.scaled(2.0)
        assert scaled.peak() == pytest.approx(2 * attack.peak())
        with pytest.raises(ValidationError):
            attack.truncated(10)


class TestTemplates:
    def test_no_attack(self):
        assert NoAttack().generate(5, 2).is_zero()

    def test_bias_attack_start(self):
        attack = BiasAttack(bias=2.0, start=3).generate(6, 1)
        np.testing.assert_allclose(attack.values[:3, 0], 0.0)
        np.testing.assert_allclose(attack.values[3:, 0], 2.0)

    def test_ramp_attack_slope(self):
        attack = RampAttack(slope=0.5, start=1).generate(5, 1)
        np.testing.assert_allclose(attack.values[:, 0], [0.0, 0.0, 0.5, 1.0, 1.5])

    def test_surge_attack_profile(self):
        attack = SurgeAttack(surge_value=5.0, settle_value=0.5, surge_length=2).generate(4, 1)
        np.testing.assert_allclose(attack.values[:, 0], [5.0, 5.0, 0.5, 0.5])

    def test_geometric_attack_growth(self):
        attack = GeometricAttack(initial=1.0, ratio=2.0).generate(4, 1)
        np.testing.assert_allclose(attack.values[:, 0], [1.0, 2.0, 4.0, 8.0])

    def test_geometric_requires_positive_ratio(self):
        with pytest.raises(ValidationError):
            GeometricAttack(initial=1.0, ratio=0.0)

    def test_templates_respect_mask(self):
        mask = AttackChannelMask(n_outputs=2, attackable=(1,))
        attack = BiasAttack(bias=1.0, mask=mask).generate(3, 2)
        np.testing.assert_allclose(attack.values[:, 0], 0.0)
        np.testing.assert_allclose(attack.values[:, 1], 1.0)

    def test_template_mask_dimension_mismatch(self):
        mask = AttackChannelMask(n_outputs=3, attackable=(1,))
        with pytest.raises(ValidationError):
            BiasAttack(bias=1.0, mask=mask).generate(3, 2)

    def test_replay_materialize(self):
        recorded = np.array([[1.0], [2.0]])
        live = np.array([[5.0], [5.0], [5.0]])
        attack = ReplayAttack(recorded=recorded, start=1).materialize(live)
        # At samples 1 and 2 the measured value becomes the recording.
        np.testing.assert_allclose(live[1:3] + attack.values[1:3], recorded)
        np.testing.assert_allclose(attack.values[0], 0.0)


class TestInjector:
    def test_resolve_none(self, simple_closed_loop):
        injector = AttackInjector(simple_closed_loop)
        assert injector.resolve(None, 5).is_zero()

    def test_resolve_template(self, simple_closed_loop):
        injector = AttackInjector(simple_closed_loop)
        attack = injector.resolve(BiasAttack(bias=1.0), 5)
        assert attack.horizon == 5

    def test_resolve_pads_and_truncates(self, simple_closed_loop):
        injector = AttackInjector(simple_closed_loop)
        short = FDIAttack(np.ones((3, 1)))
        padded = injector.resolve(short, 6)
        assert padded.horizon == 6
        np.testing.assert_allclose(padded.values[3:], 0.0)
        longer = FDIAttack(np.ones((8, 1)))
        assert injector.resolve(longer, 6).horizon == 6

    def test_resolve_raw_array_shape_check(self, simple_closed_loop):
        injector = AttackInjector(simple_closed_loop)
        with pytest.raises(ValidationError):
            injector.resolve(np.ones((3, 2)), 3)

    def test_compare_shares_noise(self, simple_closed_loop):
        injector = AttackInjector(simple_closed_loop)
        options = SimulationOptions(horizon=10, with_noise=True, seed=3, x0=[0.5, 0.0])
        baseline, attacked = injector.compare(BiasAttack(bias=0.5), options)
        np.testing.assert_allclose(baseline.measurement_noise, attacked.measurement_noise)
        assert not np.allclose(baseline.states, attacked.states)
