"""Tests for the greedy threshold-relaxation post-pass."""

import numpy as np
import pytest

from repro.core.pivot import PivotThresholdSynthesizer
from repro.core.relaxation import ThresholdRelaxer
from repro.core.static_synthesis import verify_no_attack


@pytest.fixture(scope="module")
def safe_threshold(trajectory_problem):
    return PivotThresholdSynthesizer(backend="lp", max_rounds=200).synthesize(
        trajectory_problem
    ).threshold


class TestRelaxer:
    def test_relaxed_vector_is_pointwise_larger(self, trajectory_problem, safe_threshold):
        relaxer = ThresholdRelaxer(backend="lp")
        result = relaxer.relax(trajectory_problem, safe_threshold)
        assert result.certified
        before = safe_threshold.effective(trajectory_problem.horizon)
        after = result.threshold.effective(trajectory_problem.horizon)
        assert np.all(after >= before - 1e-12)

    def test_relaxed_vector_still_blocks_all_attacks(self, trajectory_problem, safe_threshold):
        relaxer = ThresholdRelaxer(backend="lp")
        result = relaxer.relax(trajectory_problem, safe_threshold)
        assert verify_no_attack(trajectory_problem, result.threshold, backend="lp")

    def test_monotonicity_preserved(self, trajectory_problem, safe_threshold):
        relaxer = ThresholdRelaxer(backend="lp")
        result = relaxer.relax(trajectory_problem, safe_threshold)
        assert result.threshold.is_monotone_decreasing()

    def test_unsafe_input_is_not_certified(self, trajectory_problem):
        relaxer = ThresholdRelaxer(backend="lp")
        loose = trajectory_problem.static_threshold(100.0)
        result = relaxer.relax(trajectory_problem, loose)
        assert not result.certified
        np.testing.assert_allclose(result.threshold.values, loose.values)

    def test_input_not_modified(self, trajectory_problem, safe_threshold):
        snapshot = safe_threshold.values.copy()
        ThresholdRelaxer(backend="lp").relax(trajectory_problem, safe_threshold)
        np.testing.assert_allclose(safe_threshold.values, snapshot)

    def test_history_records_decisions(self, trajectory_problem, safe_threshold):
        result = ThresholdRelaxer(backend="lp").relax(trajectory_problem, safe_threshold)
        assert result.rounds >= len(result.history)
        assert all("raise Th[" in record.action for record in result.history)

    def test_raise_cap(self, trajectory_problem, safe_threshold):
        capped = ThresholdRelaxer(backend="lp", raise_cap=0.05).relax(
            trajectory_problem, safe_threshold, verify_input=False
        )
        finite = capped.threshold.values[np.isfinite(capped.threshold.values)]
        original_finite = safe_threshold.values[np.isfinite(safe_threshold.values)]
        assert np.all(finite <= np.maximum(original_finite, 0.05) + 1e-12)
