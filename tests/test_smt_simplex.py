"""Unit and property-based tests for the general-simplex LRA solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.smt.linear import LinearExpr
from repro.smt.simplex import DeltaNumber, LinearConstraint, SimplexSolver


class TestDeltaNumber:
    def test_ordering_on_real_part(self):
        assert DeltaNumber(1.0).less_than(DeltaNumber(2.0))
        assert DeltaNumber(2.0).greater_than(DeltaNumber(1.0))

    def test_delta_breaks_ties(self):
        assert DeltaNumber(1.0, -1.0).less_than(DeltaNumber(1.0, 0.0))
        assert not DeltaNumber(1.0, 0.0).less_than(DeltaNumber(1.0, -1.0))

    def test_arithmetic(self):
        a = DeltaNumber(1.0, 1.0) + DeltaNumber(2.0, -0.5)
        assert a.real == 3.0 and a.delta == 0.5
        b = a.scale(2.0)
        assert b.real == 6.0 and b.delta == 1.0

    def test_concretise(self):
        assert DeltaNumber(1.0, -1.0).concretise(1e-3) == pytest.approx(0.999)

    def test_bound_constructors(self):
        assert DeltaNumber.of(2.0, strict_upper=True).delta == -1.0
        assert DeltaNumber.of(2.0, strict_lower=True).delta == 1.0
        assert DeltaNumber.of(2.0).delta == 0.0


class TestSimplexBasics:
    def test_empty_is_feasible(self):
        assert SimplexSolver().check().feasible

    def test_single_bound(self):
        solver = SimplexSolver()
        solver.add_expression(LinearExpr({"x": 1.0}, -5.0))  # x <= 5
        result = solver.check()
        assert result.feasible
        assert result.model["x"] <= 5.0 + 1e-9

    def test_contradictory_bounds(self):
        solver = SimplexSolver()
        solver.add_expression(LinearExpr({"x": 1.0}, -1.0))   # x <= 1
        solver.add_expression(LinearExpr({"x": -1.0}, 2.0))   # x >= 2
        result = solver.check()
        assert not result.feasible
        assert result.conflict

    def test_strict_inequality_feasible(self):
        solver = SimplexSolver()
        solver.add_expression(LinearExpr({"x": 1.0}, -1.0), strict=True)   # x < 1
        solver.add_expression(LinearExpr({"x": -1.0}, 0.999), strict=True)  # x > 0.999
        result = solver.check()
        assert result.feasible
        assert 0.999 < result.model["x"] < 1.0

    def test_strict_inequality_infeasible(self):
        solver = SimplexSolver()
        solver.add_expression(LinearExpr({"x": 1.0}, -1.0), strict=True)   # x < 1
        solver.add_expression(LinearExpr({"x": -1.0}, 1.0), strict=True)   # x > 1
        assert not solver.check().feasible

    def test_strict_vs_nonstrict_boundary(self):
        # x <= 1 and x >= 1 is feasible (x = 1); x < 1 and x >= 1 is not.
        solver = SimplexSolver()
        solver.add_expression(LinearExpr({"x": 1.0}, -1.0))
        solver.add_expression(LinearExpr({"x": -1.0}, 1.0))
        assert solver.check().feasible
        solver = SimplexSolver()
        solver.add_expression(LinearExpr({"x": 1.0}, -1.0), strict=True)
        solver.add_expression(LinearExpr({"x": -1.0}, 1.0))
        assert not solver.check().feasible

    def test_multivariable_system(self):
        solver = SimplexSolver()
        solver.add_expression(LinearExpr({"x": 1.0, "y": 1.0}, -4.0))    # x + y <= 4
        solver.add_expression(LinearExpr({"x": -1.0}, 1.0))               # x >= 1
        solver.add_expression(LinearExpr({"y": -1.0}, 2.0))               # y >= 2
        result = solver.check()
        assert result.feasible
        model = result.model
        assert model["x"] >= 1 - 1e-9 and model["y"] >= 2 - 1e-9
        assert model["x"] + model["y"] <= 4 + 1e-9

    def test_ground_constraints(self):
        solver = SimplexSolver()
        solver.add_expression(LinearExpr({}, -1.0))  # -1 <= 0 (true)
        assert solver.check().feasible
        solver.add_expression(LinearExpr({}, 1.0))   # 1 <= 0 (false)
        assert not solver.check().feasible

    def test_clear(self):
        solver = SimplexSolver()
        solver.add_expression(LinearExpr({"x": 1.0}, 1.0))
        solver.clear()
        assert solver.constraints == []

    def test_constraint_holds_helper(self):
        constraint = LinearConstraint(LinearExpr({"x": 1.0}, -1.0), strict=False)
        assert constraint.holds({"x": 0.5})
        assert not constraint.holds({"x": 2.0})
        assert constraint.margin({"x": 0.25}) == pytest.approx(0.75)


@st.composite
def random_lp(draw):
    n_vars = draw(st.integers(min_value=1, max_value=4))
    n_cons = draw(st.integers(min_value=1, max_value=8))
    elements = st.floats(min_value=-5, max_value=5, allow_nan=False)
    # Coefficients are rounded to a coarse grid so that feasibility never
    # hinges on sub-tolerance knife-edge values where HiGHS (which works with
    # feasibility tolerances) and the exact simplex legitimately disagree.
    A = np.array(
        [[round(draw(elements), 2) for _ in range(n_vars)] for _ in range(n_cons)]
    )
    b = np.array([round(draw(elements), 2) for _ in range(n_cons)])
    return A, b


class TestAgainstScipy:
    @settings(max_examples=60, deadline=None)
    @given(random_lp())
    def test_feasibility_matches_linprog(self, problem):
        A, b = problem
        n_cons, n_vars = A.shape
        solver = SimplexSolver()
        for i in range(n_cons):
            if np.max(np.abs(A[i])) < 1e-6:
                # Degenerate all-zero row: numerically ambiguous for both
                # solvers, so skip it (and relax it for the reference too).
                A[i] = 0.0
                b[i] = abs(b[i])
            coefficients = {f"v{j}": A[i, j] for j in range(n_vars) if abs(A[i, j]) > 1e-12}
            solver.add_expression(LinearExpr(coefficients, -float(b[i])))
        result = solver.check()
        reference = linprog(
            np.zeros(n_vars), A_ub=A, b_ub=b, bounds=[(None, None)] * n_vars, method="highs"
        )
        assert result.feasible == (reference.status == 0)
        if result.feasible:
            values = np.array([result.model.get(f"v{j}", 0.0) for j in range(n_vars)])
            assert np.all(A @ values - b <= 1e-6)
