"""Unit tests for Kalman filtering, Luenberger observers and innovation statistics."""

import numpy as np
import pytest

from repro.estimation.innovation import innovation_covariance, normalized_innovation_squared
from repro.estimation.kalman import (
    KalmanFilter,
    TimeVaryingKalmanFilter,
    kalman_gain,
    steady_state_kalman,
)
from repro.estimation.luenberger import LuenbergerObserver, luenberger_gain
from repro.lti.simulate import SimulationOptions, simulate_closed_loop
from repro.utils.validation import ValidationError


class TestSteadyStateKalman:
    def test_gain_shape(self, double_integrator):
        L, P = steady_state_kalman(double_integrator)
        assert L.shape == (2, 1)
        assert P.shape == (2, 2)

    def test_covariance_is_psd(self, double_integrator):
        _, P = steady_state_kalman(double_integrator)
        assert np.all(np.linalg.eigvalsh(P) >= -1e-10)

    def test_error_dynamics_stable(self, double_integrator):
        L, _ = steady_state_kalman(double_integrator)
        eigenvalues = np.linalg.eigvals(double_integrator.A - L @ double_integrator.C)
        assert np.all(np.abs(eigenvalues) < 1.0)

    def test_satisfies_filter_riccati(self, double_integrator):
        L, P = steady_state_kalman(double_integrator)
        A, C = double_integrator.A, double_integrator.C
        Q, R = double_integrator.Q_w, double_integrator.R_v
        S = C @ P @ C.T + R
        P_next = A @ P @ A.T - A @ P @ C.T @ np.linalg.solve(S, C @ P @ A.T) + Q
        np.testing.assert_allclose(P_next, P, atol=1e-8)

    def test_kalman_gain_wrapper(self, double_integrator):
        np.testing.assert_allclose(
            kalman_gain(double_integrator), steady_state_kalman(double_integrator)[0]
        )

    def test_rejects_singular_measurement_noise(self, double_integrator):
        with pytest.raises(ValidationError):
            steady_state_kalman(double_integrator, R_v=np.array([[0.0]]))

    def test_more_measurement_noise_gives_smaller_gain(self, double_integrator):
        L_small, _ = steady_state_kalman(double_integrator, R_v=np.array([[1e-4]]))
        L_large, _ = steady_state_kalman(double_integrator, R_v=np.array([[1e-1]]))
        assert np.linalg.norm(L_large) < np.linalg.norm(L_small)


class TestKalmanFilterObject:
    def test_residue_shrinks_without_noise(self, double_integrator):
        kf = KalmanFilter.design(double_integrator)
        # Simulate the true plant from a non-zero state with zero input.
        x = np.array([1.0, 0.0])
        residues = []
        for _ in range(150):
            y = double_integrator.output(x, [0.0])
            residues.append(abs(kf.step(y, [0.0])[0]))
            x = double_integrator.step_state(x, [0.0])
        assert residues[-1] < 1e-3 * max(residues)

    def test_run_matches_step(self, double_integrator):
        kf_a = KalmanFilter.design(double_integrator)
        kf_b = KalmanFilter.design(double_integrator)
        rng = np.random.default_rng(0)
        measurements = rng.normal(size=(10, 1))
        inputs = np.zeros((10, 1))
        batch = kf_a.run(measurements, inputs)
        single = np.array([kf_b.step(measurements[k], inputs[k]) for k in range(10)])
        np.testing.assert_allclose(batch, single)

    def test_reset(self, double_integrator):
        kf = KalmanFilter.design(double_integrator)
        kf.step([1.0], [0.0])
        kf.reset()
        np.testing.assert_allclose(kf.state, np.zeros(2))

    def test_run_length_mismatch(self, double_integrator):
        kf = KalmanFilter.design(double_integrator)
        with pytest.raises(ValidationError):
            kf.run(np.zeros((5, 1)), np.zeros((4, 1)))


class TestTimeVaryingKalman:
    def test_gain_converges_to_steady_state(self, double_integrator):
        L_ss, _ = steady_state_kalman(double_integrator)
        tv = TimeVaryingKalmanFilter(double_integrator)
        gain = None
        for _ in range(200):
            _, gain = tv.step([0.0], [0.0])
        np.testing.assert_allclose(gain, L_ss, atol=1e-6)

    def test_run_returns_gains(self, double_integrator):
        tv = TimeVaryingKalmanFilter(double_integrator)
        residues, gains = tv.run(np.zeros((5, 1)), np.zeros((5, 1)))
        assert residues.shape == (5, 1)
        assert len(gains) == 5


class TestLuenberger:
    def test_places_observer_poles(self, double_integrator):
        poles = [0.2, 0.3]
        L = luenberger_gain(double_integrator, poles)
        eigenvalues = np.linalg.eigvals(double_integrator.A - L @ double_integrator.C)
        np.testing.assert_allclose(sorted(eigenvalues.real), sorted(poles), atol=1e-8)

    def test_wrong_pole_count(self, double_integrator):
        with pytest.raises(ValidationError):
            luenberger_gain(double_integrator, [0.5])

    def test_observer_tracks_state(self, double_integrator):
        observer = LuenbergerObserver.design(double_integrator, [0.1, 0.2])
        x = np.array([0.5, -0.2])
        for _ in range(50):
            y = double_integrator.output(x, [0.0])
            observer.step(y, [0.0])
            x = double_integrator.step_state(x, [0.0])
        np.testing.assert_allclose(observer.state, x, atol=1e-4)


class TestInnovationStatistics:
    def test_covariance_formula(self, double_integrator):
        _, P = steady_state_kalman(double_integrator)
        S = innovation_covariance(double_integrator, P)
        expected = double_integrator.C @ P @ double_integrator.C.T + double_integrator.R_v
        np.testing.assert_allclose(S, expected)

    def test_nis_is_chi_square_scaled(self, simple_closed_loop):
        """The normalised innovation squared should have mean close to m under no attack."""
        _, P = steady_state_kalman(simple_closed_loop.plant)
        S = innovation_covariance(simple_closed_loop.plant, P)
        trace = simulate_closed_loop(
            simple_closed_loop, SimulationOptions(horizon=4000, with_noise=True, seed=0)
        )
        nis = normalized_innovation_squared(trace.residues[500:], S)
        assert nis.mean() == pytest.approx(1.0, rel=0.2)

    def test_dimension_mismatch(self):
        with pytest.raises(ValidationError):
            normalized_innovation_squared(np.zeros((3, 2)), np.eye(3))
