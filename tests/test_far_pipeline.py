"""Tests for the FAR evaluator and the end-to-end pipeline."""

import numpy as np
import pytest

from repro.core.far import FalseAlarmEvaluator
from repro.core.pipeline import SynthesisPipeline
from repro.noise.models import BoundedUniformNoise
from repro.utils.validation import ValidationError


class TestFalseAlarmEvaluator:
    def test_loose_detector_has_zero_far(self, trajectory_problem):
        evaluator = FalseAlarmEvaluator(trajectory_problem, count=50, seed=0)
        loose = trajectory_problem.static_threshold(100.0)
        assert evaluator.evaluate_single(loose) == 0.0

    def test_tight_detector_has_full_far(self, trajectory_problem):
        evaluator = FalseAlarmEvaluator(trajectory_problem, count=50, seed=0)
        tight = trajectory_problem.static_threshold(1e-9)
        assert evaluator.evaluate_single(tight) == 1.0

    def test_far_is_monotone_in_threshold(self, trajectory_problem):
        evaluator = FalseAlarmEvaluator(trajectory_problem, count=100, seed=1)
        rates = [
            evaluator.evaluate_single(trajectory_problem.static_threshold(value))
            for value in (0.001, 0.01, 0.05)
        ]
        assert rates[0] >= rates[1] >= rates[2]

    def test_study_bookkeeping(self, trajectory_problem):
        evaluator = FalseAlarmEvaluator(trajectory_problem, count=40, seed=2)
        study = evaluator.evaluate(
            {
                "loose": trajectory_problem.static_threshold(1.0),
                "tight": trajectory_problem.static_threshold(1e-6),
            }
        )
        assert study.generated == 40
        assert study.kept <= 40
        assert set(study.rates) == {"loose", "tight"}
        assert study.rate("tight") >= study.rate("loose")

    def test_benign_population_is_memoised_and_reproducible(self, trajectory_problem):
        evaluator = FalseAlarmEvaluator(trajectory_problem, count=20, seed=3)
        first = evaluator.benign_traces()
        second = evaluator.benign_traces()
        assert first is second
        other = FalseAlarmEvaluator(trajectory_problem, count=20, seed=3)
        np.testing.assert_allclose(
            first[0].measurement_noise, other.benign_traces()[0].measurement_noise
        )

    def test_custom_noise_model_dimension_checked(self, trajectory_problem):
        with pytest.raises(ValidationError):
            FalseAlarmEvaluator(
                trajectory_problem, noise_model=BoundedUniformNoise(bounds=[0.1, 0.1]), count=10
            )

    def test_initial_state_spread_creates_transient(self, trajectory_problem):
        plain = FalseAlarmEvaluator(trajectory_problem, count=30, seed=4)
        spread = FalseAlarmEvaluator(
            trajectory_problem,
            count=30,
            seed=4,
            initial_state_spread=np.array([0.05, 0.0]),
            filter_pfc=False,
        )
        plain_peak = np.mean([trace.residue_norms("inf").max() for trace in plain.benign_traces()])
        spread_peak = np.mean(
            [trace.residue_norms("inf").max() for trace in spread.benign_traces()]
        )
        assert spread_peak > plain_peak

    def test_initial_state_spread_validation(self, trajectory_problem):
        with pytest.raises(ValidationError):
            FalseAlarmEvaluator(trajectory_problem, count=5, initial_state_spread=np.array([0.1]))

    def test_needs_detectors(self, trajectory_problem):
        evaluator = FalseAlarmEvaluator(trajectory_problem, count=5)
        with pytest.raises(ValidationError):
            evaluator.evaluate({})

    def test_requires_noise_model_when_plant_noiseless(self, simple_closed_loop):
        from repro.core.problem import SynthesisProblem
        from repro.core.specs import ReachSetCriterion

        noiseless_plant = simple_closed_loop.plant.without_noise()
        from repro.lti.simulate import ClosedLoopSystem

        system = ClosedLoopSystem(
            plant=noiseless_plant, K=simple_closed_loop.K, L=simple_closed_loop.L
        )
        problem = SynthesisProblem(
            system=system,
            pfc=ReachSetCriterion(x_des=[0.0, 0.0], epsilon=1.0),
            horizon=5,
        )
        with pytest.raises(ValidationError):
            FalseAlarmEvaluator(problem, count=5)


class TestVectorizedAgainstSequentialReference:
    """The batched FAR path must reproduce the historical per-trace loop."""

    @staticmethod
    def sequential_rates(problem, detectors, count, seed, initial_state_spread=None):
        """The pre-vectorization implementation: one Python simulation per trial."""
        from repro.utils.rng import spawn_rngs

        noise_model = FalseAlarmEvaluator.default_noise_model(problem)
        kept = []
        discarded_pfc = discarded_mdc = 0
        for rng in spawn_rngs(seed, count):
            measurement_noise = noise_model.sample(problem.horizon, rng)
            x0 = None
            if initial_state_spread is not None:
                offset = rng.uniform(-1.0, 1.0, size=initial_state_spread.size)
                x0 = problem.x0 + offset * initial_state_spread
            trace = problem.simulate(
                attack=None, with_noise=False, x0=x0, measurement_noise=measurement_noise
            )
            if not problem.pfc_satisfied(trace):
                discarded_pfc += 1
                continue
            if problem.mdc_alarm(trace):
                discarded_mdc += 1
                continue
            kept.append(trace)
        rates = {
            label: float(
                np.mean([bool(np.any(threshold.alarms(trace.residues))) for trace in kept])
            )
            for label, threshold in detectors.items()
        }
        return rates, len(kept), discarded_pfc, discarded_mdc

    @pytest.mark.parametrize("spread", [None, np.array([0.05, 0.0])])
    def test_identical_rates_and_bookkeeping(self, trajectory_problem, spread):
        detectors = {
            "loose": trajectory_problem.static_threshold(1.0),
            "mid": trajectory_problem.static_threshold(0.02),
            "tight": trajectory_problem.static_threshold(1e-6),
        }
        evaluator = FalseAlarmEvaluator(
            trajectory_problem, count=60, seed=11, initial_state_spread=spread
        )
        study = evaluator.evaluate(detectors)
        rates, kept, discarded_pfc, discarded_mdc = self.sequential_rates(
            trajectory_problem, detectors, count=60, seed=11, initial_state_spread=spread
        )
        assert study.kept == kept
        assert study.discarded_pfc == discarded_pfc
        assert study.discarded_mdc == discarded_mdc
        assert study.rates == rates

    def test_traces_match_the_sequential_simulator(self, trajectory_problem):
        evaluator = FalseAlarmEvaluator(trajectory_problem, count=10, seed=5, filter_pfc=False)
        traces = evaluator.benign_traces()
        from repro.utils.rng import spawn_rngs

        noise_model = evaluator.noise_model
        for trace, rng in zip(traces, spawn_rngs(5, 10)):
            reference = trajectory_problem.simulate(
                measurement_noise=noise_model.sample(trajectory_problem.horizon, rng)
            )
            np.testing.assert_allclose(
                trace.residues, reference.residues, rtol=1e-10, atol=1e-12
            )


class TestPipeline:
    """The deprecated shim must keep working — and keep warning."""

    def test_full_run_on_trajectory(self, trajectory_problem):
        with pytest.warns(DeprecationWarning):
            pipeline = SynthesisPipeline(
                problem=trajectory_problem,
                algorithms=("pivot", "stepwise", "static"),
                far_count=50,
                min_threshold=0.005,
            )
        report = pipeline.run()
        assert report.is_vulnerable
        assert set(report.synthesis) == {"pivot", "stepwise", "static"}
        assert report.far_study is not None
        rows = report.summary_rows()
        assert len(rows) == 3
        assert all("false_alarm_rate" in row for row in rows)

    def test_far_can_be_disabled(self, trajectory_problem):
        with pytest.warns(DeprecationWarning):
            pipeline = SynthesisPipeline(
                problem=trajectory_problem, algorithms=("static",), far_count=0
            )
        report = pipeline.run()
        assert report.far_study is None

    def test_unknown_algorithm_rejected(self, trajectory_problem):
        with pytest.warns(DeprecationWarning), pytest.raises(ValidationError):
            SynthesisPipeline(problem=trajectory_problem, algorithms=("magic",))
