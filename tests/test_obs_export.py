"""Tests for repro.obs.export: Prometheus round-trip, JSON snapshots, scraper."""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    PeriodicScraper,
    parse_prometheus_text,
    prometheus_text,
    read_json_snapshot,
    text_report,
    write_json_snapshot,
)
from repro.utils.validation import ValidationError


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry(enabled=True)
    registry.counter("events_total", "events seen").inc(3, detector="cusum")
    registry.counter("events_total").inc(1.5, detector="static")
    registry.gauge("utilization", "busy fraction").set(0.8125, worker="0")
    histogram = registry.histogram("solve_seconds", "solver time", buckets=(0.1, 1.0))
    histogram.observe(0.05, backend="lp")
    histogram.observe(0.5, backend="lp")
    histogram.observe(7.0, backend="lp")
    histogram.observe(0.2)  # a second, unlabelled cell
    return registry


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def test_prometheus_text_renders_all_families():
    text = prometheus_text(_populated_registry())
    assert "# TYPE events_total counter" in text
    assert 'events_total{detector="cusum"} 3' in text
    assert 'events_total{detector="static"} 1.5' in text
    assert "# TYPE utilization gauge" in text
    assert 'utilization{worker="0"} 0.8125' in text
    assert "# TYPE solve_seconds histogram" in text
    # Cumulative buckets: 0.05 <= 0.1, 0.5 <= 1.0, 7.0 -> overflow.
    assert 'solve_seconds_bucket{backend="lp",le="0.1"} 1' in text
    assert 'solve_seconds_bucket{backend="lp",le="1"} 2' in text
    assert 'solve_seconds_bucket{backend="lp",le="+Inf"} 3' in text
    assert 'solve_seconds_sum{backend="lp"} 7.55' in text
    assert 'solve_seconds_count{backend="lp"} 3' in text


def test_prometheus_parse_back_equals_snapshot():
    registry = _populated_registry()
    assert parse_prometheus_text(prometheus_text(registry)) == registry.snapshot()


def test_prometheus_round_trip_with_hostile_label_values():
    registry = MetricsRegistry(enabled=True)
    registry.counter("odd_total", "label torture").inc(
        2, path='C:\\tmp\\"x"', note="line1\nline2", comma="a,b=c"
    )
    assert parse_prometheus_text(prometheus_text(registry)) == registry.snapshot()


def test_prometheus_round_trip_empty_instruments():
    # Instruments with no recorded values still appear and survive the round
    # trip — including an unobserved histogram, whose bucket bounds ride an
    # explicit all-zero series the parser recognises and drops.
    registry = MetricsRegistry(enabled=True)
    registry.counter("quiet_total", "never fired")
    registry.gauge("idle")
    registry.histogram("silent_seconds", "never observed", buckets=(0.5, 2.0))
    parsed = parse_prometheus_text(prometheus_text(registry))
    assert parsed == registry.snapshot()
    assert parsed["histograms"]["silent_seconds"]["buckets"] == [0.5, 2.0]
    assert parsed["histograms"]["silent_seconds"]["values"] == []


def test_zero_observation_histogram_emits_explicit_zero_bucket_lines():
    registry = MetricsRegistry(enabled=True)
    registry.histogram("silent_seconds", "never observed", buckets=(0.5, 2.0))
    text = prometheus_text(registry)
    assert 'silent_seconds_bucket{le="0.5"} 0' in text
    assert 'silent_seconds_bucket{le="2"} 0' in text
    assert 'silent_seconds_bucket{le="+Inf"} 0' in text
    assert "silent_seconds_sum 0" in text
    assert "silent_seconds_count 0" in text


def test_zero_observation_histogram_round_trips_alongside_populated_one():
    registry = _populated_registry()
    registry.histogram("silent_seconds", "never observed", buckets=(0.5, 2.0))
    assert parse_prometheus_text(prometheus_text(registry)) == registry.snapshot()


def test_prometheus_defaults_to_process_registry():
    from repro.obs import use_registry

    # None resolves get_registry(); scope a fresh registry so the test does
    # not depend on what earlier suite tests registered on the default.
    with use_registry(_populated_registry()) as registry:
        assert parse_prometheus_text(prometheus_text()) == registry.snapshot()
    assert prometheus_text(MetricsRegistry(enabled=True)) == ""


def test_parse_rejects_undeclared_samples_and_bad_inputs():
    with pytest.raises(ValidationError):
        parse_prometheus_text("mystery_metric 1\n")
    with pytest.raises(ValidationError):
        prometheus_text(42)


# ----------------------------------------------------------------------
# JSON snapshots
# ----------------------------------------------------------------------
def test_json_snapshot_round_trip(tmp_path):
    registry = _populated_registry()
    path = write_json_snapshot(tmp_path / "metrics.json", registry)
    assert read_json_snapshot(path) == registry.snapshot()
    assert not (tmp_path / "metrics.json.tmp").exists()  # atomic write cleaned up


def test_json_snapshot_accepts_snapshot_dict(tmp_path):
    snap = _populated_registry().snapshot()
    path = write_json_snapshot(tmp_path / "metrics.json", snap)
    assert read_json_snapshot(path) == snap


# ----------------------------------------------------------------------
# PeriodicScraper
# ----------------------------------------------------------------------
def test_scraper_validates_arguments(tmp_path):
    with pytest.raises(ValidationError):
        PeriodicScraper(tmp_path / "m.prom", fmt="xml")
    with pytest.raises(ValidationError):
        PeriodicScraper(tmp_path / "m.prom", interval_s=-1.0)


def test_scraper_interval_gating_with_injected_clock(tmp_path):
    registry = _populated_registry()
    scraper = PeriodicScraper(tmp_path / "m.prom", registry=registry, interval_s=10.0)
    assert scraper.maybe_scrape(now=100.0) is True  # first call always scrapes
    assert scraper.maybe_scrape(now=105.0) is False  # inside the interval
    assert scraper.maybe_scrape(now=109.999) is False
    assert scraper.maybe_scrape(now=110.0) is True  # interval elapsed
    assert scraper.scrapes == 2
    assert parse_prometheus_text(scraper.path.read_text()) == registry.snapshot()


def test_scraper_scrape_is_unconditional(tmp_path):
    registry = _populated_registry()
    scraper = PeriodicScraper(tmp_path / "m.prom", registry=registry, interval_s=1e9)
    scraper.scrape()
    registry.counter("events_total").inc(10, detector="cusum")
    scraper.scrape()  # interval has not elapsed; scrape() flushes anyway
    assert scraper.scrapes == 2
    parsed = parse_prometheus_text(scraper.path.read_text())
    assert parsed == registry.snapshot()


def test_scraper_json_format(tmp_path):
    registry = _populated_registry()
    scraper = PeriodicScraper(tmp_path / "m.json", registry=registry, fmt="json")
    scraper.scrape()
    assert read_json_snapshot(scraper.path) == registry.snapshot()


# ----------------------------------------------------------------------
# text_report
# ----------------------------------------------------------------------
def test_text_report_shows_values_and_histogram_means():
    report = text_report(_populated_registry())
    assert "events_total (counter)" in report
    assert '{detector="cusum"} = 3' in report
    assert "utilization (gauge)" in report
    assert "solve_seconds (histogram)" in report
    assert "count=3" in report
    # Empty instruments are omitted from the human-facing dump.
    registry = MetricsRegistry(enabled=True)
    registry.counter("quiet_total")
    assert text_report(registry) == "metrics report"
