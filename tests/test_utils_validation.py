"""Unit tests for the validation helpers and result containers."""

import numpy as np
import pytest

from repro.utils.results import SolveStatus, SynthesisRecord
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    ValidationError,
    check_finite,
    check_index,
    check_positive,
    check_probability,
    check_shape,
    check_square,
    check_symmetric,
    check_vector,
)


class TestChecks:
    def test_check_finite_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_finite("x", np.array([1.0, np.nan]))

    def test_check_finite_passes(self):
        out = check_finite("x", [1.0, 2.0])
        np.testing.assert_allclose(out, [1.0, 2.0])

    def test_check_square_rejects_rectangular(self):
        with pytest.raises(ValidationError):
            check_square("m", np.zeros((2, 3)))

    def test_check_shape(self):
        with pytest.raises(ValidationError):
            check_shape("m", np.zeros((2, 2)), (2, 3))

    def test_check_symmetric_symmetrises(self):
        m = np.array([[1.0, 2.0 + 1e-10], [2.0, 3.0]])
        out = check_symmetric("m", m)
        np.testing.assert_allclose(out, out.T)

    def test_check_symmetric_rejects(self):
        with pytest.raises(ValidationError):
            check_symmetric("m", np.array([[1.0, 2.0], [5.0, 3.0]]))

    def test_check_vector_length(self):
        with pytest.raises(ValidationError):
            check_vector("v", [1.0, 2.0], size=3)

    def test_check_probability_bounds(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValidationError):
            check_probability("p", 1.5)

    def test_check_positive(self):
        assert check_positive("x", 2.0) == 2.0
        with pytest.raises(ValidationError):
            check_positive("x", 0.0)
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(ValidationError):
            check_positive("x", -1.0, strict=False)

    def test_check_index(self):
        assert check_index("i", 3, 5) == 3
        with pytest.raises(ValidationError):
            check_index("i", 5, 5)


class TestRng:
    def test_ensure_rng_from_seed_is_deterministic(self):
        a = ensure_rng(42).normal(size=5)
        b = ensure_rng(42).normal(size=5)
        np.testing.assert_allclose(a, b)

    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_spawn_rngs_independent_and_reproducible(self):
        first = [g.normal() for g in spawn_rngs(7, 3)]
        second = [g.normal() for g in spawn_rngs(7, 3)]
        np.testing.assert_allclose(first, second)
        assert len(set(np.round(first, 12))) == 3


class TestResults:
    def test_solve_status_truthiness(self):
        assert bool(SolveStatus.SAT)
        assert not bool(SolveStatus.UNSAT)
        assert not bool(SolveStatus.UNKNOWN)

    def test_synthesis_record_defaults(self):
        record = SynthesisRecord(round_index=1, action="test")
        assert record.extra == {}
        assert record.solver_time == 0.0
