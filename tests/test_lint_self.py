"""Self-gate: ``python -m repro.lint src`` must be clean on this tree.

This is the same check the ``lint-invariants`` CI job runs, expressed as a
test so it also gates local ``pytest`` runs: zero unsuppressed findings
over ``src/``, and every standing suppression carries a written
justification (the pragma grammar already enforces this — the assertion
documents it against regressions in the engine).
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import run_lint

SRC = Path(__file__).resolve().parents[1] / "src"


def test_src_tree_has_no_unsuppressed_findings():
    result = run_lint([SRC])
    assert result.files_scanned > 100, "src/ walk looks truncated"
    rendered = "\n".join(finding.render() for finding in result.unsuppressed)
    assert result.unsuppressed == [], f"repro.lint findings in src/:\n{rendered}"
    assert result.exit_code == 0


def test_obs_watch_subpackage_is_clean_standalone():
    # The self-monitoring layer judges the rest of the repo; it must hold
    # itself to the same invariants with not a single unsuppressed finding.
    result = run_lint([SRC / "repro" / "obs" / "watch"])
    assert result.files_scanned >= 5, "obs/watch walk looks truncated"
    rendered = "\n".join(finding.render() for finding in result.unsuppressed)
    assert result.unsuppressed == [], f"repro.lint findings in obs/watch:\n{rendered}"


def test_every_suppression_is_justified():
    result = run_lint([SRC])
    for finding in result.suppressed:
        assert finding.justification, finding.render()
        assert len(finding.justification.split()) >= 3, (
            f"suppression justification too thin: {finding.render()}"
        )
