"""Unit tests for formula construction, evaluation and Tseitin CNF conversion."""

import pytest

from repro.smt.cnf import to_cnf
from repro.smt.expr import (
    FALSE,
    TRUE,
    And,
    Atom,
    BoolVar,
    Implies,
    Not,
    Or,
    between,
    eq,
    ge,
    gt,
    le,
    lt,
)
from repro.smt.linear import RealVar
from repro.utils.validation import ValidationError

X = RealVar("x")
Y = RealVar("y")


class TestAtoms:
    def test_le_evaluation(self):
        atom = le(X, 5)
        assert atom.evaluate({"x": 4.0})
        assert atom.evaluate({"x": 5.0})
        assert not atom.evaluate({"x": 6.0})

    def test_lt_is_strict(self):
        atom = lt(X, 5)
        assert not atom.evaluate({"x": 5.0})

    def test_ge_gt(self):
        assert ge(X, 2).evaluate({"x": 2.0})
        assert not gt(X, 2).evaluate({"x": 2.0})

    def test_negation_flips(self):
        atom = le(X, 3)
        negated = atom.negated()
        assert negated.strict
        assert atom.evaluate({"x": 2.0}) != negated.evaluate({"x": 2.0})
        assert atom.evaluate({"x": 4.0}) != negated.evaluate({"x": 4.0})

    def test_eq_expands_to_conjunction(self):
        formula = eq(X, 3)
        assert isinstance(formula, And)
        assert formula.evaluate({"x": 3.0})
        assert not formula.evaluate({"x": 3.1})

    def test_between(self):
        formula = between(X, 1.0, 2.0)
        assert formula.evaluate({"x": 1.5})
        assert not formula.evaluate({"x": 2.5})
        assert between(X, None, 2.0).evaluate({"x": -100})
        with pytest.raises(ValidationError):
            between(X, None, None)

    def test_operator_sugar_on_vars(self):
        atom = X <= 3
        assert isinstance(atom, Atom)
        assert (X + Y >= 1).evaluate({"x": 0.6, "y": 0.6})


class TestConnectives:
    def test_and_or_not(self):
        formula = And(le(X, 5), Or(gt(Y, 0), lt(Y, -10)))
        assert formula.evaluate({"x": 1.0, "y": 1.0})
        assert not formula.evaluate({"x": 6.0, "y": 1.0})
        assert Not(formula).evaluate({"x": 6.0, "y": 1.0})

    def test_implies(self):
        formula = Implies(gt(X, 0), gt(Y, 0))
        assert formula.evaluate({"x": -1.0, "y": -5.0})
        assert formula.evaluate({"x": 1.0, "y": 2.0})
        assert not formula.evaluate({"x": 1.0, "y": -2.0})

    def test_flattening(self):
        formula = And(And(le(X, 1), le(Y, 1)), le(X + Y, 1))
        assert len(formula.operands) == 3

    def test_bool_constants(self):
        assert TRUE.evaluate({})
        assert not FALSE.evaluate({})

    def test_bool_var_needs_assignment(self):
        b = BoolVar("flag")
        assert b.evaluate({}, {"flag": True})
        with pytest.raises(ValidationError):
            b.evaluate({}, {})

    def test_atom_and_variable_collection(self):
        formula = And(le(X, 1), Or(gt(Y, 2), BoolVar("b")), le(X, 1))
        assert len(formula.atoms()) == 2
        assert formula.real_vars() == {"x", "y"}
        assert formula.bool_vars() == {"b"}

    def test_operator_overloads(self):
        formula = (X <= 1) & ((Y >= 2) | (Y <= -2))
        assert isinstance(formula, And)
        assert isinstance(~formula, Not)


class TestCNF:
    def test_unit_assertions_for_top_level_conjuncts(self):
        cnf = to_cnf([And(le(X, 1), le(Y, 2))])
        # Two atoms, each asserted as a unit clause.
        assert len(cnf.atom_of_variable) == 2
        unit_clauses = [clause for clause in cnf.clauses if len(clause) == 1]
        assert len(unit_clauses) == 2

    def test_disjunction_produces_clause(self):
        cnf = to_cnf([Or(le(X, 1), le(Y, 2))])
        assert any(len(clause) >= 2 for clause in cnf.clauses)

    def test_atom_deduplication(self):
        cnf = to_cnf([le(X, 1), le(X, 1)])
        assert len(cnf.atom_of_variable) == 1

    def test_false_assertion_gives_empty_clause(self):
        cnf = to_cnf([FALSE])
        assert () in cnf.clauses

    def test_true_assertion_is_noop(self):
        cnf = to_cnf([TRUE])
        assert cnf.clauses == []

    def test_bool_variables_registered(self):
        cnf = to_cnf([Or(BoolVar("a"), BoolVar("b"))])
        assert set(cnf.bool_name_of_variable.values()) == {"a", "b"}

    def test_implication_encoded(self):
        cnf = to_cnf([Implies(BoolVar("a"), BoolVar("b"))])
        assert cnf.variable_count >= 3
