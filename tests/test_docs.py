"""Documentation gates: docstring presence and markdown link integrity.

Mirrors the CI docs job locally (which runs ruff's pydocstyle D100/D101
rules and this file): every module and class in the documented subsystems
(``repro.explore``, ``repro.lint``, ``repro.obs``, ``repro.runtime``,
``repro.serve``) carries a docstring, the headline
classes of this PR document their semantics, and every relative link and
anchor in ``README.md`` / ``docs/*.md`` resolves.
"""

import ast
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"

#: Packages whose modules and classes are documentation-gated.
DOCUMENTED_PACKAGES = ("explore", "lint", "obs", "runtime", "serve")

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = re.compile(r"^[a-z][a-z0-9+.-]*:")  # http:, https:, mailto:, ...


def _documented_modules() -> list[Path]:
    files = []
    for package in DOCUMENTED_PACKAGES:
        # rglob so subpackages (e.g. repro.obs.watch) are gated too.
        files.extend(sorted((SRC / package).rglob("*.py")))
    assert files, "documented packages not found"
    return files


def _doc_pages() -> list[Path]:
    pages = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    assert len(pages) >= 3, "expected README.md plus the docs/ suite"
    return pages


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _anchors(page: Path) -> set[str]:
    anchors = set()
    in_fence = False
    for line in page.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
        elif not in_fence and line.startswith("#"):
            anchors.add(_github_slug(line.lstrip("#")))
    return anchors


class TestDocstrings:
    @pytest.mark.parametrize("path", _documented_modules(), ids=lambda p: p.stem)
    def test_every_module_has_a_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.relative_to(REPO_ROOT)} lacks a module docstring"

    @pytest.mark.parametrize("path", _documented_modules(), ids=lambda p: p.stem)
    def test_every_class_has_a_docstring(self, path):
        tree = ast.parse(path.read_text())
        undocumented = [
            node.name
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef) and not ast.get_docstring(node)
        ]
        assert not undocumented, (
            f"{path.relative_to(REPO_ROOT)} has undocumented classes: {undocumented}"
        )

    def test_headline_classes_document_their_semantics(self):
        from repro.api.config import RelaxConfig
        from repro.core.session import SynthesisSession
        from repro.explore import store

        assert "floor" in RelaxConfig.__doc__ and "residual-risk" in RelaxConfig.__doc__
        assert "once" in SynthesisSession.__doc__       # one encoding per problem
        # The store module documents its key derivation, split included.
        assert "synthesis key" in store.__doc__ and "evaluation key" in store.__doc__
        assert store.ResultStore.__doc__

    def test_kernel_documents_its_equivalence_contract(self):
        from repro.runtime.kernel import core, lanes, runner

        # The fused stepper's docs must state the gate, not just the layout:
        # bit-identity is probed empirically, and the signed-zero caveat of
        # the skipped feed-through add is spelled out.
        assert "bit-identical" in core.__doc__
        assert "probe" in core.probe_fused_equivalence.__doc__
        assert "Signed-zero" in core.__doc__
        # The sharding contract promises contiguous carving and event
        # ordering independent of workers, with the clamp as the backstop.
        assert "contiguous" in runner.__doc__
        assert "clamp" in runner.__doc__
        assert "Exactness contract" in lanes.__doc__
        # Float32 acceptance bounds live with the tests that enforce them.
        float32_doc = ast.get_docstring(
            ast.parse(
                (REPO_ROOT / "tests" / "test_runtime_kernel_float32.py").read_text()
            )
        )
        assert "rtol = 1e-3" in float32_doc


class TestMarkdownLinks:
    @pytest.mark.parametrize("page", _doc_pages(), ids=lambda p: p.name)
    def test_relative_links_and_anchors_resolve(self, page):
        broken = []
        for target in _LINK.findall(page.read_text()):
            if _EXTERNAL.match(target):
                continue
            path_part, _, anchor = target.partition("#")
            resolved = page if not path_part else (page.parent / path_part).resolve()
            if not resolved.exists():
                broken.append(target)
                continue
            if anchor and resolved.suffix == ".md" and anchor not in _anchors(resolved):
                broken.append(target)
        assert not broken, f"{page.name} has broken links/anchors: {broken}"

    def test_readme_links_into_the_docs_suite(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/architecture.md" in readme
        assert "docs/exploration.md" in readme
        assert "docs/observability.md" in readme
        assert "docs/runtime-kernel.md" in readme

    def test_observability_doc_covers_the_obs_contract(self):
        page = (REPO_ROOT / "docs" / "observability.md").read_text()
        # The two load-bearing guarantees the subsystem is built around.
        assert "parse_prometheus_text(prometheus_text(" in page
        assert "REPRO_METRICS" in page and "REPRO_TRACE" in page
        assert "snapshot" in page and "merge" in page
