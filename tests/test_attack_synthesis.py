"""Tests for Algorithm 1 (attack-vector synthesis) and the solver backends."""

import dataclasses

import numpy as np
import pytest

from repro.core.attack_synthesis import synthesize_attack
from repro.core.encoding import AttackEncoding
from repro.falsification.lp_backend import LPAttackBackend
from repro.falsification.optimizer import OptimizationFalsifier
from repro.falsification.registry import available_backends, get_backend
from repro.falsification.smt_backend import SMTAttackBackend
from repro.utils.results import SolveStatus
from repro.utils.validation import ValidationError


class TestRegistry:
    def test_available(self):
        assert set(available_backends()) == {"lp", "smt", "optimizer"}

    def test_get_by_name_and_instance(self):
        backend = get_backend("lp")
        assert isinstance(backend, LPAttackBackend)
        assert get_backend(backend) is backend
        assert isinstance(get_backend("smt"), SMTAttackBackend)
        assert isinstance(get_backend("optimizer"), OptimizationFalsifier)

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            get_backend("z3")

    def test_lp_margin_mode_validation(self):
        with pytest.raises(ValidationError):
            LPAttackBackend(margin_mode="bogus")


class TestAlgorithm1OnTrajectory:
    def test_attack_exists_without_detector(self, trajectory_problem):
        result = synthesize_attack(trajectory_problem, threshold=None, backend="lp")
        assert result.found
        assert result.verified
        assert result.attack.horizon == trajectory_problem.horizon
        # The synthesized attack indeed breaks the performance criterion...
        assert not trajectory_problem.pfc_satisfied(result.trace)
        # ... while staying invisible to the existing monitors.
        assert not trajectory_problem.mdc_alarm(result.trace)

    def test_bool_protocol(self, trajectory_problem):
        result = synthesize_attack(trajectory_problem, threshold=None)
        assert bool(result) is True

    def test_tight_threshold_blocks_attacks(self, trajectory_problem):
        # A very small static threshold leaves the attacker no room at all.
        threshold = trajectory_problem.static_threshold(1e-4)
        result = synthesize_attack(trajectory_problem, threshold=threshold, backend="lp")
        assert result.status is SolveStatus.UNSAT
        assert not result.found

    def test_loose_threshold_admits_attack_and_attack_is_stealthy(self, trajectory_problem):
        threshold = trajectory_problem.static_threshold(10.0)
        result = synthesize_attack(trajectory_problem, threshold=threshold, backend="lp")
        assert result.found
        assert not trajectory_problem.detector_alarm(result.trace, threshold)

    def test_residue_norms_are_consistent(self, trajectory_problem):
        result = synthesize_attack(trajectory_problem, threshold=None)
        expected = trajectory_problem.residue_norms(result.trace.residues)
        np.testing.assert_allclose(result.residue_norms, expected)

    def test_monitors_restrict_the_attacker(self, trajectory_problem):
        """Dropping the monitors can only enlarge the attacker's damage."""
        no_mdc = dataclasses.replace(
            trajectory_problem, mdc=type(trajectory_problem.mdc).empty()
        )
        with_monitors = synthesize_attack(trajectory_problem, threshold=None)
        without_monitors = synthesize_attack(no_mdc, threshold=None)
        assert with_monitors.found and without_monitors.found


class TestAlgorithm1OnDCMotor:
    def test_attack_exists(self, dcmotor_problem):
        result = synthesize_attack(dcmotor_problem, threshold=None, backend="lp")
        assert result.found
        assert result.verified

    def test_unknown_for_optimizer_when_it_fails(self, dcmotor_problem):
        # The optimizer is incomplete: with essentially no budget it reports UNKNOWN.
        backend = OptimizationFalsifier(restarts=1, iterations_per_restart=1, seed=0)
        threshold = dcmotor_problem.static_threshold(1e-6)
        result = synthesize_attack(dcmotor_problem, threshold=threshold, backend=backend)
        assert result.status in (SolveStatus.UNKNOWN, SolveStatus.UNSAT)

    def test_attack_bound_is_respected(self, dcmotor_problem):
        result = synthesize_attack(dcmotor_problem, threshold=None, backend="lp")
        bound = float(dcmotor_problem.attack_bound)
        assert result.attack.peak() <= bound + 1e-6


class TestBackendAgreement:
    """LP and SMT backends must agree on satisfiability."""

    @pytest.mark.parametrize("threshold_value", [None, 10.0, 1e-4])
    def test_verdicts_agree_on_dcmotor(self, small_dcmotor_problem, threshold_value):
        problem = small_dcmotor_problem
        threshold = (
            None if threshold_value is None else problem.static_threshold(threshold_value)
        )
        lp = synthesize_attack(problem, threshold=threshold, backend="lp")
        smt = synthesize_attack(problem, threshold=threshold, backend="smt")
        assert lp.status == smt.status
        if smt.found:
            assert smt.verified

    def test_smt_finds_verified_attack_on_trajectory(self, small_trajectory_problem):
        problem = small_trajectory_problem
        result = synthesize_attack(problem, threshold=None, backend="smt")
        lp_result = synthesize_attack(problem, threshold=None, backend="lp")
        assert result.status == lp_result.status
        if result.found:
            assert result.verified

    def test_smt_formula_construction(self, small_dcmotor_problem):
        problem = small_dcmotor_problem
        encoding = AttackEncoding(problem=problem, threshold=problem.static_threshold(1.0))
        backend = SMTAttackBackend()
        formulas = backend.build_formulas(encoding)
        assert len(formulas) > 0


class TestOptimizerBackend:
    def test_optimizer_attack_is_verified_when_found(self, small_trajectory_problem):
        problem = small_trajectory_problem
        backend = OptimizationFalsifier(restarts=20, iterations_per_restart=400, seed=1)
        result = synthesize_attack(problem, threshold=None, backend=backend)
        if result.found:
            assert result.verified
        else:
            assert result.status is SolveStatus.UNKNOWN
