"""Tests for the declarative relax stage and the synthesis/evaluation key split.

Covers the three tentpole guarantees:

* ``RelaxConfig`` is plain data (JSON round-trip, typo rejection) and rides
  on ``SynthesisConfig`` / ``ExperimentUnit`` / ``SearchSpace``;
* ``run_pipeline`` applies the relaxer through the shared session and
  reports **both** raw and relaxed outcomes — on the un-floored VSC the raw
  FAR saturates at 100 % while the relaxed FAR does not;
* the store's content address splits into a synthesis key and an evaluation
  key, so FAR/noise/probe variations of an already-synthesized point issue
  zero solver calls.
"""

import numpy as np
import pytest

from repro import (
    FARConfig,
    RelaxConfig,
    RuntimeConfig,
    SynthesisConfig,
    get_case_study,
    run_fleet,
    run_pipeline,
)
from repro.api.config import ExperimentUnit
from repro.api.runner import BatchRunner
from repro.core.relaxation import ThresholdRelaxer
from repro.core.session import SynthesisSession
from repro.explore import Explorer, SearchSpace
from repro.explore.store import (
    ResultStore,
    split_unit_keys,
    synthesis_store_key,
    unit_store_key,
)
from repro.utils.validation import ValidationError

VSC_FAR = FARConfig(count=100, seed=0, filter_pfc=False, filter_mdc=False)


@pytest.fixture(scope="module")
def vsc_problem():
    return get_case_study("vsc").problem


@pytest.fixture(scope="module")
def vsc_relaxed_report(vsc_problem):
    """Un-floored stepwise synthesis on VSC with a floor-1.0 relax stage."""
    return run_pipeline(
        vsc_problem,
        SynthesisConfig(algorithms=("stepwise",), max_rounds=150, relax=RelaxConfig(floor=1.0)),
        VSC_FAR,
    )


class TestRelaxConfig:
    def test_json_round_trip(self):
        config = RelaxConfig(floor=0.5, preserve_monotonicity=False, raise_cap=9.0)
        assert RelaxConfig.from_dict(config.to_dict()) == config
        # Defaults round-trip too (all-None floor, certified-only pass).
        assert RelaxConfig.from_dict(RelaxConfig().to_dict()) == RelaxConfig()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValidationError, match="unknown RelaxConfig fields"):
            RelaxConfig.from_dict({"floors": 0.5})

    def test_negative_floor_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            RelaxConfig(floor=-1.0)

    def test_floor_above_raise_cap_rejected(self):
        with pytest.raises(ValidationError, match="raise_cap"):
            RelaxConfig(floor=5.0, raise_cap=2.0)
        # The relaxer enforces the same invariant for direct (non-config) use.
        with pytest.raises(ValidationError, match="raise_cap"):
            ThresholdRelaxer(backend="lp", floor=5.0, raise_cap=2.0).relax(
                get_case_study("dcmotor", horizon=8).problem,
                get_case_study("dcmotor", horizon=8).problem.static_threshold(1.0),
                verify_input=False,
            )
        assert RelaxConfig(floor=2.0, raise_cap=2.0).floor == 2.0

    def test_rides_on_synthesis_config(self):
        config = SynthesisConfig(algorithms=("static",), relax={"floor": 2.0})
        assert config.relax == RelaxConfig(floor=2.0)
        assert SynthesisConfig.from_dict(config.to_dict()) == config
        # Without a relax stage the serialized schema carries an explicit None.
        assert SynthesisConfig(algorithms=("static",)).to_dict()["relax"] is None

    def test_rides_on_experiment_unit(self):
        unit = ExperimentUnit("dcmotor", "lp", "static", relax={"floor": 1.0})
        assert unit.relax == RelaxConfig(floor=1.0)
        assert ExperimentUnit.from_dict(unit.to_dict()) == unit
        assert unit.synthesis_config().relax == RelaxConfig(floor=1.0)

    def test_rides_on_search_space(self):
        space = SearchSpace(relax=True)
        assert space.relax == RelaxConfig()
        space = SearchSpace(relax={"floor": 0.5})
        assert SearchSpace.from_dict(space.to_dict()) == space
        assert space.unit(space.points()[0]).relax == RelaxConfig(floor=0.5)
        assert SearchSpace(relax=None).unit(SearchSpace().points()[0]).relax is None


class TestRelaxerFloor:
    def test_floor_lifts_pinned_terminal_instant(self, vsc_problem):
        from repro.core.stepwise import StepwiseThresholdSynthesizer

        raw = StepwiseThresholdSynthesizer(backend="lp", max_rounds=150).synthesize(
            vsc_problem
        ).threshold
        session = SynthesisSession(vsc_problem, backend="lp")
        result = ThresholdRelaxer(backend="lp", floor=1.0).relax(
            vsc_problem, raw, verify_input=False, session=session
        )
        # The terminal instant is provably pinned (~0): lifting it is an
        # explicitly uncertified trade, recorded as such.
        assert result.floored_instants == [vsc_problem.horizon - 1]
        assert not result.certified
        before = raw.effective(vsc_problem.horizon)
        after = result.threshold.effective(vsc_problem.horizon)
        assert np.all(after >= before - 1e-12)
        assert after[-1] == pytest.approx(1.0)

    def test_no_floor_keeps_historical_semantics(self, trajectory_problem):
        from repro.core.pivot import PivotThresholdSynthesizer

        safe = PivotThresholdSynthesizer(backend="lp", max_rounds=200).synthesize(
            trajectory_problem
        ).threshold
        result = ThresholdRelaxer(backend="lp").relax(trajectory_problem, safe)
        assert result.certified
        assert result.floored_instants == []

    def test_noop_floor_stays_certified(self, trajectory_problem):
        from repro.core.pivot import PivotThresholdSynthesizer

        safe = PivotThresholdSynthesizer(backend="lp", max_rounds=200).synthesize(
            trajectory_problem
        ).threshold
        tiny = 0.5 * float(np.min(safe.values[np.isfinite(safe.values)]))
        result = ThresholdRelaxer(backend="lp", floor=tiny).relax(
            trajectory_problem, safe, verify_input=False
        )
        assert result.floored_instants == []
        assert result.certified


class TestRelaxedPipeline:
    def test_unfloored_vsc_raw_far_saturates_relaxed_does_not(self, vsc_relaxed_report):
        rates = vsc_relaxed_report.far_study.rates
        assert rates["stepwise:raw"] == 1.0          # the ROADMAP saturation
        assert rates["stepwise"] < 1.0               # the relax stage un-saturates it

    def test_report_carries_both_raw_and_relaxed(self, vsc_relaxed_report):
        report = vsc_relaxed_report
        raw = report.synthesis["stepwise"].threshold
        relaxed = report.relaxation["stepwise"].threshold
        assert report.deployed_threshold("stepwise") is relaxed
        lifted = relaxed.effective(50) - raw.effective(50)
        assert np.all(lifted >= -1e-12) and np.any(lifted > 0)
        (row,) = report.summary_rows()
        assert row["false_alarm_rate_raw"] == 1.0
        assert row["false_alarm_rate"] < 1.0
        assert row["relax_certified"] is False       # terminal floor is uncertified

    def test_unrelaxed_schema_unchanged(self, vsc_problem):
        report = run_pipeline(
            vsc_problem,
            SynthesisConfig(algorithms=("static",), max_rounds=150),
            FARConfig(count=10, seed=0, filter_pfc=False, filter_mdc=False),
        )
        assert report.relaxation == {}
        (row,) = report.summary_rows()
        assert set(row) == {
            "algorithm", "rounds", "converged", "solver_time_s", "false_alarm_rate",
        }
        assert report.deployed_threshold("static") is report.synthesis["static"].threshold

    def test_run_fleet_deploys_relaxed_threshold(self):
        config = RuntimeConfig(
            n_instances=8,
            case_study="vsc",
            synthesis=SynthesisConfig(
                algorithms=("stepwise",), max_rounds=150, relax={"floor": 1.0}
            ),
            include_mdc=False,
            seed=0,
        )
        report = run_fleet(config)
        stats = report.detectors["stepwise"]
        # The raw vector's ~0 terminal threshold alarms on every benign
        # instance; the deployed (relaxed) vector must not.
        assert stats.false_alarm_rate < 1.0


class TestKeySplit:
    def test_far_and_probe_variations_share_the_synthesis_key(self):
        base = ExperimentUnit(
            "dcmotor", "lp", "stepwise", relax={"floor": 0.1},
            far=FARConfig(count=10, noise_scale=1.0),
            probe={"n_instances": 4},
        )
        noisy = ExperimentUnit(
            "dcmotor", "lp", "stepwise", relax={"floor": 0.1},
            far=FARConfig(count=50, noise_scale=2.0),
            probe={"n_instances": 8},
        )
        syn_a, eval_a = split_unit_keys(base.to_dict())
        syn_b, eval_b = split_unit_keys(noisy.to_dict())
        assert syn_a == syn_b
        assert eval_a != eval_b
        assert unit_store_key(base.to_dict()) == f"{syn_a}:{eval_a}"
        assert synthesis_store_key(base.to_dict()) == synthesis_store_key(noisy.to_dict())

    def test_synthesis_half_fields_change_the_synthesis_key(self):
        base = ExperimentUnit("dcmotor", "lp", "stepwise").to_dict()
        for variant in (
            ExperimentUnit("dcmotor", "lp", "static"),
            ExperimentUnit("dcmotor", "smt", "stepwise"),
            ExperimentUnit("dcmotor", "lp", "stepwise", min_threshold=0.5),
            ExperimentUnit("dcmotor", "lp", "stepwise", relax={"floor": 1.0}),
            ExperimentUnit("dcmotor", "lp", "stepwise", case_study_options={"horizon": 9}),
        ):
            assert split_unit_keys(variant.to_dict())[0] != split_unit_keys(base)[0]

    def test_unclassified_fields_fail_loudly(self):
        config = ExperimentUnit("dcmotor", "lp", "static").to_dict()
        config["shiny_new_knob"] = 1
        with pytest.raises(ValidationError, match="not classified"):
            split_unit_keys(config)

    def test_noise_variations_issue_zero_solver_calls(self, tmp_path, monkeypatch):
        calls = {"n": 0}
        original = SynthesisSession.solve

        def counted(session, *args, **kwargs):
            calls["n"] += 1
            return original(session, *args, **kwargs)

        monkeypatch.setattr(SynthesisSession, "solve", counted)

        def unit(scale: float) -> ExperimentUnit:
            return ExperimentUnit(
                "dcmotor", "lp", "stepwise",
                case_study_options={"horizon": 8},
                max_rounds=100,
                relax={"floor": 0.01},
                far=FARConfig(count=10, seed=0, noise_scale=scale,
                              filter_pfc=False, filter_mdc=False),
            )

        store = ResultStore(tmp_path / "s")
        runner = BatchRunner(store=store)
        ((_, seeded),) = runner.run_units([unit(1.0)])
        assert seeded.error is None and calls["n"] > 0
        calls["n"] = 0

        pairs = runner.run_units([unit(scale) for scale in (0.5, 1.5, 2.0)])
        assert calls["n"] == 0
        assert runner.synthesis_reused == 3
        rates = [row.false_alarm_rate for _, row in pairs]
        assert all(rate is not None for rate in rates)
        # The evaluation half really re-ran: rates move with the noise scale.
        assert len(set(rates)) > 1

    def test_reused_synthesis_matches_fresh_rows(self, tmp_path):
        def unit(scale: float) -> ExperimentUnit:
            return ExperimentUnit(
                "dcmotor", "lp", "stepwise",
                case_study_options={"horizon": 8},
                max_rounds=100,
                far=FARConfig(count=10, seed=0, noise_scale=scale,
                              filter_pfc=False, filter_mdc=False),
            )

        def comparable(row) -> dict:
            data = row.to_dict()
            data.pop("solver_time_s")          # wall clock: not reproducible
            return data

        fresh_runner = BatchRunner()
        fresh = [comparable(row) for _, row in fresh_runner.run_units([unit(0.5), unit(2.0)])]

        store = ResultStore(tmp_path / "s")
        warm_runner = BatchRunner(store=store)
        warm_runner.run_units([unit(1.0)])                     # seed the synthesis record
        reused = [
            comparable(row) for _, row in warm_runner.run_units([unit(0.5), unit(2.0)])
        ]
        assert warm_runner.synthesis_reused == 2
        assert reused == fresh


class TestUnflooredVscExploration:
    def test_relaxed_front_is_not_far_saturated(self, tmp_path):
        """Acceptance: every front point of the un-floored VSC has FAR < 100 %."""
        space = SearchSpace(
            case_studies=("vsc",),
            synthesizers=("stepwise",),
            min_thresholds=(0.0,),            # un-floored synthesis
            noise_scales=(0.5, 1.0),
            relax={"floor": 1.0},
            far_count=60,
            probe_instances=0,
            max_rounds=150,
        )
        report = Explorer(space, "grid", store=tmp_path / "s").run()
        assert report.errors == []
        front = report.front()
        assert front
        assert all(row["false_alarm_rate"] < 1.0 for row in front)
        # The raw (pre-relax) vectors saturate on every explored point.
        assert all(row["false_alarm_rate_raw"] == 1.0 for row in report.rows)
