"""Unit tests for LTI structural and response analysis."""

import numpy as np
import pytest

from repro.lti.analysis import (
    dc_gain,
    impulse_response,
    is_controllable,
    is_observable,
    is_stable,
    settling_time,
    stability_margin,
    step_response,
)
from repro.lti.model import StateSpace
from repro.utils.validation import ValidationError


@pytest.fixture
def stable_first_order():
    return StateSpace(A=np.array([[0.5]]), B=np.array([[1.0]]), C=np.array([[1.0]]), dt=1.0)


class TestStability:
    def test_discrete_stable(self, stable_first_order):
        assert is_stable(stable_first_order)
        assert stability_margin(stable_first_order) == pytest.approx(0.5)

    def test_discrete_unstable(self):
        model = StateSpace(A=np.array([[1.2]]), B=np.eye(1), C=np.eye(1), dt=1.0)
        assert not is_stable(model)
        assert stability_margin(model) < 0

    def test_continuous_stability(self):
        model = StateSpace(A=np.array([[-2.0]]), B=np.eye(1), C=np.eye(1))
        assert is_stable(model)
        assert stability_margin(model) == pytest.approx(2.0)

    def test_structural(self, double_integrator):
        assert is_controllable(double_integrator)
        assert is_observable(double_integrator)


class TestResponses:
    def test_dc_gain_discrete(self, stable_first_order):
        # Steady state of x = 0.5 x + u is 2 u.
        assert dc_gain(stable_first_order)[0, 0] == pytest.approx(2.0)

    def test_dc_gain_continuous(self):
        model = StateSpace(A=np.array([[-2.0]]), B=np.array([[4.0]]), C=np.array([[1.0]]))
        assert dc_gain(model)[0, 0] == pytest.approx(2.0)

    def test_step_response_converges_to_dc_gain(self, stable_first_order):
        response = step_response(stable_first_order, horizon=60)
        assert response[-1, 0] == pytest.approx(dc_gain(stable_first_order)[0, 0], rel=1e-6)

    def test_step_response_requires_discrete(self, double_integrator_continuous):
        with pytest.raises(ValidationError):
            step_response(double_integrator_continuous, horizon=5)

    def test_step_response_bad_input_index(self, stable_first_order):
        with pytest.raises(ValidationError):
            step_response(stable_first_order, horizon=5, input_index=3)

    def test_impulse_response_sums_to_dc_gain(self, stable_first_order):
        response = impulse_response(stable_first_order, horizon=80)
        assert response.sum() == pytest.approx(dc_gain(stable_first_order)[0, 0], rel=1e-6)

    def test_impulse_response_bad_index(self, stable_first_order):
        with pytest.raises(ValidationError):
            impulse_response(stable_first_order, horizon=5, input_index=2)


class TestSettlingTime:
    def test_settles_immediately(self):
        assert settling_time(np.ones(10)) == 0

    def test_never_settles(self):
        signal = np.concatenate([np.zeros(5), [10.0], np.zeros(4), [1.0]])
        # The final value is 1.0; earlier samples deviate by more than 2 %.
        assert settling_time(signal) == len(signal) - 1

    def test_settling_index(self):
        signal = np.array([0.0, 0.5, 0.9, 0.99, 1.0, 1.0, 1.0])
        assert settling_time(signal, final_value=1.0) == 3

    def test_multivariate(self):
        signal = np.column_stack([np.linspace(0, 1, 50), np.ones(50)])
        index = settling_time(signal)
        assert 0 < index < 50
