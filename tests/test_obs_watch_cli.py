"""Tests for ``python -m repro.obs.watch`` (`repro.obs.watch.cli`)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.watch.cli import _sparkline, main

REPO_ROOT = Path(__file__).resolve().parents[1]

BENIGN = [100.0, 101.0, 99.0, 102.0, 98.0, 100.0, 101.0, 99.0, 100.0, 102.0]


def _write_history(directory, name, values, metric="throughput"):
    records = [
        {
            "name": name,
            "timestamp": float(index),
            "timing_disabled": False,
            "git_sha": f"sha{index:04d}",
            "git_dirty": False,
            metric: value,
        }
        for index, value in enumerate(values)
    ]
    (directory / f"BENCH_{name}.json").write_text(json.dumps(records))


class TestSparkline:
    def test_levels_span_the_range(self):
        assert _sparkline([0.0, 1.0]) == "▁█"
        assert _sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
        assert _sparkline([]) == ""


class TestCheck:
    def test_clean_history_exits_zero(self, tmp_path, capsys):
        _write_history(tmp_path, "test_clean", BENIGN + BENIGN)
        assert main(["check", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "test_clean/throughput" in out

    def test_injected_step_change_gates_with_onset(self, tmp_path, capsys):
        step_at = 14
        values = BENIGN + [100.0, 99.0, 101.0, 100.0] + [50.0] * 6
        _write_history(tmp_path, "test_step", values)
        assert main(["check", str(tmp_path), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        [row] = [r for r in report["series"] if r["series"] == "test_step/throughput"]
        assert row["status"] == "regression"
        assert abs(row["onset"] - step_at) <= 2
        # Provenance attributes the onset to a record's commit.
        assert row["onset_sha"].startswith("sha")
        assert report["regressions"] == ["test_step/throughput"]

    def test_unmodified_copy_of_same_history_stays_quiet(self, tmp_path):
        _write_history(tmp_path, "test_same", BENIGN + [100.0, 99.0, 101.0, 100.0] * 3)
        assert main(["check", str(tmp_path)]) == 0

    def test_short_history_is_warn_only(self, tmp_path, capsys):
        # Even a catastrophic drop cannot gate while under the warm-up window.
        _write_history(tmp_path, "test_short", [100.0, 100.0, 5.0])
        assert main(["check", str(tmp_path)]) == 0
        assert "warming-up" in capsys.readouterr().out

    def test_ignore_silences_a_known_regression(self, tmp_path):
        values = BENIGN + [50.0] * 6
        _write_history(tmp_path, "test_known", values)
        assert main(["check", str(tmp_path)]) == 1
        assert main(["check", str(tmp_path), "--ignore", "test_known/*"]) == 0

    def test_output_file_and_stderr_summary(self, tmp_path, capsys):
        _write_history(tmp_path, "test_out", BENIGN + BENIGN)
        out_file = tmp_path / "watch-report.json"
        assert (
            main(["check", str(tmp_path), "--format", "json", "--output", str(out_file)])
            == 0
        )
        report = json.loads(out_file.read_text())
        assert report["counts"] == {"ok": 1}
        assert "report written to" in capsys.readouterr().err

    def test_policy_knobs_change_the_verdict(self, tmp_path):
        values = BENIGN + [50.0] * 6
        _write_history(tmp_path, "test_knobs", values)
        # An absurd threshold swallows the drop.
        assert (
            main(["check", str(tmp_path), "--threshold-mads", "1e9"]) == 0
        )
        # A longer warm-up leaves the series warming up.
        assert main(["check", str(tmp_path), "--window", "30"]) == 0

    def test_invalid_policy_is_a_usage_error(self, tmp_path):
        assert main(["check", str(tmp_path), "--window", "1"]) == 2

    def test_jsonl_history_is_accepted(self, tmp_path):
        path = tmp_path / "acc.jsonl"
        with path.open("w") as handle:
            for index, value in enumerate(BENIGN + [50.0] * 6):
                handle.write(
                    json.dumps(
                        {
                            "name": "test_acc",
                            "timestamp": float(index),
                            "timing_disabled": False,
                            "throughput": value,
                        }
                    )
                    + "\n"
                )
        assert main(["check", str(path)]) == 1

    def test_real_repo_bench_files_all_parse(self, capsys):
        """Acceptance: the CLI consumes every committed BENCH record."""
        if not sorted(REPO_ROOT.glob("BENCH_*.json")):
            pytest.skip("no BENCH_*.json trajectory in this checkout")
        total = sum(
            len(json.loads(p.read_text())) for p in REPO_ROOT.glob("BENCH_*.json")
        )
        code = main(["check", str(REPO_ROOT), "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert report["skipped_files"] == []
        # Dedupe can only remove byte-identical records, never lose content.
        assert report["records"] <= total
        assert report["series"], "the committed trajectory yields watchable series"
        # Exit code reflects the current trajectory's health; both outcomes
        # are legal here, but the scan itself must complete.
        assert code in (0, 1)


class TestReport:
    def test_trend_summary_renders_sparkline_and_change(self, tmp_path, capsys):
        _write_history(tmp_path, "test_trend", BENIGN + [90.0])
        assert main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "test_trend/throughput" in out
        assert "▁" in out or "█" in out
        assert "% vs baseline median" in out

    def test_report_never_gates(self, tmp_path):
        _write_history(tmp_path, "test_gate", BENIGN + [50.0] * 6)
        assert main(["report", str(tmp_path)]) == 0

    def test_unwatched_metrics_are_listed(self, tmp_path, capsys):
        _write_history(tmp_path, "test_const", [1.0] * 12, metric="instance_steps")
        main(["report", str(tmp_path)])
        assert "unwatched" in capsys.readouterr().out


class TestModuleEntryPoint:
    def test_python_dash_m_runs(self, tmp_path):
        _write_history(tmp_path, "test_entry", BENIGN + BENIGN)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.watch", "check", str(tmp_path)],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "test_entry/throughput" in proc.stdout
