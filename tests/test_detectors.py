"""Unit tests for threshold vectors, residue detectors, baselines and metrics."""

import numpy as np
import pytest

from repro.detectors.chi_square import ChiSquareDetector
from repro.detectors.cusum import CusumDetector
from repro.detectors.evaluation import (
    detection_delay,
    detection_rate,
    evaluate_detector,
    false_alarm_rate,
    roc_curve,
)
from repro.detectors.residue import ResidueDetector
from repro.detectors.threshold import ThresholdVector
from repro.utils.validation import ValidationError


class TestThresholdVector:
    def test_static_and_unset_constructors(self):
        static = ThresholdVector.static(0.5, 4)
        assert static.is_static and static.is_fully_set
        unset = ThresholdVector.unset(4)
        assert not unset.is_fully_set
        assert unset.set_indices().size == 0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValidationError):
            ThresholdVector(np.array([-1.0]))

    def test_variable_detection(self):
        assert ThresholdVector(np.array([2.0, 1.0])).is_variable
        assert not ThresholdVector(np.array([1.0, 1.0])).is_variable

    def test_monotone_decreasing_ignores_unset(self):
        values = np.array([3.0, np.inf, 2.0, np.inf, 1.0])
        assert ThresholdVector(values).is_monotone_decreasing()
        assert not ThresholdVector(np.array([1.0, 2.0])).is_monotone_decreasing()

    def test_monotone_cap(self):
        th = ThresholdVector(np.array([2.0, np.inf, np.inf]))
        assert th.monotone_cap(2, 5.0) == pytest.approx(2.0)
        assert th.monotone_cap(2, 1.0) == pytest.approx(1.0)
        assert th.monotone_cap(0, 9.0) == pytest.approx(9.0)

    def test_clamp_successors(self):
        th = ThresholdVector(np.array([3.0, 2.5, 2.8, np.inf]))
        th.clamp_successors(1)
        np.testing.assert_allclose(th.values[:3], [3.0, 2.5, 2.5])
        assert not th.is_set(3)

    def test_fill_step_and_edges(self):
        th = ThresholdVector.unset(5)
        th.fill_step(0, 2, 3.0)
        th.fill_step(3, 4, 1.0)
        assert th.step_edges() == [3]
        assert th.is_staircase()

    def test_effective_extension_and_truncation(self):
        th = ThresholdVector(np.array([2.0, 1.0]))
        np.testing.assert_allclose(th.effective(4), [2.0, 1.0, 1.0, 1.0])
        np.testing.assert_allclose(th.effective(1), [2.0])

    def test_alarm_semantics_at_equality(self):
        th = ThresholdVector(np.array([1.0, 1.0]))
        residues = np.array([[1.0], [0.5]])
        np.testing.assert_array_equal(th.alarms(residues), [True, False])
        assert not th.admits(residues)

    def test_weighted_norms(self):
        th = ThresholdVector(np.array([1.0]), weights=np.array([0.1, 10.0]))
        residues = np.array([[0.2, 5.0]])
        # Weighted: max(0.2/0.1, 5/10) = 2.0
        assert th.residue_norms(residues)[0] == pytest.approx(2.0)
        assert th.alarms(residues)[0]

    def test_weights_must_be_positive(self):
        with pytest.raises(ValidationError):
            ThresholdVector(np.array([1.0]), weights=np.array([0.0]))

    def test_norm_options(self):
        residues = np.array([[3.0, 4.0]])
        assert ThresholdVector(np.array([1.0]), norm=2).residue_norms(residues)[0] == pytest.approx(5.0)
        assert ThresholdVector(np.array([1.0]), norm="inf").residue_norms(residues)[0] == pytest.approx(4.0)
        assert ThresholdVector(np.array([1.0]), norm=1).residue_norms(residues)[0] == pytest.approx(7.0)
        with pytest.raises(ValidationError):
            ThresholdVector(np.array([1.0]), norm=3)

    def test_copy_is_deep(self):
        th = ThresholdVector(np.array([1.0, 2.0]), weights=np.array([1.0]))
        other = th.copy()
        other.set_value(0, 5.0)
        assert th[0] == 1.0


class TestResidueDetector:
    def test_static_constructor_and_detection(self):
        detector = ResidueDetector.static(0.5, 3)
        residues = np.array([[0.1], [0.6], [0.2]])
        result = detector.evaluate(residues)
        assert result.detected
        assert result.first_alarm == 1
        assert result.alarm_count == 1

    def test_stealthy_sequence(self):
        detector = ResidueDetector.static(1.0, 3)
        residues = np.full((3, 1), 0.5)
        assert detector.is_stealthy(residues)
        assert detector.evaluate(residues).first_alarm is None

    def test_variable_threshold_behaviour(self):
        detector = ResidueDetector(ThresholdVector(np.array([1.0, 0.1])))
        residues = np.array([[0.5], [0.5]])
        result = detector.evaluate(residues)
        np.testing.assert_array_equal(result.alarms, [False, True])

    def test_evaluate_trace(self, simple_closed_loop):
        from repro.lti.simulate import SimulationOptions, simulate_closed_loop

        trace = simulate_closed_loop(simple_closed_loop, SimulationOptions(horizon=10))
        detector = ResidueDetector.static(10.0, 10)
        result = detector.evaluate_trace(trace)
        assert not result.detected


class TestChiSquare:
    def test_threshold_from_false_alarm_probability(self):
        detector = ChiSquareDetector.from_false_alarm_probability(np.eye(2), 0.05)
        assert detector.threshold == pytest.approx(5.99, rel=1e-2)

    def test_detects_large_residue(self):
        detector = ChiSquareDetector(innovation_cov=np.eye(2), threshold=4.0)
        assert detector.detects(np.array([[3.0, 0.0]]))
        assert not detector.detects(np.array([[1.0, 0.0]]))

    def test_empirical_false_alarm_rate(self):
        rng = np.random.default_rng(0)
        detector = ChiSquareDetector.from_false_alarm_probability(np.eye(1), 0.05)
        samples = rng.normal(size=(20000, 1))
        rate = np.mean(detector.statistics(samples) >= detector.threshold)
        assert rate == pytest.approx(0.05, abs=0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            ChiSquareDetector(np.eye(2), threshold=-1.0)
        with pytest.raises(ValidationError):
            ChiSquareDetector.from_false_alarm_probability(np.eye(2), 0.0)


class TestCusum:
    def test_accumulates_persistent_shift(self):
        detector = CusumDetector(bias=0.5, threshold=2.0)
        residues = np.full((10, 1), 1.0)
        statistics = detector.statistics(residues)
        assert statistics[-1] == pytest.approx(5.0)
        assert detector.detects(residues)

    def test_ignores_small_residues(self):
        detector = CusumDetector(bias=0.5, threshold=2.0)
        assert not detector.detects(np.full((10, 1), 0.2))

    def test_resets_towards_zero(self):
        detector = CusumDetector(bias=1.0, threshold=10.0)
        residues = np.array([[2.0], [0.0], [0.0], [0.0]])
        statistics = detector.statistics(residues)
        assert statistics[-1] == pytest.approx(0.0)

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            CusumDetector(bias=0.0, threshold=1.0)
        with pytest.raises(ValidationError):
            CusumDetector(bias=1.0, threshold=1.0, norm=5)


class TestEvaluationMetrics:
    def _populations(self):
        benign = [np.full((5, 1), 0.1) for _ in range(4)]
        attacked = [np.full((5, 1), 2.0) for _ in range(4)]
        return benign, attacked

    def test_far_and_detection_rate(self):
        benign, attacked = self._populations()
        detector = ResidueDetector.static(1.0, 5)
        assert false_alarm_rate(detector, benign) == 0.0
        assert detection_rate(detector, attacked) == 1.0

    def test_detection_delay(self):
        detector = ResidueDetector.static(1.0, 5)
        attacked = [np.vstack([np.zeros((3, 1)), np.full((2, 1), 2.0)])]
        assert detection_delay(detector, attacked) == pytest.approx(3.0)
        assert detection_delay(detector, [np.zeros((5, 1))]) is None

    def test_evaluate_detector_aggregate(self):
        benign, attacked = self._populations()
        summary = evaluate_detector(ResidueDetector.static(1.0, 5), benign, attacked)
        assert summary.false_alarm_rate == 0.0
        assert summary.detection_rate == 1.0
        assert summary.benign_count == 4

    def test_roc_curve_monotone_in_threshold(self):
        benign, attacked = self._populations()
        curve = roc_curve(
            lambda value: ResidueDetector.static(value, 5),
            thresholds=[0.05, 1.0, 3.0],
            benign_residues=benign,
            attacked_residues=attacked,
        )
        fars = [point[1] for point in curve]
        assert fars[0] >= fars[1] >= fars[2]

    def test_empty_population_rejected(self):
        detector = ResidueDetector.static(1.0, 5)
        with pytest.raises(ValidationError):
            false_alarm_rate(detector, [])
        with pytest.raises(ValidationError):
            detection_rate(detector, [])
