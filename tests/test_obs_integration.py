"""Cross-layer observability: one registry captures synthesis through serving.

The acceptance path of the ``repro.obs`` subsystem: with metrics enabled, a
``run_pipeline`` → ``run_fleet`` → ``MonitorService`` pass must surface
per-layer timings in one merged report, batch workers must ship their
metrics back across process boundaries, and the service's ``stats()`` dict
must stay bit-compatible with its pre-registry shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ExperimentSpec, FARConfig, run_experiments
from repro.api.config import RuntimeConfig, SynthesisConfig
from repro.api.execute import run_pipeline
from repro.obs import (
    MetricsRegistry,
    PeriodicScraper,
    Tracer,
    parse_prometheus_text,
    text_report,
    use_registry,
    use_tracer,
)
from repro.runtime.engine import run_fleet
from repro.serve import MonitorService


def _fleet_config() -> RuntimeConfig:
    return RuntimeConfig(
        n_instances=50,
        horizon=40,
        static_thresholds={"static": 0.1},
        attacks=[{"template": "bias", "options": {"bias": 0.5}, "fraction": 0.2, "start": 10}],
        include_mdc=False,
        seed=0,
    )


class TestMergedReport:
    def test_pipeline_fleet_service_share_one_registry(self, dcmotor_problem, tmp_path):
        """Every layer's timings land in the same registry, scraped to one file."""
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            pipeline = run_pipeline(
                dcmotor_problem,
                synthesis=SynthesisConfig(algorithms=("static",), backend="lp"),
                far=FARConfig(count=10, seed=0, filter_pfc=False, filter_mdc=False),
            )
            report = run_fleet(_fleet_config(), dcmotor_problem)

        service = MonitorService(
            dcmotor_problem.system,
            {"static": pipeline.deployed_threshold("static")},
            metrics=registry,
        )
        service.attach()
        m = dcmotor_problem.system.plant.n_outputs
        rng = np.random.default_rng(0)
        for _ in range(5):
            service.ingest(0, rng.normal(size=m))
        service.close()

        # Synthesis layer: session builds and solver calls.
        assert registry.get("synthesis_sessions_total").total() >= 1
        assert registry.get("synthesis_solve_seconds").total_count() >= 1
        # Pipeline layer: one timing cell per executed stage.
        stages = {
            cell["labels"]["stage"]
            for cell in registry.snapshot()["histograms"]["pipeline_stage_seconds"]["values"]
        }
        assert stages == {"vulnerability", "synthesis", "far"}
        # Runtime layer: the fleet's step/alarm counters match its report.
        assert registry.get("fleet_steps_total").total() == report.instance_steps
        assert registry.get("fleet_run_seconds").total_count() == 1
        assert registry.get("fleet_alarms_total").total() == sum(
            stats.alarm_count for stats in report.detectors.values()
        )
        # Serving layer: ingest counters recorded into the same registry.
        assert registry.get("serve_samples_ingested_total").total() == 5
        assert registry.get("serve_rounds_total").total() == 5

        # One merged human-readable report covers all four layers.
        merged = text_report(registry)
        for family in (
            "synthesis_solve_seconds",
            "pipeline_stage_seconds",
            "fleet_run_seconds",
            "serve_round_seconds",
        ):
            assert family in merged

        # And the whole merged registry survives the Prometheus transport.
        scraper = PeriodicScraper(tmp_path / "merged.prom", registry=registry)
        scraper.scrape()
        assert parse_prometheus_text(scraper.path.read_text()) == registry.snapshot()

    def test_spans_nest_across_pipeline_and_fleet(self, dcmotor_problem):
        tracer = Tracer(enabled=True)
        with use_tracer(tracer):
            run_pipeline(
                dcmotor_problem,
                synthesis=SynthesisConfig(algorithms=("static",), backend="lp"),
            )
            run_fleet(_fleet_config(), dcmotor_problem)
        names = {record.name for record in tracer.records}
        assert {
            "pipeline.vulnerability",
            "pipeline.synthesis",
            "synthesis.solve",
            "fleet.run",
        } <= names
        # Solver spans nest under the pipeline stage that issued them.
        by_id = {record.span_id: record for record in tracer.records}
        parents = {
            by_id[record.parent_id].name
            for record in tracer.records
            if record.name == "synthesis.solve" and record.parent_id is not None
        }
        assert parents <= {"pipeline.vulnerability", "pipeline.synthesis"}
        assert parents  # at least one solver call was traced under a stage
        # The flamegraph aggregates the cross-layer run into folded stacks.
        assert "pipeline.synthesis;synthesis.solve" in tracer.flamegraph()


class TestBatchWorkerMetrics:
    @pytest.fixture(scope="class")
    def spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            name="obs-sweep",
            case_studies=("dcmotor", "trajectory"),
            backends=("lp",),
            algorithms=("static",),
            case_study_options={"dcmotor": {"horizon": 8}, "trajectory": {"horizon": 8}},
            far=FARConfig(count=10, seed=0, filter_pfc=False, filter_mdc=False),
        )

    def test_workers_ship_metrics_back_to_parent(self, spec):
        """Each pool worker records into a scoped registry whose snapshot is
        merged into the parent — solver counters recorded in child processes
        must be visible in the parent registry afterwards."""
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            result = run_experiments(spec, workers=2)
        assert result.errors == []
        assert registry.get("batch_units_total").total() == spec.size == 2
        assert registry.get("batch_group_seconds").total_count() == 2
        assert registry.get("batch_workers").value() == 2
        utilization = registry.get("batch_worker_utilization").value()
        assert 0.0 < utilization <= 1.0
        # Recorded only inside the workers' scoped registries: their arrival
        # here proves the snapshot/merge transport across processes.
        assert registry.get("synthesis_solves_total").total() >= 2

    def test_serial_runner_records_into_same_registry(self, spec):
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            result = run_experiments(spec, workers=1)
        assert result.errors == []
        assert registry.get("batch_units_total").total() == 2
        assert registry.get("synthesis_solves_total").total() >= 2

    def test_disabled_registry_ships_nothing(self, spec):
        registry = MetricsRegistry(enabled=False)
        with use_registry(registry):
            result = run_experiments(spec, workers=2)
        assert result.errors == []
        assert registry.get("batch_units_total") is None or (
            registry.get("batch_units_total").total() == 0.0
        )


class TestServiceStatsCompat:
    def test_stats_keys_bit_compatible(self, dcmotor_problem):
        """The registry-backed stats() keeps the exact pre-registry shape."""
        service = MonitorService(
            dcmotor_problem.system,
            {"static": dcmotor_problem.static_threshold(0.5)},
        )
        service.attach()
        service.attach()
        m = dcmotor_problem.system.plant.n_outputs
        rng = np.random.default_rng(1)
        for _ in range(3):
            service.ingest(0, rng.normal(size=m))
            service.ingest(1, rng.normal(size=m))
        stats = service.stats()
        assert set(stats) == {
            "members",
            "pending",
            "samples_ingested",
            "samples_dropped",
            "rounds_processed",
            "alarms_emitted",
            "swaps_applied",
            "detectors",
            "residue_source",
        }
        assert stats["members"] == [0, 1]
        assert stats["samples_ingested"] == 6
        assert stats["rounds_processed"] == 3
        assert isinstance(stats["samples_ingested"], int)
        assert isinstance(stats["alarms_emitted"], int)
        service.close()

    def test_service_scraper_refreshes_per_round(self, dcmotor_problem, tmp_path):
        service = MonitorService(
            dcmotor_problem.system,
            {"static": dcmotor_problem.static_threshold(0.5)},
        )
        scraper = PeriodicScraper(
            tmp_path / "serve.prom", registry=service.metrics, interval_s=0.0
        )
        service.scraper = scraper
        service.attach()
        m = dcmotor_problem.system.plant.n_outputs
        rng = np.random.default_rng(2)
        for _ in range(4):
            service.ingest(0, rng.normal(size=m))
        assert scraper.scrapes == 4  # interval 0: one refresh per round
        service.close()
        assert scraper.scrapes == 5  # close() flushes a final scrape
        parsed = parse_prometheus_text(scraper.path.read_text())
        assert parsed == service.metrics.snapshot()
