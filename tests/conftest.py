"""Shared fixtures for the test suite.

The fixtures centralise the small plants and closed loops used across many
test modules so individual tests stay focused on behaviour, not setup.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.lqr import lqr_gain
from repro.estimation.kalman import steady_state_kalman
from repro.lti.discretize import zoh
from repro.lti.model import StateSpace
from repro.lti.simulate import ClosedLoopSystem
from repro.systems.dcmotor import build_dcmotor_case_study
from repro.systems.trajectory import build_trajectory_case_study


@pytest.fixture(scope="session")
def double_integrator_continuous() -> StateSpace:
    """Continuous-time double integrator with position measurement."""
    return StateSpace(
        A=np.array([[0.0, 1.0], [0.0, 0.0]]),
        B=np.array([[0.0], [1.0]]),
        C=np.array([[1.0, 0.0]]),
        Q_w=np.diag([0.0, 1e-4]),
        R_v=np.array([[1e-4]]),
        name="double-integrator",
    )


@pytest.fixture(scope="session")
def double_integrator(double_integrator_continuous) -> StateSpace:
    """Discretised double integrator (dt = 0.1 s)."""
    return zoh(double_integrator_continuous, 0.1)


@pytest.fixture(scope="session")
def simple_closed_loop(double_integrator) -> ClosedLoopSystem:
    """LQR + Kalman closed loop around the double integrator."""
    K = lqr_gain(double_integrator, Q=np.diag([10.0, 1.0]), R=np.array([[1.0]]))
    L, _ = steady_state_kalman(double_integrator)
    return ClosedLoopSystem(plant=double_integrator, K=K, L=L)


@pytest.fixture(scope="session")
def dcmotor_problem():
    """The DC-motor synthesis problem (smallest, fastest benchmark)."""
    return build_dcmotor_case_study().problem


@pytest.fixture(scope="session")
def small_dcmotor_problem():
    """A short-horizon DC-motor problem for the slower (SMT) backend tests."""
    return build_dcmotor_case_study(horizon=8).problem


@pytest.fixture(scope="session")
def small_trajectory_problem():
    """A short-horizon trajectory problem for the slower (SMT) backend tests."""
    return build_trajectory_case_study(horizon=6).problem


@pytest.fixture(scope="session")
def trajectory_problem():
    """The trajectory-tracking synthesis problem of Fig. 1."""
    return build_trajectory_case_study().problem


@pytest.fixture(scope="session")
def stable_random_plant() -> StateSpace:
    """A randomly generated but fixed stable discrete plant (3 states, 2 outputs)."""
    rng = np.random.default_rng(1234)
    A = rng.normal(size=(3, 3))
    A = 0.6 * A / np.max(np.abs(np.linalg.eigvals(A)))
    B = rng.normal(size=(3, 1))
    C = rng.normal(size=(2, 3))
    return StateSpace(
        A=A,
        B=B,
        C=C,
        Q_w=np.eye(3) * 1e-4,
        R_v=np.eye(2) * 1e-3,
        dt=0.1,
        name="random-stable",
    )
