"""Tests for repro.explore.space: SearchSpace, points, samplers."""

import pytest

from repro.explore import (
    AdaptiveBisectionSampler,
    ExplorePoint,
    GridSampler,
    SearchSpace,
)
from repro.registry import SAMPLERS, available_samplers, register_sampler
from repro.utils.validation import ValidationError


class TestSearchSpace:
    def test_grid_size_and_points(self):
        space = SearchSpace(
            case_studies=("dcmotor", "trajectory"),
            synthesizers=("stepwise",),
            min_thresholds=(0.0, 0.01),
            noise_scales=(0.5, 1.0, 2.0),
            far_budgets=(0.1, 1.0),
        )
        assert space.size == 2 * 1 * 1 * 1 * 1 * 3 * 2 * 2
        points = space.points()
        assert len(points) == space.size
        assert len(set(points)) == space.size  # hashable + unique

    def test_axes_are_sorted_and_deduped(self):
        space = SearchSpace(noise_scales=(2.0, 0.5, 2.0), min_thresholds=(0.02, 0.0))
        assert space.noise_scales == (0.5, 2.0)
        assert space.min_thresholds == (0.0, 0.02)

    def test_unknown_names_rejected(self):
        with pytest.raises(ValidationError, match="case_studies"):
            SearchSpace(case_studies=("no-such-plant",))
        with pytest.raises(ValidationError, match="synthesizers"):
            SearchSpace(synthesizers=("no-such-algorithm",))
        with pytest.raises(ValidationError, match="deployed"):
            SearchSpace(detectors=("chi-square",))
        with pytest.raises(ValidationError, match="probe attack"):
            SearchSpace(probe_attack="no-such-template")

    def test_json_round_trip(self):
        space = SearchSpace(
            case_studies=("dcmotor",),
            horizons=(8, 10),
            min_thresholds=(0.0, 0.01, 0.02),
            far_count=50,
            probe_instances=12,
            probe_attack_options={"bias": 0.4},
        )
        assert SearchSpace.from_json(space.to_json()) == space

    def test_unit_lowering(self):
        space = SearchSpace(
            case_studies=("dcmotor",), horizons=(8,), far_count=30, probe_instances=16
        )
        point = space.points()[0]
        unit = space.unit(point)
        assert unit.case_study == "dcmotor"
        assert unit.case_study_options == {"horizon": 8}
        assert unit.algorithm == point.synthesizer
        assert unit.far.count == 30
        assert unit.probe["n_instances"] == 16
        assert unit.probe["detector"] == point.detector

    def test_far_budget_not_in_unit_payload(self):
        """Points differing only in budget must share one content address."""
        space = SearchSpace(case_studies=("dcmotor",), far_budgets=(0.05, 1.0))
        low, high = space.points()
        assert low.far_budget != high.far_budget
        assert space.unit(low).to_dict() == space.unit(high).to_dict()

    def test_probe_disabled(self):
        space = SearchSpace(probe_instances=0, far_count=0)
        unit = space.unit(space.points()[0])
        assert unit.probe is None
        assert unit.far is None


class TestSamplers:
    def test_registered(self):
        assert "grid" in available_samplers()
        assert "adaptive-bisection" in available_samplers()

    def test_custom_sampler_registration(self):
        @register_sampler("test-one-point")
        class OnePoint(GridSampler):
            def initial(self, space):
                return space.points()[:1]

        try:
            sampler = SAMPLERS.create("test-one-point")
            assert len(sampler.initial(SearchSpace(noise_scales=(0.5, 1.0)))) == 1
        finally:
            SAMPLERS.unregister("test-one-point")

    def test_grid_sampler_is_exhaustive_and_terminates(self):
        space = SearchSpace(noise_scales=(0.5, 1.0), min_thresholds=(0.0, 0.01))
        sampler = GridSampler()
        assert sampler.initial(space) == space.points()
        assert sampler.refine(space, [{"noise_scale": 0.5}]) == []

    def test_adaptive_initial_is_numeric_box_corners(self):
        space = SearchSpace(
            noise_scales=(0.5, 1.0, 2.0, 4.0), min_thresholds=(0.0, 0.01, 0.02)
        )
        initial = AdaptiveBisectionSampler().initial(space)
        scales = {p.noise_scale for p in initial}
        floors = {p.min_threshold for p in initial}
        assert scales == {0.5, 4.0} and floors == {0.0, 0.02}
        assert len(initial) == 4

    @staticmethod
    def _row(point: ExplorePoint, far: float) -> dict:
        return {
            **point.coordinates(),
            "status": "sat",
            "false_alarm_rate": far,
            "mean_detection_latency": 0.0,
            "stealth_margin": 0.5,
            "error": None,
            "feasible": True,
        }

    def _point(self, scale: float) -> ExplorePoint:
        return ExplorePoint(
            case_study="dcmotor",
            synthesizer="stepwise",
            backend="lp",
            detector="online-residue",
            horizon=None,
            noise_scale=scale,
            min_threshold=0.0,
            far_budget=1.0,
        )

    def test_adaptive_bisects_only_varying_intervals(self):
        scales = (0.25, 0.5, 1.0, 2.0, 4.0)
        space = SearchSpace(noise_scales=scales)
        sampler = AdaptiveBisectionSampler()
        rows = [self._row(self._point(0.25), 0.0), self._row(self._point(4.0), 0.8)]
        proposals = sampler.refine(space, rows)
        assert [p.noise_scale for p in proposals] == [1.0]

        # Same endpoint metrics: the interval is a plateau, nothing proposed.
        flat = [self._row(self._point(0.25), 0.2), self._row(self._point(4.0), 0.2)]
        assert sampler.refine(space, flat) == []

    def test_adaptive_tolerance_treats_near_equal_as_plateau(self):
        space = SearchSpace(noise_scales=(0.25, 0.5, 1.0))
        rows = [self._row(self._point(0.25), 0.10), self._row(self._point(1.0), 0.15)]
        assert AdaptiveBisectionSampler(tolerance=0.1).refine(space, rows) == []
        assert [
            p.noise_scale for p in AdaptiveBisectionSampler(tolerance=0.0).refine(space, rows)
        ] == [0.5]

    def test_adaptive_converges_to_full_variation_region(self):
        """Distinct metrics everywhere: repeated refinement covers the grid."""
        scales = tuple(float(s) for s in range(1, 10))
        space = SearchSpace(noise_scales=scales)
        sampler = AdaptiveBisectionSampler()
        rows = [self._row(p, p.noise_scale / 10.0) for p in sampler.initial(space)]
        rounds = 0
        while True:
            proposals = sampler.refine(space, rows)
            if not proposals:
                break
            rounds += 1
            assert rounds < 20, "refinement failed to terminate"
            rows.extend(self._row(p, p.noise_scale / 10.0) for p in proposals)
        assert {row["noise_scale"] for row in rows} == set(scales)
