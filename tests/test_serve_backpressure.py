"""Tests for the back-pressure-aware buffered sink layer."""

import pytest

from repro.runtime.events import AlarmEvent, InMemorySink, JSONLSink
from repro.serve import BufferedSink
from repro.utils.validation import ValidationError


def _events(count, start=0):
    return [AlarmEvent(instance=0, step=start + k, detector="static") for k in range(count)]


class TestBlockPolicy:
    def test_never_loses_events_and_never_deadlocks(self):
        inner = InMemorySink()
        sink = BufferedSink(inner, capacity=4, policy="block")
        # 25 events through a 4-slot queue: overflow forces synchronous
        # flushes on the producer's own call stack — the emit() calls all
        # return (nothing to wait on), and every event survives.
        for batch in range(5):
            sink.emit(_events(5, start=batch * 5))
        sink.flush()
        assert [event.step for event in inner.events] == list(range(25))
        assert sink.emitted == sink.forwarded == 25
        assert sink.dropped == 0
        assert sink.flushes >= 5

    def test_queue_holds_until_capacity(self):
        inner = InMemorySink()
        sink = BufferedSink(inner, capacity=10, policy="block")
        sink.emit(_events(3))
        assert len(inner.events) == 0 and len(sink) == 3
        sink.flush()
        assert len(inner.events) == 3 and len(sink) == 0


class TestDropPolicies:
    def test_drop_oldest_keeps_the_freshest(self):
        inner = InMemorySink()
        sink = BufferedSink(inner, capacity=3, policy="drop-oldest")
        sink.emit(_events(5))
        assert sink.dropped == 2
        sink.flush()
        assert [event.step for event in inner.events] == [2, 3, 4]

    def test_drop_newest_keeps_the_earliest(self):
        inner = InMemorySink()
        sink = BufferedSink(inner, capacity=3, policy="drop-newest")
        sink.emit(_events(5))
        assert sink.dropped == 2
        sink.flush()
        assert [event.step for event in inner.events] == [0, 1, 2]

    def test_counters_stay_accurate_across_batches(self):
        inner = InMemorySink()
        sink = BufferedSink(inner, capacity=2, policy="drop-oldest")
        sink.emit(_events(2))
        sink.flush()
        sink.emit(_events(3, start=2))
        assert sink.emitted == 5
        assert sink.dropped == 1
        assert sink.forwarded == 2
        sink.flush()
        assert sink.forwarded == 4
        assert sink.emitted == sink.forwarded + sink.dropped


class TestAccountingInvariant:
    @pytest.mark.parametrize("policy", ["block", "drop-oldest", "drop-newest"])
    def test_every_event_is_forwarded_dropped_or_queued(self, policy):
        """At every point: ``emitted == forwarded + dropped + len(queue)``.

        The three counters plus the queue must account for every event ever
        emitted, under any interleaving of bursts (some overflowing the
        queue), explicit flushes, and trailing partial batches — this is the
        invariant the observability counters report on, so it must hold
        mid-stream, not just at close.
        """
        inner = InMemorySink()
        sink = BufferedSink(inner, capacity=3, policy=policy)
        step = 0

        def check():
            assert sink.emitted == sink.forwarded + sink.dropped + len(sink)
            assert sink.forwarded == len(inner.events)

        for burst in (1, 5, 2, 0, 7, 3):
            sink.emit(_events(burst, start=step))
            step += burst
            check()
        sink.flush()
        check()
        sink.emit(_events(2, start=step))
        check()
        sink.close()
        check()
        assert len(sink) == 0
        assert sink.emitted == 20
        if policy == "block":
            assert sink.dropped == 0 and sink.forwarded == 20


class TestLifecycle:
    def test_close_flushes_and_closes_inner(self, tmp_path):
        path = tmp_path / "alarms.jsonl"
        sink = BufferedSink(JSONLSink(path), capacity=100, policy="block")
        sink.emit(_events(4))
        sink.close()
        assert [event.step for event in JSONLSink.read(path)] == [0, 1, 2, 3]

    def test_empty_flush_is_a_noop(self):
        sink = BufferedSink(InMemorySink(), capacity=4)
        assert sink.flush() == 0
        assert sink.flushes == 0

    def test_unknown_policy_and_capacity_rejected(self):
        with pytest.raises(ValidationError):
            BufferedSink(InMemorySink(), policy="backoff")
        with pytest.raises(ValidationError):
            BufferedSink(InMemorySink(), capacity=0)
