"""Tests for baseline estimation and the CUSUM series watcher."""

import pytest

from repro.obs.watch import (
    RegressionEvent,
    SeriesWatcher,
    WatchPolicy,
    estimate_baseline,
    orientation_for,
)
from repro.runtime.events import AlarmEvent, InMemorySink, JSONLSink
from repro.utils.validation import ValidationError

# A benign throughput-like trajectory: noise around 100.
BENIGN = [100.0, 101.0, 99.0, 102.0, 98.0, 100.0, 101.0, 99.0, 100.0, 102.0]


class TestOrientation:
    @pytest.mark.parametrize(
        "metric,expected",
        [
            ("throughput", "higher-better"),
            ("fleet_throughput_steps_per_s", "higher-better"),
            ("serve_ingest_rate_per_s", "higher-better"),
            ("elapsed", "lower-better"),
            ("elapsed_s", "lower-better"),
            ("baseline_s", "lower-better"),
            ("fleet_run_seconds", "lower-better"),
            ("instance_steps", None),
            ("members", None),
        ],
    )
    def test_known_and_unknown_names(self, metric, expected):
        assert orientation_for(metric) == expected


class TestBaseline:
    def test_median_mad_and_floors(self):
        policy = WatchPolicy(window=10)
        baseline = estimate_baseline(BENIGN, policy)
        assert baseline.median == 100.0
        assert baseline.mad == 1.0
        # rel floor (5% of 100) dominates the MAD scale here.
        assert baseline.scale == pytest.approx(5.0)
        assert baseline.n == 10

    def test_constant_series_gets_the_abs_floor(self):
        policy = WatchPolicy(window=3, min_rel_scale=0.0)
        baseline = estimate_baseline([0.0, 0.0, 0.0], policy)
        assert baseline.scale == policy.min_abs_scale

    def test_deviation_orientation(self):
        baseline = estimate_baseline(BENIGN, WatchPolicy())
        # A drop is bad for higher-better, good for lower-better.
        assert baseline.deviation(90.0, "higher-better") == pytest.approx(2.0)
        assert baseline.deviation(90.0, "lower-better") == pytest.approx(-2.0)

    def test_empty_series_rejected(self):
        with pytest.raises(ValidationError):
            estimate_baseline([], WatchPolicy())

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            WatchPolicy(window=2)
        with pytest.raises(ValidationError):
            WatchPolicy(bias_mads=0.0)
        with pytest.raises(ValidationError):
            WatchPolicy(threshold_mads=-1.0)
        with pytest.raises(ValidationError):
            WatchPolicy(confirm=0)


class TestSeriesWatcher:
    def test_clean_history_raises_no_alarm(self):
        watcher = SeriesWatcher(
            "t/throughput", orientation="higher-better", policy=WatchPolicy(window=10)
        )
        events = watcher.observe_many(BENIGN + BENIGN)
        assert events == []
        assert watcher.status == "ok"
        assert watcher.onset is None

    def test_warming_up_until_window_filled(self):
        watcher = SeriesWatcher("t/x", orientation="higher-better", policy=WatchPolicy(window=10))
        watcher.observe_many(BENIGN[:5])
        assert watcher.warming_up and watcher.status == "warming-up"
        watcher.observe_many(BENIGN[5:])
        assert not watcher.warming_up and watcher.status == "ok"

    def test_step_change_flagged_at_correct_onset(self):
        """The acceptance criterion: injected step flagged at onset +/- 2."""
        policy = WatchPolicy(window=10, confirm=2)
        step_at = 14  # index of the first regressed sample
        values = BENIGN + [100.0, 99.0, 101.0, 100.0] + [50.0] * 6
        watcher = SeriesWatcher("t/throughput", orientation="higher-better", policy=policy)
        events = watcher.observe_many(values)
        assert watcher.status == "regression"
        assert events, "the collapse must raise alarms"
        assert abs(watcher.onset - step_at) <= 2
        confirmed = [e for e in events if e.confirmed]
        assert confirmed and confirmed[0].direction == "drop"
        assert confirmed[0].magnitude == pytest.approx(10.0)  # (100-50)/5
        assert confirmed[0].rel_change == pytest.approx(-0.5)

    def test_rise_on_lower_better_series(self):
        policy = WatchPolicy(window=10, confirm=2)
        values = BENIGN + [200.0] * 4
        watcher = SeriesWatcher("t/elapsed", orientation="lower-better", policy=policy)
        events = watcher.observe_many(values)
        assert watcher.status == "regression"
        assert events[0].direction == "rise"

    def test_improvement_never_alarms(self):
        # A throughput *increase* is the good direction: rectified to zero.
        watcher = SeriesWatcher(
            "t/throughput", orientation="higher-better", policy=WatchPolicy(window=10)
        )
        watcher.observe_many(BENIGN + [500.0] * 10)
        assert watcher.status == "ok"

    def test_single_spike_is_suspect_not_confirmed(self):
        # One huge sample alarms immediately but recovery stops the run length.
        policy = WatchPolicy(window=10, confirm=3, threshold_mads=4.0)
        values = BENIGN + [40.0] + [100.0] * 8
        watcher = SeriesWatcher("t/throughput", orientation="higher-better", policy=policy)
        watcher.observe_many(values)
        assert watcher.status == "suspect"
        assert watcher.onset is None

    def test_events_flow_through_existing_sinks(self, tmp_path):
        memory = InMemorySink()
        jsonl = JSONLSink(tmp_path / "watch-alarms.jsonl")
        policy = WatchPolicy(window=10, confirm=2)
        watcher = SeriesWatcher(
            "t/throughput",
            metric="throughput",
            orientation="higher-better",
            policy=policy,
            sinks=[memory, jsonl],
        )
        watcher.observe_many(BENIGN + [50.0] * 4)
        jsonl.close()
        assert len(memory) == 4
        assert memory.by_detector("watch:t/throughput")
        assert all(isinstance(e, RegressionEvent) for e in memory.events)
        first = memory.first_alarms()
        assert ("watch:t/throughput", 0) in first
        # The JSONL form reads back through the typed inverse.
        import json

        lines = (tmp_path / "watch-alarms.jsonl").read_text().splitlines()
        restored = RegressionEvent.from_dict(json.loads(lines[0]))
        assert restored == memory.events[0]

    def test_regression_event_is_an_alarm_event(self):
        event = RegressionEvent(instance=0, step=3, detector="watch:x")
        assert isinstance(event, AlarmEvent)
        data = event.to_dict()
        # Every extra field survives the dict round trip (REP005 discipline).
        assert data["series"] == "" and data["onset"] == -1
        assert RegressionEvent.from_dict(data) == event

    def test_unknown_orientation_rejected(self):
        with pytest.raises(ValueError):
            SeriesWatcher("t/x", orientation="sideways")

    def test_prefrozen_baseline_detects_from_first_sample(self):
        baseline = estimate_baseline(BENIGN, WatchPolicy(window=10))
        watcher = SeriesWatcher(
            "t/throughput",
            orientation="higher-better",
            policy=WatchPolicy(window=10, confirm=1),
            baseline=baseline,
        )
        event = watcher.observe(40.0)
        assert event is not None and event.confirmed
        assert watcher.onset == 0

    def test_verdict_shape(self):
        watcher = SeriesWatcher("t/x", orientation="lower-better")
        verdict = watcher.verdict()
        assert verdict["status"] == "warming-up"
        assert verdict["samples"] == 0
        assert verdict["baseline_median"] is None
