"""Tests for the fleet runtime: batched simulation, scheduler, events, report."""

import json

import numpy as np
import pytest

from repro import RuntimeConfig, get_case_study, run_fleet
from repro.attacks.templates import BiasAttack, NoAttack, RampAttack
from repro.detectors.cusum import CusumDetector
from repro.lti.simulate import SimulationOptions, simulate_closed_loop
from repro.runtime.events import AlarmEvent, InMemorySink, JSONLSink
from repro.runtime.fleet import FleetSimulator, ScheduledAttack, batch_simulate
from repro.utils.validation import ValidationError


class TestBatchSimulate:
    def test_matches_sequential_simulator_instance_for_instance(self, dcmotor_problem):
        system = dcmotor_problem.system
        plant = system.plant
        T = dcmotor_problem.horizon
        rng = np.random.default_rng(7)
        N = 5
        V = rng.normal(size=(N, T, plant.n_outputs)) * 1e-3
        W = rng.normal(size=(N, T, plant.n_states)) * 1e-4
        A = rng.normal(size=(N, T, plant.n_outputs)) * 1e-2
        x0 = rng.normal(size=(N, plant.n_states)) * 0.01

        fleet = batch_simulate(
            system, T, x0=x0, measurement_noise=V, process_noise=W, attacks=A
        )
        assert fleet.n_instances == N and fleet.horizon == T
        for i in range(N):
            reference = simulate_closed_loop(
                system,
                SimulationOptions(horizon=T, x0=x0[i]),
                attack=A[i],
                process_noise=W[i],
                measurement_noise=V[i],
            )
            instance = fleet.instance(i)
            for attr in (
                "states",
                "estimates",
                "inputs",
                "measurements",
                "true_outputs",
                "residues",
            ):
                np.testing.assert_allclose(
                    getattr(instance, attr),
                    getattr(reference, attr),
                    rtol=1e-10,
                    atol=1e-12,
                )
        assert instance.dt == reference.dt
        assert instance.metadata["system"] == system.name

    def test_shared_initial_state_broadcasts(self, simple_closed_loop):
        fleet = batch_simulate(
            simple_closed_loop, 10, x0=np.array([1.0, 0.0]), n_instances=3
        )
        np.testing.assert_array_equal(fleet.states[:, 0], np.tile([1.0, 0.0], (3, 1)))
        # Identical deterministic instances produce identical trajectories.
        np.testing.assert_array_equal(fleet.states[0], fleet.states[2])

    def test_shape_validation(self, simple_closed_loop):
        with pytest.raises(ValidationError):
            batch_simulate(simple_closed_loop, 10, measurement_noise=np.zeros((2, 9, 1)))
        with pytest.raises(ValidationError):
            batch_simulate(
                simple_closed_loop,
                10,
                n_instances=3,
                measurement_noise=np.zeros((2, 10, 1)),
            )

    def test_iteration_yields_every_instance(self, simple_closed_loop):
        fleet = batch_simulate(simple_closed_loop, 5, n_instances=4)
        assert len(list(fleet)) == 4


class TestScheduledAttack:
    def test_materialize_shifts_by_start(self):
        entry = ScheduledAttack(BiasAttack(bias=1.0), start=4)
        values = entry.materialize(10, 2)
        assert np.all(values[:4] == 0.0)
        assert np.all(values[4:] == 1.0)

    def test_start_beyond_horizon_is_a_noop(self):
        entry = ScheduledAttack(BiasAttack(bias=1.0), start=99)
        assert not np.any(entry.materialize(10, 2))

    def test_explicit_instances_resolved_and_checked(self):
        entry = ScheduledAttack(BiasAttack(bias=1.0), instances=(3, 1, 1))
        rng = np.random.default_rng(0)
        np.testing.assert_array_equal(entry.resolve_instances(10, rng), [1, 3])
        with pytest.raises(ValidationError):
            entry.resolve_instances(2, rng)

    def test_fraction_subset_size_and_reproducibility(self):
        entry = ScheduledAttack(BiasAttack(bias=1.0), fraction=0.3)
        first = entry.resolve_instances(100, np.random.default_rng(5))
        second = entry.resolve_instances(100, np.random.default_rng(5))
        assert first.size == 30
        np.testing.assert_array_equal(first, second)

    def test_instances_and_fraction_mutually_exclusive(self):
        with pytest.raises(ValidationError):
            ScheduledAttack(BiasAttack(bias=1.0), instances=(0,), fraction=0.5)
        with pytest.raises(ValidationError):
            ScheduledAttack(BiasAttack(bias=1.0), fraction=1.5)
        with pytest.raises(ValidationError):
            ScheduledAttack(BiasAttack(bias=1.0), start=-1)


class TestFleetSimulator:
    def test_alarms_match_offline_evaluation_of_recorded_traces(self, dcmotor_problem):
        """The streaming engine's alarms are the offline detector's alarms."""
        threshold = dcmotor_problem.static_threshold(0.01)
        sink = InMemorySink()
        simulator = FleetSimulator(
            dcmotor_problem.system,
            20,
            dcmotor_problem.horizon,
            detectors={"static": threshold, "cusum": CusumDetector(bias=0.005, threshold=0.02)},
            attacks=[ScheduledAttack(BiasAttack(bias=0.05), fraction=0.5, start=4)],
            sinks=[sink],
            seed=3,
            record_traces=True,
        )
        report = simulator.run()
        trace = simulator.trace
        assert trace is not None and trace.n_instances == 20
        cusum = CusumDetector(bias=0.005, threshold=0.02)
        for i in range(20):
            offline = threshold.alarms(trace.residues[i])
            streamed = {e.step for e in sink.by_instance(i) if e.detector == "static"}
            assert streamed == set(np.flatnonzero(offline))
            offline_cusum = cusum.evaluate(trace.residues[i]).alarms
            streamed_cusum = {e.step for e in sink.by_instance(i) if e.detector == "cusum"}
            assert streamed_cusum == set(np.flatnonzero(offline_cusum))
        assert report.detectors["static"].alarm_count == len(sink.by_detector("static"))

    def test_attacked_subset_and_detection_metrics(self, dcmotor_problem):
        simulator = FleetSimulator(
            dcmotor_problem.system,
            40,
            dcmotor_problem.horizon,
            detectors={"static": dcmotor_problem.static_threshold(0.1)},
            attacks=[ScheduledAttack(BiasAttack(bias=0.5), instances=tuple(range(10)), start=5)],
            seed=0,
            record_traces=True,
        )
        report = simulator.run()
        assert report.n_attacked == 10
        assert report.n_benign == 30
        stats = report.stats("static")
        # A 0.5 bias against a 0.1 threshold is detected immediately, while
        # benign residues stay well below it.
        assert stats.detection_rate == 1.0
        assert stats.mean_detection_latency == 0.0
        assert stats.false_alarm_rate == 0.0
        # Benign instances received no injection at all.
        assert not np.any(simulator.trace.attacks[10:])
        assert np.all(simulator.trace.attacks[:10, 5:] == 0.5)

    def test_detection_latency_counts_from_attack_start(self, dcmotor_problem):
        # A slow ramp takes a few samples to cross the threshold.
        simulator = FleetSimulator(
            dcmotor_problem.system,
            10,
            dcmotor_problem.horizon,
            detectors={"static": dcmotor_problem.static_threshold(0.1)},
            attacks=[ScheduledAttack(RampAttack(slope=0.02), start=3)],
            seed=1,
        )
        stats = simulator.run().stats("static")
        assert stats.detection_rate == 1.0
        assert stats.mean_detection_latency > 0.0

    def test_zero_injection_schedule_counts_nobody_as_attacked(self, dcmotor_problem):
        simulator = FleetSimulator(
            dcmotor_problem.system,
            8,
            dcmotor_problem.horizon,
            detectors={"static": dcmotor_problem.static_threshold(0.02)},
            attacks=[ScheduledAttack(NoAttack())],
            seed=0,
        )
        report = simulator.run()
        assert report.n_attacked == 0
        assert report.stats("static").detection_rate is None

    def test_same_seed_reproduces_the_run(self, dcmotor_problem):
        def run():
            return FleetSimulator(
                dcmotor_problem.system,
                15,
                dcmotor_problem.horizon,
                detectors={"static": dcmotor_problem.static_threshold(0.01)},
                attacks=[ScheduledAttack(BiasAttack(bias=0.05), fraction=0.4)],
                seed=42,
                record_traces=True,
            )

        first, second = run(), run()
        first.run()
        second.run()
        np.testing.assert_array_equal(first.trace.residues, second.trace.residues)
        np.testing.assert_array_equal(first.trace.attacks, second.trace.attacks)

    def test_mdc_monitor_deploys_online(self, vsc_fleet_report):
        stats = vsc_fleet_report.stats("mdc")
        assert stats.alarm_count >= 0  # present and stepped
        assert "mdc" in {row["label"] for row in vsc_fleet_report.summary_rows()}

    def test_report_is_json_serializable(self, dcmotor_problem):
        report = FleetSimulator(
            dcmotor_problem.system,
            5,
            dcmotor_problem.horizon,
            detectors={"static": dcmotor_problem.static_threshold(0.01)},
            seed=0,
        ).run()
        payload = json.dumps(report.to_dict())
        assert "static" in payload
        assert report.throughput > 0
        assert "FleetReport" in str(report)

    def test_noise_model_dimension_checked(self, dcmotor_problem):
        from repro.noise.models import BoundedUniformNoise

        with pytest.raises(ValidationError):
            FleetSimulator(
                dcmotor_problem.system,
                4,
                5,
                detectors={"static": dcmotor_problem.static_threshold(0.01)},
                noise_model=BoundedUniformNoise(bounds=[0.1, 0.1]),
            )

    def test_per_instance_initial_states(self, dcmotor_problem):
        n = dcmotor_problem.system.plant.n_states
        x0 = np.linspace(0.0, 0.1, 6 * n).reshape(6, n)
        simulator = FleetSimulator(
            dcmotor_problem.system,
            6,
            dcmotor_problem.horizon,
            detectors={"static": dcmotor_problem.static_threshold(0.5)},
            x0=x0,
            seed=0,
            record_traces=True,
        )
        simulator.run()
        np.testing.assert_array_equal(simulator.trace.states[:, 0], x0)
        with pytest.raises(ValidationError):
            FleetSimulator(
                dcmotor_problem.system,
                4,
                5,
                detectors={"static": dcmotor_problem.static_threshold(0.5)},
                x0=x0,  # 6 rows for a 4-instance fleet
            )

    def test_rejects_non_scheduled_attack_entries(self, dcmotor_problem):
        with pytest.raises(ValidationError):
            FleetSimulator(
                dcmotor_problem.system,
                4,
                5,
                detectors={"static": dcmotor_problem.static_threshold(0.01)},
                attacks=[BiasAttack(bias=1.0)],
            )


@pytest.fixture(scope="module")
def vsc_fleet_report():
    """One VSC fleet run with mdc deployed online (shared across tests)."""
    case = get_case_study("vsc")
    problem = case.problem
    simulator = FleetSimulator(
        problem.system,
        30,
        problem.horizon,
        detectors={"static": problem.static_threshold(6.0), "mdc": problem.mdc},
        attacks=[ScheduledAttack(BiasAttack(bias=0.4), fraction=0.5, start=10)],
        x0_spread=case.extras["reproduction"]["far_initial_state_spread"],
        seed=0,
    )
    return simulator.run()


class TestEventSinks:
    def test_in_memory_sink_queries(self):
        sink = InMemorySink()
        sink.emit([AlarmEvent(0, 3, "a", first=True), AlarmEvent(1, 3, "b")])
        sink.emit([AlarmEvent(0, 4, "a")])
        assert len(sink) == 3
        assert [e.step for e in sink.by_detector("a")] == [3, 4]
        assert [e.detector for e in sink.by_instance(0)] == ["a", "a"]
        assert sink.first_alarms() == {("a", 0): 3}

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "alarms.jsonl"
        with JSONLSink(path) as sink:
            sink.emit([AlarmEvent(2, 7, "static", first=True)])
            sink.emit([])
            sink.emit([AlarmEvent(3, 8, "static")])
        events = JSONLSink.read(path)
        assert events == [
            AlarmEvent(2, 7, "static", first=True),
            AlarmEvent(3, 8, "static"),
        ]

    def test_jsonl_sink_creates_no_file_without_events(self, tmp_path):
        path = tmp_path / "alarms.jsonl"
        with JSONLSink(path) as sink:
            sink.emit([])
        assert not path.exists()

    def test_in_memory_sink_maxlen_keeps_only_the_freshest(self):
        sink = InMemorySink(maxlen=3)
        sink.emit([AlarmEvent(0, k, "a") for k in range(5)])
        assert [e.step for e in sink] == [2, 3, 4]
        assert sink.evicted == 2
        sink.emit([AlarmEvent(0, 5, "a")])
        assert [e.step for e in sink] == [3, 4, 5]
        assert sink.evicted == 3
        with pytest.raises(ValidationError):
            InMemorySink(maxlen=0)

    def test_jsonl_sink_flushes_every_emit_by_default(self, tmp_path):
        path = tmp_path / "alarms.jsonl"
        sink = JSONLSink(path)
        sink.emit([AlarmEvent(0, 1, "a")])
        # Readable mid-run, before close: the default cadence flushes the OS
        # buffer after every emit batch.
        assert JSONLSink.read(path) == [AlarmEvent(0, 1, "a")]
        sink.close()

    def test_jsonl_sink_flush_every_knob(self, tmp_path):
        path = tmp_path / "alarms.jsonl"
        sink = JSONLSink(path, flush_every=2)
        sink.emit([AlarmEvent(0, 1, "a")])
        assert JSONLSink.read(path) == []
        sink.emit([AlarmEvent(0, 2, "a")])
        assert len(JSONLSink.read(path)) == 2
        sink.close()
        with pytest.raises(ValidationError):
            JSONLSink(path, flush_every=-1)

    def test_jsonl_sink_read_recovers_from_a_truncated_tail(self, tmp_path):
        # Mirrors the ResultStore partial-write contract: a service killed
        # mid-append leaves a partial final line, which read() drops; corrupt
        # interior lines still raise.
        path = tmp_path / "alarms.jsonl"
        with JSONLSink(path) as sink:
            sink.emit([AlarmEvent(0, k, "a") for k in range(3)])
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"instance": 0, "step": 3, "det')
        assert [e.step for e in JSONLSink.read(path)] == [0, 1, 2]

        lines = path.read_text().splitlines()
        lines[1] = "{not json}"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            JSONLSink.read(path)


class TestRunFleet:
    def test_config_driven_run_on_case_study(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        config = RuntimeConfig(
            n_instances=50,
            case_study="dcmotor",
            static_thresholds={"static": 0.05},
            detectors={"chi2": {"name": "chi-square", "options": {"false_alarm_probability": 1e-3}}},
            attacks=[
                {"template": "bias", "options": {"bias": 0.5}, "fraction": 0.4, "start": 5}
            ],
            events_path=str(events_path),
            seed=0,
        )
        report = run_fleet(config)
        assert report.n_instances == 50
        assert report.n_attacked == 20
        assert set(report.detectors) == {"static", "chi2", "mdc"}
        assert report.stats("static").detection_rate == 1.0
        assert report.metadata["config"] == config.to_dict()
        assert events_path.exists()
        assert all(e.detector in {"static", "chi2", "mdc"} for e in JSONLSink.read(events_path))

    def test_explicit_problem_and_extra_detectors(self, dcmotor_problem):
        config = RuntimeConfig(n_instances=10, include_mdc=False, seed=1)
        report = run_fleet(
            config,
            dcmotor_problem,
            detectors={"cusum": CusumDetector(bias=0.01, threshold=0.5)},
        )
        assert set(report.detectors) == {"cusum"}

    def test_synthesis_deploys_the_synthesized_threshold(self, dcmotor_problem):
        from repro.api import SynthesisConfig

        config = RuntimeConfig(
            n_instances=20,
            synthesis=SynthesisConfig(algorithms=("static",), backend="lp"),
            include_mdc=False,
            # The provably safe static threshold for the DC motor sits around
            # 0.8; a 2.0 bias pushes the first attacked residue well past it.
            attacks=[{"template": "bias", "options": {"bias": 2.0}, "fraction": 0.5}],
            seed=0,
        )
        report = run_fleet(config, dcmotor_problem)
        assert "static" in report.detectors
        assert report.stats("static").detection_rate == 1.0

    def test_record_traces_exposes_trace_and_keeps_report_serializable(
        self, dcmotor_problem
    ):
        config = RuntimeConfig(
            n_instances=5,
            static_thresholds={"static": 0.1},
            include_mdc=False,
            record_traces=True,
            seed=0,
        )
        report = run_fleet(config, dcmotor_problem)
        assert report.trace is not None
        assert report.trace.n_instances == 5
        json.dumps(report.to_dict())  # trace must not leak into the JSON form

    def test_colliding_detector_labels_rejected(self, dcmotor_problem):
        config = RuntimeConfig(
            n_instances=5,
            static_thresholds={"mdc": 0.1},
            include_mdc=True,
            seed=0,
        )
        with pytest.raises(ValidationError, match="mdc"):
            run_fleet(config, dcmotor_problem)
        config = RuntimeConfig(n_instances=5, static_thresholds={"static": 0.1}, seed=0)
        with pytest.raises(ValidationError, match="already deployed"):
            run_fleet(
                config,
                dcmotor_problem,
                detectors={"static": CusumDetector(bias=0.01, threshold=0.5)},
            )

    def test_needs_a_problem_and_a_detector(self, dcmotor_problem):
        with pytest.raises(ValidationError):
            run_fleet(RuntimeConfig(n_instances=5))
        with pytest.raises(ValidationError):
            run_fleet(RuntimeConfig(n_instances=5, include_mdc=False), dcmotor_problem)

    def test_acceptance_thousand_instances_two_hundred_steps(self, dcmotor_problem):
        """ISSUE acceptance: 1000 x 200 in one batched run_fleet call."""
        config = RuntimeConfig(
            n_instances=1000,
            horizon=200,
            static_thresholds={"static": 0.05},
            detectors={"cusum": {"name": "cusum", "options": {"bias": 0.02, "threshold": 0.5}}},
            attacks=[
                {"template": "ramp", "options": {"slope": 0.002}, "fraction": 0.1, "start": 50}
            ],
            include_mdc=False,
            seed=0,
        )
        report = run_fleet(config, dcmotor_problem)
        assert report.n_instances == 1000
        assert report.horizon == 200
        assert report.instance_steps == 200_000
        assert report.n_attacked == 100
        assert report.stats("static").detection_rate == 1.0
        # Batched stepping keeps this far from per-instance-Python-loop cost.
        assert report.elapsed_seconds < 30.0

    def test_throughput_is_nan_without_a_measured_run(self):
        """A report with no elapsed time has no rate — NaN, not inf or zero.

        NaN poisons any aggregate that accidentally includes an unmeasured
        report and fails every ``>`` gate, instead of an ``inf`` passing
        them vacuously.
        """
        import math

        from repro.runtime.report import FleetReport

        for elapsed in (0.0, -1.0):
            report = FleetReport(n_instances=10, horizon=5, elapsed_seconds=elapsed)
            assert math.isnan(report.throughput)
            assert math.isnan(report.to_dict()["throughput"])
        measured = FleetReport(n_instances=10, horizon=5, elapsed_seconds=2.0)
        assert measured.throughput == 25.0


class TestRuntimeConfig:
    def test_round_trips_through_dict_and_json(self):
        from repro.api import SynthesisConfig

        config = RuntimeConfig(
            n_instances=64,
            horizon=123,
            case_study="vsc",
            case_study_options={"strictness": 1e-3},
            synthesis=SynthesisConfig(algorithms=("static",)),
            static_thresholds={"paper": 6.0},
            detectors={"cusum": {"name": "cusum", "options": {"bias": 0.1, "threshold": 1.0}}},
            noise_model="bounded-uniform",
            noise_options={"bounds": [0.01, 0.02]},
            initial_state_spread=[0.001, 0.003, 0.0],
            attacks=[{"template": "bias", "options": {"bias": 0.2}, "fraction": 0.25, "start": 7}],
            events_path="alarms.jsonl",
        )
        assert RuntimeConfig.from_dict(config.to_dict()) == config
        assert RuntimeConfig.from_json(config.to_json()) == config
        assert RuntimeConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config

    def test_bare_detector_name_normalised(self):
        config = RuntimeConfig(detectors={"residue-like": "cusum"})
        assert config.detectors["residue-like"] == {"name": "cusum", "options": {}}

    def test_validation_errors(self):
        with pytest.raises(ValidationError):
            RuntimeConfig(n_instances=0)
        with pytest.raises(ValidationError, match="case study"):
            RuntimeConfig(case_study="nuclear-plant")
        with pytest.raises(ValidationError, match="detector"):
            RuntimeConfig(detectors={"x": "sprt"})
        with pytest.raises(ValidationError, match="name"):
            RuntimeConfig(detectors={"x": {"options": {"bias": 0.1}}})
        with pytest.raises(ValidationError, match="attack template"):
            RuntimeConfig(attacks=[{"template": "square-wave"}])
        with pytest.raises(ValidationError, match="not both"):
            RuntimeConfig(
                attacks=[{"template": "bias", "options": {"bias": 1.0}, "instances": [0], "fraction": 0.5}]
            )
        with pytest.raises(ValidationError, match="schedule keys"):
            RuntimeConfig(attacks=[{"template": "bias", "when": "now"}])
        with pytest.raises(ValidationError, match="unknown RuntimeConfig fields"):
            RuntimeConfig.from_dict({"fleet_size": 10})
