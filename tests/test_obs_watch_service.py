"""Tests for live self-monitoring (`repro.obs.watch.service`)."""

import pytest

from repro.obs.export import PeriodicScraper, parse_prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.watch import HealthWatcher, WatchPolicy, WatchSpec
from repro.obs.watch.service import _extract
from repro.runtime.events import InMemorySink
from repro.runtime.fleet import FleetSimulator
from repro.serve import MonitorService


class TestWatchSpec:
    def test_display_key_forms(self):
        assert WatchSpec("serve_members").display_key == "serve_members"
        assert (
            WatchSpec("serve_samples_ingested_total", mode="counter-rate").display_key
            == "serve_samples_ingested_total/rate"
        )
        assert (
            WatchSpec("fleet_run_seconds_sum", labels={"system": "vsc"}).display_key
            == "fleet_run_seconds_sum{system=vsc}"
        )
        assert WatchSpec("x", key="custom").display_key == "custom"

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            WatchSpec("x", mode="histogram")

    def test_extract_matches_exact_label_set(self):
        registry = MetricsRegistry(enabled=True)
        registry.gauge("g", help="").set(3.0)
        registry.gauge("g", help="").set(7.0, system="vsc")
        snap = registry.snapshot()
        assert _extract(snap, WatchSpec("g")) == 3.0
        assert _extract(snap, WatchSpec("g", labels={"system": "vsc"})) == 7.0
        assert _extract(snap, WatchSpec("g", labels={"system": "other"})) is None
        assert _extract(snap, WatchSpec("absent")) is None


class TestHealthWatcher:
    def _gauge_watcher(self, registry, **kwargs):
        return HealthWatcher(
            [WatchSpec("rate", mode="gauge", orientation="higher-better")],
            registry=registry,
            policy=WatchPolicy(window=5, confirm=2),
            **kwargs,
        )

    def test_gauge_stream_regression(self):
        registry = MetricsRegistry(enabled=True)
        gauge = registry.gauge("rate", help="")
        sink = InMemorySink()
        watcher = self._gauge_watcher(registry, sinks=[sink])
        for value in (100.0, 101.0, 99.0, 100.0, 100.0, 100.0, 100.0):
            gauge.set(value)
            watcher.observe()
        assert not watcher.regressed
        for _ in range(3):
            gauge.set(10.0)
            watcher.observe()
        assert watcher.regressed
        assert sink.by_detector("watch:rate")
        [verdict] = watcher.verdicts()
        assert verdict["status"] == "regression"

    def test_counter_rate_skips_first_sighting(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("events_total", help="")
        watcher = HealthWatcher(
            [WatchSpec("events_total", mode="counter-rate")],
            registry=registry,
            policy=WatchPolicy(window=3),
        )
        counter.inc(5)
        watcher.observe()
        [w] = watcher.watchers.values()
        assert w.index == -1  # no delta on the first sighting
        counter.inc(5)
        watcher.observe()
        assert w.index == 0 and w.last_value == 5.0

    def test_missing_metric_contributes_nothing(self):
        registry = MetricsRegistry(enabled=True)
        watcher = self._gauge_watcher(registry)
        watcher.observe()
        [w] = watcher.watchers.values()
        assert w.index == -1 and watcher.observations == 1

    def test_scraper_protocol_delegates_to_inner(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        registry.gauge("rate", help="").set(1.0)
        inner = PeriodicScraper(tmp_path / "metrics.prom", registry, interval_s=0.0)
        watcher = self._gauge_watcher(registry, scraper=inner)
        assert watcher.maybe_scrape() is True
        watcher.scrape()
        assert watcher.scrapes == 2 and watcher.path == inner.path
        assert watcher.observations == 1  # scrape() is a flush, not a round
        snap = parse_prometheus_text((tmp_path / "metrics.prom").read_text())
        assert snap["gauges"]["rate"]["values"][0]["value"] == 1.0

    def test_scraper_protocol_standalone(self):
        registry = MetricsRegistry(enabled=True)
        watcher = self._gauge_watcher(registry)
        assert watcher.maybe_scrape() is False
        watcher.scrape()
        assert watcher.scrapes == 1 and watcher.path is None


class TestLiveService:
    """The acceptance criterion: a live ingest-rate collapse is flagged."""

    def test_ingest_rate_collapse_flagged_through_sinks(self, dcmotor_problem):
        registry = MetricsRegistry(enabled=True)
        sink = InMemorySink()
        watcher = HealthWatcher(
            [
                WatchSpec(
                    "serve_samples_ingested_total",
                    mode="counter-rate",
                    orientation="higher-better",
                )
            ],
            registry=registry,
            policy=WatchPolicy(window=8, confirm=2),
            sinks=[sink],
        )
        service = MonitorService(
            dcmotor_problem.system,
            {"static": dcmotor_problem.static_threshold(0.5)},
            metrics=registry,
            scraper=watcher,
        )
        members = 3
        for i in range(members):
            service.attach(i)
        # Phase 1: steady state — every instance ingests once per round, so
        # the counter-rate stream sits at `members` samples per round.
        for _ in range(12):
            for i in range(members):
                service.ingest(i, [0.0])
        assert not watcher.regressed
        # Phase 2: collapse — instance-major bursts mean rounds drain one
        # sample at a time, so the per-round ingest rate drops to ~1.
        for i in range(members):
            for _ in range(6):
                service.ingest(i, [0.0])
        assert watcher.regressed
        key = "serve_samples_ingested_total/rate"
        events = sink.by_detector(f"watch:{key}")
        assert events, "alarms must flow through the existing sink layer"
        confirmed = [e for e in events if e.confirmed]
        assert confirmed and confirmed[0].direction == "drop"
        # The steady phase contributes ~`members`-per-round samples; the
        # collapse onset lands where the 1-per-round rounds begin.
        [w] = watcher.watchers.values()
        assert w.baseline is not None and w.baseline.median == members
        assert confirmed[0].value == 1.0
        service.close()

    def test_clean_service_run_raises_no_watch_alarm(self, dcmotor_problem):
        registry = MetricsRegistry(enabled=True)
        sink = InMemorySink()
        watcher = HealthWatcher(
            [
                WatchSpec(
                    "serve_samples_ingested_total",
                    mode="counter-rate",
                    orientation="higher-better",
                )
            ],
            registry=registry,
            policy=WatchPolicy(window=8, confirm=2),
            sinks=[sink],
        )
        service = MonitorService(
            dcmotor_problem.system,
            {"static": dcmotor_problem.static_threshold(0.5)},
            metrics=registry,
            scraper=watcher,
        )
        for i in range(3):
            service.attach(i)
        for _ in range(30):
            for i in range(3):
                service.ingest(i, [0.0])
        service.close()
        assert not watcher.regressed
        assert len(sink) == 0


class TestFleetScraperHook:
    def test_fleet_calls_scraper_every_step_and_once_at_end(self, simple_closed_loop):
        registry = MetricsRegistry(enabled=True)
        horizon = 7
        watcher = HealthWatcher(
            [WatchSpec("fleet_steps_total", mode="counter-rate")],
            registry=registry,
            policy=WatchPolicy(window=3),
        )
        fleet = FleetSimulator(
            simple_closed_loop,
            n_instances=2,
            horizon=horizon,
            metrics=registry,
            scraper=watcher,
        )
        fleet.run()
        # maybe_scrape (one observation) per step; the final scrape is a
        # write-only flush.
        assert watcher.observations == horizon

    def test_fleet_with_periodic_scraper_writes_exposition(self, simple_closed_loop, tmp_path):
        registry = MetricsRegistry(enabled=True)
        scraper = PeriodicScraper(tmp_path / "fleet.prom", registry, interval_s=0.0)
        FleetSimulator(
            simple_closed_loop, n_instances=2, horizon=3, metrics=registry, scraper=scraper
        ).run()
        snap = parse_prometheus_text((tmp_path / "fleet.prom").read_text())
        assert snap["counters"]["fleet_steps_total"]["values"][0]["value"] == 6.0
