"""Tests for repro.obs.trace: span nesting, JSONL durability, renderings."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import SpanRecord, Tracer, get_tracer, span, use_tracer
from repro.utils.validation import ValidationError


def test_spans_nest_and_record_tree_structure():
    tracer = Tracer(enabled=True)
    with tracer.span("outer", run="1"):
        with tracer.span("inner-a"):
            pass
        with tracer.span("inner-b"):
            with tracer.span("leaf"):
                pass
    # Records land at span *close*: children precede their parent.
    names = [record.name for record in tracer.records]
    assert names == ["inner-a", "leaf", "inner-b", "outer"]
    by_name = {record.name: record for record in tracer.records}
    assert by_name["outer"].parent_id is None
    assert by_name["outer"].depth == 0
    assert by_name["outer"].labels == {"run": "1"}
    assert by_name["inner-a"].parent_id == by_name["outer"].span_id
    assert by_name["leaf"].parent_id == by_name["inner-b"].span_id
    assert by_name["leaf"].depth == 2
    assert all(record.wall_s >= 0.0 for record in tracer.records)


def test_span_ids_assigned_at_open():
    tracer = Tracer(enabled=True)
    with tracer.span("parent"):
        with tracer.span("child"):
            pass
    by_name = {record.name: record for record in tracer.records}
    assert by_name["parent"].span_id < by_name["child"].span_id


def test_labels_coerced_to_strings():
    tracer = Tracer(enabled=True)
    with tracer.span("s", round=3, ratio=0.5):
        pass
    assert tracer.records[0].labels == {"round": "3", "ratio": "0.5"}


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("invisible") as record:
        assert record is None
    assert tracer.records == []


def test_span_that_raises_still_lands_in_trace():
    tracer = Tracer(enabled=True)
    with pytest.raises(RuntimeError):
        with tracer.span("failing"):
            raise RuntimeError("boom")
    assert [record.name for record in tracer.records] == ["failing"]


def test_threads_build_independent_branches():
    tracer = Tracer(enabled=True)
    seen = []

    def work(tag: str):
        with tracer.span(f"root-{tag}"):
            with tracer.span(f"leaf-{tag}"):
                seen.append(tag)

    threads = [threading.Thread(target=work, args=(t,)) for t in ("a", "b")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    by_name = {record.name: record for record in tracer.records}
    assert by_name["root-a"].parent_id is None
    assert by_name["root-b"].parent_id is None
    assert by_name["leaf-a"].parent_id == by_name["root-a"].span_id
    assert by_name["leaf-b"].parent_id == by_name["root-b"].span_id


# ----------------------------------------------------------------------
# JSONL durability
# ----------------------------------------------------------------------
def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(enabled=True, path=path) as tracer:
        with tracer.span("outer", system="dcmotor"):
            with tracer.span("inner"):
                pass
    loaded = Tracer.read(path)
    assert [record.to_dict() for record in loaded] == [
        record.to_dict() for record in tracer.records
    ]


def test_read_drops_truncated_trailing_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(enabled=True, path=path) as tracer:
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    # Simulate a process killed mid-append.
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"span_id": 2, "parent_id": null, "na')
    loaded = Tracer.read(path)
    assert [record.name for record in loaded] == ["a", "b"]


def test_read_raises_on_interior_corruption(tmp_path):
    path = tmp_path / "trace.jsonl"
    record = SpanRecord(span_id=0, parent_id=None, name="ok")
    path.write_text(
        "not json at all\n" + json.dumps(record.to_dict()) + "\n", encoding="utf-8"
    )
    with pytest.raises(json.JSONDecodeError):
        Tracer.read(path)


def test_flush_every_zero_defers_to_close(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(enabled=True, path=path, flush_every=0)
    with tracer.span("buffered"):
        pass
    tracer.close()
    assert [record.name for record in Tracer.read(path)] == ["buffered"]
    with pytest.raises(ValidationError):
        Tracer(flush_every=-1)


def test_span_record_dict_round_trip():
    record = SpanRecord(
        span_id=3,
        parent_id=1,
        name="synthesis.solve",
        labels={"backend": "lp"},
        depth=2,
        start_s=0.25,
        wall_s=0.5,
        cpu_s=0.4,
    )
    assert SpanRecord.from_dict(record.to_dict()) == record


# ----------------------------------------------------------------------
# Renderings
# ----------------------------------------------------------------------
def _sample_tracer() -> Tracer:
    tracer = Tracer(enabled=True)
    for _ in range(3):
        with tracer.span("round"):
            with tracer.span("solve", backend="lp"):
                pass
    return tracer


def test_tree_rendering_indents_by_depth():
    tree = _sample_tracer().tree()
    lines = tree.splitlines()
    assert lines[0] == "span tree (wall s / cpu s)"
    assert sum(line.startswith("- round:") for line in lines) == 3
    assert sum(line.startswith("  - solve {backend=lp}:") for line in lines) == 3


def test_flamegraph_folds_repeated_paths():
    lines = _sample_tracer().flamegraph().splitlines()
    assert len(lines) == 2
    paths = {line.split(" ")[0]: line for line in lines}
    assert set(paths) == {"round", "round;solve"}
    # Each folded line carries "<path> <total_wall> <count>"; both aggregate 3.
    assert all(line.split(" ")[2] == "3" for line in lines)
    # Sorted by descending total wall: the parent path dominates its child.
    assert lines[0].startswith("round ")


def test_flamegraph_multi_branch_orders_by_descending_total_wall():
    # Hand-built records pin wall times so the ordering is deterministic:
    # the root dominates, then the single heavy child, then the folded pair.
    tracer = Tracer(enabled=True)
    tracer.records.extend(
        [
            SpanRecord(span_id=0, parent_id=None, name="root", wall_s=1.0),
            SpanRecord(span_id=1, parent_id=0, name="explore", depth=1, wall_s=0.2),
            SpanRecord(span_id=2, parent_id=0, name="explore", depth=1, wall_s=0.2),
            SpanRecord(span_id=3, parent_id=0, name="solve", depth=1, wall_s=0.5),
        ]
    )
    assert tracer.flamegraph().splitlines() == [
        "root 1.000000 1",
        "root;solve 0.500000 1",
        "root;explore 0.400000 2",
    ]


def test_flamegraph_exact_folded_line_format():
    # Each line must be machine-parseable: "<semicolon path> <wall.6f> <count>".
    tracer = Tracer(enabled=True)
    with tracer.span("outer"):
        with tracer.span("inner", backend="lp"):
            pass
    for line in tracer.flamegraph().splitlines():
        path, wall, count = line.split(" ")
        assert path in ("outer", "outer;inner")
        assert float(wall) >= 0.0 and "." in wall and len(wall.split(".")[1]) == 6
        assert count == "1"


def test_flamegraph_of_empty_tracer_is_empty():
    assert Tracer(enabled=True).flamegraph() == ""


def test_clear_drops_memory_but_not_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(enabled=True, path=path) as tracer:
        with tracer.span("kept-on-disk"):
            pass
        tracer.clear()
        assert tracer.records == []
    assert len(Tracer.read(path)) == 1


# ----------------------------------------------------------------------
# Module-level default
# ----------------------------------------------------------------------
def test_default_tracer_disabled_and_use_tracer_scopes():
    assert get_tracer().enabled is False  # suite runs without REPRO_TRACE
    with span("not-recorded") as record:
        assert record is None
    scoped = Tracer(enabled=True)
    with use_tracer(scoped):
        assert get_tracer() is scoped
        with span("recorded", layer="test"):
            pass
    assert get_tracer() is not scoped
    assert [record.name for record in scoped.records] == ["recorded"]
