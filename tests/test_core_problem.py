"""Unit tests for the SynthesisProblem container."""


import numpy as np
import pytest

from repro.attacks.fdi import FDIAttack
from repro.core.problem import SynthesisProblem
from repro.core.specs import ReachSetCriterion
from repro.monitors.composite import CompositeMonitor
from repro.monitors.range_monitor import RangeMonitor
from repro.utils.validation import ValidationError


class TestConstruction:
    def test_defaults(self, simple_closed_loop):
        problem = SynthesisProblem(
            system=simple_closed_loop,
            pfc=ReachSetCriterion(x_des=[0.0, 0.0], epsilon=0.1),
            horizon=10,
        )
        assert problem.n_outputs == 1
        np.testing.assert_allclose(problem.x0, np.zeros(2))
        assert problem.attack_mask.attackable == (0,)
        assert len(problem.mdc) == 0

    def test_rejects_bad_horizon(self, simple_closed_loop):
        with pytest.raises(ValidationError):
            SynthesisProblem(
                system=simple_closed_loop,
                pfc=ReachSetCriterion(x_des=[0.0, 0.0], epsilon=0.1),
                horizon=0,
            )

    def test_rejects_pfc_beyond_horizon(self, simple_closed_loop):
        with pytest.raises(ValidationError):
            SynthesisProblem(
                system=simple_closed_loop,
                pfc=ReachSetCriterion(x_des=[0.0, 0.0], epsilon=0.1, at=20),
                horizon=10,
            )

    def test_rejects_bad_weights(self, simple_closed_loop):
        with pytest.raises(ValidationError):
            SynthesisProblem(
                system=simple_closed_loop,
                pfc=ReachSetCriterion(x_des=[0.0, 0.0], epsilon=0.1),
                horizon=5,
                residue_weights=np.array([1.0, 2.0]),
            )

    def test_threshold_factories_carry_settings(self, trajectory_problem):
        fresh = trajectory_problem.fresh_threshold()
        assert fresh.length == trajectory_problem.horizon
        assert not fresh.is_fully_set
        static = trajectory_problem.static_threshold(0.3)
        assert static.is_static
        assert static[0] == 0.3


class TestVerdicts:
    def test_nominal_satisfies_pfc(self, trajectory_problem):
        trace = trajectory_problem.simulate()
        assert trajectory_problem.pfc_satisfied(trace)
        assert not trajectory_problem.mdc_alarm(trace)

    def test_detector_alarm(self, trajectory_problem):
        trace = trajectory_problem.simulate(with_noise=True, seed=0)
        tight = trajectory_problem.static_threshold(1e-9)
        loose = trajectory_problem.static_threshold(1e3)
        assert trajectory_problem.detector_alarm(trace, tight)
        assert not trajectory_problem.detector_alarm(trace, loose)

    def test_noiseless_nominal_residues_are_zero(self, trajectory_problem):
        """With matching initial states and no noise the innovation is identically zero."""
        trace = trajectory_problem.simulate()
        assert float(np.max(np.abs(trace.residues))) < 1e-12

    def test_successful_stealthy_attack_requires_all_three(self, trajectory_problem):
        # A huge, obvious attack violates pfc but is caught by the detector.
        values = np.full((trajectory_problem.horizon, 1), 0.5)
        trace = trajectory_problem.simulate(attack=FDIAttack(values))
        tight = trajectory_problem.static_threshold(0.01)
        assert not trajectory_problem.is_successful_stealthy_attack(trace, tight)
        # Without any detector the same attack may count as successful if it
        # evades the monitors and breaks pfc.
        if not trajectory_problem.pfc_satisfied(trace) and not trajectory_problem.mdc_alarm(trace):
            assert trajectory_problem.is_successful_stealthy_attack(trace, None)

    def test_mdc_alarm_detects_range_violation(self, simple_closed_loop):
        mdc = CompositeMonitor(monitors=[RangeMonitor(channel=0, low=-0.1, high=0.1)])
        problem = SynthesisProblem(
            system=simple_closed_loop,
            pfc=ReachSetCriterion(x_des=[0.0, 0.0], epsilon=10.0),
            horizon=5,
            mdc=mdc,
        )
        attack = FDIAttack(np.full((5, 1), 1.0))
        trace = problem.simulate(attack=attack)
        assert problem.mdc_alarm(trace)

    def test_residue_norms_weighted(self, simple_closed_loop):
        problem = SynthesisProblem(
            system=simple_closed_loop,
            pfc=ReachSetCriterion(x_des=[0.0, 0.0], epsilon=0.1),
            horizon=5,
            residue_weights=np.array([0.5]),
        )
        norms = problem.residue_norms(np.array([[1.0], [0.25]]))
        np.testing.assert_allclose(norms, [2.0, 0.5])


class TestHelpers:
    def test_with_horizon(self, trajectory_problem):
        longer = trajectory_problem.with_horizon(15)
        assert longer.horizon == 15
        assert trajectory_problem.horizon == 10

    def test_simulate_accepts_explicit_noise(self, trajectory_problem):
        noise = np.full((trajectory_problem.horizon, 1), 0.005)
        trace = trajectory_problem.simulate(measurement_noise=noise)
        np.testing.assert_allclose(trace.measurement_noise, noise)

    def test_unrolling_dimensions(self, trajectory_problem):
        unrolling = trajectory_problem.unrolling()
        assert unrolling.horizon == trajectory_problem.horizon
        assert unrolling.n_variables == trajectory_problem.horizon
