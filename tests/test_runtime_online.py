"""Online/offline equivalence of the runtime detector wrappers.

Property-style: for shared random traces (benign and attacked), every online
detector/monitor must produce *bit-identical* alarm sequences to its offline
``evaluate`` counterpart, and the fleet-wide batched cores must agree with
the scalar online wrappers instance for instance.
"""

import numpy as np
import pytest

from repro import get_case_study
from repro.attacks.templates import BiasAttack, GeometricAttack, RampAttack
from repro.detectors.chi_square import ChiSquareDetector
from repro.detectors.cusum import CusumDetector
from repro.detectors.residue import ResidueDetector
from repro.detectors.threshold import ThresholdVector
from repro.monitors.composite import CompositeMonitor
from repro.monitors.deadzone import DeadZoneMonitor
from repro.monitors.range_monitor import RangeMonitor
from repro.runtime.batch import make_batched
from repro.runtime.online import (
    OnlineChiSquare,
    OnlineCusum,
    OnlineMonitor,
    OnlineResidueDetector,
    make_online,
)
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def vsc_case():
    return get_case_study("vsc")


def shared_traces(problem, count=6):
    """Benign and attacked traces of one problem (fixed seeds, varied templates)."""
    horizon, m = problem.horizon, problem.n_outputs
    templates = [
        None,
        None,
        BiasAttack(bias=0.05, start=3),
        RampAttack(slope=0.01, start=5),
        GeometricAttack(initial=1e-3, ratio=1.2),
        BiasAttack(bias=-0.2),
    ]
    traces = []
    for seed in range(count):
        template = templates[seed % len(templates)]
        attack = None if template is None else template.generate(horizon, m)
        traces.append(problem.simulate(attack=attack, with_noise=True, seed=seed))
    return traces


def problems(dcmotor_problem, vsc_case):
    return [dcmotor_problem, vsc_case.problem]


class TestResidueDetectorEquivalence:
    def test_static_threshold_bit_identical(self, dcmotor_problem, vsc_case):
        for problem in problems(dcmotor_problem, vsc_case):
            detector = ResidueDetector(problem.static_threshold(0.02))
            online = OnlineResidueDetector(detector.threshold)
            for trace in shared_traces(problem):
                offline = detector.evaluate(trace.residues).alarms
                assert np.array_equal(online.run(trace.residues), offline)

    def test_variable_threshold_bit_identical(self, dcmotor_problem, vsc_case):
        for problem in problems(dcmotor_problem, vsc_case):
            # A synthesized-shaped (monotone decreasing staircase) threshold
            # carrying the problem's norm and channel weights.
            threshold = problem.fresh_threshold()
            values = np.linspace(0.3, 0.01, threshold.length)
            for index, value in enumerate(values):
                threshold.set_value(index, value)
            detector = ResidueDetector(threshold)
            online = OnlineResidueDetector(threshold)
            for trace in shared_traces(problem):
                offline = detector.evaluate(trace.residues).alarms
                assert np.array_equal(online.run(trace.residues), offline)

    def test_threshold_shorter_than_trace_holds_last_value(self):
        threshold = ThresholdVector(np.array([0.5, 0.2]))
        detector = ResidueDetector(threshold)
        online = OnlineResidueDetector(threshold)
        residues = np.array([[0.1], [0.1], [0.3], [0.1], [0.25]])
        assert np.array_equal(online.run(residues), detector.evaluate(residues).alarms)


class TestCusumEquivalence:
    @pytest.mark.parametrize("norm", [1, 2, "inf"])
    def test_bit_identical(self, dcmotor_problem, vsc_case, norm):
        for problem in problems(dcmotor_problem, vsc_case):
            detector = CusumDetector(bias=0.01, threshold=0.05, norm=norm)
            online = OnlineCusum.from_detector(detector)
            for trace in shared_traces(problem):
                offline = detector.evaluate(trace.residues).alarms
                assert np.array_equal(online.run(trace.residues), offline)

    def test_statistic_matches_offline(self, dcmotor_problem):
        detector = CusumDetector(bias=0.005, threshold=1.0)
        online = OnlineCusum.from_detector(detector)
        trace = shared_traces(dcmotor_problem, count=1)[0]
        online.run(trace.residues)
        assert online.statistic == detector.statistics(trace.residues)[-1]


class TestChiSquareEquivalence:
    def test_bit_identical(self, dcmotor_problem, vsc_case):
        for problem in problems(dcmotor_problem, vsc_case):
            m = problem.n_outputs
            detector = ChiSquareDetector.from_false_alarm_probability(
                np.eye(m) * 1e-4, 0.05
            )
            online = OnlineChiSquare.from_detector(detector)
            for trace in shared_traces(problem):
                offline = detector.evaluate(trace.residues).alarms
                assert np.array_equal(online.run(trace.residues), offline)


class TestMonitorEquivalence:
    def test_every_vsc_monitor_bit_identical(self, vsc_case):
        problem = vsc_case.problem
        dt = problem.dt
        members = list(problem.mdc) + [problem.mdc]
        # Exercise attacked traces too: monitors react to the forged
        # measurements, not the residues.
        for monitor in members:
            online = OnlineMonitor(monitor, dt)
            for trace in shared_traces(problem):
                offline = monitor.alarms(trace.measurements, dt)
                assert np.array_equal(online.run(trace.measurements), offline)

    def test_deadzone_run_counter_spans_steps(self):
        inner = RangeMonitor.symmetric(0, 0.1)
        monitor = DeadZoneMonitor(inner=inner, dead_zone_samples=3)
        online = OnlineMonitor(monitor, dt=1.0)
        measurements = np.array([[0.5], [0.5], [0.05], [0.5], [0.5], [0.5], [0.5]])
        offline = monitor.alarms(measurements, 1.0)
        assert np.array_equal(online.run(measurements), offline)
        assert offline.tolist() == [False, False, False, False, False, True, True]

    def test_custom_monitor_falls_back_to_windowed_evaluation(self, vsc_case):
        class EveryOtherMonitor(CompositeMonitor.__mro__[1]):  # Monitor ABC
            name = "every-other"

            def satisfied(self, measurements, dt):
                measurements = np.atleast_2d(measurements)
                # Violated whenever the first channel moved since the
                # previous sample (1-step lookback, like a gradient check).
                result = np.ones(measurements.shape[0], dtype=bool)
                if measurements.shape[0] > 1:
                    result[1:] = np.diff(measurements[:, 0]) == 0.0
                return result

            def conditions_at(self, k, dt):
                return []

        problem = vsc_case.problem
        monitor = EveryOtherMonitor()
        online = OnlineMonitor(monitor, problem.dt)
        trace = shared_traces(problem, count=1)[0]
        offline = monitor.alarms(trace.measurements, problem.dt)
        assert np.array_equal(online.run(trace.measurements), offline)


class TestOnlineAPI:
    def test_step_reset_state(self, dcmotor_problem):
        online = OnlineResidueDetector(dcmotor_problem.static_threshold(0.01))
        trace = shared_traces(dcmotor_problem, count=1)[0]
        first = bool(online.step(trace.residues[0]))
        assert isinstance(first, bool)
        assert online.step_index == 1
        assert online.state["step"] == 1
        online.reset()
        assert online.step_index == 0

    def test_cusum_state_snapshot_is_a_copy(self):
        online = OnlineCusum(bias=0.01, threshold=1.0)
        online.step([0.5])
        snapshot = online.state
        snapshot["statistic"][0] = 123.0
        assert online.statistic != 123.0

    def test_make_online_dispatch(self, dcmotor_problem):
        threshold = dcmotor_problem.static_threshold(0.1)
        assert isinstance(make_online(threshold), OnlineResidueDetector)
        assert isinstance(make_online(ResidueDetector(threshold)), OnlineResidueDetector)
        assert isinstance(make_online(CusumDetector(bias=0.1, threshold=1.0)), OnlineCusum)
        chi = ChiSquareDetector(innovation_cov=np.eye(1), threshold=5.0)
        assert isinstance(make_online(chi), OnlineChiSquare)
        monitor = RangeMonitor.symmetric(0, 1.0)
        assert isinstance(make_online(monitor, dt=0.1), OnlineMonitor)
        online = make_online(threshold)
        assert make_online(online) is online

    def test_make_online_monitor_needs_dt(self):
        with pytest.raises(ValidationError):
            make_online(RangeMonitor.symmetric(0, 1.0))

    def test_make_online_rejects_unknown_objects(self):
        with pytest.raises(ValidationError):
            make_online(object())


class TestBatchedCores:
    def test_batched_matches_scalar_instance_for_instance(self, vsc_case):
        problem = vsc_case.problem
        traces = shared_traces(problem)
        residues = np.stack([trace.residues for trace in traces])  # (N, T, m)
        measurements = np.stack([trace.measurements for trace in traces])
        bank = {
            "residue": problem.static_threshold(0.05),
            "cusum": CusumDetector(bias=0.01, threshold=0.05),
            "chi": ChiSquareDetector(innovation_cov=np.eye(2) * 1e-4, threshold=5.0),
            "mdc": problem.mdc,
        }
        for label, obj in bank.items():
            core = make_batched(obj, residues.shape[0], dt=problem.dt)
            feed = residues if core.consumes == "residues" else measurements
            batched = core.run(np.swapaxes(feed, 0, 1))  # (T, N)
            online = make_online(obj, dt=problem.dt)
            for i, trace in enumerate(traces):
                scalar = online.run(feed[i])
                assert np.array_equal(batched[:, i], scalar), label

    def test_batched_instance_count_checked(self, dcmotor_problem):
        core = make_batched(dcmotor_problem.static_threshold(0.1), 4)
        with pytest.raises(ValidationError):
            core.step(np.zeros((3, 1)))
        with pytest.raises(ValidationError):
            make_batched(core, 5)

    def test_make_batched_rejects_unknown_objects(self):
        with pytest.raises(ValidationError):
            make_batched(object(), 3)


class TestMembershipHooks:
    """grow/compact on the batched cores: row changes leave other rows alone."""

    def test_cusum_grow_and_compact_preserve_rows(self):
        core = make_batched(CusumDetector(bias=0.01, threshold=10.0), 3)
        core.run(np.full((4, 3, 1), 0.5))
        before = core.state["statistic"].copy()
        core.grow(2)
        assert core.n_instances == 5
        state = core.state["statistic"]
        np.testing.assert_array_equal(state[:3], before)
        np.testing.assert_array_equal(state[3:], [0.0, 0.0])
        core.compact(np.array([1, 4]))
        np.testing.assert_array_equal(core.state["statistic"], [before[1], 0.0])

    def test_threshold_steps_are_per_instance(self, dcmotor_problem):
        core = make_batched(dcmotor_problem.static_threshold(0.5), 2)
        core.step(np.zeros((2, 1)))
        core.step(np.zeros((2, 1)))
        core.grow(1)
        np.testing.assert_array_equal(core.state["steps"], [2, 2, 0])
        core.step(np.zeros((3, 1)))
        np.testing.assert_array_equal(core.state["steps"], [3, 3, 1])

    def test_monitor_grow_and_compact_keep_deadzone_counters(self):
        monitor = DeadZoneMonitor(
            inner=RangeMonitor.symmetric(0, 0.1), dead_zone_samples=3
        )
        core = make_batched(monitor, 2, dt=1.0)
        # Row 0 violates every step; row 1 stays inside the range.
        for _ in range(2):
            core.step(np.array([[0.5], [0.0]]))
        core.grow(1)
        # After 2 pre-grow violations, row 0 alarms on its 3rd straight
        # violation even though the fleet grew in between.
        alarms = core.step(np.array([[0.5], [0.0], [0.5]]))
        assert alarms.tolist() == [True, False, False]
        alarms = core.step(np.array([[0.5], [0.0], [0.5]]))
        assert alarms.tolist() == [True, False, False]
        core.compact(np.array([0, 2]))
        # Row 0 keeps its long violation run; the grown row reaches its
        # 3rd straight violation on this step.
        alarms = core.step(np.array([[0.5], [0.5]]))
        assert alarms.tolist() == [True, True]

    def test_grow_and_compact_validate(self, dcmotor_problem):
        core = make_batched(dcmotor_problem.static_threshold(0.5), 2)
        with pytest.raises(ValidationError):
            core.grow(0)
        with pytest.raises(ValidationError):
            core.compact(np.array([1, 0]))  # not strictly increasing
        with pytest.raises(ValidationError):
            core.compact(np.array([0, 2]))  # out of range


class TestRebind:
    """Hot parameter swaps on the online wrappers preserve detector state."""

    def test_threshold_rebind_keeps_position(self, dcmotor_problem):
        T = dcmotor_problem.horizon
        online = OnlineResidueDetector(ThresholdVector(np.full(T, 10.0)))
        for _ in range(4):
            assert not online.step([1.0])
        values = np.full(T, 10.0)
        values[4:] = 0.01
        online.rebind(ThresholdVector(values))
        assert online.step([1.0])  # compares against position 4, not 0
        assert online.threshold.values[4] == 0.01

    def test_cusum_rebind_keeps_accumulator(self):
        online = OnlineCusum(bias=0.1, threshold=100.0)
        for _ in range(5):
            online.step([1.0])
        accumulated = online.statistic
        assert accumulated > 0
        online.rebind(CusumDetector(bias=0.5, threshold=100.0))
        assert online.statistic == accumulated
        assert online.detector.bias == 0.5
        with pytest.raises(ValidationError):
            online.rebind("not a detector")

    def test_chi_square_rebind_swaps_detector(self):
        online = OnlineChiSquare(innovation_cov=np.eye(1), threshold=100.0)
        online.step([1.0])
        replacement = ChiSquareDetector(innovation_cov=np.eye(1), threshold=1e-6)
        online.rebind(replacement)
        assert online.detector is replacement
        assert online.step([1.0])
        with pytest.raises(ValidationError):
            online.rebind(CusumDetector(bias=0.1, threshold=1.0))

    def test_monitor_rebind_requires_matching_structure(self):
        monitor = DeadZoneMonitor(
            inner=RangeMonitor.symmetric(0, 0.1), dead_zone_samples=3
        )
        online = OnlineMonitor(monitor, dt=1.0)
        online.step([0.5])
        online.step([0.5])
        # Structurally identical monitor with a wider range: the dead-zone
        # run length survives, so the 3rd straight violation still alarms.
        replacement = DeadZoneMonitor(
            inner=RangeMonitor.symmetric(0, 0.2), dead_zone_samples=3
        )
        online.rebind(replacement)
        assert online.step([0.5])
        with pytest.raises(ValidationError):
            online.rebind(RangeMonitor.symmetric(0, 0.2))

    def test_base_cores_reject_unsupported_rebinding(self, dcmotor_problem):
        core = make_batched(dcmotor_problem.static_threshold(0.5), 1)
        with pytest.raises(ValidationError):
            core.rebind(CusumDetector(bias=0.1, threshold=1.0))
