"""Unit tests for performance criteria (pfc)."""

import numpy as np
import pytest

from repro.core.specs import (
    CompositeCriterion,
    FractionOfTargetCriterion,
    ReachSetCriterion,
    StateBoundCriterion,
    StateCondition,
)
from repro.utils.validation import ValidationError


class TestStateCondition:
    def test_requires_bound(self):
        with pytest.raises(ValidationError):
            StateCondition(terms=((0, 0, 1.0),))

    def test_value_and_holds(self):
        condition = StateCondition(terms=((2, 1, 1.0),), constant=-1.0, lower=0.0, upper=1.0)
        states = np.zeros((3, 2))
        states[2, 1] = 1.5
        assert condition.value(states) == pytest.approx(0.5)
        assert condition.holds(states)
        states[2, 1] = 3.0
        assert not condition.holds(states)

    def test_max_sample(self):
        condition = StateCondition(terms=((4, 0, 1.0), (2, 1, -1.0)), lower=0.0)
        assert condition.max_sample() == 4


class TestReachSetCriterion:
    def test_satisfied_inside_box(self):
        criterion = ReachSetCriterion(x_des=[1.0, 0.0], epsilon=0.1)
        states = np.zeros((6, 2))
        states[5] = [1.05, 0.02]
        assert criterion.satisfied(states)
        states[5] = [1.2, 0.0]
        assert not criterion.satisfied(states)

    def test_component_restriction(self):
        criterion = ReachSetCriterion(x_des=[1.0, 0.0], epsilon=0.1, components=(0,))
        states = np.zeros((4, 2))
        states[3] = [1.0, 99.0]
        assert criterion.satisfied(states)

    def test_explicit_at(self):
        criterion = ReachSetCriterion(x_des=[0.0], epsilon=0.1, at=2)
        states = np.array([[5.0], [5.0], [0.05], [9.0]])
        assert criterion.satisfied(states, horizon=3)
        assert criterion.required_horizon() == 2

    def test_epsilon_validation(self):
        with pytest.raises(ValidationError):
            ReachSetCriterion(x_des=[0.0], epsilon=-0.1)
        with pytest.raises(ValidationError):
            ReachSetCriterion(x_des=[0.0, 1.0], epsilon=[0.1, 0.1, 0.1])

    def test_conditions_structure(self):
        criterion = ReachSetCriterion(x_des=[1.0, -1.0], epsilon=[0.1, 0.2])
        conditions = criterion.conditions(horizon=7)
        assert len(conditions) == 2
        assert all(c.terms[0][0] == 7 for c in conditions)
        assert conditions[0].lower == -0.1 and conditions[0].upper == 0.1


class TestFractionOfTarget:
    def test_positive_target(self):
        criterion = FractionOfTargetCriterion(state_index=0, target=2.0, fraction=0.8, at=3)
        states = np.zeros((4, 1))
        states[3, 0] = 1.7
        assert criterion.satisfied(states, horizon=3)
        states[3, 0] = 1.5
        assert not criterion.satisfied(states, horizon=3)

    def test_negative_target(self):
        criterion = FractionOfTargetCriterion(state_index=0, target=-2.0, fraction=0.8)
        states = np.zeros((4, 1))
        states[3, 0] = -1.7
        assert criterion.satisfied(states)
        states[3, 0] = -1.0
        assert not criterion.satisfied(states)

    def test_two_sided_catches_overshoot(self):
        criterion = FractionOfTargetCriterion(
            state_index=0, target=1.0, fraction=0.8, two_sided=True
        )
        states = np.zeros((3, 1))
        states[2, 0] = 1.5
        assert not criterion.satisfied(states)

    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            FractionOfTargetCriterion(state_index=0, target=0.0, fraction=0.8)
        with pytest.raises(ValidationError):
            FractionOfTargetCriterion(state_index=0, target=1.0, fraction=1.5)


class TestStateBoundCriterion:
    def test_final_sample_bound(self):
        criterion = StateBoundCriterion(state_index=0, lower=-1.0, upper=1.0)
        states = np.zeros((5, 1))
        assert criterion.satisfied(states)
        states[4, 0] = 2.0
        assert not criterion.satisfied(states)

    def test_every_step_invariant(self):
        criterion = StateBoundCriterion(state_index=0, upper=1.0, every_step=True)
        states = np.zeros((5, 1))
        states[2, 0] = 2.0
        assert not criterion.satisfied(states)
        assert len(criterion.conditions(4)) == 4

    def test_needs_bound(self):
        with pytest.raises(ValidationError):
            StateBoundCriterion(state_index=0)


class TestComposite:
    def test_conjunction_semantics(self):
        composite = CompositeCriterion(
            members=[
                ReachSetCriterion(x_des=[1.0], epsilon=0.1),
                StateBoundCriterion(state_index=0, upper=2.0, every_step=True),
            ]
        )
        states = np.zeros((4, 1))
        states[3, 0] = 1.0
        assert composite.satisfied(states)
        states[1, 0] = 5.0
        assert not composite.satisfied(states)

    def test_required_horizon(self):
        composite = CompositeCriterion(
            members=[
                ReachSetCriterion(x_des=[1.0], epsilon=0.1, at=5),
                ReachSetCriterion(x_des=[1.0], epsilon=0.1, at=9),
            ]
        )
        assert composite.required_horizon() == 9
        assert CompositeCriterion(members=[]).required_horizon() is None
