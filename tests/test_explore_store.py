"""Tests for repro.explore.store: content addressing, persistence, recovery."""

import json

import pytest

from repro.explore import (
    ResultStore,
    StoreCorruptionWarning,
    canonical_config_key,
    problem_fingerprint,
)
from repro.registry import get_case_study
from repro.utils.validation import ValidationError


class TestCanonicalKey:
    def test_key_ignores_dict_ordering(self):
        assert canonical_config_key({"a": 1, "b": [1, 2]}) == canonical_config_key(
            {"b": [1, 2], "a": 1}
        )

    def test_key_distinguishes_values(self):
        assert canonical_config_key({"a": 1}) != canonical_config_key({"a": 2})
        assert canonical_config_key({"a": 1}) != canonical_config_key({"a": 1.5})

    def test_non_canonicalizable_rejected(self):
        with pytest.raises(ValidationError):
            canonical_config_key({"a": float("nan")})
        with pytest.raises(ValidationError):
            canonical_config_key({"a": object()})

    def test_problem_fingerprint_stability_and_sensitivity(self):
        a = problem_fingerprint(get_case_study("dcmotor", horizon=8).problem)
        b = problem_fingerprint(get_case_study("dcmotor", horizon=8).problem)
        c = problem_fingerprint(get_case_study("dcmotor", horizon=10).problem)
        assert a == b
        assert a != c

    def test_problem_fingerprint_ignores_numpy_printoptions(self):
        """Keys must hash values, not reprs — display settings are not config."""
        import numpy as np

        reference = problem_fingerprint(get_case_study("trajectory", horizon=8).problem)
        before = np.get_printoptions()
        try:
            np.set_printoptions(precision=2, threshold=3)
            assert (
                problem_fingerprint(get_case_study("trajectory", horizon=8).problem)
                == reference
            )
        finally:
            np.set_printoptions(**before)

    def test_problem_fingerprint_resolves_tiny_criterion_deltas(self):
        p1 = get_case_study("trajectory", horizon=8).problem
        p2 = get_case_study("trajectory", horizon=8).problem
        p2.pfc.x_des = p2.pfc.x_des + 1e-9
        assert problem_fingerprint(p1) != problem_fingerprint(p2)

    def test_problem_fingerprint_handles_infinite_monitor_bounds(self):
        # The VSC case ships monitors with one-sided (inf) bounds.
        assert problem_fingerprint(get_case_study("vsc").problem)


class TestResultStore:
    def test_put_get_roundtrip_and_counters(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        row = {"status": "sat", "false_alarm_rate": 0.25, "metrics": {"m": 1.0}}
        assert store.put("k1", {"cfg": 1}, row)
        assert store.get("missing") is None
        assert store.get("k1") == row
        assert (store.hits, store.misses) == (1, 1)
        assert "k1" in store and len(store) == 1

    def test_returned_rows_are_copies(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put("k", {}, {"metrics": {"a": 1}})
        store.get("k")["metrics"]["a"] = 999
        assert store.get("k")["metrics"]["a"] == 1

    def test_first_write_wins(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        assert store.put("k", {}, {"v": 1})
        assert not store.put("k", {}, {"v": 2})
        assert store.get("k") == {"v": 1}

    def test_persistence_across_opens(self, tmp_path):
        path = tmp_path / "s"
        with ResultStore(path) as store:
            store.put("k1", {"c": 1}, {"v": 1})
            store.put("k2", {"c": 2}, {"v": 2})
        reopened = ResultStore(path)
        assert len(reopened) == 2
        assert reopened.get("k2") == {"v": 2}

    def test_partial_trailing_write_is_truncated_and_recovered(self, tmp_path):
        path = tmp_path / "s"
        store = ResultStore(path)
        store.put("k1", {}, {"v": 1})
        store.put("k2", {}, {"v": 2})
        store.flush()
        # Simulate a crash mid-append: a record cut off without newline.
        with (path / "results.jsonl").open("a", encoding="utf-8") as handle:
            handle.write('{"key": "k3", "row": {"v"')
        with pytest.warns(StoreCorruptionWarning):
            recovered = ResultStore(path)
        assert sorted(recovered.keys()) == ["k1", "k2"]
        # The truncated tail is gone: the next append starts a clean record.
        recovered.put("k3", {}, {"v": 3})
        reread = ResultStore(path)
        assert sorted(reread.keys()) == ["k1", "k2", "k3"]
        assert reread.get("k3") == {"v": 3}

    def test_unterminated_valid_json_tail_truncated(self, tmp_path):
        """Even a fully-written record is partial without its newline —
        keeping it would fuse it with the next append."""
        path = tmp_path / "s"
        store = ResultStore(path)
        store.put("k1", {}, {"v": 1})
        store.flush()
        with (path / "results.jsonl").open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"key": "k2", "config": {}, "row": {"v": 2}}))
        with pytest.warns(StoreCorruptionWarning):
            recovered = ResultStore(path)
        assert recovered.keys() == ["k1"]
        recovered.put("k2", {}, {"v": 2})
        reread = ResultStore(path)
        assert sorted(reread.keys()) == ["k1", "k2"]
        assert reread.get("k2") == {"v": 2}

    def test_interior_corruption_skipped(self, tmp_path):
        path = tmp_path / "s"
        store = ResultStore(path)
        store.put("k1", {}, {"v": 1})
        store.put("k2", {}, {"v": 2})
        store.flush()
        lines = (path / "results.jsonl").read_text().splitlines()
        lines[0] = "this is not json"
        (path / "results.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.warns(StoreCorruptionWarning):
            recovered = ResultStore(path)
        assert recovered.keys() == ["k2"]

    def test_stale_or_missing_index_rebuilt(self, tmp_path):
        path = tmp_path / "s"
        store = ResultStore(path)
        store.put("k1", {}, {"v": 1})
        store.flush()
        (path / "index.json").unlink()
        reopened = ResultStore(path)
        assert reopened.keys() == ["k1"]
        index = json.loads((path / "index.json").read_text())
        assert index["count"] == 1 and "k1" in index["keys"]
