"""Tests for the incremental synthesis-session engine.

The contract under test: a :class:`~repro.core.session.SynthesisSession`
builds the encoding once per problem and serves per-round solves whose
results are bit-identical to the legacy one-encoding-per-call path, across
backends and synthesis algorithms.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SynthesisConfig, run_pipeline
from repro.core import encoding as encoding_module
from repro.core.attack_synthesis import synthesize_attack
from repro.core.encoding import AttackEncoding
from repro.core.pivot import PivotThresholdSynthesizer
from repro.core.relaxation import ThresholdRelaxer
from repro.core.session import AttackSynthesisResult, SynthesisSession
from repro.core.static_synthesis import StaticThresholdSynthesizer
from repro.core.stepwise import StepwiseThresholdSynthesizer
from repro.falsification.lp_backend import LPAttackBackend
from repro.smt.solver import Solver
from repro.smt.linear import LinearExpr
from repro.smt.expr import Atom
from repro.utils.results import SolveStatus
from repro.utils.validation import ValidationError


def build_delta(fn):
    """Run ``fn`` and return (result, number of full encoding builds it made)."""
    before = encoding_module.encoding_build_count()
    result = fn()
    return result, encoding_module.encoding_build_count() - before


class TestSessionSolve:
    def test_matches_one_shot_without_detector(self, trajectory_problem):
        session = SynthesisSession(trajectory_problem, backend="lp")
        from_session = session.solve(None)
        one_shot = synthesize_attack(trajectory_problem, threshold=None, backend="lp")
        assert from_session.status == one_shot.status
        np.testing.assert_array_equal(
            from_session.attack.values, one_shot.attack.values
        )
        np.testing.assert_array_equal(
            from_session.residue_norms, one_shot.residue_norms
        )

    def test_matches_one_shot_with_threshold(self, trajectory_problem):
        threshold = trajectory_problem.static_threshold(1.0)
        session = SynthesisSession(trajectory_problem, backend="lp")
        from_session = session.solve(threshold)
        one_shot = synthesize_attack(
            trajectory_problem, threshold=threshold, backend="lp"
        )
        assert from_session.status == one_shot.status
        if one_shot.found:
            np.testing.assert_array_equal(
                from_session.attack.values, one_shot.attack.values
            )

    def test_encoding_built_once_across_rounds(self, trajectory_problem):
        def run():
            session = SynthesisSession(trajectory_problem, backend="lp")
            session.solve(None)
            session.solve(trajectory_problem.static_threshold(1.0))
            session.solve(trajectory_problem.static_threshold(0.5))
            return session

        session, builds = build_delta(run)
        assert builds == 1
        assert session.solves == 3

    def test_detector_free_query_is_memoised(self, trajectory_problem):
        session = SynthesisSession(trajectory_problem, backend="lp")
        first = session.solve(None)
        second = session.solve(None)
        # Cache hit: same solver answer (shared payload), fresh elapsed.
        assert second.status == first.status
        assert second.attack is first.attack
        assert second.elapsed < first.elapsed
        assert session.solves == 2

    def test_solver_accepts_backend_instance(self, trajectory_problem):
        backend = LPAttackBackend(margin_mode="none")
        session = SynthesisSession(trajectory_problem, backend=backend)
        assert session.solver is backend
        assert session.solve(None).found


class TestSessionEquivalenceAcrossSynthesizers:
    """reuse_session=True and the legacy per-call path must agree exactly."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda backend, reuse: PivotThresholdSynthesizer(
                backend=backend, reuse_session=reuse
            ),
            lambda backend, reuse: StepwiseThresholdSynthesizer(
                backend=backend, reuse_session=reuse
            ),
            lambda backend, reuse: StaticThresholdSynthesizer(
                backend=backend, reuse_session=reuse
            ),
        ],
        ids=["pivot", "stepwise", "static"],
    )
    def test_identical_results_and_single_build(self, trajectory_problem, factory):
        legacy, legacy_builds = build_delta(
            lambda: factory("lp", False).synthesize(trajectory_problem)
        )
        incremental, session_builds = build_delta(
            lambda: factory("lp", True).synthesize(trajectory_problem)
        )
        np.testing.assert_array_equal(
            legacy.threshold.values, incremental.threshold.values
        )
        assert legacy.rounds == incremental.rounds
        assert legacy.status == incremental.status
        assert legacy.converged == incremental.converged
        assert session_builds == 1
        assert legacy_builds == legacy.rounds

    def test_two_phase_margin_strategy_matches_single_lp(self, trajectory_problem):
        single = StepwiseThresholdSynthesizer(
            backend=LPAttackBackend(margin_strategy="single-lp")
        ).synthesize(trajectory_problem)
        two_phase = StepwiseThresholdSynthesizer(
            backend=LPAttackBackend(margin_strategy="two-phase")
        ).synthesize(trajectory_problem)
        np.testing.assert_array_equal(
            single.threshold.values, two_phase.threshold.values
        )
        assert single.rounds == two_phase.rounds
        assert single.status == two_phase.status

    def test_unknown_margin_strategy_rejected(self):
        with pytest.raises(ValidationError):
            LPAttackBackend(margin_strategy="warp-drive")

    def test_smt_session_matches_per_call(self, small_dcmotor_problem):
        shared = StepwiseThresholdSynthesizer(backend="smt").synthesize(
            small_dcmotor_problem
        )
        per_call = StepwiseThresholdSynthesizer(
            backend="smt", reuse_session=False
        ).synthesize(small_dcmotor_problem)
        np.testing.assert_array_equal(
            shared.threshold.values, per_call.threshold.values
        )
        assert shared.rounds == per_call.rounds
        assert shared.status == per_call.status

    def test_injected_session_is_used(self, trajectory_problem):
        session = SynthesisSession(trajectory_problem, backend="lp")
        session.solve(None)
        solves_before = session.solves
        result = StepwiseThresholdSynthesizer(backend="lp").synthesize(
            trajectory_problem, session=session
        )
        assert result.converged
        assert session.solves > solves_before

    def test_relaxer_shares_session(self, trajectory_problem):
        synthesized = StepwiseThresholdSynthesizer(backend="lp").synthesize(
            trajectory_problem
        )

        def relax():
            return ThresholdRelaxer(backend="lp").relax(
                trajectory_problem, synthesized.threshold, verify_input=True
            )

        result, builds = build_delta(relax)
        assert result.certified
        assert builds == 1


class TestPipelineSessionSharing:
    def test_run_pipeline_builds_one_encoding_per_call(self, trajectory_problem):
        def run():
            return run_pipeline(
                trajectory_problem,
                synthesis=SynthesisConfig(
                    algorithms=("pivot", "stepwise", "static"), backend="lp"
                ),
            )

        report, builds = build_delta(run)
        assert builds == 1
        assert report.is_vulnerable
        assert set(report.synthesis) == {"pivot", "stepwise", "static"}

    def test_synthesizer_without_session_parameter_still_runs(self, trajectory_problem):
        """Plugin synthesizers predating the session protocol must keep working."""
        from repro.registry import SYNTHESIZERS

        class OldStyleSynthesizer:
            def __init__(self, backend="lp", **_):
                self.backend = backend

            def synthesize(self, problem):  # no session kwarg
                return StaticThresholdSynthesizer(backend=self.backend).synthesize(
                    problem
                )

        SYNTHESIZERS.register("old-style-test")(OldStyleSynthesizer)
        try:
            report = run_pipeline(
                trajectory_problem,
                synthesis=SynthesisConfig(algorithms=("old-style-test",), backend="lp"),
            )
            assert "old-style-test" in report.synthesis
        finally:
            SYNTHESIZERS.unregister("old-style-test")


class TestEncodingIncrementalStructure:
    def test_with_threshold_shares_static_blocks(self, trajectory_problem):
        encoding = AttackEncoding(problem=trajectory_problem, threshold=None)
        rebound = encoding.with_threshold(trajectory_problem.static_threshold(1.0))
        assert rebound.unrolling is encoding.unrolling
        assert rebound.stealth_template is encoding.stealth_template
        assert rebound.violation_branches() == encoding.violation_branches()

    def test_with_threshold_matches_fresh_build(self, trajectory_problem):
        threshold = trajectory_problem.static_threshold(0.7)
        fresh = AttackEncoding(problem=trajectory_problem, threshold=threshold)
        rebound = AttackEncoding(
            problem=trajectory_problem, threshold=None
        ).with_threshold(threshold)
        fresh_base = fresh.base_constraints()
        rebound_base = rebound.base_constraints()
        assert len(fresh_base) == len(rebound_base)
        for a, b in zip(fresh_base, rebound_base):
            np.testing.assert_array_equal(a.row, b.row)
            assert a.constant == b.constant
            assert a.label == b.label
            assert a.kind == b.kind

    def test_stealth_constraints_skip_unset_instances(self, trajectory_problem):
        encoding = AttackEncoding(problem=trajectory_problem, threshold=None)
        threshold = trajectory_problem.fresh_threshold()
        threshold.set_value(0, 1.0)
        constraints = encoding.stealth_constraints(threshold)
        # Only instance 0 carries a threshold: one +/- pair per channel.
        assert len(constraints) == 2 * trajectory_problem.n_outputs
        assert all(c.kind == "stealth" for c in constraints)

    def test_template_row_order_matches_legacy_emission(self, trajectory_problem):
        encoding = AttackEncoding(problem=trajectory_problem, threshold=None)
        template = encoding.stealth_template
        m = trajectory_problem.n_outputs
        assert template.n_rows == 2 * trajectory_problem.horizon * m
        assert template.labels[0] == "stealth[z0@0]<Th"
        assert template.labels[1] == "stealth[-z0@0]<Th"
        np.testing.assert_array_equal(
            template.sample_index[: 2 * m], np.zeros(2 * m, dtype=int)
        )


class TestSolverPushPop:
    def test_push_pop_scopes_assertions(self):
        solver = Solver()
        base = Atom(expression=LinearExpr({"x": 1.0}, -1.0), strict=False)  # x <= 1
        solver.add(base)
        solver.push()
        solver.add(Atom(expression=LinearExpr({"x": -1.0}, 2.0), strict=False))  # x >= 2
        assert solver.check().status is SolveStatus.UNSAT
        assert solver.scope_depth == 1
        solver.pop()
        assert solver.scope_depth == 0
        assert len(solver.assertions()) == 1
        assert solver.check().status is SolveStatus.SAT

    def test_pop_without_push_raises(self):
        with pytest.raises(ValidationError):
            Solver().pop()

    def test_reset_clears_scopes(self):
        solver = Solver()
        solver.push()
        solver.reset()
        assert solver.scope_depth == 0


# ----------------------------------------------------------------------
# Satellite: min_area_rectangle and the stepwise phase-2 degenerate branch.
# ----------------------------------------------------------------------
from repro.core.stepwise import min_area_rectangle  # noqa: E402
from repro.detectors.threshold import ThresholdVector  # noqa: E402


class TestMinAreaRectangle:
    def test_all_infinite_thresholds_return_none(self):
        threshold = ThresholdVector.unset(5)
        assert min_area_rectangle(np.full(5, 0.1), threshold) is None

    def test_floor_blocks_every_cut(self):
        threshold = ThresholdVector.static(0.5, 4)
        norms = np.full(4, 0.1)
        assert min_area_rectangle(norms, threshold, floor=0.5) is None
        # A floor *above* the thresholds blocks as well.
        assert min_area_rectangle(norms, threshold, floor=0.9) is None

    def test_attack_touching_every_threshold_returns_none(self):
        threshold = ThresholdVector.static(0.5, 4)
        assert min_area_rectangle(np.full(4, 0.5), threshold) is None

    def test_picks_cheapest_tail(self):
        threshold = ThresholdVector(np.array([1.0, 1.0, 0.5, 0.5]))
        norms = np.array([0.2, 0.95, 0.2, 0.4])
        # Cutting from 1 removes only (1.0 - 0.95); every other cut removes more.
        assert min_area_rectangle(norms, threshold) == 1

    def test_partial_staircase_ignores_unset_tail(self):
        values = np.array([1.0, 0.8, np.inf, np.inf])
        threshold = ThresholdVector(values)
        index = min_area_rectangle(np.array([0.3, 0.7, 0.1, 0.2]), threshold)
        assert index == 1


class _ScriptedSession:
    """Stands in for a SynthesisSession: returns pre-scripted results."""

    def __init__(self, results):
        self._results = list(results)

    def solve(self, threshold=None, time_budget=None, verify=None):
        return self._results.pop(0)


def _sat(norms):
    return AttackSynthesisResult(
        status=SolveStatus.SAT, residue_norms=np.asarray(norms, dtype=float)
    )


def _unsat():
    return AttackSynthesisResult(status=SolveStatus.UNSAT)


class TestStepwiseDegenerateBranches:
    """The phase-2 fallbacks of src/repro/core/stepwise.py on scripted rounds."""

    def test_degenerate_cut_lowers_by_strictness(self, small_dcmotor_problem):
        problem = small_dcmotor_problem
        horizon = problem.horizon
        peak = np.zeros(horizon)
        peak[-1] = 0.5  # initial step covers the whole horizon: phase 1 skipped
        session = _ScriptedSession(
            [_sat(peak), _sat(np.full(horizon, 0.5)), _unsat()]
        )
        result = StepwiseThresholdSynthesizer(backend="lp").synthesize(
            problem, session=session
        )
        assert result.converged
        assert result.rounds == 3
        expected = 0.5 - problem.strictness
        np.testing.assert_allclose(result.threshold.values, expected)
        assert any("phase-2 cut" in record.action for record in result.history)

    def test_floor_blocked_degenerate_cut_stops_without_progress(
        self, small_dcmotor_problem
    ):
        problem = small_dcmotor_problem
        horizon = problem.horizon
        peak = np.zeros(horizon)
        peak[-1] = 0.5
        session = _ScriptedSession([_sat(peak), _sat(np.full(horizon, 0.5))])
        result = StepwiseThresholdSynthesizer(
            backend="lp", min_threshold=0.5
        ).synthesize(problem, session=session)
        # The floor equals the staircase height: the degenerate cut cannot
        # lower anything, so the loop must exit with UNKNOWN, not spin.
        assert not result.converged
        assert result.status is SolveStatus.UNKNOWN
        assert result.rounds == 2
        np.testing.assert_allclose(result.threshold.values, 0.5)

    def test_min_area_floor_block_triggers_degenerate_branch(
        self, small_dcmotor_problem
    ):
        problem = small_dcmotor_problem
        horizon = problem.horizon
        peak = np.zeros(horizon)
        peak[-1] = 0.5
        # Norms strictly below the staircase, but the floor sits at the
        # staircase height: min_area_rectangle returns None and the
        # degenerate branch is also blocked -> no-progress exit.
        session = _ScriptedSession([_sat(peak), _sat(np.full(horizon, 0.1))])
        result = StepwiseThresholdSynthesizer(
            backend="lp", min_threshold=0.5
        ).synthesize(problem, session=session)
        assert result.status is SolveStatus.UNKNOWN
        np.testing.assert_allclose(result.threshold.values, 0.5)
