"""Unit tests for the linear-algebra utilities."""

import numpy as np
import pytest
from scipy import linalg as sla

from repro.utils.linalg import (
    as_matrix,
    as_vector,
    controllability_matrix,
    dare,
    dlyap,
    is_controllable,
    is_observable,
    is_positive_definite,
    is_positive_semidefinite,
    is_stable_discrete,
    matrix_power_series,
    observability_matrix,
    spectral_radius,
)
from repro.utils.validation import ValidationError


class TestCoercion:
    def test_as_matrix_scalar(self):
        assert as_matrix(3.0).shape == (1, 1)

    def test_as_matrix_vector_becomes_row(self):
        assert as_matrix([1.0, 2.0]).shape == (1, 2)

    def test_as_matrix_rejects_3d(self):
        with pytest.raises(ValidationError):
            as_matrix(np.zeros((2, 2, 2)))

    def test_as_vector_flattens(self):
        assert as_vector([[1.0], [2.0]]).shape == (2,)


class TestSpectral:
    def test_spectral_radius_diagonal(self):
        assert spectral_radius(np.diag([0.5, -0.9])) == pytest.approx(0.9)

    def test_stable_discrete_true(self):
        assert is_stable_discrete(np.diag([0.5, 0.3]))

    def test_stable_discrete_false(self):
        assert not is_stable_discrete(np.diag([1.1, 0.3]))

    def test_definiteness(self):
        assert is_positive_definite(np.eye(3))
        assert not is_positive_definite(np.diag([1.0, 0.0]))
        assert is_positive_semidefinite(np.diag([1.0, 0.0]))
        assert not is_positive_semidefinite(np.diag([1.0, -0.1]))


class TestStructuralTests:
    def test_controllability_matrix_shape(self):
        A = np.eye(3)
        B = np.ones((3, 2))
        assert controllability_matrix(A, B).shape == (3, 6)

    def test_double_integrator_controllable_observable(self):
        A = np.array([[1.0, 0.1], [0.0, 1.0]])
        B = np.array([[0.005], [0.1]])
        C = np.array([[1.0, 0.0]])
        assert is_controllable(A, B)
        assert is_observable(A, C)

    def test_uncontrollable_pair(self):
        A = np.diag([0.5, 0.7])
        B = np.array([[1.0], [0.0]])
        assert not is_controllable(A, B)

    def test_unobservable_pair(self):
        A = np.diag([0.5, 0.7])
        C = np.array([[1.0, 0.0]])
        assert not is_observable(A, C)

    def test_observability_matrix_shape(self):
        A = np.eye(2)
        C = np.ones((1, 2))
        assert observability_matrix(A, C).shape == (2, 2)


class TestLyapunov:
    def test_dlyap_satisfies_equation(self):
        rng = np.random.default_rng(0)
        A = 0.5 * rng.normal(size=(4, 4))
        A /= max(1.0, spectral_radius(A) / 0.8)
        Q = np.eye(4)
        X = dlyap(A, Q)
        np.testing.assert_allclose(A @ X @ A.T - X + Q, np.zeros((4, 4)), atol=1e-8)

    def test_dlyap_symmetric(self):
        A = np.diag([0.3, 0.6])
        X = dlyap(A, np.eye(2))
        np.testing.assert_allclose(X, X.T)

    def test_dlyap_shape_mismatch(self):
        with pytest.raises(ValidationError):
            dlyap(np.eye(2), np.eye(3))


class TestDARE:
    @pytest.mark.parametrize("method", ["scipy", "doubling", "auto"])
    def test_dare_matches_scipy(self, method):
        A = np.array([[1.0, 0.1], [0.0, 1.0]])
        B = np.array([[0.005], [0.1]])
        Q = np.diag([1.0, 0.1])
        R = np.array([[0.5]])
        X = dare(A, B, Q, R, method=method)
        reference = sla.solve_discrete_are(A, B, Q, R)
        np.testing.assert_allclose(X, reference, rtol=1e-6, atol=1e-8)

    def test_dare_residual_is_zero(self):
        A = np.array([[0.9, 0.2], [0.0, 0.8]])
        B = np.array([[0.0], [1.0]])
        Q = np.eye(2)
        R = np.array([[1.0]])
        X = dare(A, B, Q, R, method="doubling")
        residual = A.T @ X @ A - X - A.T @ X @ B @ np.linalg.solve(R + B.T @ X @ B, B.T @ X @ A) + Q
        np.testing.assert_allclose(residual, np.zeros((2, 2)), atol=1e-7)

    def test_dare_rejects_indefinite_r(self):
        with pytest.raises(ValidationError):
            dare(np.eye(2), np.ones((2, 1)), np.eye(2), np.array([[-1.0]]))

    def test_dare_rejects_unknown_method(self):
        with pytest.raises(ValidationError):
            dare(np.eye(2), np.ones((2, 1)), np.eye(2), np.eye(1), method="nope")


class TestPowerSeries:
    def test_matrix_power_series(self):
        A = np.diag([2.0, 3.0])
        powers = matrix_power_series(A, 3)
        assert len(powers) == 4
        np.testing.assert_allclose(powers[0], np.eye(2))
        np.testing.assert_allclose(powers[3], np.diag([8.0, 27.0]))
