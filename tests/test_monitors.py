"""Unit tests for the plant monitors (mdc)."""

import numpy as np
import pytest

from repro.monitors.base import LinearCondition
from repro.monitors.composite import CompositeMonitor
from repro.monitors.deadzone import DeadZoneMonitor
from repro.monitors.gradient_monitor import GradientMonitor
from repro.monitors.range_monitor import RangeMonitor
from repro.monitors.relation_monitor import RelationMonitor
from repro.utils.validation import ValidationError

DT = 0.1


class TestLinearCondition:
    def test_requires_a_bound(self):
        with pytest.raises(ValidationError):
            LinearCondition(terms=((0, 0, 1.0),))

    def test_bounds_ordering(self):
        with pytest.raises(ValidationError):
            LinearCondition(terms=((0, 0, 1.0),), lower=1.0, upper=0.0)

    def test_evaluate(self):
        condition = LinearCondition(terms=((1, 0, 2.0),), constant=-1.0, lower=0.0, upper=3.0)
        measurements = np.array([[0.0], [1.0]])
        assert condition.value(measurements) == pytest.approx(1.0)
        assert condition.evaluate(measurements)
        measurements[1, 0] = 5.0
        assert not condition.evaluate(measurements)


class TestRangeMonitor:
    def test_satisfied_flags(self):
        monitor = RangeMonitor(channel=0, low=-1.0, high=1.0)
        y = np.array([[0.0], [2.0], [-0.5]])
        np.testing.assert_array_equal(monitor.satisfied(y, DT), [True, False, True])

    def test_symmetric_constructor(self):
        monitor = RangeMonitor.symmetric(1, 0.2)
        assert monitor.low == -0.2
        assert monitor.high == 0.2

    def test_invalid_bounds(self):
        with pytest.raises(ValidationError):
            RangeMonitor(channel=0, low=1.0, high=-1.0)

    def test_conditions_match_evaluation(self):
        monitor = RangeMonitor(channel=1, low=-0.5, high=0.7)
        y = np.array([[0.0, 0.6], [0.0, 0.9]])
        for k in range(2):
            conditions = monitor.conditions_at(k, DT)
            assert len(conditions) == 1
            assert conditions[0].evaluate(y) == monitor.satisfied(y, DT)[k]

    def test_alarm_and_report(self):
        monitor = RangeMonitor(channel=0, low=-1.0, high=1.0)
        y = np.array([[2.0], [0.0]])
        report = monitor.report(y, DT)
        assert report.any_alarm
        assert report.violation_count == 1
        assert monitor.raises_alarm(y, DT)


class TestGradientMonitor:
    def test_first_sample_vacuous(self):
        monitor = GradientMonitor(channel=0, max_rate=1.0)
        y = np.array([[100.0], [100.05]])
        assert monitor.satisfied(y, DT)[0]

    def test_rate_violation(self):
        monitor = GradientMonitor(channel=0, max_rate=1.0)
        y = np.array([[0.0], [0.05], [0.5]])  # second step rate = 4.5 > 1
        np.testing.assert_array_equal(monitor.satisfied(y, DT), [True, True, False])

    def test_conditions_reference_previous_sample(self):
        monitor = GradientMonitor(channel=0, max_rate=1.0)
        assert monitor.conditions_at(0, DT) == []
        conditions = monitor.conditions_at(3, DT)
        samples = {sample for condition in conditions for sample, _, _ in condition.terms}
        assert samples == {2, 3}

    def test_conditions_match_evaluation(self):
        monitor = GradientMonitor(channel=0, max_rate=2.0)
        y = np.array([[0.0], [0.1], [0.5]])
        for k in range(1, 3):
            conditions = monitor.conditions_at(k, DT)
            assert all(c.evaluate(y) for c in conditions) == monitor.satisfied(y, DT)[k]


class TestRelationMonitor:
    def test_mismatch_and_satisfaction(self):
        monitor = RelationMonitor(channel_a=0, channel_b=1, gain=0.1, allowed_diff=0.05)
        y = np.array([[0.1, 1.0], [0.3, 1.0]])
        np.testing.assert_allclose(monitor.mismatch(y), [0.0, 0.2])
        np.testing.assert_array_equal(monitor.satisfied(y, DT), [True, False])

    def test_offset(self):
        monitor = RelationMonitor(channel_a=0, channel_b=1, gain=1.0, offset=0.5, allowed_diff=0.01)
        y = np.array([[1.5, 1.0]])
        assert monitor.satisfied(y, DT)[0]

    def test_conditions_match_evaluation(self):
        monitor = RelationMonitor(channel_a=0, channel_b=1, gain=2.0, allowed_diff=0.1)
        y = np.array([[2.05, 1.0], [2.5, 1.0]])
        for k in range(2):
            conditions = monitor.conditions_at(k, DT)
            assert all(c.evaluate(y) for c in conditions) == monitor.satisfied(y, DT)[k]


class TestDeadZone:
    def test_alarm_requires_consecutive_violations(self):
        inner = RangeMonitor(channel=0, low=-1.0, high=1.0)
        monitor = DeadZoneMonitor(inner=inner, dead_zone_samples=3)
        # Two isolated violations: no alarm.
        y = np.array([[2.0], [0.0], [2.0], [0.0]])
        assert not monitor.raises_alarm(y, DT)
        # Three consecutive violations: alarm at the third.
        y = np.array([[2.0], [2.0], [2.0], [0.0]])
        np.testing.assert_array_equal(monitor.alarms(y, DT), [False, False, True, False])

    def test_alarm_persists_during_longer_runs(self):
        inner = RangeMonitor(channel=0, low=-1.0, high=1.0)
        monitor = DeadZoneMonitor(inner=inner, dead_zone_samples=2)
        y = np.full((4, 1), 2.0)
        np.testing.assert_array_equal(monitor.alarms(y, DT), [False, True, True, True])

    def test_satisfied_reports_inner_check(self):
        inner = RangeMonitor(channel=0, low=-1.0, high=1.0)
        monitor = DeadZoneMonitor(inner=inner, dead_zone_samples=5)
        y = np.array([[2.0], [0.0]])
        np.testing.assert_array_equal(monitor.satisfied(y, DT), [False, True])

    def test_stealth_windows(self):
        inner = RangeMonitor(channel=0, low=-1.0, high=1.0)
        monitor = DeadZoneMonitor(inner=inner, dead_zone_samples=3)
        windows = monitor.stealth_windows(5)
        assert windows == [(0, 1, 2), (1, 2, 3), (2, 3, 4)]
        assert monitor.stealth_windows(2) == []

    def test_name_wraps_inner(self):
        monitor = DeadZoneMonitor(inner=RangeMonitor(channel=0, low=0, high=1, name="r"), dead_zone_samples=2)
        assert "r" in monitor.name


class TestComposite:
    def _composite(self):
        return CompositeMonitor(
            monitors=[
                DeadZoneMonitor(RangeMonitor(channel=0, low=-1.0, high=1.0), dead_zone_samples=2),
                GradientMonitor(channel=0, max_rate=5.0),
            ]
        )

    def test_satisfied_is_conjunction(self):
        composite = self._composite()
        y = np.array([[0.0], [2.0], [0.0]])
        satisfied = composite.satisfied(y, DT)
        np.testing.assert_array_equal(satisfied, [True, False, False])  # gradient violated at k=2

    def test_alarm_is_disjunction_with_deadzones(self):
        composite = self._composite()
        # Range violated twice consecutively -> dead-zone alarm; gradient alarms instantly.
        y = np.array([[0.0], [2.0], [2.0]])
        alarms = composite.alarms(y, DT)
        assert alarms[1]  # gradient monitor alarms immediately at k=1
        assert alarms[2]

    def test_empty_composite_never_alarms(self):
        composite = CompositeMonitor.empty()
        y = np.ones((5, 2)) * 100
        assert not composite.raises_alarm(y, DT)
        assert len(composite) == 0

    def test_conditions_aggregate(self):
        composite = self._composite()
        assert len(composite.conditions_at(1, DT)) == 2

    def test_member_helpers(self):
        composite = self._composite()
        assert len(composite.dead_zone_members()) == 1
        assert len(composite.plain_members()) == 1
        assert len(composite.member_reports(np.zeros((3, 1)), DT)) == 2

    def test_add_chaining(self):
        composite = CompositeMonitor.empty()
        composite.add(RangeMonitor(channel=0, low=0, high=1)).add(GradientMonitor(channel=0, max_rate=1))
        assert len(composite) == 2
