"""Tests for the benchmark-trajectory store (`repro.obs.watch.history`)."""

import json
from pathlib import Path

import pytest

from repro.obs.watch import BenchHistory, BenchRecord

REPO_ROOT = Path(__file__).resolve().parents[1]


def _write_bench(path, records):
    path.write_text(json.dumps(records, indent=2) + "\n")


class TestBenchRecord:
    def test_timed_variant_parses_metrics_and_provenance(self):
        raw = {
            "name": "test_x",
            "timestamp": 100.5,
            "timing_disabled": False,
            "git_sha": "abc123",
            "git_dirty": True,
            "elapsed": 1.25,
            "throughput": 9.5e6,
            "elapsed_s": 1.3,
            "instance_steps": 12_000_000,
            "label": "not-a-metric",
        }
        record = BenchRecord.from_raw(raw)
        assert record.test == "test_x"
        assert record.timestamp == 100.5
        assert record.git_sha == "abc123" and record.git_dirty
        assert record.metrics == {
            "elapsed": 1.25,
            "throughput": 9.5e6,
            "elapsed_s": 1.3,
            "instance_steps": 12_000_000.0,
        }

    def test_disabled_variant_without_elapsed_or_provenance(self):
        record = BenchRecord.from_raw(
            {"name": "test_y", "timestamp": 7.0, "timing_disabled": True}
        )
        assert record.timing_disabled
        assert record.git_sha == "" and not record.git_dirty
        assert record.metrics == {}

    def test_bools_are_not_metrics(self):
        record = BenchRecord.from_raw({"name": "t", "timestamp": 1.0, "ok": True})
        assert record.metrics == {}

    def test_to_raw_round_trips(self):
        raw = {
            "name": "test_z",
            "timestamp": 3.0,
            "timing_disabled": False,
            "git_sha": "beef",
            "git_dirty": False,
            "throughput": 2.0,
        }
        assert BenchRecord.from_raw(BenchRecord.from_raw(raw).to_raw()) == BenchRecord.from_raw(raw)


class TestLoading:
    def test_load_dir_builds_series_ordered_by_timestamp(self, tmp_path):
        _write_bench(
            tmp_path / "BENCH_test_a.json",
            [
                {"name": "test_a", "timestamp": 2.0, "timing_disabled": False, "throughput": 20.0},
                {"name": "test_a", "timestamp": 1.0, "timing_disabled": False, "throughput": 10.0},
                {"name": "test_a", "timestamp": 3.0, "timing_disabled": True},
            ],
        )
        history = BenchHistory()
        assert history.load_dir(tmp_path) == 3
        series = history.series("test_a", "throughput")
        assert series.values == (10.0, 20.0)  # timestamp order, disabled record absent
        assert series.key == "test_a/throughput"

    def test_corrupt_file_is_skipped_like_the_writer_restarts_it(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text('[{"name": "x", "times')
        (tmp_path / "BENCH_obj.json").write_text('{"not": "a list"}')
        history = BenchHistory()
        assert history.load_dir(tmp_path) == 0
        assert len(history.skipped_files) == 2

    def test_duplicate_records_are_deduped_first_write_wins(self, tmp_path):
        raw = {"name": "t", "timestamp": 1.0, "timing_disabled": False, "elapsed": 0.5}
        _write_bench(tmp_path / "BENCH_t.json", [raw, raw])
        history = BenchHistory()
        assert history.load_dir(tmp_path) == 1
        assert len(history) == 1

    def test_real_repo_trajectory_parses_every_record(self):
        bench_files = sorted(REPO_ROOT.glob("BENCH_*.json"))
        if not bench_files:
            pytest.skip("no BENCH_*.json trajectory in this checkout")
        history = BenchHistory()
        history.load_dir(REPO_ROOT)
        assert history.skipped_files == []
        seen = {record.key() for record in history}
        variants = set()
        for path in bench_files:
            for raw in json.loads(path.read_text()):
                record = BenchRecord.from_raw(raw)
                assert record.key() in seen, f"{path.name}: record not parsed"
                variants.add("disabled" if record.timing_disabled else "timed")
                if not record.timing_disabled:
                    assert "elapsed" in record.metrics
        # The committed trajectory exercises both schema variants.
        assert "timed" in variants


class TestJsonl:
    def test_append_and_load_round_trip(self, tmp_path):
        history = BenchHistory(
            [
                BenchRecord("t", 1.0, metrics={"elapsed": 0.1}),
                BenchRecord("t", 2.0, metrics={"elapsed": 0.2}, git_sha="aa", git_dirty=True),
            ]
        )
        path = tmp_path / "history.jsonl"
        assert history.append_jsonl(path) == 2
        loaded = BenchHistory()
        assert loaded.load_jsonl(path) == 2
        assert loaded.records == history.records

    def test_append_is_idempotent(self, tmp_path):
        history = BenchHistory([BenchRecord("t", 1.0, metrics={"elapsed": 0.1})])
        path = tmp_path / "history.jsonl"
        assert history.append_jsonl(path) == 1
        assert history.append_jsonl(path) == 0
        history.add(BenchRecord("t", 2.0, metrics={"elapsed": 0.2}))
        assert history.append_jsonl(path) == 1
        assert len(path.read_text().splitlines()) == 2

    def test_truncated_trailing_line_is_dropped_silently(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps({"name": "t", "timestamp": 1.0, "timing_disabled": False}) + "\n"
            + '{"name": "t", "timesta'
        )
        history = BenchHistory()
        assert history.load_jsonl(path) == 1

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            "garbage not json\n"
            + json.dumps({"name": "t", "timestamp": 1.0, "timing_disabled": False}) + "\n"
        )
        with pytest.raises(ValueError, match="interior"):
            BenchHistory().load_jsonl(path)

    def test_missing_file_loads_nothing(self, tmp_path):
        assert BenchHistory().load_jsonl(tmp_path / "absent.jsonl") == 0

    def test_merge_is_first_write_wins(self):
        a = BenchHistory([BenchRecord("t", 1.0, metrics={"elapsed": 0.1})])
        b = BenchHistory(
            [
                BenchRecord("t", 1.0, metrics={"elapsed": 0.1}),  # duplicate
                BenchRecord("t", 2.0, metrics={"elapsed": 0.2}),
            ]
        )
        assert a.merge(b) == 1
        assert len(a) == 2


class TestSeriesViews:
    def test_tests_metrics_and_all_series(self):
        history = BenchHistory(
            [
                BenchRecord("b", 1.0, metrics={"elapsed": 0.1, "throughput": 5.0}),
                BenchRecord("a", 1.0, metrics={"elapsed": 0.4}),
            ]
        )
        assert history.tests() == ("a", "b")
        assert history.metrics("b") == ("elapsed", "throughput")
        assert [s.key for s in history.all_series()] == [
            "a/elapsed",
            "b/elapsed",
            "b/throughput",
        ]

    def test_series_carries_sha_provenance(self):
        history = BenchHistory(
            [BenchRecord("t", 1.0, git_sha="cafe", metrics={"elapsed": 0.1})]
        )
        assert history.series("t", "elapsed").shas == ("cafe",)
