"""Unit and property-based tests for the DPLL(T) solver facade."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.expr import And, BoolVar, Implies, Not, Or, ge, gt, le, lt
from repro.smt.linear import RealVar
from repro.smt.solver import Solver
from repro.utils.results import SolveStatus
from repro.utils.validation import ValidationError

X, Y, Z = RealVar("x"), RealVar("y"), RealVar("z")


def check(*formulas):
    solver = Solver()
    solver.add(*formulas)
    return solver.check()


class TestBasicQueries:
    def test_simple_sat(self):
        result = check(ge(X, 1), le(X, 2))
        assert result.is_sat
        assert 1 - 1e-9 <= result.value(X) <= 2 + 1e-9

    def test_simple_unsat(self):
        result = check(ge(X, 3), le(X, 2))
        assert result.status is SolveStatus.UNSAT

    def test_strict_boundary(self):
        assert check(lt(X, 1), gt(X, 1)).status is SolveStatus.UNSAT
        assert check(le(X, 1), ge(X, 1)).is_sat

    def test_disjunction_picks_feasible_branch(self):
        result = check(Or(And(ge(X, 10), le(X, 11)), And(ge(X, -1), le(X, 0))), le(X, 5))
        assert result.is_sat
        assert -1 - 1e-9 <= result.value(X) <= 0 + 1e-9

    def test_nested_boolean_structure(self):
        formula = And(
            Or(ge(X, 5), ge(Y, 5)),
            Or(le(X, 1), le(Y, 1)),
            ge(X, 0),
            ge(Y, 0),
        )
        result = check(formula)
        assert result.is_sat
        x, y = result.value(X), result.value(Y)
        assert (x >= 5 - 1e-9) or (y >= 5 - 1e-9)
        assert (x <= 1 + 1e-9) or (y <= 1 + 1e-9)

    def test_unsat_through_boolean_reasoning(self):
        formula = And(
            Or(ge(X, 5), ge(Y, 5)),
            le(X, 1),
            le(Y, 1),
        )
        assert check(formula).status is SolveStatus.UNSAT

    def test_implication(self):
        result = check(Implies(gt(X, 0), gt(Y, 10)), ge(X, 1), le(Y, 20))
        assert result.is_sat
        assert result.value(Y) > 10 - 1e-9

    def test_pure_boolean(self):
        a, b = BoolVar("a"), BoolVar("b")
        result = check(Or(a, b), Not(a))
        assert result.is_sat
        assert result.bool_model["b"] is True
        assert check(a, Not(a)).status is SolveStatus.UNSAT

    def test_three_variable_chain(self):
        result = check(le(X - Y, 0), le(Y - Z, 0), le(Z, 5), ge(X, 4))
        assert result.is_sat
        assert result.value(X) <= result.value(Y) + 1e-7 <= result.value(Z) + 2e-7

    def test_model_satisfies_all_assertions(self):
        formulas = [Or(ge(X, 3), le(Y, -3)), le(X + Y, 1), ge(Y, -10)]
        result = check(*formulas)
        assert result.is_sat
        assignment = {"x": result.value(X), "y": result.value(Y)}
        for formula in formulas:
            assert formula.evaluate(assignment)


class TestSolverFacade:
    def test_reset(self):
        solver = Solver()
        solver.add(ge(X, 3), le(X, 2))
        assert solver.check().status is SolveStatus.UNSAT
        solver.reset()
        solver.add(ge(X, 3))
        assert solver.check().is_sat

    def test_add_rejects_non_formula(self):
        solver = Solver()
        with pytest.raises(ValidationError):
            solver.add("x > 1")

    def test_statistics_present(self):
        result = check(ge(X, 1), Or(le(Y, 0), ge(Y, 5)))
        assert "decisions" in result.statistics
        assert result.statistics["clauses"] > 0

    def test_unconstrained_variable_defaults_to_zero(self):
        result = check(Or(ge(X, 1), ge(Y, 1)))
        assert result.is_sat
        # Whichever variable is not mentioned in the satisfied branch defaults to 0.
        assert set(result.real_model) == {"x", "y"}

    def test_lazy_theory_mode(self):
        solver = Solver(theory_check="lazy")
        solver.add(Or(ge(X, 5), le(X, -5)), ge(X, 0))
        result = solver.check()
        assert result.is_sat
        assert result.value(X) >= 5 - 1e-9


@st.composite
def interval_constraints(draw):
    """Random conjunctions of interval constraints over three variables."""
    constraints = []
    bounds = {}
    for name, var in (("x", X), ("y", Y), ("z", Z)):
        low = draw(st.floats(min_value=-10, max_value=10, allow_nan=False))
        width = draw(st.floats(min_value=-5, max_value=5, allow_nan=False))
        high = low + width
        constraints.append(ge(var, low))
        constraints.append(le(var, high))
        bounds[name] = (low, high)
    return constraints, bounds


class TestPropertySolver:
    @settings(max_examples=40, deadline=None)
    @given(interval_constraints())
    def test_interval_conjunction_sat_iff_all_nonempty(self, case):
        constraints, bounds = case
        result = check(*constraints)
        expected_sat = all(low <= high for low, high in bounds.values())
        assert result.is_sat == expected_sat
        if expected_sat:
            for name, (low, high) in bounds.items():
                assert low - 1e-6 <= result.real_model[name] <= high + 1e-6
