"""Shard determinism: ``workers``-independence of the fused engine, bit for bit.

The fused engine may carve the fleet into contiguous per-worker column
shards.  The sharding contract (``docs/runtime-kernel.md``) promises that
the observable output is independent of ``workers`` — traces, report
statistics and the alarm *event stream including its order* are bit-identical
for every worker count, in float64 and float32 alike.  The engine honours
that two ways: shard layouts the BLAS reproduces exactly run sharded
(verified by :func:`~repro.runtime.kernel.runner.probe_shard_stability`),
and layouts it would perturb are clamped to a single shard.  These tests
assert the contract over worker counts {1, 2, 7, N}, so they hold on every
BLAS regardless of which branch the probe picks.
"""

import numpy as np
import pytest

from repro.attacks.templates import BiasAttack
from repro.detectors.cusum import CusumDetector
from repro.registry import CASE_STUDIES
from repro.runtime.events import InMemorySink
from repro.runtime.fleet import FleetSimulator, ScheduledAttack
from repro.runtime.kernel.runner import _shard_bounds

N_INSTANCES = 37
HORIZON = 50
WORKER_COUNTS = (1, 2, 7, N_INSTANCES)

TRACE_FIELDS = (
    "states",
    "estimates",
    "inputs",
    "measurements",
    "true_outputs",
    "residues",
)


@pytest.fixture(scope="module")
def quadtank_problem():
    return CASE_STUDIES.create("quadtank").problem


def _run(problem, *, workers, dtype):
    sink = InMemorySink()
    simulator = FleetSimulator(
        problem.system,
        N_INSTANCES,
        HORIZON,
        detectors={
            "static": problem.static_threshold(0.1),
            "cusum": CusumDetector(bias=0.05, threshold=0.5),
        },
        x0=problem.x0,
        attacks=[ScheduledAttack(BiasAttack(bias=0.4), fraction=0.3, start=12)],
        sinks=[sink],
        seed=5,
        record_traces=True,
        metrics=False,
        engine="fused",
        engine_options={"dtype": dtype, "workers": workers},
    )
    report = simulator.run()
    return report, simulator.trace, list(sink.events)


class TestWorkerIndependence:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_every_worker_count_matches_unsharded(self, quadtank_problem, dtype):
        reference = _run(quadtank_problem, workers=1, dtype=dtype)
        for workers in WORKER_COUNTS[1:]:
            report, trace, events = _run(quadtank_problem, workers=workers, dtype=dtype)
            for field in TRACE_FIELDS:
                assert np.array_equal(
                    getattr(trace, field), getattr(reference[1], field)
                ), f"{field!r} diverged at workers={workers} ({dtype})"
            # Event identity AND order: sharding must not reorder alarms.
            assert events == reference[2], f"event stream diverged at workers={workers}"
            for label in reference[0].detectors:
                assert (
                    report.detectors[label].to_dict()
                    == reference[0].detectors[label].to_dict()
                ), f"stats for {label!r} diverged at workers={workers}"

    def test_effective_workers_never_exceed_the_fleet(self, quadtank_problem):
        report, _, _ = _run(quadtank_problem, workers=500, dtype="float64")
        assert 1 <= report.metadata["engine"]["workers"] <= N_INSTANCES

    def test_metadata_records_shard_stability_verdict(self, quadtank_problem):
        report, _, _ = _run(quadtank_problem, workers=2, dtype="float64")
        engine = report.metadata["engine"]
        assert isinstance(engine["shard_stable"], bool)
        if not engine["shard_stable"]:
            # An unstable verdict must have been enforced by the clamp.
            assert engine["workers"] == 1


class TestShardBounds:
    """The contiguous-carve helper the sharding contract is built on."""

    @pytest.mark.parametrize("n, workers", [(37, 1), (37, 2), (37, 7), (37, 37), (5, 8), (1, 4)])
    def test_bounds_are_contiguous_and_cover_the_fleet(self, n, workers):
        bounds = _shard_bounds(n, workers)
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo, "shards must tile the instance axis contiguously"
        assert all(hi > lo for lo, hi in bounds)
        assert len(bounds) == min(workers, n)

    def test_shard_sizes_are_balanced(self):
        sizes = [hi - lo for lo, hi in _shard_bounds(37, 7)]
        assert max(sizes) - min(sizes) <= 1
