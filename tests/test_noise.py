"""Unit tests for the noise models and batch generators."""

import numpy as np
import pytest

from repro.noise.generators import noise_matrix, noise_vector_batch
from repro.noise.models import (
    BoundedUniformNoise,
    GaussianNoise,
    TruncatedGaussianNoise,
    ZeroNoise,
)
from repro.utils.validation import ValidationError


class TestZeroNoise:
    def test_is_zero(self):
        model = ZeroNoise(3)
        assert model.dimension == 3
        np.testing.assert_allclose(model.sample(5), np.zeros((5, 3)))

    def test_sample_one(self):
        np.testing.assert_allclose(ZeroNoise(2).sample_one(), np.zeros(2))


class TestGaussianNoise:
    def test_shape_and_covariance(self):
        covariance = np.diag([1.0, 4.0])
        model = GaussianNoise(covariance)
        samples = model.sample(20000, rng=0)
        assert samples.shape == (20000, 2)
        np.testing.assert_allclose(np.cov(samples.T), covariance, rtol=0.1, atol=0.05)

    def test_from_std(self):
        model = GaussianNoise.from_std([0.1, 0.2])
        np.testing.assert_allclose(model.covariance, np.diag([0.01, 0.04]))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValidationError):
            GaussianNoise(np.array([[1.0, 0.5], [0.0, 1.0]]))

    def test_reproducible(self):
        model = GaussianNoise(np.eye(2))
        np.testing.assert_allclose(model.sample(5, rng=7), model.sample(5, rng=7))


class TestBoundedUniform:
    def test_respects_bounds(self):
        model = BoundedUniformNoise(bounds=[0.5, 2.0])
        samples = model.sample(1000, rng=1)
        assert np.all(np.abs(samples[:, 0]) <= 0.5)
        assert np.all(np.abs(samples[:, 1]) <= 2.0)

    def test_zero_bound_channel_is_silent(self):
        model = BoundedUniformNoise(bounds=[0.0, 1.0])
        samples = model.sample(100, rng=2)
        np.testing.assert_allclose(samples[:, 0], 0.0)

    def test_rejects_negative_bounds(self):
        with pytest.raises(ValidationError):
            BoundedUniformNoise(bounds=[-1.0])


class TestTruncatedGaussian:
    def test_respects_bounds(self):
        model = TruncatedGaussianNoise(std=[1.0], bounds=[0.5])
        samples = model.sample(500, rng=3)
        assert np.all(np.abs(samples) <= 0.5)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            TruncatedGaussianNoise(std=[1.0, 2.0], bounds=[0.5])


class TestGenerators:
    def test_noise_matrix_shape(self):
        model = BoundedUniformNoise(bounds=[1.0, 1.0])
        assert noise_matrix(model, 7, rng=0).shape == (7, 2)

    def test_batch_shape_and_reproducibility(self):
        model = GaussianNoise(np.eye(2))
        a = noise_vector_batch(model, horizon=5, count=4, seed=11)
        b = noise_vector_batch(model, horizon=5, count=4, seed=11)
        assert a.shape == (4, 5, 2)
        np.testing.assert_allclose(a, b)

    def test_batch_trials_are_independent(self):
        model = GaussianNoise(np.eye(1))
        batch = noise_vector_batch(model, horizon=3, count=3, seed=0)
        assert not np.allclose(batch[0], batch[1])

    def test_bad_count(self):
        model = ZeroNoise(1)
        with pytest.raises(ValidationError):
            noise_vector_batch(model, horizon=3, count=0)
