"""Tests for the packaged benchmark case studies."""

import numpy as np
import pytest

from repro.core.attack_synthesis import synthesize_attack
from repro.lti.analysis import is_controllable, is_observable
from repro.systems import (
    build_cruise_case_study,
    build_dcmotor_case_study,
    build_pendulum_case_study,
    build_quadtank_case_study,
    build_trajectory_case_study,
    build_vsc_case_study,
)
from repro.systems.vsc import VSCParameters, build_vsc_monitors, build_vsc_plant

ALL_BUILDERS = [
    build_trajectory_case_study,
    build_vsc_case_study,
    build_dcmotor_case_study,
    build_quadtank_case_study,
    build_cruise_case_study,
    build_pendulum_case_study,
]


@pytest.mark.parametrize("builder", ALL_BUILDERS)
class TestCommonProperties:
    def test_construction(self, builder):
        case = builder()
        assert case.problem.horizon > 0
        assert case.description
        assert case.system is case.problem.system

    def test_plant_is_well_posed(self, builder):
        case = builder()
        plant = case.problem.system.plant
        assert plant.is_discrete
        assert is_controllable(plant)
        assert is_observable(plant)

    def test_closed_loop_is_stable(self, builder):
        case = builder()
        system = case.problem.system
        eigenvalues = np.linalg.eigvals(system.closed_loop_matrix())
        assert np.all(np.abs(eigenvalues) < 1.0)
        eigenvalues = np.linalg.eigvals(system.estimator_matrix())
        assert np.all(np.abs(eigenvalues) < 1.0)

    def test_nominal_run_meets_pfc_and_monitors(self, builder):
        case = builder()
        problem = case.problem
        trace = problem.simulate()
        assert problem.pfc_satisfied(trace)
        assert not problem.mdc_alarm(trace)

    def test_attack_exists_without_detector(self, builder):
        case = builder()
        result = synthesize_attack(case.problem, threshold=None, backend="lp")
        assert result.found
        assert result.verified


class TestVSCSpecifics:
    def test_monitor_parameters_match_paper(self):
        params = VSCParameters()
        assert params.sampling_period == pytest.approx(0.040)
        assert params.dead_zone_samples == 7
        assert params.gamma_range == pytest.approx(0.2)
        assert params.gamma_gradient == pytest.approx(0.175)
        assert params.ay_range == pytest.approx(15.0)
        assert params.ay_gradient == pytest.approx(2.0)
        assert params.allowed_diff == pytest.approx(0.035)
        assert params.horizon == 50
        assert params.pfc_fraction == pytest.approx(0.8)

    def test_monitor_bank_structure(self):
        monitors = build_vsc_monitors()
        assert len(monitors) == 5
        assert all(m.dead_zone_samples == 7 for m in monitors.dead_zone_members())

    def test_attacked_channels_are_can_sensors(self):
        case = build_vsc_case_study()
        assert case.problem.attack_mask.attackable == (0, 1)

    def test_plant_outputs(self):
        plant = build_vsc_plant()
        assert plant.output_names == ("gamma", "ay")
        assert plant.n_states == 3

    def test_residues_are_noise_normalised(self):
        case = build_vsc_case_study()
        assert case.problem.residue_weights is not None
        params = case.extras["params"]
        np.testing.assert_allclose(
            case.problem.residue_weights, [params.yaw_noise_std, params.ay_noise_std]
        )

    def test_without_monitors_variant(self):
        case = build_vsc_case_study(with_monitors=False)
        assert len(case.problem.mdc) == 0

    def test_steady_state_relation_between_outputs(self):
        """At steady state ay equals v * gamma (the relation the monitor checks)."""
        case = build_vsc_case_study()
        problem = case.problem
        trace = problem.simulate()
        params = case.extras["params"]
        gamma_ss = trace.true_outputs[-1, 0]
        ay_ss = trace.true_outputs[-1, 1]
        assert ay_ss == pytest.approx(params.speed * gamma_ss, rel=1e-2)

    def test_synthesized_attack_bypasses_monitors_but_breaks_pfc(self):
        """Reproduces the qualitative content of Fig. 2."""
        case = build_vsc_case_study()
        problem = case.problem
        result = synthesize_attack(problem, threshold=None, backend="lp")
        assert result.found
        trace = result.trace
        assert not problem.pfc_satisfied(trace)
        assert not problem.mdc_alarm(trace)
        params = case.extras["params"]
        final_yaw = trace.states[problem.horizon, 1]
        assert final_yaw < params.pfc_fraction * params.desired_yaw_rate


class TestTrajectorySpecifics:
    def test_defaults_match_fig1_setup(self):
        case = build_trajectory_case_study()
        assert case.problem.horizon == 10
        assert case.problem.system.dt == pytest.approx(0.1)
        assert case.extras["target_position"] == pytest.approx(0.5)

    def test_nominal_reaches_target_band(self):
        case = build_trajectory_case_study()
        trace = case.problem.simulate()
        assert abs(trace.final_state()[0] - 0.5) <= case.extras["tolerance"]

    def test_monitor_free_variant(self):
        case = build_trajectory_case_study(with_monitors=False)
        assert len(case.problem.mdc) == 0


class TestParameterisation:
    def test_dcmotor_custom_horizon(self):
        case = build_dcmotor_case_study(horizon=15)
        assert case.problem.horizon == 15

    def test_quadtank_initial_condition_nonzero(self):
        case = build_quadtank_case_study()
        assert np.any(case.problem.x0 != 0)

    def test_pendulum_only_angle_channel_attackable(self):
        case = build_pendulum_case_study()
        assert case.problem.attack_mask.attackable == (1,)

    def test_cruise_attack_bound(self):
        case = build_cruise_case_study(attack_bound=2.0)
        assert case.problem.attack_bound == pytest.approx(2.0)
