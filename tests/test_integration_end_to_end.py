"""Integration and property-based tests across the whole stack.

These tests exercise the complete flow (plant -> closed loop -> attack
synthesis -> threshold synthesis -> detection) and check the cross-cutting
invariants the library's guarantees rest on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    PivotThresholdSynthesizer,
    ResidueDetector,
    StepwiseThresholdSynthesizer,
    synthesize_attack,
)
from repro.attacks.templates import BiasAttack, GeometricAttack, RampAttack
from repro.core.static_synthesis import verify_no_attack
from repro.systems import build_dcmotor_case_study, build_trajectory_case_study
from repro.utils.results import SolveStatus


class TestEndToEndTrajectory:
    """The full Fig. 1 storyline as one integration test."""

    def test_synthesis_then_detection(self, trajectory_problem):
        # 1. the unprotected loop is attackable
        attack = synthesize_attack(trajectory_problem, threshold=None, backend="lp")
        assert attack.found

        # 2. synthesize a variable threshold; it certifies security
        synthesis = StepwiseThresholdSynthesizer(backend="lp", max_rounds=300).synthesize(
            trajectory_problem
        )
        assert synthesis.converged

        # 3. the detector built from it flags the previously found attack
        detector = ResidueDetector(synthesis.threshold)
        assert detector.detects(attack.trace.residues)

        # 4. and the solver confirms no stealthy attack remains at all
        assert verify_no_attack(trajectory_problem, synthesis.threshold, backend="lp")

    def test_synthesized_threshold_flags_every_successful_template_attack(
        self, trajectory_problem
    ):
        """Any parametric attack that breaks pfc while passing the monitors is caught."""
        synthesis = PivotThresholdSynthesizer(backend="lp", max_rounds=300).synthesize(
            trajectory_problem
        )
        assert synthesis.converged
        detector = ResidueDetector(synthesis.threshold)
        templates = [
            BiasAttack(bias=0.3, start=2),
            BiasAttack(bias=-0.4, start=0),
            RampAttack(slope=0.05, start=0),
            GeometricAttack(initial=0.02, ratio=1.4),
        ]
        for template in templates:
            attack = template.generate(trajectory_problem.horizon, trajectory_problem.n_outputs)
            trace = trajectory_problem.simulate(attack=attack)
            successful = (
                not trajectory_problem.pfc_satisfied(trace)
            ) and not trajectory_problem.mdc_alarm(trace)
            if successful:
                assert detector.detects(trace.residues), (
                    f"template {attack.metadata} broke pfc stealthily but was not detected"
                )


class TestGuaranteeInvariants:
    """Properties that must hold regardless of parameters."""

    @settings(max_examples=8, deadline=None)
    @given(bound=st.floats(min_value=0.05, max_value=2.0))
    def test_tighter_static_threshold_never_helps_the_attacker(self, bound):
        """If a static threshold blocks all attacks, every smaller one does too."""
        problem = build_dcmotor_case_study(horizon=10).problem
        result = synthesize_attack(problem, threshold=problem.static_threshold(bound))
        if result.status is SolveStatus.UNSAT:
            tighter = synthesize_attack(
                problem, threshold=problem.static_threshold(bound / 2.0)
            )
            assert tighter.status is SolveStatus.UNSAT

    @settings(max_examples=8, deadline=None)
    @given(bound=st.floats(min_value=0.05, max_value=2.0))
    def test_found_attacks_are_always_verified(self, bound):
        problem = build_dcmotor_case_study(horizon=10).problem
        result = synthesize_attack(problem, threshold=problem.static_threshold(bound))
        if result.found:
            assert result.verified

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_detector_agrees_with_problem_norms(self, seed):
        """ResidueDetector and SynthesisProblem compute identical alarm verdicts."""
        problem = build_trajectory_case_study().problem
        rng = np.random.default_rng(seed)
        residues = rng.normal(scale=0.05, size=(problem.horizon, problem.n_outputs))
        threshold = problem.static_threshold(float(rng.uniform(0.01, 0.1)))
        detector = ResidueDetector(threshold)
        assert detector.detects(residues) == bool(np.any(threshold.alarms(residues)))

    def test_synthesis_is_deterministic(self, trajectory_problem):
        """Two runs of the same synthesis produce identical thresholds."""
        first = PivotThresholdSynthesizer(backend="lp", max_rounds=200).synthesize(
            trajectory_problem
        )
        second = PivotThresholdSynthesizer(backend="lp", max_rounds=200).synthesize(
            trajectory_problem
        )
        np.testing.assert_allclose(first.threshold.values, second.threshold.values)
        assert first.rounds == second.rounds

    def test_monitorless_problem_is_weakly_harder_to_secure(self):
        """Removing the monitors can only lower (or keep) the safe static threshold."""
        from repro.core.static_synthesis import StaticThresholdSynthesizer

        with_monitors = build_dcmotor_case_study(horizon=12).problem
        without_monitors = build_dcmotor_case_study(horizon=12, with_monitors=False).problem
        synthesizer = StaticThresholdSynthesizer(backend="lp", tolerance=5e-3)
        c_with = synthesizer.synthesize(with_monitors).threshold.values[0]
        c_without = synthesizer.synthesize(without_monitors).threshold.values[0]
        assert c_without <= c_with + 5e-3
