"""Unit tests for the state-space model class."""

import numpy as np
import pytest

from repro.lti.model import LTISystem, StateSpace
from repro.utils.validation import ValidationError


class TestConstruction:
    def test_dimensions(self, double_integrator):
        assert double_integrator.n_states == 2
        assert double_integrator.n_inputs == 1
        assert double_integrator.n_outputs == 1

    def test_default_d_is_zero(self, double_integrator):
        np.testing.assert_allclose(double_integrator.D, np.zeros((1, 1)))

    def test_rejects_non_square_a(self):
        with pytest.raises(ValidationError):
            StateSpace(A=np.zeros((2, 3)), B=np.zeros((2, 1)), C=np.zeros((1, 2)))

    def test_rejects_mismatched_b(self):
        with pytest.raises(ValidationError):
            StateSpace(A=np.eye(2), B=np.zeros((3, 1)), C=np.zeros((1, 2)))

    def test_rejects_mismatched_c(self):
        with pytest.raises(ValidationError):
            StateSpace(A=np.eye(2), B=np.zeros((2, 1)), C=np.zeros((1, 3)))

    def test_rejects_wrong_d_shape(self):
        with pytest.raises(ValidationError):
            StateSpace(A=np.eye(2), B=np.zeros((2, 1)), C=np.zeros((1, 2)), D=np.zeros((2, 2)))

    def test_rejects_negative_dt(self):
        with pytest.raises(ValidationError):
            StateSpace(A=np.eye(1), B=np.eye(1), C=np.eye(1), dt=-0.1)

    def test_rejects_indefinite_noise(self):
        with pytest.raises(ValidationError):
            StateSpace(A=np.eye(1), B=np.eye(1), C=np.eye(1), Q_w=np.array([[-1.0]]))

    def test_rejects_bad_names(self):
        with pytest.raises(ValidationError):
            StateSpace(A=np.eye(2), B=np.zeros((2, 1)), C=np.zeros((1, 2)), state_names=("x",))

    def test_default_names(self):
        model = StateSpace(A=np.eye(2), B=np.zeros((2, 1)), C=np.zeros((1, 2)))
        assert model.state_names == ("x0", "x1")
        assert model.output_names == ("y0",)
        assert model.input_names == ("u0",)

    def test_alias(self):
        assert LTISystem is StateSpace


class TestProperties:
    def test_discrete_flag(self, double_integrator, double_integrator_continuous):
        assert double_integrator.is_discrete
        assert not double_integrator.is_continuous
        assert double_integrator_continuous.is_continuous

    def test_has_noise(self, double_integrator):
        assert double_integrator.has_noise
        assert not double_integrator.without_noise().has_noise

    def test_noise_std(self, double_integrator):
        std = double_integrator.measurement_noise_std()
        assert std.shape == (1,)
        assert std[0] > 0
        assert double_integrator.without_noise().measurement_noise_std()[0] == 0.0

    def test_with_name(self, double_integrator):
        renamed = double_integrator.with_name("other")
        assert renamed.name == "other"
        assert double_integrator.name != "other"


class TestDynamics:
    def test_step_state_no_noise(self):
        model = StateSpace(A=np.array([[2.0]]), B=np.array([[1.0]]), C=np.array([[1.0]]), dt=1.0)
        assert model.step_state([1.0], [3.0])[0] == pytest.approx(5.0)

    def test_step_state_with_noise(self):
        model = StateSpace(A=np.array([[2.0]]), B=np.array([[1.0]]), C=np.array([[1.0]]), dt=1.0)
        assert model.step_state([1.0], [3.0], w=[0.5])[0] == pytest.approx(5.5)

    def test_output_with_feedthrough(self):
        model = StateSpace(
            A=np.eye(1), B=np.eye(1), C=np.array([[2.0]]), D=np.array([[0.5]]), dt=1.0
        )
        assert model.output([1.0], [2.0])[0] == pytest.approx(3.0)

    def test_output_with_noise(self):
        model = StateSpace(A=np.eye(1), B=np.eye(1), C=np.eye(1), dt=1.0)
        assert model.output([1.0], [0.0], v=[0.25])[0] == pytest.approx(1.25)
