"""Tests for ServiceConfig and the run_service construction path."""

import pytest

from repro import ServiceConfig, run_service
from repro.runtime.events import InMemorySink
from repro.serve import BufferedSink, MonitorService
from repro.utils.validation import ValidationError


class TestServiceConfig:
    def test_round_trips_through_dict_and_json(self):
        config = ServiceConfig(
            case_study="dcmotor",
            static_thresholds={"static": 0.25},
            detectors={"cusum": {"name": "cusum", "options": {"bias": 0.1, "threshold": 1.0}}},
            residue_source="ingest",
            ring_capacity=16,
            overflow="drop-newest",
            auto_drain=False,
            log_path="/tmp/service.jsonl",
            flush_every=4,
            sink_capacity=256,
            sink_policy="drop-oldest",
        )
        assert ServiceConfig.from_dict(config.to_dict()) == config
        assert ServiceConfig.from_json(config.to_json()) == config

    def test_bare_detector_name_normalised(self):
        config = ServiceConfig(detectors={"chi": "chi-square"})
        assert config.detectors == {"chi": {"name": "chi-square", "options": {}}}

    def test_validation_errors(self):
        with pytest.raises(ValidationError):
            ServiceConfig(case_study="not-a-case")
        with pytest.raises(ValidationError):
            ServiceConfig(residue_source="oracle")
        with pytest.raises(ValidationError):
            ServiceConfig(overflow="explode")
        with pytest.raises(ValidationError):
            ServiceConfig(ring_capacity=0)
        with pytest.raises(ValidationError):
            ServiceConfig(flush_every=-1)
        with pytest.raises(ValidationError):
            ServiceConfig(sink_capacity=0)
        with pytest.raises(ValidationError):
            ServiceConfig(sink_policy="wait")
        with pytest.raises(ValidationError):
            ServiceConfig(detectors={"x": {"name": "no-such-detector"}})
        with pytest.raises(ValidationError):
            ServiceConfig.from_dict({"ring_size": 8})

    def test_unknown_detector_entry_keys_rejected(self):
        with pytest.raises(ValidationError):
            ServiceConfig(detectors={"x": {"name": "cusum", "opts": {}}})


class TestRunService:
    def test_builds_service_from_case_study_name(self):
        config = ServiceConfig(case_study="dcmotor", static_thresholds={"static": 0.5})
        service = run_service(config)
        assert isinstance(service, MonitorService)
        assert set(service.detectors) == {"static", "mdc"}
        assert service.log.events[0].kind == "start"
        assert service.log.events[0].data["metadata"]["config"] == config.to_dict()

    def test_needs_a_problem_and_a_detector(self, dcmotor_problem):
        with pytest.raises(ValidationError):
            run_service(ServiceConfig(static_thresholds={"static": 0.5}))
        with pytest.raises(ValidationError):
            run_service(ServiceConfig(include_mdc=False), problem=dcmotor_problem)

    def test_sink_capacity_wraps_sinks_in_buffers(self, dcmotor_problem):
        inner = InMemorySink()
        config = ServiceConfig(
            static_thresholds={"static": 0.5},
            sink_capacity=8,
            sink_policy="drop-oldest",
        )
        service = run_service(config, problem=dcmotor_problem, sinks=[inner])
        (sink,) = service.sinks
        assert isinstance(sink, BufferedSink)
        assert sink.inner is inner
        assert (sink.capacity, sink.policy) == (8, "drop-oldest")

    def test_extra_detectors_merge_and_collisions_raise(self, dcmotor_problem):
        config = ServiceConfig(static_thresholds={"static": 0.5}, include_mdc=False)
        service = run_service(
            config,
            problem=dcmotor_problem,
            detectors={"extra": dcmotor_problem.static_threshold(1.0)},
        )
        assert set(service.detectors) == {"static", "extra"}
        with pytest.raises(ValidationError):
            run_service(
                config,
                problem=dcmotor_problem,
                detectors={"static": dcmotor_problem.static_threshold(1.0)},
            )
