"""Unit tests for LQR, pole placement, PID and tracking helpers."""

import numpy as np
import pytest

from repro.control.lqr import LQRDesign, dlqr, lqr_gain
from repro.control.pid import DiscretePID
from repro.control.pole_placement import ackermann_gain, deadbeat_gain, place_poles_gain
from repro.control.tracking import feedforward_gain, tracking_state_target
from repro.lti.model import StateSpace
from repro.utils.validation import ValidationError


class TestLQR:
    def test_gain_stabilizes(self, double_integrator):
        K = lqr_gain(double_integrator)
        eigenvalues = np.linalg.eigvals(double_integrator.A - double_integrator.B @ K)
        assert np.all(np.abs(eigenvalues) < 1.0)

    def test_riccati_residual(self, double_integrator):
        Q, R = np.diag([2.0, 1.0]), np.array([[0.5]])
        K, P = dlqr(double_integrator.A, double_integrator.B, Q, R)
        A, B = double_integrator.A, double_integrator.B
        residual = A.T @ P @ A - P - A.T @ P @ B @ np.linalg.solve(R + B.T @ P @ B, B.T @ P @ A) + Q
        np.testing.assert_allclose(residual, np.zeros((2, 2)), atol=1e-8)

    def test_heavier_input_weight_gives_smaller_gain(self, double_integrator):
        K_cheap = lqr_gain(double_integrator, R=np.array([[0.01]]))
        K_expensive = lqr_gain(double_integrator, R=np.array([[100.0]]))
        assert np.linalg.norm(K_expensive) < np.linalg.norm(K_cheap)

    def test_requires_discrete_plant(self, double_integrator_continuous):
        with pytest.raises(ValidationError):
            lqr_gain(double_integrator_continuous)

    def test_design_record(self, double_integrator):
        design = LQRDesign.design(double_integrator)
        assert design.is_stabilizing
        assert design.cost([1.0, 0.0]) > 0
        assert design.closed_loop_eigenvalues.shape == (2,)


class TestPolePlacement:
    def test_ackermann_places_poles(self, double_integrator):
        poles = [0.1, 0.2]
        K = ackermann_gain(double_integrator.A, double_integrator.B, poles)
        eigenvalues = np.linalg.eigvals(double_integrator.A - double_integrator.B @ K)
        np.testing.assert_allclose(sorted(eigenvalues.real), sorted(poles), atol=1e-8)

    def test_place_poles_gain_wrapper(self, double_integrator):
        K = place_poles_gain(double_integrator, [0.3, 0.4])
        eigenvalues = np.linalg.eigvals(double_integrator.A - double_integrator.B @ K)
        np.testing.assert_allclose(sorted(eigenvalues.real), [0.3, 0.4], atol=1e-8)

    def test_deadbeat_settles_in_n_steps(self, double_integrator):
        K = deadbeat_gain(double_integrator)
        closed = double_integrator.A - double_integrator.B @ K
        # After n steps the deadbeat closed loop maps every state to (almost) zero.
        np.testing.assert_allclose(np.linalg.matrix_power(closed, 2), np.zeros((2, 2)), atol=1e-8)

    def test_wrong_number_of_poles(self, double_integrator):
        with pytest.raises(ValidationError):
            place_poles_gain(double_integrator, [0.1])

    def test_complex_poles_must_be_conjugate(self, double_integrator):
        with pytest.raises(ValidationError):
            ackermann_gain(double_integrator.A, double_integrator.B, [0.1 + 0.1j, 0.2])

    def test_uncontrollable_rejected(self):
        A = np.diag([0.5, 0.6])
        b = np.array([[1.0], [0.0]])
        with pytest.raises(ValidationError):
            ackermann_gain(A, b, [0.1, 0.2])

    def test_multi_input_place(self):
        plant = StateSpace(
            A=np.array([[0.9, 0.1], [0.0, 0.8]]),
            B=np.eye(2),
            C=np.eye(2),
            dt=1.0,
        )
        K = place_poles_gain(plant, [0.1, 0.2])
        eigenvalues = np.linalg.eigvals(plant.A - plant.B @ K)
        np.testing.assert_allclose(sorted(eigenvalues.real), [0.1, 0.2], atol=1e-6)


class TestPID:
    def test_proportional_only(self):
        pid = DiscretePID(kp=2.0, dt=0.1)
        assert pid.step(1.5) == pytest.approx(3.0)

    def test_integral_accumulates(self):
        pid = DiscretePID(kp=0.0, ki=1.0, dt=0.5)
        pid.step(1.0)
        assert pid.step(1.0) == pytest.approx(1.0)  # integral = 2 * 0.5

    def test_derivative_term(self):
        pid = DiscretePID(kp=0.0, kd=1.0, dt=0.5)
        pid.step(1.0)
        assert pid.step(2.0) == pytest.approx(2.0)  # (2 - 1) / 0.5

    def test_output_limits_and_antiwindup(self):
        pid = DiscretePID(kp=0.0, ki=10.0, dt=1.0, output_limits=(-1.0, 1.0))
        for _ in range(10):
            out = pid.step(1.0)
        assert out == 1.0
        # After the error flips sign the output should leave saturation quickly
        # because the integrator was clamped.
        assert pid.step(-1.0) < 1.0

    def test_reset(self):
        pid = DiscretePID(kp=1.0, ki=1.0, dt=1.0)
        pid.step(1.0)
        pid.reset()
        assert pid.step(0.0) == pytest.approx(0.0)

    def test_invalid_limits(self):
        with pytest.raises(ValidationError):
            DiscretePID(kp=1.0, output_limits=(1.0, -1.0))

    def test_run(self):
        pid = DiscretePID(kp=1.0, dt=1.0)
        assert pid.run([1.0, 2.0]) == [1.0, 2.0]


class TestTracking:
    def test_feedforward_gives_unit_dc_gain(self, double_integrator):
        K = lqr_gain(double_integrator)
        N = feedforward_gain(double_integrator, K)
        closed = double_integrator.A - double_integrator.B @ K
        core = np.linalg.solve(np.eye(2) - closed, double_integrator.B)
        dc = (double_integrator.C - double_integrator.D @ K) @ core + double_integrator.D
        np.testing.assert_allclose(dc @ N, np.eye(1), atol=1e-10)

    def test_feedforward_with_feedthrough(self):
        plant = StateSpace(
            A=np.array([[0.5]]),
            B=np.array([[1.0]]),
            C=np.array([[1.0]]),
            D=np.array([[0.3]]),
            dt=1.0,
        )
        K = np.array([[0.2]])
        N = feedforward_gain(plant, K)
        closed = plant.A - plant.B @ K
        core = np.linalg.solve(np.eye(1) - closed, plant.B)
        dc = (plant.C - plant.D @ K) @ core + plant.D
        np.testing.assert_allclose(dc @ N, np.eye(1), atol=1e-12)

    def test_tracking_state_target_is_equilibrium(self, double_integrator):
        y_des = np.array([0.7])
        x_ss, u_ss = tracking_state_target(double_integrator, y_des)
        next_state = double_integrator.A @ x_ss + double_integrator.B @ u_ss
        np.testing.assert_allclose(next_state, x_ss, atol=1e-8)
        output = double_integrator.C @ x_ss + double_integrator.D @ u_ss
        np.testing.assert_allclose(output, y_des, atol=1e-8)

    def test_tracking_wrong_dimension(self, double_integrator):
        with pytest.raises(ValidationError):
            tracking_state_target(double_integrator, np.array([1.0, 2.0]))
