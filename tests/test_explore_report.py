"""Tests for the exploration report: rung latency columns and plotting.

The rows here are hand-built (no synthesis), so the tests exercise exactly
the reporting layer: per-rung latency columns from the probe attack ladder,
objective overrides on front extraction, and the matplotlib-optional
``plot_front`` helper (exercised headless under the Agg backend when
matplotlib is installed, and for its error message when it is not).
"""

import importlib.util

import pytest

from repro.explore.pareto import RUNG_LATENCY_PREFIX, rung_latency_fields
from repro.explore.report import ExplorationReport

HAVE_MATPLOTLIB = importlib.util.find_spec("matplotlib") is not None


def _row(floor, far, margin, latency, *, rungs=None, feasible=True, **extra) -> dict:
    row = {
        "case_study": "vsc",
        "synthesizer": "stepwise",
        "backend": "lp",
        "detector": "online-residue",
        "horizon": None,
        "noise_scale": 1.0,
        "min_threshold": floor,
        "far_budget": 1.0,
        "status": "unsat",
        "error": None,
        "feasible": feasible,
        "false_alarm_rate": far,
        "stealth_margin": margin,
        "mean_detection_latency": latency,
    }
    for multiplier, value in (rungs or {}).items():
        row[f"{RUNG_LATENCY_PREFIX}{multiplier:g}"] = value
        row[f"detection_rate_x{multiplier:g}"] = None if value is None else 1.0
    row.update(extra)
    return row


@pytest.fixture()
def ladder_report() -> ExplorationReport:
    rows = [
        _row(0.5, 0.60, 2.0, 2.0, rungs={1.1: 5.0, 1.5: 1.0, 3.0: 0.0}),
        _row(1.0, 0.30, 3.0, 3.0, rungs={1.1: 8.0, 1.5: 1.0, 3.0: 0.0}),
        _row(2.0, 0.10, 4.0, 4.0, rungs={1.1: 11.0, 1.5: 1.0, 3.0: 0.0}),
        _row(4.0, 0.10, 6.0, 6.0, rungs={1.1: None, 1.5: 2.0, 3.0: 0.0}),
    ]
    return ExplorationReport(name="ladder", rows=rows)


class TestRungColumns:
    def test_fields_sorted_weakest_rung_first(self, ladder_report):
        fields = ladder_report.rung_latency_fields()
        assert fields == (
            "mean_detection_latency_x1.1",
            "mean_detection_latency_x1.5",
            "mean_detection_latency_x3",
        )
        assert rung_latency_fields(ladder_report.rows) == fields

    def test_no_ladder_no_fields(self):
        report = ExplorationReport(rows=[_row(0.5, 0.1, 1.0, 0.0)])
        assert report.rung_latency_fields() == ()
        assert report.latency_ladder() == {}

    def test_latency_ladder_summarises_per_rung(self, ladder_report):
        ladder = ladder_report.latency_ladder()
        weakest = ladder["mean_detection_latency_x1.1"]
        assert weakest["count"] == 3               # one rung measured nothing
        assert weakest["min"] == 5.0 and weakest["max"] == 11.0
        strongest = ladder["mean_detection_latency_x3"]
        assert strongest["mean"] == 0.0

    def test_rung_field_as_front_objective(self, ladder_report):
        # Over (FAR, weakest-rung latency) the slow-but-tight corner points
        # trade off; the default aggregate objectives are overridable.
        objectives = ("false_alarm_rate", "mean_detection_latency_x1.1")
        front = ladder_report.front(objectives=objectives)
        floors = {row["min_threshold"] for row in front}
        assert 0.5 in floors                       # lowest latency at weakest rung
        assert ladder_report.front_signature(objectives=objectives) != (
            ladder_report.front_signature()
        )


class TestPlotFront:
    @pytest.mark.skipif(not HAVE_MATPLOTLIB, reason="matplotlib not installed")
    def test_plot_front_headless(self, ladder_report, tmp_path):
        import matplotlib

        matplotlib.use("Agg")
        target = tmp_path / "front.png"
        ax = ladder_report.plot_front(str(target))
        assert target.exists() and target.stat().st_size > 0
        assert ax.get_xlabel() == "stealth margin"
        assert "%" in ax.get_ylabel()

    @pytest.mark.skipif(not HAVE_MATPLOTLIB, reason="matplotlib not installed")
    def test_plot_front_into_existing_axes(self, ladder_report):
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

        _, ax = plt.subplots()
        assert ladder_report.plot_front(ax=ax) is ax
        plt.close(ax.figure)

    @pytest.mark.skipif(HAVE_MATPLOTLIB, reason="matplotlib is installed")
    def test_missing_matplotlib_raises_actionable_error(self, ladder_report):
        with pytest.raises(ImportError, match="pip install matplotlib"):
            ladder_report.plot_front()
