"""Tests for repro.obs.metrics: instruments, snapshots, merge, scoping."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_registry,
    metrics_enabled,
    timed,
    use_registry,
)
from repro.utils.validation import ValidationError


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_labels_and_totals():
    registry = MetricsRegistry(enabled=True)
    counter = registry.counter("events_total", "events seen")
    counter.inc()
    counter.inc(2, detector="cusum")
    counter.inc(3, detector="cusum")
    counter.inc(4, detector="static")
    assert counter.value() == 1.0
    assert counter.value(detector="cusum") == 5.0
    assert counter.value(detector="static") == 4.0
    assert counter.value(detector="unknown") == 0.0
    assert counter.total() == 10.0


def test_counter_rejects_negative_increment():
    counter = MetricsRegistry(enabled=True).counter("events_total")
    with pytest.raises(ValidationError):
        counter.inc(-1)


def test_gauge_set_and_inc():
    gauge = MetricsRegistry(enabled=True).gauge("depth")
    gauge.set(7.0)
    assert gauge.value() == 7.0
    gauge.set(3.0)
    assert gauge.value() == 3.0
    gauge.inc(-1.5)
    assert gauge.value() == 1.5
    gauge.set(2.0, queue="alarms")
    assert gauge.value(queue="alarms") == 2.0
    assert gauge.value() == 1.5


def test_histogram_buckets_observations():
    registry = MetricsRegistry(enabled=True)
    histogram = registry.histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    cell = histogram._values[()]
    assert cell["counts"] == [1, 2, 1, 1]  # three buckets + overflow
    assert histogram.count() == 5
    assert histogram.sum() == pytest.approx(56.05)
    assert histogram.total_count() == 5


def test_histogram_boundary_lands_in_lower_bucket():
    # Prometheus buckets are upper-inclusive: observe(le) counts into le's bucket.
    histogram = MetricsRegistry(enabled=True).histogram("h", buckets=(1.0, 2.0))
    histogram.observe(1.0)
    assert histogram._values[()]["counts"] == [1, 0, 0]


def test_histogram_validation():
    registry = MetricsRegistry(enabled=True)
    with pytest.raises(ValidationError):
        registry.histogram("empty", buckets=())
    with pytest.raises(ValidationError):
        registry.histogram("unsorted", buckets=(1.0, 1.0))


def test_default_buckets_are_strictly_increasing():
    assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_instruments_are_idempotent_but_kind_checked():
    registry = MetricsRegistry(enabled=True)
    counter = registry.counter("metric_total", "help text")
    assert registry.counter("metric_total") is counter
    with pytest.raises(ValidationError):
        registry.gauge("metric_total")
    histogram = registry.histogram("h", buckets=(1.0, 2.0))
    assert registry.histogram("h") is histogram
    assert registry.histogram("h", buckets=(1.0, 2.0)) is histogram
    with pytest.raises(ValidationError):
        registry.histogram("h", buckets=(1.0, 3.0))


def test_disabled_registry_records_nothing():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("events_total")
    gauge = registry.gauge("depth")
    histogram = registry.histogram("latency")
    counter.inc(5)
    gauge.set(3.0)
    histogram.observe(1.0)
    assert counter.total() == 0.0
    assert gauge.value() == 0.0
    assert histogram.total_count() == 0
    registry.enable()
    counter.inc(5)
    assert counter.total() == 5.0
    registry.disable()
    counter.inc(5)
    assert counter.total() == 5.0  # values kept, recording stopped


def test_reset_clears_values_but_keeps_instruments():
    registry = MetricsRegistry(enabled=True)
    registry.counter("a_total").inc(3)
    registry.gauge("b").set(1.0)
    registry.reset()
    assert registry.names() == ["a_total", "b"]
    assert registry.get("a_total").total() == 0.0
    assert registry.get("b").value() == 0.0
    assert registry.get("missing") is None


# ----------------------------------------------------------------------
# Snapshot / merge
# ----------------------------------------------------------------------
def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry(enabled=True)
    registry.counter("events_total", "events").inc(3, detector="cusum")
    registry.counter("events_total").inc(1, detector="static")
    registry.gauge("depth", "queue depth").set(4.0)
    histogram = registry.histogram("latency_seconds", "latency", buckets=(0.1, 1.0))
    histogram.observe(0.05, stage="solve")
    histogram.observe(0.5, stage="solve")
    histogram.observe(5.0, stage="far")
    return registry


def test_snapshot_shape_is_deterministic_and_json_native():
    import json

    snap = _populated_registry().snapshot()
    assert set(snap) == {"counters", "gauges", "histograms"}
    assert snap["counters"]["events_total"]["values"] == [
        {"labels": {"detector": "cusum"}, "value": 3.0},
        {"labels": {"detector": "static"}, "value": 1.0},
    ]
    assert snap["histograms"]["latency_seconds"]["buckets"] == [0.1, 1.0]
    json.dumps(snap)  # must be JSON-native end to end
    assert snap == _populated_registry().snapshot()


def test_snapshot_includes_empty_instruments():
    registry = MetricsRegistry(enabled=True)
    registry.counter("silent_total", "never incremented")
    snap = registry.snapshot()
    assert snap["counters"]["silent_total"] == {
        "help": "never incremented",
        "values": [],
    }


def test_merge_adds_counters_and_histograms_overwrites_gauges():
    target = _populated_registry()
    target.merge(_populated_registry().snapshot())
    assert target.get("events_total").value(detector="cusum") == 6.0
    assert target.get("depth").value() == 4.0  # last-write-wins, not 8.0
    assert target.get("latency_seconds").count(stage="solve") == 4
    assert target.get("latency_seconds").sum(stage="solve") == pytest.approx(1.1)


def test_merge_into_empty_registry_reproduces_snapshot():
    snap = _populated_registry().snapshot()
    target = MetricsRegistry(enabled=True)
    target.merge(snap)
    assert target.snapshot() == snap


def test_merge_applies_even_when_disabled():
    # Merge moves already-recorded values between registries; the enabled
    # flag only gates *new* record calls.
    target = MetricsRegistry(enabled=False)
    target.merge(_populated_registry().snapshot())
    assert target.get("events_total").total() == 4.0


def test_merge_disjoint_metric_sets_is_a_union():
    # Merging registries with no metric in common simply unions them — the
    # multiprocessing-worker case where each worker touched different layers.
    left = MetricsRegistry(enabled=True)
    left.counter("left_total", "only here").inc(2)
    right = MetricsRegistry(enabled=True)
    right.gauge("right_depth", "only there").set(5.0)
    right.histogram("right_seconds", buckets=(1.0,)).observe(0.5)
    left.merge(right.snapshot())
    snap = left.snapshot()
    assert set(snap["counters"]) == {"left_total"}
    assert set(snap["gauges"]) == {"right_depth"}
    assert set(snap["histograms"]) == {"right_seconds"}
    assert left.get("left_total").total() == 2.0  # untouched by the merge
    assert left.get("right_depth").value() == 5.0
    assert left.get("right_seconds").count() == 1


def test_merge_gauge_last_write_wins_depends_on_ordering():
    # Gauges report most-recent state, so A.merge(B) and B.merge(A) disagree:
    # whichever snapshot is merged *in* wins. Counters stay symmetric.
    def fresh(gauge_value, counter_value):
        registry = MetricsRegistry(enabled=True)
        registry.gauge("depth").set(gauge_value)
        registry.counter("steps_total").inc(counter_value)
        return registry

    a_then_b = fresh(1.0, 10.0)
    a_then_b.merge(fresh(2.0, 20.0).snapshot())
    b_then_a = fresh(2.0, 20.0)
    b_then_a.merge(fresh(1.0, 10.0).snapshot())
    assert a_then_b.get("depth").value() == 2.0
    assert b_then_a.get("depth").value() == 1.0
    assert a_then_b.get("steps_total").total() == 30.0
    assert b_then_a.get("steps_total").total() == 30.0


def test_merge_unions_disjoint_label_cells_of_one_metric():
    left = MetricsRegistry(enabled=True)
    left.counter("events_total").inc(3, detector="cusum")
    right = MetricsRegistry(enabled=True)
    right.counter("events_total").inc(4, detector="static")
    left.merge(right.snapshot())
    assert left.get("events_total").value(detector="cusum") == 3.0
    assert left.get("events_total").value(detector="static") == 4.0
    assert left.get("events_total").total() == 7.0


def test_merge_rejects_bucket_mismatch():
    snap = _populated_registry().snapshot()
    target = MetricsRegistry(enabled=True)
    target.histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
    with pytest.raises(ValidationError):
        target.merge(snap)


# ----------------------------------------------------------------------
# Module-level default, scoping, timing
# ----------------------------------------------------------------------
def test_default_registry_starts_disabled_and_use_registry_scopes():
    assert metrics_enabled() is False  # test suite runs without REPRO_METRICS
    scoped = MetricsRegistry(enabled=True)
    with use_registry(scoped) as active:
        assert active is scoped
        assert get_registry() is scoped
        get_registry().counter("scoped_total").inc()
    assert get_registry() is not scoped
    assert scoped.get("scoped_total").total() == 1.0
    assert get_registry().get("scoped_total") is None


def test_timed_observes_block_duration():
    registry = MetricsRegistry(enabled=True)
    histogram = registry.histogram("block_seconds", buckets=(10.0,))
    with timed(histogram, stage="quick"):
        pass
    assert histogram.count(stage="quick") == 1
    assert 0.0 <= histogram.sum(stage="quick") < 10.0


def test_timed_observes_even_when_block_raises():
    registry = MetricsRegistry(enabled=True)
    histogram = registry.histogram("block_seconds", buckets=(10.0,))
    with pytest.raises(RuntimeError):
        with timed(histogram):
            raise RuntimeError("boom")
    assert histogram.count() == 1


def test_env_variable_enables_fresh_process_registry():
    import os
    import subprocess
    import sys

    script = (
        "from repro.obs import metrics_enabled\n"
        "print(metrics_enabled())\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={**os.environ, "REPRO_METRICS": "1"},
        check=True,
    )
    assert out.stdout.strip() == "True"


# ----------------------------------------------------------------------
# Cross-process shipping (the BatchRunner worker pattern)
# ----------------------------------------------------------------------
def _worker_snapshot(n: int) -> dict:
    """Record ``n`` events into a scoped registry and ship its snapshot."""
    scoped = MetricsRegistry(enabled=True)
    with use_registry(scoped):
        get_registry().counter("worker_events_total", "per-worker events").inc(
            n, worker=str(n)
        )
        get_registry().histogram("worker_seconds", buckets=(1.0,)).observe(0.5)
    return scoped.snapshot()


def test_snapshots_merge_across_multiprocessing_workers():
    with multiprocessing.get_context("fork").Pool(2) as pool:
        snapshots = pool.map(_worker_snapshot, [1, 2, 3])
    parent = MetricsRegistry(enabled=True)
    for snap in snapshots:
        parent.merge(snap)
    counter = parent.get("worker_events_total")
    assert counter.total() == 6.0
    assert counter.value(worker="2") == 2.0
    assert parent.get("worker_seconds").total_count() == 3
