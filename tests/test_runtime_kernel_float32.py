"""Float32 fast-mode acceptance: the documented accuracy envelope, enforced.

``engine="fused"`` with ``dtype="float32"`` trades the float64 bit-identity
contract for speed.  This suite pins the trade-off to concrete, documented
numbers (the same envelope stated in ``docs/runtime-kernel.md``):

* **Residues** — every per-step residue of a float32 run matches the float64
  run within ``rtol = 1e-3, atol = 1e-5`` (measured typical worst case on
  the packaged case studies is ~1e-4 relative; the bound leaves headroom for
  other BLAS builds).
* **Alarm decisions** — with thresholds placed *on* the benign norm
  distribution (the adversarial placement for rounding), the number of
  per-``(instance, step, detector)`` alarm decisions that differ between
  float32 and float64 is counted explicitly and must stay at or below
  ``MAX_DECISION_DIVERGENCE_FRACTION`` of all decisions.
* **Benign FAR** — each detector's per-step and per-instance false-alarm
  rates match float64 within ``MAX_FAR_DIVERGENCE`` absolute.

Divergent decisions only occur when a residue norm lands within float32
rounding distance of the threshold, which is why the rates stay this close:
the envelope is a property of the decision margin, not of luck.
"""

import numpy as np
import pytest

from repro.detectors.cusum import CusumDetector
from repro.registry import CASE_STUDIES
from repro.runtime.events import InMemorySink
from repro.runtime.fleet import FleetSimulator

#: Residue acceptance envelope (also stated in docs/runtime-kernel.md).
RESIDUE_RTOL = 1e-3
RESIDUE_ATOL = 1e-5

#: Ceiling on the fraction of alarm decisions allowed to differ.
MAX_DECISION_DIVERGENCE_FRACTION = 1e-3

#: Ceiling on the absolute benign false-alarm-rate difference per detector.
MAX_FAR_DIVERGENCE = 5e-3

N_INSTANCES = 400
HORIZON = 200


@pytest.fixture(scope="module")
def dcmotor_problem():
    return CASE_STUDIES.create("dcmotor").problem


@pytest.fixture(scope="module")
def boundary_thresholds(dcmotor_problem):
    """Thresholds placed on the benign residue-norm distribution.

    A threshold far from the noise envelope never produces divergent
    decisions (zero alarms in both dtypes proves nothing), so the static
    threshold sits at the benign 95th percentile and the CUSUM bias at the
    60th — the placement where float32 rounding is most likely to flip a
    comparison.
    """
    simulator = FleetSimulator(
        dcmotor_problem.system,
        N_INSTANCES,
        HORIZON,
        detectors={"probe": dcmotor_problem.static_threshold(1.0)},
        x0=dcmotor_problem.x0,
        seed=9,
        record_traces=True,
        metrics=False,
    )
    simulator.run()
    norms = np.abs(simulator.trace.residues).max(axis=2)
    return float(np.quantile(norms, 0.95)), float(np.quantile(norms, 0.6))


def _run(problem, thresholds, dtype):
    static, bias = thresholds
    sink = InMemorySink()
    simulator = FleetSimulator(
        problem.system,
        N_INSTANCES,
        HORIZON,
        detectors={
            "static": problem.static_threshold(static),
            "cusum": CusumDetector(bias=bias, threshold=5.0 * bias),
        },
        x0=problem.x0,
        seed=9,
        sinks=[sink],
        record_traces=True,
        metrics=False,
        engine="fused",
        engine_options={"dtype": dtype},
    )
    report = simulator.run()
    decisions = {(e.instance, e.step, e.detector) for e in sink.events}
    return report, simulator.trace, decisions


class TestFloat32Acceptance:
    def test_run_reports_the_float32_engine(self, dcmotor_problem, boundary_thresholds):
        report, trace, _ = _run(dcmotor_problem, boundary_thresholds, "float32")
        assert report.metadata["engine"]["dtype"] == "float32"
        # Recorded traces are float64 arrays regardless of compute dtype.
        assert trace.residues.dtype == np.float64

    def test_residues_within_documented_envelope(
        self, dcmotor_problem, boundary_thresholds
    ):
        _, trace64, _ = _run(dcmotor_problem, boundary_thresholds, "float64")
        _, trace32, _ = _run(dcmotor_problem, boundary_thresholds, "float32")
        np.testing.assert_allclose(
            trace32.residues, trace64.residues, rtol=RESIDUE_RTOL, atol=RESIDUE_ATOL
        )
        np.testing.assert_allclose(
            trace32.states, trace64.states, rtol=RESIDUE_RTOL, atol=RESIDUE_ATOL
        )

    def test_alarm_decision_divergence_is_counted_and_bounded(
        self, dcmotor_problem, boundary_thresholds
    ):
        _, _, decisions64 = _run(dcmotor_problem, boundary_thresholds, "float64")
        _, _, decisions32 = _run(dcmotor_problem, boundary_thresholds, "float32")
        # Both dtypes must actually alarm — a silent fleet proves nothing.
        assert decisions64 and decisions32
        divergent = len(decisions64 ^ decisions32)
        total = N_INSTANCES * HORIZON * 2  # two deployed detectors
        assert divergent / total <= MAX_DECISION_DIVERGENCE_FRACTION, (
            f"{divergent} of {total} alarm decisions diverged "
            f"({divergent / total:.2e} > {MAX_DECISION_DIVERGENCE_FRACTION:.0e})"
        )

    def test_benign_far_matches_float64_within_bound(
        self, dcmotor_problem, boundary_thresholds
    ):
        report64, _, _ = _run(dcmotor_problem, boundary_thresholds, "float64")
        report32, _, _ = _run(dcmotor_problem, boundary_thresholds, "float32")
        for label in report64.detectors:
            stats64 = report64.detectors[label]
            stats32 = report32.detectors[label]
            assert stats64.per_step_false_alarm_rate > 0, (
                f"{label!r} never alarmed; the boundary placement regressed"
            )
            assert abs(
                stats64.per_step_false_alarm_rate - stats32.per_step_false_alarm_rate
            ) <= MAX_FAR_DIVERGENCE
            assert abs(
                stats64.false_alarm_rate - stats32.false_alarm_rate
            ) <= MAX_FAR_DIVERGENCE * 10  # per-instance rates quantize at 1/N
