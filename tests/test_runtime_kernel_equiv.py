"""Differential equivalence layer: fused float64 vs the legacy fleet engine.

This is the gate behind ``engine="fused"``: for every packaged case study,
every deployed detector family (static threshold, CUSUM, chi-square, plant
monitors) and both attack modes, a fused float64 run must be *bit-identical*
(``np.array_equal``, no tolerance) to the legacy engine — traces, alarm
events (including their order) and report statistics alike.  A seeded
randomized property test extends the same check to arbitrary stable LTI
closed loops, including plants with a nonzero feed-through ``D`` (a path no
packaged case study exercises).

The fused engine is allowed to *choose* the legacy stepper per shard when
its differential probe rejects the BLAS at the run's width — the gate here
is about observable output, not about which kernel ran.  A separate guard
asserts that the fused kernel path is genuinely exercised on this host, so
a silently always-falling-back build cannot pass the suite vacuously.
"""

import numpy as np
import pytest

from repro.attacks.templates import BiasAttack
from repro.detectors.chi_square import ChiSquareDetector
from repro.detectors.cusum import CusumDetector
from repro.lti.model import StateSpace
from repro.lti.simulate import ClosedLoopSystem
from repro.registry import CASE_STUDIES
from repro.runtime.engine import _innovation_covariance
from repro.runtime.events import InMemorySink
from repro.runtime.fleet import FleetSimulator, ScheduledAttack, batch_simulate
from repro.runtime.kernel import probe_fused_equivalence

CASE_STUDY_NAMES = ("cruise", "dcmotor", "pendulum", "quadtank", "trajectory", "vsc")

TRACE_FIELDS = (
    "states",
    "estimates",
    "inputs",
    "measurements",
    "true_outputs",
    "residues",
    "attacks",
)


@pytest.fixture(scope="module")
def problems():
    return {name: CASE_STUDIES.create(name).problem for name in CASE_STUDY_NAMES}


def _detector_bank(problem) -> dict:
    """One detector of every family the runtime deploys."""
    bank = {
        "static": problem.static_threshold(0.1),
        "cusum": CusumDetector(bias=0.05, threshold=0.5),
        "chi2": ChiSquareDetector.from_false_alarm_probability(
            _innovation_covariance(problem), 0.05
        ),
    }
    if len(problem.mdc) > 0:
        bank["mdc"] = problem.mdc
    return bank


def _run(problem, engine, *, attacked, n_instances=37, horizon=60, seed=11, **options):
    sink = InMemorySink()
    attacks = (
        [ScheduledAttack(BiasAttack(bias=0.4), fraction=0.3, start=horizon // 4)]
        if attacked
        else []
    )
    simulator = FleetSimulator(
        problem.system,
        n_instances,
        horizon,
        detectors=_detector_bank(problem),
        x0=problem.x0,
        attacks=attacks,
        sinks=[sink],
        seed=seed,
        record_traces=True,
        metrics=False,
        engine=engine,
        engine_options=options,
    )
    report = simulator.run()
    return report, simulator.trace, list(sink.events)


def _assert_bit_identical(legacy, fused):
    report_l, trace_l, events_l = legacy
    report_f, trace_f, events_f = fused
    for field in TRACE_FIELDS:
        left, right = getattr(trace_l, field), getattr(trace_f, field)
        assert np.array_equal(left, right), f"trace field {field!r} diverged"
    assert events_l == events_f, "alarm event streams diverged"
    assert report_l.n_attacked == report_f.n_attacked
    assert set(report_l.detectors) == set(report_f.detectors)
    for label in report_l.detectors:
        assert (
            report_l.detectors[label].to_dict() == report_f.detectors[label].to_dict()
        ), f"detector stats for {label!r} diverged"


class TestCaseStudyEquivalence:
    """Fused float64 ≡ legacy on every case study and detector family."""

    @pytest.mark.parametrize("attacked", [False, True], ids=["benign", "attacked"])
    @pytest.mark.parametrize("name", CASE_STUDY_NAMES)
    def test_fused_float64_is_bit_identical(self, problems, name, attacked):
        problem = problems[name]
        legacy = _run(problem, "legacy", attacked=attacked)
        fused = _run(problem, "fused", attacked=attacked, dtype="float64")
        _assert_bit_identical(legacy, fused)

    def test_single_instance_fleet_pads_without_divergence(self, problems):
        # Width-1 shards ride a zero discard column inside the kernel; the
        # padding must never leak into the observable output.
        problem = problems["dcmotor"]
        legacy = _run(problem, "legacy", attacked=True, n_instances=1)
        fused = _run(problem, "fused", attacked=True, n_instances=1, dtype="float64")
        _assert_bit_identical(legacy, fused)

    def test_engine_metadata_reports_the_chosen_path(self, problems):
        report, _, _ = _run(problems["quadtank"], "fused", attacked=False)
        engine = report.metadata["engine"]
        assert engine["name"] == "fused"
        assert engine["dtype"] == "float64"
        assert engine["workers"] == 1
        assert isinstance(engine["fused_path"], bool)

    def test_fused_kernel_path_is_exercised_on_this_host(self, problems):
        # The equivalence cells above pass even if every probe rejects the
        # BLAS (the engine then runs legacy shards).  Guard against that
        # vacuous pass: at least one case study must take the fused GEMM
        # path at at least one of the widths this suite uses.
        verdicts = [
            probe_fused_equivalence(problem.system, np.float64, width)
            for problem in problems.values()
            for width in (37, 64)
        ]
        assert any(verdicts), (
            "no (case study, width) pair passed the fused probe on this host; "
            "the differential suite would not be exercising the fused kernel"
        )


def _random_closed_loop(rng: np.random.Generator, with_feedthrough: bool):
    """A random stable discrete-time closed loop (spectral radius < 1)."""
    n = int(rng.integers(2, 5))
    m = int(rng.integers(1, 4))
    p = int(rng.integers(1, 4))
    A = rng.standard_normal((n, n))
    radius = np.max(np.abs(np.linalg.eigvals(A)))
    A *= 0.85 / max(radius, 1e-9)
    plant = StateSpace(
        A,
        rng.standard_normal((n, p)),
        rng.standard_normal((m, n)),
        rng.standard_normal((m, p)) * 0.2 if with_feedthrough else None,
        R_v=np.eye(m) * 1e-4,
        dt=0.1,
    )
    return ClosedLoopSystem(
        plant,
        K=rng.standard_normal((p, n)) * 0.05,
        L=rng.standard_normal((n, m)) * 0.05,
        reference=rng.standard_normal(m) * 0.1,
        feedforward=rng.standard_normal((p, m)) * 0.1,
    )


class TestRandomizedSystems:
    """Seeded property test: fused ≡ legacy on arbitrary stable LTI loops."""

    @pytest.mark.parametrize("case", range(6))
    def test_random_stable_lti_is_bit_identical(self, case):
        rng = np.random.default_rng(900 + case)
        system = _random_closed_loop(rng, with_feedthrough=case % 2 == 1)
        plant = system.plant
        N, T = int(rng.integers(3, 24)), 50
        V = rng.standard_normal((N, T, plant.n_outputs)) * 1e-2
        W = rng.standard_normal((N, T, plant.n_states)) * 1e-3
        A = rng.standard_normal((N, T, plant.n_outputs)) * 1e-2
        x0 = rng.standard_normal((N, plant.n_states)) * 0.1

        kwargs = dict(
            x0=x0, measurement_noise=V, process_noise=W, attacks=A
        )
        legacy = batch_simulate(system, T, engine="legacy", **kwargs)
        fused = batch_simulate(system, T, engine="fused", **kwargs)
        for field in TRACE_FIELDS:
            assert np.array_equal(
                getattr(legacy, field), getattr(fused, field)
            ), f"trace field {field!r} diverged on random system {case}"

    def test_feedthrough_plants_take_the_output_feed_rows(self):
        # No packaged case study has D != 0; make sure the fused kernel's
        # feed-through block both exists and matches the legacy output feed.
        rng = np.random.default_rng(1234)
        system = _random_closed_loop(rng, with_feedthrough=True)
        assert np.any(system.plant.D)
        N, T = 9, 40
        V = rng.standard_normal((N, T, system.plant.n_outputs)) * 1e-2
        legacy = batch_simulate(
            system, T, measurement_noise=V, engine="legacy", n_instances=N
        )
        fused = batch_simulate(
            system, T, measurement_noise=V, engine="fused", n_instances=N
        )
        assert np.array_equal(legacy.measurements, fused.measurements)
        assert np.array_equal(legacy.residues, fused.residues)
