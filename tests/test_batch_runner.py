"""Tests for the batch experiment runner (repro.api.runner)."""

import pytest

from repro.api import (
    BatchRunner,
    ExperimentResult,
    ExperimentRow,
    ExperimentSpec,
    FARConfig,
    run_experiments,
)
from repro.registry import CASE_STUDIES


def _comparable(result: ExperimentResult) -> list[tuple]:
    """The deterministic part of each row (timings vary run-to-run)."""
    return [
        (
            row.case_study,
            row.backend,
            row.algorithm,
            row.status,
            row.vulnerable,
            row.converged,
            row.rounds,
            row.false_alarm_rate,
            row.error,
        )
        for row in result.rows
    ]


@pytest.fixture(scope="module")
def sweep_spec() -> ExperimentSpec:
    """2 case studies x 2 backends x 2 algorithms, kept cheap for the SMT cells."""
    return ExperimentSpec(
        name="acceptance-sweep",
        case_studies=("dcmotor", "trajectory"),
        backends=("lp", "smt"),
        algorithms=("stepwise", "static"),
        case_study_options={"dcmotor": {"horizon": 8}, "trajectory": {"horizon": 8}},
        min_threshold=0.005,
        max_rounds=150,
        far=FARConfig(count=20, seed=0, filter_pfc=False, filter_mdc=False),
    )


@pytest.fixture(scope="module")
def serial_result(sweep_spec) -> ExperimentResult:
    return run_experiments(sweep_spec)


class TestSerialSweep:
    def test_full_grid_executed(self, sweep_spec, serial_result):
        assert len(serial_result) == sweep_spec.size == 8
        assert serial_result.errors == []
        combos = {(row.case_study, row.backend, row.algorithm) for row in serial_result}
        assert len(combos) == 8

    def test_rows_sorted_by_stable_key(self, serial_result):
        keys = [row.sort_key for row in serial_result.rows]
        assert keys == sorted(keys)
        assert [row["case_study"] for row in serial_result.summary_rows()] == sorted(
            row.case_study for row in serial_result.rows
        )

    def test_every_cell_synthesized_and_evaluated(self, serial_result):
        for row in serial_result:
            # Convergence is problem-dependent (short horizons can block the
            # stepwise refinement), but every cell must produce a verdict,
            # metrics and a FAR value without raising.
            assert row.status in ("sat", "unsat", "unknown")
            assert row.vulnerable is True
            assert row.converged in (True, False)
            assert row.rounds >= 1
            assert row.solver_time_s >= 0.0
            assert 0.0 <= row.false_alarm_rate <= 1.0

    def test_static_baseline_converges_on_both_backends(self, serial_result):
        for case in ("dcmotor", "trajectory"):
            for backend in ("lp", "smt"):
                row = serial_result.select(
                    case_study=case, backend=backend, algorithm="static"
                )[0]
                assert row.status == "unsat"
                assert row.converged is True

    def test_result_round_trips_through_json(self, serial_result):
        rebuilt = ExperimentResult.from_json(serial_result.to_json())
        assert rebuilt == serial_result

    def test_json_export_is_reproducible(self, sweep_spec, serial_result):
        again = BatchRunner(sweep_spec).run()
        # Timings differ between runs; everything else must be identical.
        assert _comparable(again) == _comparable(serial_result)

    def test_spec_dict_accepted(self, sweep_spec):
        small = ExperimentSpec(
            case_studies=("trajectory",),
            backends=("lp",),
            algorithms=("static",),
            case_study_options={"trajectory": {"horizon": 8}},
        )
        result = run_experiments(small.to_dict())
        assert len(result) == 1
        assert result.rows[0].status == "unsat"


class TestMultiprocessSweep:
    def test_pool_matches_serial(self, sweep_spec, serial_result):
        parallel = run_experiments(sweep_spec, workers=4)
        assert _comparable(parallel) == _comparable(serial_result)


class TestGrouping:
    def test_cells_sharing_case_and_backend_share_one_pipeline_run(self, sweep_spec):
        from repro.api.runner import _group_payloads

        groups = _group_payloads(sweep_spec.expand())
        assert len(groups) == 4  # 2 cases x 2 backends; algorithms merged
        assert all(group["algorithms"] == ["stepwise", "static"] for group in groups)
        assert {(g["case_study"], g["backend"]) for g in groups} == {
            ("dcmotor", "lp"),
            ("dcmotor", "smt"),
            ("trajectory", "lp"),
            ("trajectory", "smt"),
        }


class TestErrorHandling:
    def test_failing_cell_becomes_error_row(self):
        @CASE_STUDIES.register("test-broken-case")
        def build_broken_case():
            raise RuntimeError("boom")

        try:
            spec = ExperimentSpec(
                case_studies=("test-broken-case", "trajectory"),
                backends=("lp",),
                algorithms=("static",),
                case_study_options={"trajectory": {"horizon": 8}},
            )
            result = run_experiments(spec)
        finally:
            CASE_STUDIES.unregister("test-broken-case")

        assert len(result) == 2
        broken = result.select(case_study="test-broken-case")[0]
        assert broken.status == "error"
        assert "boom" in broken.error
        assert broken.rounds is None
        healthy = result.select(case_study="trajectory")[0]
        assert healthy.error is None
        assert healthy.status == "unsat"

    def test_unknown_row_field_rejected(self):
        with pytest.raises(Exception):
            ExperimentRow.from_dict({"case_study": "a", "backend": "lp", "bogus": 1})
