"""Tests for the batch experiment runner (repro.api.runner)."""

import pytest

from repro.api import (
    BatchRunner,
    ExperimentResult,
    ExperimentRow,
    ExperimentSpec,
    FARConfig,
    run_experiments,
)
from repro.registry import CASE_STUDIES


def _comparable(result: ExperimentResult) -> list[tuple]:
    """The deterministic part of each row (timings vary run-to-run)."""
    return [
        (
            row.case_study,
            row.backend,
            row.algorithm,
            row.status,
            row.vulnerable,
            row.converged,
            row.rounds,
            row.false_alarm_rate,
            row.error,
        )
        for row in result.rows
    ]


@pytest.fixture(scope="module")
def sweep_spec() -> ExperimentSpec:
    """2 case studies x 2 backends x 2 algorithms, kept cheap for the SMT cells."""
    return ExperimentSpec(
        name="acceptance-sweep",
        case_studies=("dcmotor", "trajectory"),
        backends=("lp", "smt"),
        algorithms=("stepwise", "static"),
        case_study_options={"dcmotor": {"horizon": 8}, "trajectory": {"horizon": 8}},
        min_threshold=0.005,
        max_rounds=150,
        far=FARConfig(count=20, seed=0, filter_pfc=False, filter_mdc=False),
    )


@pytest.fixture(scope="module")
def serial_result(sweep_spec) -> ExperimentResult:
    return run_experiments(sweep_spec)


class TestSerialSweep:
    def test_full_grid_executed(self, sweep_spec, serial_result):
        assert len(serial_result) == sweep_spec.size == 8
        assert serial_result.errors == []
        combos = {(row.case_study, row.backend, row.algorithm) for row in serial_result}
        assert len(combos) == 8

    def test_rows_sorted_by_stable_key(self, serial_result):
        keys = [row.sort_key for row in serial_result.rows]
        assert keys == sorted(keys)
        assert [row["case_study"] for row in serial_result.summary_rows()] == sorted(
            row.case_study for row in serial_result.rows
        )

    def test_every_cell_synthesized_and_evaluated(self, serial_result):
        for row in serial_result:
            # Convergence is problem-dependent (short horizons can block the
            # stepwise refinement), but every cell must produce a verdict,
            # metrics and a FAR value without raising.
            assert row.status in ("sat", "unsat", "unknown")
            assert row.vulnerable is True
            assert row.converged in (True, False)
            assert row.rounds >= 1
            assert row.solver_time_s >= 0.0
            assert 0.0 <= row.false_alarm_rate <= 1.0

    def test_static_baseline_converges_on_both_backends(self, serial_result):
        for case in ("dcmotor", "trajectory"):
            for backend in ("lp", "smt"):
                row = serial_result.select(
                    case_study=case, backend=backend, algorithm="static"
                )[0]
                assert row.status == "unsat"
                assert row.converged is True

    def test_result_round_trips_through_json(self, serial_result):
        rebuilt = ExperimentResult.from_json(serial_result.to_json())
        assert rebuilt == serial_result

    def test_json_export_is_reproducible(self, sweep_spec, serial_result):
        again = BatchRunner(sweep_spec).run()
        # Timings differ between runs; everything else must be identical.
        assert _comparable(again) == _comparable(serial_result)

    def test_spec_dict_accepted(self, sweep_spec):
        small = ExperimentSpec(
            case_studies=("trajectory",),
            backends=("lp",),
            algorithms=("static",),
            case_study_options={"trajectory": {"horizon": 8}},
        )
        result = run_experiments(small.to_dict())
        assert len(result) == 1
        assert result.rows[0].status == "unsat"


class TestMultiprocessSweep:
    def test_pool_matches_serial(self, sweep_spec, serial_result):
        parallel = run_experiments(sweep_spec, workers=4)
        assert _comparable(parallel) == _comparable(serial_result)


class TestGrouping:
    def test_cells_sharing_case_and_backend_share_one_pipeline_run(self, sweep_spec):
        from repro.api.runner import _group_units

        groups = _group_units(sweep_spec.expand())
        assert len(groups) == 4  # 2 cases x 2 backends; algorithms merged
        assert all(
            payload["algorithms"] == ["stepwise", "static"] for payload, _ in groups
        )
        assert {(p["case_study"], p["backend"]) for p, _ in groups} == {
            ("dcmotor", "lp"),
            ("dcmotor", "smt"),
            ("trajectory", "lp"),
            ("trajectory", "smt"),
        }
        # The index lists map each group's rows back onto the input units.
        units = sweep_spec.expand()
        for payload, indices in groups:
            for algorithm, index in zip(payload["algorithms"], indices):
                assert units[index].algorithm == algorithm
                assert units[index].case_study == payload["case_study"]

    def test_units_differing_beyond_algorithm_do_not_merge(self):
        from repro.api.config import ExperimentUnit
        from repro.api.runner import _group_units

        units = [
            ExperimentUnit("dcmotor", "lp", "static", case_study_options={"horizon": 8}),
            ExperimentUnit("dcmotor", "lp", "stepwise", case_study_options={"horizon": 8}),
            ExperimentUnit("dcmotor", "lp", "static", case_study_options={"horizon": 10}),
            ExperimentUnit("dcmotor", "lp", "static", min_threshold=0.01,
                           case_study_options={"horizon": 8}),
        ]
        groups = _group_units(units)
        assert len(groups) == 3  # horizon-10 and min-threshold cells stay apart
        merged = [payload["algorithms"] for payload, _ in groups]
        assert ["static", "stepwise"] in merged


class TestResultTable:
    def _result(self) -> ExperimentResult:
        spec = ExperimentSpec(
            case_studies=("dcmotor",), backends=("lp",), algorithms=("static", "stepwise")
        )
        rows = [
            ExperimentRow("dcmotor", "lp", "static", status="unsat", converged=True,
                          rounds=1, false_alarm_rate=0.25,
                          metrics={"stealth_margin": 0.5}),
            ExperimentRow("dcmotor", "lp", "stepwise", status="error",
                          error="RuntimeError: boom"),
        ]
        return ExperimentResult(spec=spec, rows=rows)

    def test_select_matches_multiple_criteria(self):
        result = self._result()
        assert len(result.select(case_study="dcmotor")) == 2
        assert result.select(case_study="dcmotor", algorithm="static")[0].rounds == 1
        assert result.select(algorithm="static", status="error") == []
        assert result.select(case_study="no-such") == []

    def test_errors_property(self):
        result = self._result()
        assert [row.algorithm for row in result.errors] == ["stepwise"]
        assert result.errors[0].status == "error"

    def test_json_round_trip_preserves_error_rows_and_metrics(self):
        result = self._result()
        rebuilt = ExperimentResult.from_json(result.to_json())
        assert rebuilt.summary_rows() == result.summary_rows()
        assert len(rebuilt.errors) == 1
        assert rebuilt.errors[0].error == "RuntimeError: boom"
        assert rebuilt.errors[0].false_alarm_rate is None
        kept = rebuilt.select(algorithm="static")[0]
        assert kept.metrics == {"stealth_margin": 0.5}

    def test_row_dicts_without_metrics_still_load(self):
        """Pre-exploration JSON exports carried no metrics field."""
        row = ExperimentRow.from_dict(
            {"case_study": "dcmotor", "backend": "lp", "algorithm": "static"}
        )
        assert row.metrics == {}


class TestLadderAggregate:
    def test_missed_rung_is_censored_at_probe_horizon(self):
        """Never detecting a weak attack must score worse than detecting it slowly."""
        from repro.api.runner import _ladder_aggregate

        slow = _ladder_aggregate([(1.1, 1.0, 12.0), (1.5, 1.0, 4.0), (3.0, 1.0, 1.0)], 20)
        blind = _ladder_aggregate([(1.1, 0.0, None), (1.5, 1.0, 4.0), (3.0, 1.0, 1.0)], 20)
        # The blind candidate's missed rung counts as the 20-step horizon:
        # (20+4+1)/3 > (12+4+1)/3, so it cannot dominate the slow detector.
        assert blind["mean_detection_latency"] > slow["mean_detection_latency"]
        assert blind["mean_detection_latency_x1.1"] is None   # per-rung stays honest
        assert blind["detection_rate"] == pytest.approx(2 / 3)

    def test_unattacked_rungs_contribute_to_neither_aggregate(self):
        from repro.api.runner import _ladder_aggregate

        metrics = _ladder_aggregate([(1.1, None, None), (3.0, None, None)], 20)
        assert metrics["detection_rate"] is None
        assert metrics["mean_detection_latency"] is None


class TestStoreIntegration:
    def test_store_serves_second_run_without_execution(self, tmp_path):
        spec = ExperimentSpec(
            case_studies=("trajectory",),
            backends=("lp",),
            algorithms=("static", "stepwise"),
            case_study_options={"trajectory": {"horizon": 8}},
            min_threshold=0.005,
            max_rounds=100,
            far=FARConfig(count=10, seed=0, filter_pfc=False, filter_mdc=False),
        )
        from repro.explore import ResultStore

        store = ResultStore(tmp_path / "s")
        first = run_experiments(spec, store=store)
        # 2 row entries + 2 reusable synthesis records.
        assert store.misses == 2 and len(store) == 4
        second = run_experiments(spec, store=store)
        assert store.hits == 2
        assert second.summary_rows() == first.summary_rows()

    def test_probe_error_rows_are_not_persisted(self, tmp_path):
        """A failed (best-effort) probe must not pin a crippled row forever."""
        from repro.api.config import ExperimentUnit
        from repro.api.runner import BatchRunner
        from repro.explore import ResultStore

        unit = ExperimentUnit(
            "trajectory", "lp", "static",
            case_study_options={"horizon": 8},
            probe={"detector": "no-such-deployment", "n_instances": 4},
        )
        store = ResultStore(tmp_path / "s")
        ((key, row),) = BatchRunner(store=store).run_units([unit])
        assert row.error is None
        assert "probe_error" in row.metrics
        # The crippled row is never pinned; the synthesis half (which the
        # probe failure does not invalidate) is kept for reuse.
        assert key not in store
        from repro.explore.store import synthesis_store_key

        assert synthesis_store_key(unit.to_dict()) in store
        assert len(store) == 1

    def test_error_rows_are_not_persisted(self, tmp_path):
        @CASE_STUDIES.register("test-store-broken")
        def build_broken():
            raise RuntimeError("boom")

        from repro.explore import ResultStore

        try:
            spec = ExperimentSpec(
                case_studies=("test-store-broken",), backends=("lp",), algorithms=("static",)
            )
            store = ResultStore(tmp_path / "s")
            result = run_experiments(spec, store=store)
            assert result.errors and len(store) == 0
        finally:
            CASE_STUDIES.unregister("test-store-broken")


class TestErrorHandling:
    def test_failing_cell_becomes_error_row(self):
        @CASE_STUDIES.register("test-broken-case")
        def build_broken_case():
            raise RuntimeError("boom")

        try:
            spec = ExperimentSpec(
                case_studies=("test-broken-case", "trajectory"),
                backends=("lp",),
                algorithms=("static",),
                case_study_options={"trajectory": {"horizon": 8}},
            )
            result = run_experiments(spec)
        finally:
            CASE_STUDIES.unregister("test-broken-case")

        assert len(result) == 2
        broken = result.select(case_study="test-broken-case")[0]
        assert broken.status == "error"
        assert "boom" in broken.error
        assert broken.rounds is None
        healthy = result.select(case_study="trajectory")[0]
        assert healthy.error is None
        assert healthy.status == "unsat"

    def test_unknown_row_field_rejected(self):
        with pytest.raises(Exception):
            ExperimentRow.from_dict({"case_study": "a", "backend": "lp", "bogus": 1})
