"""Unit tests for continuous-to-discrete conversion."""

import numpy as np
import pytest
from scipy import linalg as sla

from repro.lti.discretize import discretize, euler, tustin, zoh
from repro.lti.model import StateSpace
from repro.utils.validation import ValidationError


@pytest.fixture
def first_order():
    """Continuous first-order lag dx/dt = -x + u, y = x."""
    return StateSpace(A=np.array([[-1.0]]), B=np.array([[1.0]]), C=np.array([[1.0]]))


class TestZOH:
    def test_scalar_exact(self, first_order):
        dt = 0.5
        model = zoh(first_order, dt)
        assert model.A[0, 0] == pytest.approx(np.exp(-dt))
        assert model.B[0, 0] == pytest.approx(1.0 - np.exp(-dt))
        assert model.dt == dt

    def test_double_integrator_exact(self, double_integrator_continuous):
        dt = 0.1
        model = zoh(double_integrator_continuous, dt)
        np.testing.assert_allclose(model.A, [[1.0, dt], [0.0, 1.0]], atol=1e-12)
        np.testing.assert_allclose(model.B, [[dt**2 / 2], [dt]], atol=1e-12)

    def test_matches_expm_blocks(self, stable_random_plant):
        # Build a continuous model, discretise, compare against the block expm.
        continuous = StateSpace(
            A=np.array([[-1.0, 0.5], [0.0, -2.0]]),
            B=np.array([[0.0], [1.0]]),
            C=np.eye(2),
        )
        dt = 0.2
        model = zoh(continuous, dt)
        n = 2
        block = np.zeros((3, 3))
        block[:n, :n] = continuous.A * dt
        block[:n, n:] = continuous.B * dt
        expm = sla.expm(block)
        np.testing.assert_allclose(model.A, expm[:n, :n], atol=1e-12)
        np.testing.assert_allclose(model.B, expm[:n, n:], atol=1e-12)

    def test_rejects_discrete_input(self, double_integrator):
        with pytest.raises(ValidationError):
            zoh(double_integrator, 0.1)

    def test_noise_mapping(self, double_integrator_continuous):
        dt = 0.1
        model = zoh(double_integrator_continuous, dt)
        np.testing.assert_allclose(model.Q_w, double_integrator_continuous.Q_w * dt)
        np.testing.assert_allclose(model.R_v, double_integrator_continuous.R_v / dt)


class TestEulerAndTustin:
    def test_euler_formula(self, first_order):
        dt = 0.1
        model = euler(first_order, dt)
        assert model.A[0, 0] == pytest.approx(1.0 - dt)
        assert model.B[0, 0] == pytest.approx(dt)

    def test_tustin_formula(self, first_order):
        dt = 0.1
        model = tustin(first_order, dt)
        expected = (1.0 - dt / 2) / (1.0 + dt / 2)
        assert model.A[0, 0] == pytest.approx(expected)

    def test_methods_agree_for_small_dt(self, first_order):
        dt = 1e-4
        a_zoh = zoh(first_order, dt).A[0, 0]
        a_euler = euler(first_order, dt).A[0, 0]
        a_tustin = tustin(first_order, dt).A[0, 0]
        assert a_zoh == pytest.approx(a_euler, abs=1e-7)
        assert a_zoh == pytest.approx(a_tustin, abs=1e-7)

    def test_euler_rejects_discrete(self, double_integrator):
        with pytest.raises(ValidationError):
            euler(double_integrator, 0.1)

    def test_tustin_rejects_discrete(self, double_integrator):
        with pytest.raises(ValidationError):
            tustin(double_integrator, 0.1)


class TestDispatch:
    @pytest.mark.parametrize("method", ["zoh", "euler", "tustin"])
    def test_discretize_dispatch(self, first_order, method):
        model = discretize(first_order, 0.1, method=method)
        assert model.is_discrete

    def test_unknown_method(self, first_order):
        with pytest.raises(ValidationError):
            discretize(first_order, 0.1, method="foh")

    def test_preserves_names(self, first_order):
        named = StateSpace(
            A=first_order.A,
            B=first_order.B,
            C=first_order.C,
            state_names=("tank",),
            output_names=("level",),
            input_names=("pump",),
        )
        model = discretize(named, 0.1)
        assert model.state_names == ("tank",)
        assert model.output_names == ("level",)
        assert model.input_names == ("pump",)
