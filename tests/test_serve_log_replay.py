"""Tests for the service event log and the deterministic replay driver."""

import json

import numpy as np
import pytest

from repro import ServiceConfig, replay, run_service
from repro.detectors.threshold import ThresholdVector
from repro.runtime.events import InMemorySink
from repro.serve import MonitorService, ServiceEvent, ServiceLog
from repro.utils.validation import ValidationError


class TestServiceEvent:
    def test_round_trips_through_dict(self):
        event = ServiceEvent(
            seq=4, kind="alarm", instance=2, step=9, data={"detector": "static"}
        )
        assert ServiceEvent.from_dict(event.to_dict()) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            ServiceEvent(seq=0, kind="mystery")


class TestServiceLog:
    def test_in_memory_append_assigns_sequence(self):
        log = ServiceLog()
        first = log.append("start")
        second = log.append("attach", instance=0)
        assert (first.seq, second.seq) == (0, 1)
        assert len(log) == 2 and list(log) == [first, second]

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "service.jsonl"
        with ServiceLog(path) as log:
            log.append("start", data={"metadata": {"x": 1}})
            log.append("measurement", instance=0, data={"measurement": [0.5]})
        loaded = ServiceLog.read(path)
        assert loaded == log.events

    def test_truncated_tail_dropped_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "service.jsonl"
        with ServiceLog(path) as log:
            for _ in range(3):
                log.append("round")
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "kind": "ro')  # killed mid-append
        assert len(ServiceLog.read(path)) == 3

        lines = path.read_text().splitlines()
        lines[1] = "{corrupt interior}"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            ServiceLog.read(path)

    def test_negative_flush_every_rejected(self):
        with pytest.raises(ValidationError):
            ServiceLog(flush_every=-1)


def _drive(service, problem, steps=15, seed=0):
    """Attach two instances and push a fixed random measurement stream."""
    rng = np.random.default_rng(seed)
    m = problem.system.plant.n_outputs
    a = service.attach()
    b = service.attach()
    for k in range(steps):
        service.ingest(a, rng.normal(size=m))
        service.ingest(b, rng.normal(size=m))
        if k == steps // 2:
            service.detach(a)
            a = service.attach()
    return service


class TestReplay:
    def test_replay_reproduces_alarms_bit_identically(self, dcmotor_problem):
        config = ServiceConfig(static_thresholds={"static": 0.5})
        sink = InMemorySink()
        service = _drive(
            run_service(config, problem=dcmotor_problem, sinks=[sink]), dcmotor_problem
        )
        assert sink.events, "the scenario must raise alarms"
        result = replay(service.log, problem=dcmotor_problem)
        assert result.matches
        assert result.recorded == list(sink.events)

    def test_replay_standalone_from_log_file(self, tmp_path):
        # With case_study in the config, the recorded file is self-contained:
        # replay rebuilds problem, bank and service with no other context.
        path = tmp_path / "service.jsonl"
        config = ServiceConfig(
            case_study="dcmotor", static_thresholds={"static": 0.5}, log_path=str(path)
        )
        service = run_service(config)
        from repro import get_case_study

        _drive(service, get_case_study("dcmotor").problem)
        service.close()
        result = replay(path)
        assert result.matches and result.recorded

    def test_replay_reproduces_drop_oldest_evictions(self, dcmotor_problem):
        config = ServiceConfig(
            static_thresholds={"static": 0.5},
            ring_capacity=2,
            overflow="drop-oldest",
            auto_drain=False,
        )
        service = run_service(config, problem=dcmotor_problem)
        service.attach()
        rng = np.random.default_rng(1)
        m = dcmotor_problem.system.plant.n_outputs
        for _ in range(5):
            service.ingest(0, rng.normal(size=m) * 2)
        service.drain()  # only the 2 surviving samples
        assert service.rounds_processed == 2 and service.samples_dropped == 3
        result = replay(service.log, problem=dcmotor_problem)
        assert result.matches
        assert result.service.samples_dropped == 3

    def test_replay_reapplies_threshold_swaps(self, dcmotor_problem):
        config = ServiceConfig(static_thresholds={"static": 10.0})
        service = run_service(config, problem=dcmotor_problem)
        service.attach()
        rng = np.random.default_rng(2)
        m = dcmotor_problem.system.plant.n_outputs
        for _ in range(5):
            service.ingest(0, rng.normal(size=m))
        service.swap_thresholds(
            {"static": ThresholdVector(np.full(dcmotor_problem.horizon, 1e-6))}
        )
        for _ in range(5):
            service.ingest(0, rng.normal(size=m))
        result = replay(service.log, problem=dcmotor_problem)
        assert result.matches
        # The swap must actually have fired alarms post-swap.
        assert {event.step for event in result.recorded} >= {5}

    def test_monitor_swaps_are_not_replayable(self, dcmotor_problem):
        service = MonitorService(
            dcmotor_problem.system,
            {"mdc": dcmotor_problem.mdc, "static": dcmotor_problem.static_threshold(0.5)},
        )
        service.attach()
        service.swap_thresholds({"mdc": dcmotor_problem.mdc})
        fresh = MonitorService(
            dcmotor_problem.system,
            {"mdc": dcmotor_problem.mdc, "static": dcmotor_problem.static_threshold(0.5)},
        )
        with pytest.raises(ValidationError):
            replay(service.log, service=fresh)

    def test_log_without_config_needs_an_explicit_service(self, dcmotor_problem):
        service = MonitorService(
            dcmotor_problem.system, {"static": dcmotor_problem.static_threshold(0.5)}
        )
        service.attach()
        with pytest.raises(ValidationError):
            replay(service.log)
