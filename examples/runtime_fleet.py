#!/usr/bin/env python3
"""Runtime fleet monitoring: deploy synthesized detectors on 1 000 VSC instances.

The synthesis pipeline produces detectors; the runtime operates them.  This
example walks the full deployment story on the paper's §IV case study:

* synthesize the variable (Algorithm 2) and provably safe static thresholds
  for the Vehicle Stability Controller,
* deploy them — together with the ECU's own range/gradient/relation monitors
  (``mdc``) and a chi-square baseline — on a fleet of 1 000 simulated
  vehicles, each with its own noise stream and initial-state perturbation,
* schedule a false-data-injection attack against 10 % of the fleet mid-run,
* stream every alarm into a JSONL event log and print the
  :class:`~repro.runtime.report.FleetReport`: detection rate, detection
  latency, per-instance and per-step false alarm rates, and throughput.

Run with::

    python examples/runtime_fleet.py [--quick]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import (
    JSONLSink,
    RuntimeConfig,
    SynthesisConfig,
    build_vsc_case_study,
    run_fleet,
)


def main(quick: bool = False) -> None:
    case = build_vsc_case_study()
    reproduction = case.extras["reproduction"]
    n_instances = 200 if quick else 1000
    events_path = Path(tempfile.gettempdir()) / "vsc_fleet_alarms.jsonl"
    events_path.unlink(missing_ok=True)

    print(f"Deploying synthesized detectors on a {n_instances}-vehicle VSC fleet")
    print(f"  horizon          : {case.horizon} samples of {case.problem.dt * 1e3:.0f} ms")
    print(f"  alarm event log  : {events_path}")

    config = RuntimeConfig(
        n_instances=n_instances,
        case_study="vsc",
        # Synthesize and deploy: Algorithm 2's variable threshold and the
        # provably safe static baseline, labelled by algorithm name.
        synthesis=SynthesisConfig(
            algorithms=("pivot", "static"),
            backend="lp",
            max_rounds=120 if quick else 500,
            min_threshold=reproduction["min_threshold"],
        ),
        # A classical baseline rides along; its innovation covariance is
        # derived from the plant's Kalman design automatically.
        detectors={"chi-square": {"name": "chi-square",
                                  "options": {"false_alarm_probability": 1e-3}}},
        include_mdc=True,
        # The paper's benign operating envelope: bounded measurement noise
        # plus a small initial-state spread per vehicle.
        noise_scale=reproduction["far_noise_scale"],
        initial_state_spread=list(reproduction["far_initial_state_spread"]),
        # Forge the yaw-rate/lateral-acceleration messages of 10 % of the
        # fleet from sample 20 onward.
        attacks=[{
            "template": "bias",
            "options": {"bias": 0.08},
            "fraction": 0.10,
            "start": 20,
            "label": "yaw-bias",
        }],
        events_path=str(events_path),
        seed=0,
    )

    print("\nSynthesizing thresholds and streaming the fleet ...")
    report = run_fleet(config)

    print("\n" + str(report))
    print("\nDetector summary rows:")
    for row in report.summary_rows():
        print(f"  {row}")

    events = JSONLSink.read(events_path)
    first_alarms = [event for event in events if event.first]
    print(f"\nEvent log: {len(events)} alarm events "
          f"({len(first_alarms)} first alarms) written to {events_path}")
    if first_alarms:
        sample = first_alarms[0]
        print(f"  e.g. {sample.detector!r} first alarmed on instance "
              f"{sample.instance} at step {sample.step}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller fleet for a fast demo")
    main(parser.parse_args().quick)
