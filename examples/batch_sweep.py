#!/usr/bin/env python3
"""Sweep case studies × backends × algorithms with the Experiment API v2.

This example shows the declarative batch workflow that replaces hand-written
loops over case studies and solver backends:

1. describe the whole experiment grid as one :class:`repro.ExperimentSpec`,
2. round-trip it through JSON (the spec is what you commit to version
   control or ship to a cluster),
3. execute it with :func:`repro.run_experiments` — serially or with
   ``multiprocessing`` fan-out,
4. inspect the sorted, JSON-exportable :class:`repro.ExperimentResult` table.

Run with::

    python examples/batch_sweep.py
"""

from __future__ import annotations

from repro import ExperimentSpec, FARConfig, run_experiments


def main() -> None:
    spec = ExperimentSpec(
        name="backend-x-algorithm-sweep",
        case_studies=("trajectory", "dcmotor"),
        backends=("lp", "smt"),
        algorithms=("stepwise", "static"),
        # Keep the SMT cells cheap: shrink both horizons for the sweep.  At
        # these short horizons the dcmotor loop has not reached its target
        # band yet, so the FAR study must not filter on the performance
        # criterion (every benign trace would be discarded).
        case_study_options={"dcmotor": {"horizon": 8}, "trajectory": {"horizon": 8}},
        min_threshold=0.005,
        max_rounds=150,
        far=FARConfig(count=100, seed=0, filter_pfc=False, filter_mdc=False),
    )

    # The spec is plain data: print it, save it, rebuild it — identically.
    text = spec.to_json()
    assert ExperimentSpec.from_json(text) == spec
    print(f"experiment spec ({spec.size} grid cells):")
    print(text)

    result = run_experiments(spec, workers=4)

    print("\nresult table (sorted by case study / backend / algorithm):")
    header = f"{'case':12s} {'backend':8s} {'algorithm':10s} {'status':8s} " \
             f"{'rounds':>6s} {'time[s]':>8s} {'FAR':>7s}"
    print(header)
    for row in result.summary_rows():
        far = row["false_alarm_rate"]
        far_text = f"{100 * far:6.1f}%" if far is not None else "    n/a"
        rounds = row["rounds"] if row["rounds"] is not None else -1
        time_s = row["solver_time_s"] if row["solver_time_s"] is not None else float("nan")
        print(f"{row['case_study']:12s} {row['backend']:8s} {row['algorithm']:10s} "
              f"{row['status']:8s} {rounds:6d} {time_s:8.2f} {far_text}")

    if result.errors:
        print(f"\n{len(result.errors)} cell(s) failed:")
        for row in result.errors:
            print(f"  {row.case_study}/{row.backend}/{row.algorithm}: {row.error}")

    print("\nfull JSON export available via result.to_json()")


if __name__ == "__main__":
    main()
