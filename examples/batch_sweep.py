#!/usr/bin/env python3
"""Sweep a design space with ``repro.explore`` and extract the Pareto front.

This example shows the exploration workflow that replaces hand-written
loops (and the plain ``ExperimentSpec`` grid it superseded):

1. describe the design space as one :class:`repro.SearchSpace` — case
   studies × algorithms × threshold floors × noise scales — and round-trip
   it through JSON (the space is what you commit to version control),
2. explore it with :class:`repro.Explorer` against a persistent
   content-addressed store, so re-running the script (or resuming after an
   interruption) recomputes nothing,
3. inspect the sorted result table, the (FAR, detection latency, stealth
   margin) Pareto front, and the per-axis sensitivity summary.

Run with::

    python examples/batch_sweep.py

Run it twice and watch the second pass be served entirely from the store.
"""

from __future__ import annotations

from pathlib import Path

from repro import Explorer, SearchSpace

STORE_PATH = Path(__file__).resolve().parent / ".explore-store"


def main() -> None:
    space = SearchSpace(
        case_studies=("trajectory", "dcmotor"),
        synthesizers=("stepwise", "static"),
        backends=("lp",),
        # Keep the cells cheap: shrink both horizons for the sweep.  At
        # these short horizons the loops have not reached their target band
        # yet, so the FAR study must not filter on the performance criterion
        # (SearchSpace defaults filter_pfc/filter_mdc to False).
        horizons=(8,),
        min_thresholds=(0.0, 0.01, 0.02),
        noise_scales=(0.5, 1.0),
        far_count=100,
        probe_instances=16,
        max_rounds=150,
    )

    # The space is plain data: print it, save it, rebuild it — identically.
    assert SearchSpace.from_json(space.to_json()) == space
    print(f"design space: {space.size} points over axes")
    for axis, values in space.axes().items():
        print(f"  {axis:14s} {values}")

    report = Explorer(space, "grid", store=STORE_PATH, workers="auto").run()

    print(f"\nstats: {report.stats}")
    print("\nresult table (sorted by coordinates):")
    header = (
        f"{'case':12s} {'algo':9s} {'floor':>6s} {'noise':>6s} {'status':8s} "
        f"{'FAR':>7s} {'margin':>7s} {'latency':>8s}"
    )
    print(header)
    for row in report.summary_rows():
        far = row.get("false_alarm_rate")
        margin = row.get("stealth_margin")
        latency = row.get("mean_detection_latency")
        far_text = f"{100 * far:6.1f}%" if far is not None else f"{'n/a':>7s}"
        margin_text = f"{margin:7.3f}" if margin is not None else f"{'n/a':>7s}"
        latency_text = f"{latency:8.2f}" if latency is not None else f"{'n/a':>8s}"
        print(
            f"{row['case_study']:12s} {row['synthesizer']:9s} "
            f"{row['min_threshold']:6.3f} {row['noise_scale']:6.2f} "
            f"{row['status']:8s} {far_text} {margin_text} {latency_text}"
        )

    print("\nPareto front over (FAR, detection latency, stealth margin):")
    for row in report.front():
        print(
            f"  {row['case_study']}/{row['synthesizer']} floor={row['min_threshold']} "
            f"noise={row['noise_scale']}: FAR={row.get('false_alarm_rate')}, "
            f"margin={row.get('stealth_margin')}, "
            f"latency={row.get('mean_detection_latency')}"
        )

    print("\nsensitivity to the threshold floor:")
    for value, entry in report.sensitivity("min_threshold").items():
        far = entry.get("false_alarm_rate", {})
        print(f"  floor={value}: n={entry['count']}, FAR mean={far.get('mean')}")

    if report.errors:
        print(f"\n{len(report.errors)} point(s) failed:")
        for row in report.errors:
            print(f"  {row['case_study']}/{row['synthesizer']}: {row['error']}")

    print(f"\nstore at {STORE_PATH} — rerun this script for a free warm pass")
    print("full JSON export available via report.to_json()")


if __name__ == "__main__":
    main()
