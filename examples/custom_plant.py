#!/usr/bin/env python3
"""Securing a user-defined plant with the public API.

This example shows every step a downstream user takes to apply the library to
their own system rather than a packaged benchmark:

1. describe the continuous-time physics as a :class:`repro.StateSpace`,
2. discretise it and close the loop (LQR + Kalman filter),
3. state the performance criterion and the plant's existing monitors,
4. bundle everything into a :class:`repro.SynthesisProblem`,
5. run the end-to-end workflow with :func:`repro.run_pipeline` driven by
   declarative :class:`repro.SynthesisConfig` / :class:`repro.FARConfig`
   objects.

The plant here is a two-zone thermal process (server room + adjacent zone)
whose temperature telemetry travels over an IP network and can be falsified.

Run with::

    python examples/custom_plant.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AttackChannelMask,
    CompositeMonitor,
    DeadZoneMonitor,
    FARConfig,
    GradientMonitor,
    RangeMonitor,
    ReachSetCriterion,
    StateSpace,
    SynthesisConfig,
    SynthesisProblem,
    discretize,
    run_pipeline,
)
from repro.systems.base import design_closed_loop


def build_thermal_problem() -> SynthesisProblem:
    """Two coupled thermal zones, one actuated, both measured."""
    # States: temperature deviation of zone 1 and zone 2 from the set point [K].
    # Input: cooling power deviation [kW]; outputs: both zone temperatures.
    thermal_coupling = 0.08
    zone1_leak, zone2_leak = 0.12, 0.05
    A = np.array(
        [
            [-(zone1_leak + thermal_coupling), thermal_coupling],
            [thermal_coupling, -(zone2_leak + thermal_coupling)],
        ]
    )
    B = np.array([[-0.5], [0.0]])
    C = np.eye(2)
    plant = StateSpace(
        A=A,
        B=B,
        C=C,
        Q_w=np.eye(2) * 1e-5,
        R_v=np.eye(2) * 0.05**2,
        name="two-zone-thermal",
        state_names=("T_zone1", "T_zone2"),
        output_names=("T_zone1", "T_zone2"),
        input_names=("cooling",),
    )
    discrete = discretize(plant, dt=30.0)  # one sample every 30 s

    system = design_closed_loop(
        discrete,
        Q_lqr=np.diag([4.0, 1.0]),
        R_lqr=np.array([[0.5]]),
        Q_kalman=np.eye(2) * 1e-3,
        name="thermal-loop",
    )

    # Start 3 K above the set point; the loop must bring zone 1 within 0.5 K
    # in 40 samples (20 minutes).
    pfc = ReachSetCriterion(
        x_des=np.zeros(2), epsilon=np.array([0.5, np.inf]), components=(0,), at=40
    )

    monitors = CompositeMonitor(
        monitors=[
            DeadZoneMonitor(RangeMonitor(channel=0, low=-5.0, high=8.0), dead_zone_samples=4),
            DeadZoneMonitor(RangeMonitor(channel=1, low=-5.0, high=8.0), dead_zone_samples=4),
            DeadZoneMonitor(GradientMonitor(channel=0, max_rate=0.05), dead_zone_samples=4),
        ],
        name="thermal-mdc",
    )

    return SynthesisProblem(
        system=system,
        pfc=pfc,
        horizon=40,
        mdc=monitors,
        x0=np.array([3.0, 2.0]),
        attack_mask=AttackChannelMask.all_channels(2),
        attack_bound=2.0,
        residue_weights=np.array([0.05, 0.05]),
        name="thermal",
    )


def main() -> None:
    problem = build_thermal_problem()
    print(f"custom plant: {problem.system.plant!r}")

    synthesis = SynthesisConfig(
        algorithms=("pivot", "stepwise", "static"),
        backend="lp",
        min_threshold=0.5,
    )
    far = FARConfig(count=300, seed=0)
    report = run_pipeline(problem, synthesis, far)

    print(f"\nexisting monitors bypassable: {report.is_vulnerable}")
    print("\nper-algorithm summary:")
    for row in report.summary_rows():
        far = row.get("false_alarm_rate")
        far_text = f"{100 * far:5.1f} %" if far is not None else "   n/a"
        print(f"  {row['algorithm']:9s} rounds={row['rounds']:4d} "
              f"converged={str(row['converged']):5s} solver_time={row['solver_time_s']:7.2f}s "
              f"FAR={far_text}")

    if report.far_study is not None:
        print(f"\nbenign population: kept {report.far_study.kept}/{report.far_study.generated} "
              f"(discarded {report.far_study.discarded_pfc} by pfc, "
              f"{report.far_study.discarded_mdc} by mdc)")


if __name__ == "__main__":
    main()
