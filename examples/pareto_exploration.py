#!/usr/bin/env python3
"""Pareto exploration of the paper's VSC case study with a relax stage.

The paper's central trade-off: lowering the synthesized residue thresholds
shrinks a stealthy attacker's margin but raises the false-alarm rate.  This
example maps that trade-off surface for the §IV vehicle-stability-control
(VSC) loop:

1. declare the design space as a :class:`repro.ExploreConfig` — threshold
   floors (including the **un-floored** 0.0 point) × benign-noise scales,
   with a declarative ``relax=`` stage, an online probe attack ladder and a
   FAR budget — and round-trip it through JSON,
2. explore it with the ``adaptive-bisection`` sampler, which bisects only
   the metric-varying regions of each axis instead of the full grid,
3. print the (FAR, detection latency, stealth margin) Pareto front with the
   raw FAR alongside: without the relax stage the un-floored point's FAR
   saturates at 100 % (the solver provably pins its terminal threshold at
   ~0); the relax stage lifts it to the configured floor — an explicit,
   flagged residual-risk trade — and the relaxed front stays below 100 %
   everywhere.

Run with::

    python examples/pareto_exploration.py

A content-addressed store under ``examples/.explore-store`` makes repeated
runs free — and because the store splits every point's address into a
synthesis key and an evaluation key, even *new* noise scales or FAR budgets
over already-synthesized floors issue zero solver calls.  If matplotlib is
installed, the front is also saved next to the store as
``vsc_pareto_front.png`` (see ``ExplorationReport.plot_front``).
"""

from __future__ import annotations

from pathlib import Path

from repro import ExploreConfig, SearchSpace, run_exploration

STORE_PATH = Path(__file__).resolve().parent / ".explore-store"
PLOT_PATH = Path(__file__).resolve().parent / "vsc_pareto_front.png"


def main() -> None:
    config = ExploreConfig(
        space=SearchSpace(
            case_studies=("vsc",),
            synthesizers=("stepwise",),
            backends=("lp",),
            # The floor is the paper's FAR knob.  0.0 is the un-floored
            # synthesis whose raw FAR saturates at 100%; the relax stage
            # below keeps its *relaxed* front point under budget.
            min_thresholds=(0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0),
            noise_scales=(0.5, 1.0),
            far_budgets=(0.5, 1.0),       # a 50% budget and "anything goes"
            relax={"floor": 1.0},         # certified raises + explicit floor
            far_count=100,
            probe_instances=32,
            probe_attack="bias",          # ladder: 1.1x / 1.5x / 3x per candidate
            max_rounds=150,
        ),
        sampler="adaptive-bisection",
        store_path=str(STORE_PATH),
        name="vsc-pareto",
    )
    assert ExploreConfig.from_json(config.to_json()) == config
    print(f"exploring {config.space.size} VSC points with {config.sampler!r} sampling")

    report = run_exploration(config)

    stats = report.stats
    print(
        f"\nsampler visited {stats['units']} of {config.space.size} points "
        f"({stats['rounds']} rounds; {stats.get('store_hits', 0)} full rows from the "
        f"store, {stats.get('synthesis_reused', 0)} synthesis records reused, "
        f"{stats['units_executed']} executed)"
    )

    print("\nPareto front over (FAR, detection latency, stealth margin):")
    header = (
        f"{'floor':>6s} {'noise':>6s} {'budget':>7s} {'FAR':>7s} {'rawFAR':>7s} "
        f"{'margin':>8s} {'lat@1.1':>8s} {'lat@3':>7s}"
    )
    print(header)

    def fmt(value, width, spec):
        return f"{value:{width}{spec}}" if value is not None else f"{'n/a':>{width}s}"

    for row in report.front():
        print(
            f"{row['min_threshold']:6.3f} {row['noise_scale']:6.2f} "
            f"{row['far_budget']:7.2f} "
            + fmt(row.get("false_alarm_rate"), 7, ".1%") + " "
            + fmt(row.get("false_alarm_rate_raw"), 7, ".1%") + " "
            + fmt(row.get("stealth_margin"), 8, ".4f") + " "
            + fmt(row.get("mean_detection_latency_x1.1"), 8, ".2f") + " "
            + fmt(row.get("mean_detection_latency_x3"), 7, ".2f")
        )

    saturated = [r for r in report.front() if r.get("false_alarm_rate") == 1.0]
    print(
        "\nrelaxed front FAR-saturated points: "
        f"{len(saturated)} (raw synthesis saturates wherever rawFAR = 100.0%)"
    )

    # One line per noise scale (budgets share the computation and the row).
    unfloored = [
        r
        for r in report.summary_rows()
        if r["min_threshold"] == 0.0 and r["far_budget"] == max(config.space.far_budgets)
    ]
    print("\nthe un-floored (floor = 0.0) points, raw vs relaxed:")
    for row in unfloored:
        print(
            f"  noise={row['noise_scale']}: raw FAR="
            + fmt(row.get("false_alarm_rate_raw"), 0, ".1%")
            + " (terminal threshold provably pinned at ~0) -> relaxed FAR="
            + fmt(row.get("false_alarm_rate"), 0, ".1%")
            + f" (certified={row.get('relax_certified')})"
        )

    budget = min(config.space.far_budgets)
    within = [r for r in report.front() if r["far_budget"] == budget]
    print(f"\noperating points within the {100 * budget:.0f}% FAR budget:")
    if not within:
        print("  (none — every feasible point is dominated or over budget)")
    for row in within:
        print(
            f"  floor={row['min_threshold']}, noise={row['noise_scale']}: "
            f"FAR={row['false_alarm_rate']}, margin={row.get('stealth_margin')}"
        )

    print("\nlatency ladder (mean detection latency per probe rung, feasible rows):")
    for column, summary in report.latency_ladder().items():
        print(f"  {column}: mean={summary['mean']:.2f} max={summary['max']:.2f}")

    try:
        report.plot_front(str(PLOT_PATH))
        print(f"\nfront plot saved to {PLOT_PATH}")
    except ImportError:
        print("\n(matplotlib not installed — skipping the front plot)")

    print(f"store at {STORE_PATH}; sensitivity via report.sensitivity(axis)")


if __name__ == "__main__":
    main()
