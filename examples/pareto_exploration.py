#!/usr/bin/env python3
"""Pareto exploration of the paper's VSC case study with adaptive sampling.

The paper's central trade-off: lowering the synthesized residue thresholds
shrinks a stealthy attacker's margin but raises the false-alarm rate.  This
example maps that trade-off surface for the §IV vehicle-stability-control
(VSC) loop:

1. declare the design space as an :class:`repro.ExploreConfig` — threshold
   floors × benign-noise scales, with an online detection-latency probe and
   a FAR budget — and round-trip it through JSON,
2. explore it with the ``adaptive-bisection`` sampler, which bisects only
   the metric-varying regions of each axis instead of the full grid,
3. print the (FAR, detection latency, stealth margin) Pareto front and the
   recommended operating points under the FAR budget.

Run with::

    python examples/pareto_exploration.py

A content-addressed store under ``examples/.explore-store`` makes repeated
runs (and sampler comparisons: grid vs adaptive share the store!) free.
"""

from __future__ import annotations

from pathlib import Path

from repro import ExploreConfig, SearchSpace, run_exploration

STORE_PATH = Path(__file__).resolve().parent / ".explore-store"


def main() -> None:
    config = ExploreConfig(
        space=SearchSpace(
            case_studies=("vsc",),
            synthesizers=("stepwise",),
            backends=("lp",),
            # The floor is the paper's FAR knob: un-floored stepwise synthesis
            # pins a 0.0 threshold at the horizon end (FAR = 100%); floors
            # spanning the benign-noise envelope trace the trade-off curve.
            min_thresholds=(0.5, 1.0, 1.5, 2.0, 3.0, 4.0),
            noise_scales=(0.5, 1.0),
            far_budgets=(0.1, 1.0),       # a 10% budget and "anything goes"
            far_count=100,
            probe_instances=32,
            probe_attack="bias",          # magnitude auto-scales per candidate
            max_rounds=150,
        ),
        sampler="adaptive-bisection",
        store_path=str(STORE_PATH),
        name="vsc-pareto",
    )
    assert ExploreConfig.from_json(config.to_json()) == config
    print(f"exploring {config.space.size} VSC points with {config.sampler!r} sampling")

    report = run_exploration(config)

    print(
        f"\nsampler visited {report.stats['units']} of {config.space.size} points "
        f"({report.stats['rounds']} rounds; {report.stats.get('store_hits', 0)} served "
        f"from the store, {report.stats['units_executed']} computed fresh)"
    )

    print("\nPareto front over (FAR, detection latency, stealth margin):")
    header = f"{'floor':>6s} {'noise':>6s} {'budget':>7s} {'FAR':>7s} {'margin':>8s} {'latency':>8s}"
    print(header)
    for row in report.front():
        far = row.get("false_alarm_rate")
        margin = row.get("stealth_margin")
        latency = row.get("mean_detection_latency")
        print(
            f"{row['min_threshold']:6.3f} {row['noise_scale']:6.2f} "
            f"{row['far_budget']:7.2f} "
            + (f"{100 * far:6.1f}% " if far is not None else f"{'n/a':>7s} ")
            + (f"{margin:8.4f} " if margin is not None else f"{'n/a':>8s} ")
            + (f"{latency:8.2f}" if latency is not None else f"{'n/a':>8s}")
        )

    budget = min(config.space.far_budgets)
    within = [r for r in report.front() if r["far_budget"] == budget]
    print(f"\noperating points within the {100 * budget:.0f}% FAR budget:")
    if not within:
        print("  (none — every feasible point is dominated or over budget)")
    for row in within:
        print(
            f"  floor={row['min_threshold']}, noise={row['noise_scale']}: "
            f"FAR={row['false_alarm_rate']}, margin={row.get('stealth_margin')}"
        )

    tightest = report.best("stealth_margin")
    if tightest is not None:
        print(
            f"\ntightest feasible detector: floor={tightest['min_threshold']} at "
            f"noise={tightest['noise_scale']} "
            f"(margin={tightest.get('stealth_margin')}, FAR={tightest['false_alarm_rate']})"
        )

    print(f"\nstore at {STORE_PATH}; sensitivity via report.sensitivity(axis)")


if __name__ == "__main__":
    main()
