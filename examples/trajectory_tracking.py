#!/usr/bin/env python3
"""The paper's Fig. 1 motivational example: trajectory tracking under attack.

Shows, with ASCII plots on the console,

* how a stealthy false-data injection on the position sensor keeps the
  vehicle away from its set point while the residue stays small (Fig. 1a),
* why a single static threshold must either flag harmless noise (too small)
  or miss the attack (too large), and how a variable threshold separates the
  two (Fig. 1b).

Run with::

    python examples/trajectory_tracking.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    PivotThresholdSynthesizer,
    StaticThresholdSynthesizer,
    build_trajectory_case_study,
    synthesize_attack,
)


def ascii_plot(series: dict[str, np.ndarray], width: int = 60, height: int = 12) -> str:
    """Render a handful of equally long series as a rough ASCII chart."""
    all_values = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    low, high = float(all_values.min()), float(all_values.max())
    if high - low < 1e-12:
        high = low + 1.0
    length = max(len(v) for v in series.values())
    grid = [[" "] * width for _ in range(height)]
    markers = "*+xo#"
    for index, (label, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for k, value in enumerate(values):
            col = int(round(k / max(length - 1, 1) * (width - 1)))
            row = int(round((value - low) / (high - low) * (height - 1)))
            grid[height - 1 - row][col] = marker
    lines = ["".join(row) for row in grid]
    legend = "   ".join(
        f"{markers[i % len(markers)]} {label}" for i, label in enumerate(series.keys())
    )
    return "\n".join(lines) + f"\n  ({legend}; y in [{low:.3g}, {high:.3g}])"


def main() -> None:
    case = build_trajectory_case_study()
    problem = case.problem
    target = case.extras["target_position"]
    print("Trajectory-tracking motivational example (paper Fig. 1)")
    print(f"  set point {target} m, acceptance band ±{case.extras['tolerance']} m, "
          f"horizon {problem.horizon} samples of {problem.dt} s")

    # ------------------------------------------------------------------
    # Fig. 1a — deviation under no noise, noise, and attack.
    # ------------------------------------------------------------------
    clean = problem.simulate()
    noisy = problem.simulate(with_noise=True, seed=4)
    attack_result = synthesize_attack(problem, threshold=None, backend="lp")
    attacked = attack_result.trace

    deviation = {
        "no noise": np.abs(clean.states[:-1, 0] - target),
        "noise": np.abs(noisy.states[:-1, 0] - target),
        "attack": np.abs(attacked.states[:-1, 0] - target),
    }
    print("\n[Fig. 1a] |position - set point| over time")
    print(ascii_plot(deviation))
    print(f"  final deviation: no-noise {deviation['no noise'][-1]:.3f} m, "
          f"noise {deviation['noise'][-1]:.3f} m, attack {deviation['attack'][-1]:.3f} m")

    # ------------------------------------------------------------------
    # Fig. 1b — residues against static and variable thresholds.
    # ------------------------------------------------------------------
    static = StaticThresholdSynthesizer(backend="lp").synthesize(problem)
    variable = PivotThresholdSynthesizer(backend="lp", min_threshold=0.01).synthesize(problem)

    small_th = static.threshold.values[0]          # provably safe static threshold ("th")
    big_th = 3.0 * float(np.nanmax(noisy.residue_norms("inf")))  # permissive threshold ("Th")
    residue_noise = noisy.residue_norms("inf")
    residue_attack = attacked.residue_norms("inf")

    print("\n[Fig. 1b] residues vs thresholds")
    print(ascii_plot(
        {
            "residue (noise)": residue_noise,
            "residue (attack)": residue_attack,
            "vth (variable)": np.where(
                np.isfinite(variable.threshold.values), variable.threshold.values, np.nan * 0 + big_th
            ),
        }
    ))
    print(f"  small static threshold th = {small_th:.4f}: flags "
          f"{int(np.sum(residue_noise >= small_th))}/{problem.horizon} noisy samples "
          "(false alarms) but would also catch the attack")
    print(f"  large static threshold Th = {big_th:.4f}: never flags noise, "
          f"misses the attack entirely "
          f"({int(np.sum(residue_attack >= big_th))} samples above it)")
    finite = variable.threshold.values[np.isfinite(variable.threshold.values)]
    print(f"  variable threshold vth: from {finite.max():.3f} down to {finite.min():.3f}, "
          f"flags {int(np.sum(residue_noise >= variable.threshold.effective(problem.horizon)))} "
          f"noisy samples while provably blocking every stealthy attack "
          f"(converged={variable.converged})")


if __name__ == "__main__":
    main()
