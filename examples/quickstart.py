#!/usr/bin/env python3
"""Quickstart: secure a small control loop end to end.

This example walks through the whole workflow of the library on the smallest
benchmark (a DC-motor speed loop whose encoder messages can be spoofed):

1. build the closed loop and the synthesis problem,
2. check whether the existing plausibility monitors can be bypassed
   (Algorithm 1 of the paper),
3. synthesize a variable-threshold residue detector that provably blocks
   every stealthy attack (Algorithm 3),
4. compare its false-alarm rate against the provably safe static threshold.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FalseAlarmEvaluator,
    StaticThresholdSynthesizer,
    StepwiseThresholdSynthesizer,
    available_backends,
    get_case_study,
    synthesize_attack,
)


def main() -> None:
    case = get_case_study("dcmotor")
    problem = case.problem
    print(f"case study      : {case.name}")
    print(f"solver backends : {', '.join(available_backends())}")
    print(f"plant           : {problem.system.plant!r}")
    print(f"analysis horizon: {problem.horizon} samples")

    # ------------------------------------------------------------------
    # Step 1 — is the loop attackable despite its existing monitors?
    # ------------------------------------------------------------------
    vulnerability = synthesize_attack(problem, threshold=None, backend="lp")
    print("\n[1] attack synthesis without a residue detector")
    print(f"    verdict : {vulnerability.status.value}")
    if vulnerability.found:
        trace = vulnerability.trace
        print(f"    the attack keeps every monitor quiet and drives the final speed to "
              f"{trace.final_state()[0]:.3f} rad/s (target band "
              f"{problem.pfc.x_des[0] - problem.pfc.epsilon[0]:.2f}"
              f"..{problem.pfc.x_des[0] + problem.pfc.epsilon[0]:.2f})")
        print(f"    peak injected false data: {vulnerability.attack.peak():.3f} rad/s")

    # ------------------------------------------------------------------
    # Step 2 — synthesize a variable-threshold detector (Algorithm 3).
    # ------------------------------------------------------------------
    stepwise = StepwiseThresholdSynthesizer(backend="lp", min_threshold=0.02)
    variable = stepwise.synthesize(problem)
    print("\n[2] step-wise variable-threshold synthesis (Algorithm 3)")
    print(f"    rounds    : {variable.rounds}")
    print(f"    converged : {variable.converged} (no stealthy attack remains)")
    print(f"    thresholds: {np.round(variable.threshold.values, 4)}")

    # ------------------------------------------------------------------
    # Step 3 — the provably safe static baseline.
    # ------------------------------------------------------------------
    static = StaticThresholdSynthesizer(backend="lp").synthesize(problem)
    print("\n[3] provably safe static threshold (baseline)")
    print(f"    value     : {static.threshold.values[0]:.4f}")

    # ------------------------------------------------------------------
    # Step 4 — false-alarm comparison over benign noise traces.
    # ------------------------------------------------------------------
    evaluator = FalseAlarmEvaluator(
        problem,
        count=500,
        seed=0,
        initial_state_spread=np.array([0.05, 0.0]),
    )
    study = evaluator.evaluate({"variable": variable.threshold, "static": static.threshold})
    print("\n[4] false alarm rate over benign (noise-only) traces")
    print(f"    population kept after pfc/mdc filters: {study.kept}/{study.generated}")
    for label, rate in study.rates.items():
        print(f"    {label:9s}: {100 * rate:5.1f} %")
    print("\nDone: the variable-threshold detector blocks every stealthy attack "
          "while raising fewer false alarms than the static baseline.")


if __name__ == "__main__":
    main()
