#!/usr/bin/env python3
"""Always-on serving: a live monitor fleet with churn, hot-swap and replay.

``run_fleet`` answers "what happens over T steps"; the serving layer keeps
the same batched detectors running *indefinitely* against streams it does
not control.  This example walks the operational story on the DC-motor
case study:

* start a :class:`~repro.serve.service.MonitorService` from a declarative
  :class:`~repro.ServiceConfig` (static threshold + CUSUM + the plant's
  own monitors), logging every event to a replayable JSONL file,
* attach a small fleet and stream noisy measurements through the
  per-instance ring buffers — detection advances in lockstep rounds,
* inject a sensor bias into one instance mid-stream and watch it alarm,
* attach a late-joining instance and detach another while the service
  runs (nobody else's detector state moves),
* hot-swap a tighter CUSUM into the live bank without resetting any
  accumulator,
* close the service and :func:`~repro.serve.replay.replay` the log,
  verifying the alarm stream reproduces bit-identically.

Run with::

    python examples/always_on_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    FalseAlarmEvaluator,
    ServiceConfig,
    get_case_study,
    replay,
    run_service,
)
from repro.detectors.cusum import CusumDetector
from repro.lti.simulate import SimulationOptions, simulate_closed_loop
from repro.runtime.events import InMemorySink


def main() -> None:
    case = get_case_study("dcmotor")
    m = case.problem.system.plant.n_outputs
    log_path = Path(tempfile.gettempdir()) / "dcmotor_service.jsonl"
    log_path.unlink(missing_ok=True)

    config = ServiceConfig(
        case_study="dcmotor",
        static_thresholds={"static": 0.5},
        detectors={"cusum": {"name": "cusum",
                             "options": {"bias": 0.05, "threshold": 0.6}}},
        include_mdc=True,
        # The service computes residues itself by running a batched replica
        # of the loop's observer over the ingested measurements.
        residue_source="observer",
        ring_capacity=32,
        log_path=str(log_path),
        # Back-pressure: alarms queue up to 256 deep before the sink is
        # flushed synchronously (policy "block" never loses an alarm).
        sink_capacity=256,
        sink_policy="block",
    )
    alarms = InMemorySink()
    service = run_service(config, sinks=[alarms])

    print("Always-on service on the DC-motor loop")
    print(f"  detectors : {', '.join(service.detectors)}")
    print(f"  event log : {log_path}")

    # Each attached instance is a real DC-motor loop: simulate it under the
    # benign noise envelope and stream its *measured outputs* — exactly what
    # an edge device would push.  The service's batched observer replica
    # then reproduces each loop's residues bit-identically.
    noise_model = FalseAlarmEvaluator.default_noise_model(case.problem)

    def boot_instance(seed: int):
        rng = np.random.default_rng(seed)
        trace = simulate_closed_loop(
            case.problem.system,
            SimulationOptions(horizon=60, x0=case.problem.x0),
            measurement_noise=noise_model.sample(60, rng),
        )
        return iter(trace.measurements)

    streams: dict[int, object] = {}
    members = []
    for seed in range(4):
        instance = service.attach()
        streams[instance] = boot_instance(seed)
        members.append(instance)

    print(f"\nAttached instances {members}; streaming benign measurements ...")
    for _ in range(20):
        for instance in members:
            service.ingest(instance, next(streams[instance]))

    victim = members[0]
    print(f"Forging the sensor channel of instance {victim} ...")
    for step in range(20):
        for instance in members:
            sample = np.asarray(next(streams[instance]), dtype=float)
            if instance == victim:
                sample += 0.9  # false-data injection on the wire
            service.ingest(instance, sample)
        if step == 5:
            # Membership churn mid-attack: a late joiner arrives, an early
            # member leaves.  Everyone else's CUSUM accumulators, threshold
            # positions and alarm state are untouched.
            late = service.attach()
            streams[late] = boot_instance(99)  # its plant boots now
            service.detach(members[-1])
            members = [i for i in members[:-1]] + [late]
            print(f"  step {step}: attached {late}, detached one member "
                  f"-> members now {service.members}")
        if step == 10:
            # Re-synthesis finished elsewhere: push a tighter CUSUM into
            # the running bank.  Validation is atomic and accumulators
            # survive, so detection continues from where it was.
            service.swap_thresholds(
                {"cusum": CusumDetector(bias=0.02, threshold=0.3)}
            )
            print(f"  step {step}: hot-swapped a tighter CUSUM "
                  f"(swaps applied: {service.swaps_applied})")

    stats = service.stats()
    print("\nService counters:")
    for key in ("samples_ingested", "samples_dropped", "rounds_processed",
                "alarms_emitted", "swaps_applied"):
        print(f"  {key:18s}: {stats[key]}")

    # close() flushes the back-pressure buffer into the inner sink and
    # closes the event log; only then is the in-memory sink complete.
    service.close()

    first_alarms = [event for event in alarms.events if event.first]
    print(f"\n{len(alarms.events)} alarm events ({len(first_alarms)} first alarms):")
    for event in first_alarms[:6]:
        print(f"  {event.detector!r} first alarmed on instance "
              f"{event.instance} at its step {event.step}")

    # The JSONL log is self-contained (the config rides in its start
    # event): rebuild the service from scratch and re-drive every recorded
    # ingest, churn, swap and drain.  The alarm stream must match exactly.
    result = replay(log_path)
    print(f"\nReplayed {result.events_processed} events from {log_path.name}: "
          f"alarms bit-identical = {result.matches}")
    assert result.matches


if __name__ == "__main__":
    main()
