#!/usr/bin/env python3
"""Attack catalogue: how classical FDI attack templates fare against detectors.

The paper's solver synthesizes worst-case attacks; this example complements it
by running the classical parametric adversaries from the literature (bias,
ramp, surge, geometric) against three detectors — the synthesized variable
threshold, a chi-square detector and a CUSUM detector — on the adaptive
cruise-control benchmark, reporting which attacks are detected, how fast, and
how much damage they cause.

Run with::

    python examples/attack_catalog.py
"""

from __future__ import annotations

from repro import (
    ChiSquareDetector,
    CusumDetector,
    ResidueDetector,
    StepwiseThresholdSynthesizer,
    build_cruise_case_study,
)
from repro.attacks import AttackInjector, BiasAttack, GeometricAttack, RampAttack, SurgeAttack
from repro.estimation.innovation import innovation_covariance
from repro.estimation.kalman import steady_state_kalman
from repro.lti.simulate import SimulationOptions


def main() -> None:
    case = build_cruise_case_study()
    problem = case.problem
    print(f"benchmark: {case.name} — {case.description}\n")

    # Detectors -----------------------------------------------------------
    variable = StepwiseThresholdSynthesizer(backend="lp", min_threshold=0.02).synthesize(problem)
    variable_detector = ResidueDetector(variable.threshold)

    _, covariance = steady_state_kalman(problem.system.plant)
    innovation_cov = innovation_covariance(problem.system.plant, covariance)
    chi_square = ChiSquareDetector.from_false_alarm_probability(innovation_cov, 0.01)
    cusum = CusumDetector(bias=0.3, threshold=3.0)

    detectors = {
        "variable threshold": variable_detector,
        "chi-square": chi_square,
        "cusum": cusum,
    }

    # Attacks ---------------------------------------------------------------
    attacks = {
        "bias +1.5 m from k=10": BiasAttack(bias=1.5, start=10),
        "ramp 0.08 m/sample": RampAttack(slope=0.08, start=5),
        "surge 3 m then 0.3 m": SurgeAttack(surge_value=3.0, settle_value=0.3, surge_length=2),
        "geometric 0.05 * 1.12^k": GeometricAttack(initial=0.05, ratio=1.12),
    }

    injector = AttackInjector(problem.system)
    options = SimulationOptions(horizon=problem.horizon, with_noise=True, seed=2, x0=problem.x0)

    header = f"{'attack':28s} {'gap error @T':>13s} {'pfc ok':>7s} " + "".join(
        f"{name:>20s}" for name in detectors
    )
    print(header)
    print("-" * len(header))

    baseline, _ = injector.compare(None, options)
    print(f"{'(no attack)':28s} {baseline.final_state()[0]:13.3f} "
          f"{str(problem.pfc_satisfied(baseline)):>7s}" + " " * 20 * len(detectors))

    for label, template in attacks.items():
        trace = injector.run(template, options)
        row = f"{label:28s} {trace.final_state()[0]:13.3f} "
        row += f"{str(problem.pfc_satisfied(trace)):>7s}"
        for detector in detectors.values():
            result = detector.evaluate(trace.residues)
            verdict = f"alarm@{result.first_alarm}" if result.detected else "missed"
            row += f"{verdict:>20s}"
        print(row)

    print("\nReading: every template that breaks the performance criterion is caught "
          "by the synthesized variable threshold; the classical detectors catch the "
          "aggressive attacks but can miss the slow geometric one.")


if __name__ == "__main__":
    main()
