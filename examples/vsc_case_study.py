#!/usr/bin/env python3
"""The paper's §IV case study: Vehicle Stability Controller (VSC).

Reproduces, on the console, the storyline of the paper's evaluation:

* the ECU's existing range / gradient / relation monitors (with their 300 ms
  dead zone) can be bypassed by a formally synthesized false-data-injection
  attack on the yaw-rate and lateral-acceleration CAN messages (Fig. 2),
* Algorithm 2 (pivot-based) and Algorithm 3 (step-wise) both synthesize
  monotonically decreasing threshold vectors that provably block every
  stealthy attack (Fig. 3), with Algorithm 3 converging in fewer rounds,
* the synthesized variable thresholds raise fewer false alarms than the
  provably safe static threshold (the FAR study).

Run with::

    python examples/vsc_case_study.py [--quick]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    FalseAlarmEvaluator,
    PivotThresholdSynthesizer,
    StaticThresholdSynthesizer,
    StepwiseThresholdSynthesizer,
    build_vsc_case_study,
    synthesize_attack,
)
from repro.core.far import FalseAlarmEvaluator as _FarEvaluator


def describe_threshold(label: str, values: np.ndarray) -> None:
    finite = values[np.isfinite(values)]
    print(f"    {label:9s}: first={values[0] if np.isfinite(values[0]) else float('inf'):8.3f}  "
          f"min={finite.min():6.3f}  last={values[-1]:6.3f}  "
          f"set at {finite.size}/{values.size} instants")


def main(quick: bool = False) -> None:
    case = build_vsc_case_study()
    problem = case.problem
    params = case.extras["params"]
    reproduction = case.extras["reproduction"]
    print("Vehicle Stability Controller case study (paper §IV)")
    print(f"  sampling period : {params.sampling_period * 1e3:.0f} ms, horizon T = {problem.horizon}")
    print(f"  pfc             : yaw rate >= {params.pfc_fraction:.0%} of "
          f"{params.desired_yaw_rate} rad/s within {problem.horizon} samples")
    print(f"  monitors (mdc)  : {len(problem.mdc)} checks, dead zone "
          f"{params.dead_zone_samples} samples")

    # ------------------------------------------------------------------
    # Fig. 2 — the existing monitoring system can be bypassed.
    # ------------------------------------------------------------------
    print("\n[Fig. 2] attack synthesis against the existing monitors only")
    attack_result = synthesize_attack(problem, threshold=None, backend="lp")
    print(f"  verdict: {attack_result.status.value}")
    if attack_result.found:
        trace = attack_result.trace
        yaw_final = trace.states[problem.horizon, 1]
        print(f"  yaw rate after {problem.horizon} samples under attack: {yaw_final:.4f} rad/s "
              f"(required >= {params.pfc_fraction * params.desired_yaw_rate:.4f})")
        reports = problem.mdc.member_reports(trace.measurements, problem.dt)
        for report in reports:
            print(f"    monitor {report.name:28s}: violations={report.violation_count:2d} "
                  f"alarm={report.any_alarm}")

    # ------------------------------------------------------------------
    # Fig. 3 — variable-threshold synthesis with Algorithms 2 and 3.
    # ------------------------------------------------------------------
    floor = reproduction["min_threshold"]
    max_rounds = 120 if quick else 500
    print("\n[Fig. 3] variable-threshold synthesis (thresholds in sigma units of the "
          "noise-normalised residue)")
    pivot = PivotThresholdSynthesizer(
        backend="lp", min_threshold=floor, max_rounds=max_rounds
    ).synthesize(problem)
    stepwise = StepwiseThresholdSynthesizer(
        backend="lp", min_threshold=floor, max_rounds=max_rounds
    ).synthesize(problem)
    print(f"  Algorithm 2 (pivot)    : rounds={pivot.rounds:4d} converged={pivot.converged}")
    print(f"  Algorithm 3 (step-wise): rounds={stepwise.rounds:4d} converged={stepwise.converged}")
    describe_threshold("pivot", pivot.threshold.values)
    describe_threshold("stepwise", stepwise.threshold.values)

    static = StaticThresholdSynthesizer(backend="lp").synthesize(problem)
    print(f"  static baseline        : rounds={static.rounds:4d} "
          f"value={static.threshold.values[0]:.3f}")

    # ------------------------------------------------------------------
    # FAR study.
    # ------------------------------------------------------------------
    count = 200 if quick else reproduction["far_count"]
    print(f"\n[FAR study] {count} random bounded measurement-noise traces")
    evaluator = FalseAlarmEvaluator(
        problem,
        noise_model=_FarEvaluator.default_noise_model(problem, scale=reproduction["far_noise_scale"]),
        count=count,
        seed=0,
        initial_state_spread=reproduction["far_initial_state_spread"],
    )
    study = evaluator.evaluate(
        {
            "Algorithm 2": pivot.threshold,
            "Algorithm 3": stepwise.threshold,
            "static": static.threshold,
        }
    )
    print(f"  kept after pfc/mdc filters: {study.kept}/{study.generated}")
    for label, rate in study.rates.items():
        print(f"  FAR {label:12s}: {100 * rate:5.1f} %")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller budgets for a fast demo")
    main(parser.parse_args().quick)
