"""Unified, replayable service event log (one ordered JSONL stream).

A running :class:`~repro.serve.service.MonitorService` appends every externally
visible action to one :class:`ServiceLog`: measurements entering the ring
buffers, fleet rounds being drained, alarms firing, instances attaching and
detaching, thresholds hot-swapping.  Because the stream is *totally ordered*
(one monotone ``seq`` per event) and records exactly the inputs the service
acted on, :func:`~repro.serve.replay.replay` can re-run a recorded log and
reproduce the original alarm sequence bit for bit — including the timing of
drains relative to membership changes, which ``"round"`` events pin down.

The on-disk form is JSON Lines, one :class:`ServiceEvent` per line, with the
same crash-recovery contract as :meth:`repro.runtime.events.JSONLSink.read`:
a truncated trailing line is dropped, interior corruption raises.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.runtime.events import _stripped_lines
from repro.utils.validation import ValidationError

#: The event kinds a service emits, in the roles replay relies on.
EVENT_KINDS = (
    "start",  # service construction: configuration snapshot
    "attach",  # instance joined the fleet
    "detach",  # instance left (pending samples discarded)
    "swap",  # threshold hot-swap on one detector label
    "measurement",  # one sample entered an instance's ring buffer
    "round",  # one lockstep fleet round was drained
    "alarm",  # one detector alarm on one instance
)


@dataclass(frozen=True)
class ServiceEvent:
    """One entry of the service's ordered event stream.

    Attributes
    ----------
    seq:
        Monotone position in the stream (0-based).
    kind:
        One of :data:`EVENT_KINDS`.
    instance:
        Instance id the event concerns (``None`` for fleet-wide events).
    step:
        The instance's local sample index, where meaningful (alarms).
    data:
        Kind-specific payload (JSON-compatible).
    """

    seq: int
    kind: str
    instance: int | None = None
    step: int | None = None
    data: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValidationError(
                f"unknown service event kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )

    def to_dict(self) -> dict:
        """Plain-data representation (JSON-compatible)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "instance": self.instance,
            "step": self.step,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceEvent":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            seq=int(data["seq"]),
            kind=str(data["kind"]),
            instance=None if data.get("instance") is None else int(data["instance"]),
            step=None if data.get("step") is None else int(data["step"]),
            data=dict(data.get("data", {})),
        )


class ServiceLog:
    """Ordered event stream of one service run, kept in memory and/or on disk.

    Parameters
    ----------
    path:
        Optional JSONL file the stream is appended to (created on first
        event).  ``None`` keeps the log in memory only — still replayable
        within the process.
    flush_every:
        Flush the OS buffer every this-many appended events (default 1, so a
        killed service leaves at most one partial line).  ``0`` defers
        flushing to :meth:`close`.
    """

    def __init__(self, path: str | Path | None = None, flush_every: int = 1):
        self.path = None if path is None else Path(path)
        self.flush_every = int(flush_every)
        if self.flush_every < 0:
            raise ValidationError("flush_every must be non-negative")
        self.events: list[ServiceEvent] = []
        self._handle = None
        self._since_flush = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ServiceEvent]:
        return iter(self.events)

    def append(
        self,
        kind: str,
        *,
        instance: int | None = None,
        step: int | None = None,
        data: dict | None = None,
    ) -> ServiceEvent:
        """Record one event; assigns the next sequence number and returns it."""
        event = ServiceEvent(
            seq=len(self.events),
            kind=kind,
            instance=instance,
            step=step,
            data={} if data is None else dict(data),
        )
        self.events.append(event)
        if self.path is not None:
            if self._handle is None:
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(json.dumps(event.to_dict()) + "\n")
            self._since_flush += 1
            if self.flush_every and self._since_flush >= self.flush_every:
                self._handle.flush()
                self._since_flush = 0
        return event

    def close(self) -> None:
        """Flush and close the backing file (the in-memory stream stays)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ServiceLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def read(path: str | Path) -> list[ServiceEvent]:
        """Load a recorded JSONL event stream back into :class:`ServiceEvent` objects.

        A corrupt *trailing* line — the signature of a service killed
        mid-append — is dropped silently; corrupt interior lines raise.
        """
        events = []
        for position, line in enumerate(lines := _stripped_lines(path)):
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                if position == len(lines) - 1:
                    break
                raise
            events.append(ServiceEvent.from_dict(data))
        return events


__all__ = ["EVENT_KINDS", "ServiceEvent", "ServiceLog"]
