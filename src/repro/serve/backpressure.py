"""Back-pressure-aware buffering in front of slow event sinks.

An always-on service cannot let a slow alarm consumer (a network forwarder, a
congested disk) stall the detector step.  :class:`BufferedSink` decouples the
two: the service's ``emit`` lands in a bounded in-memory queue, and the queue
drains into the wrapped :class:`~repro.runtime.events.EventSink` in batches.
When the queue is full, the configured policy decides who pays:

``"block"``
    The producer pays: the queue is flushed *synchronously* into the wrapped
    sink to make room.  No event is ever lost, and because the flush happens
    on the caller's thread there is no waiting on another thread — the policy
    cannot deadlock by construction.
``"drop-oldest"``
    Latency pays: the oldest queued events are discarded to admit the new
    ones (the consumer sees the freshest alarms).
``"drop-newest"``
    The new arrivals pay: incoming events that do not fit are discarded.

Every dropped event is counted in :attr:`BufferedSink.dropped`, so a
deployment can audit exactly how much back-pressure cost it.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.runtime.events import AlarmEvent, EventSink
from repro.utils.validation import ValidationError, check_positive

#: Queue-overflow policies accepted by :class:`BufferedSink`.
POLICIES = ("block", "drop-oldest", "drop-newest")


class BufferedSink(EventSink):
    """A bounded queue in front of another :class:`EventSink`.

    Parameters
    ----------
    inner:
        The sink the queue drains into.
    capacity:
        Maximum number of queued events.
    policy:
        Overflow policy, one of :data:`POLICIES`.

    Attributes
    ----------
    emitted:
        Events received from the producer.
    forwarded:
        Events actually delivered to the wrapped sink.
    dropped:
        Events discarded by the overflow policy.
    flushes:
        Number of (non-empty) drains into the wrapped sink.
    """

    def __init__(self, inner: EventSink, capacity: int = 1024, policy: str = "block"):
        self.inner = inner
        self.capacity = int(check_positive("capacity", capacity))
        if policy not in POLICIES:
            raise ValidationError(
                f"unknown back-pressure policy {policy!r}; expected one of {POLICIES}"
            )
        self.policy = policy
        self._queue: deque[AlarmEvent] = deque()
        self.emitted = 0
        self.forwarded = 0
        self.dropped = 0
        self.flushes = 0

    def __len__(self) -> int:
        return len(self._queue)

    def emit(self, events: Sequence[AlarmEvent]) -> None:
        """Queue one event batch, applying the overflow policy when full."""
        events = list(events)
        self.emitted += len(events)
        for event in events:
            if len(self._queue) >= self.capacity:
                if self.policy == "block":
                    self.flush()
                elif self.policy == "drop-oldest":
                    self._queue.popleft()
                    self.dropped += 1
                else:  # drop-newest
                    self.dropped += 1
                    continue
            self._queue.append(event)

    def flush(self) -> int:
        """Drain every queued event into the wrapped sink; returns how many."""
        if not self._queue:
            return 0
        batch = list(self._queue)
        self._queue.clear()
        self.inner.emit(batch)
        self.forwarded += len(batch)
        self.flushes += 1
        return len(batch)

    def close(self) -> None:
        """Flush the queue, then close the wrapped sink."""
        self.flush()
        self.inner.close()


__all__ = ["POLICIES", "BufferedSink"]
