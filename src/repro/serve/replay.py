"""Deterministic re-execution of a recorded service event log.

:func:`replay` drives a fresh :class:`~repro.serve.service.MonitorService`
through a recorded :class:`~repro.serve.log.ServiceLog` stream: attaches and
detaches fire in their original order, measurements re-enter the ring
buffers, threshold swaps are rebuilt from their logged payloads, and — the
part that makes replay exact rather than approximate — each recorded
``"round"`` event forces exactly one lockstep drain, so the batch
composition of every detector step matches the original run even around
membership changes.  The float64 pipeline is deterministic given identical
inputs and batch shapes, so the replayed alarm sequence is bit-identical to
the recorded one; :attr:`ReplayResult.matches` checks exactly that.

Typical uses: auditing a production alarm ("show me this alarm firing from
the raw samples"), regression-testing detector changes against recorded
traffic, and the round-trip test suite in ``tests/test_serve_log_replay.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.detectors.chi_square import ChiSquareDetector
from repro.detectors.cusum import CusumDetector
from repro.detectors.threshold import ThresholdVector
from repro.runtime.events import AlarmEvent, EventSink, InMemorySink
from repro.serve.log import ServiceEvent, ServiceLog
from repro.serve.service import MonitorService
from repro.utils.validation import ValidationError


def _swap_object(payload: dict):
    """Rebuild the swap parameter object a logged ``"swap"`` payload describes."""
    kind = payload.get("detector_kind")
    if payload.get("replayable") is False:
        raise ValidationError(
            f"swap event on {payload.get('label')!r} ({kind}) is not replayable: "
            "monitor swaps have no plain-data form; replay up to the swap or "
            "re-run with threshold/CUSUM/chi-square swaps only"
        )
    if kind == "threshold":
        weights = payload.get("weights")
        return ThresholdVector(
            np.asarray(payload["values"], dtype=float),
            norm=payload["norm"],
            weights=None if weights is None else np.asarray(weights, dtype=float),
        )
    if kind == "cusum":
        return CusumDetector(
            bias=payload["bias"], threshold=payload["threshold"], norm=payload["norm"]
        )
    if kind == "chi-square":
        return ChiSquareDetector(
            innovation_cov=np.asarray(payload["innovation_cov"], dtype=float),
            threshold=payload["threshold"],
        )
    raise ValidationError(f"unknown swap payload kind {kind!r}")


@dataclass
class ReplayResult:
    """Outcome of one :func:`replay` run.

    Attributes
    ----------
    recorded:
        The alarm sequence the original run logged, in stream order.
    replayed:
        The alarm sequence the re-execution produced, in stream order.
    service:
        The replayed service (final state inspectable; still attached).
    events_processed:
        How many log events were consumed.
    """

    recorded: list[AlarmEvent] = field(default_factory=list)
    replayed: list[AlarmEvent] = field(default_factory=list)
    service: MonitorService | None = None
    events_processed: int = 0

    @property
    def matches(self) -> bool:
        """True when the replayed alarm sequence equals the recorded one exactly."""
        return self.recorded == self.replayed


def _load_events(source) -> list[ServiceEvent]:
    if isinstance(source, ServiceLog):
        return list(source.events)
    if isinstance(source, (str, Path)):
        return ServiceLog.read(source)
    events = list(source)
    for event in events:
        if not isinstance(event, ServiceEvent):
            raise ValidationError(
                "replay sources must be a ServiceLog, a log file path, or "
                f"ServiceEvent iterables; found a {type(event).__name__}"
            )
    return events


def _rebuild_service(
    events: Sequence[ServiceEvent],
    problem,
    sinks: Sequence[EventSink],
    detectors,
) -> MonitorService:
    """Reconstruct the original service from the log's ``"start"`` snapshot."""
    start = next((event for event in events if event.kind == "start"), None)
    config_data = None if start is None else start.data.get("metadata", {}).get("config")
    if config_data is None:
        raise ValidationError(
            "the log carries no service config to rebuild from (it was not "
            "recorded through run_service); pass the service to replay on "
            "explicitly"
        )
    from repro.api.config import ServiceConfig
    from repro.serve.engine import run_service

    config_data = dict(config_data)
    # Replay controls drain timing itself and must not re-log to disk.
    config_data["auto_drain"] = False
    config_data["log_path"] = None
    config = ServiceConfig.from_dict(config_data)
    return run_service(config, problem=problem, sinks=sinks, detectors=detectors)


def replay(
    source,
    *,
    service: MonitorService | None = None,
    problem=None,
    sinks: Sequence[EventSink] = (),
    detectors=None,
) -> ReplayResult:
    """Re-run a recorded service log and compare alarm sequences.

    Parameters
    ----------
    source:
        A :class:`~repro.serve.log.ServiceLog`, a path to its JSONL file, or
        an iterable of :class:`~repro.serve.log.ServiceEvent` objects.
    service:
        The service to drive.  ``None`` rebuilds one from the config snapshot
        in the log's ``"start"`` event (recorded by
        :func:`~repro.serve.engine.run_service`); a passed service must be
        freshly constructed with the same detector bank and is switched to
        manual draining.
    problem / sinks / detectors:
        Forwarded to :func:`~repro.serve.engine.run_service` when the service
        is rebuilt from the log.

    Returns
    -------
    ReplayResult
        Recorded vs replayed alarm sequences (``result.matches`` is the
        determinism check) plus the replayed service.
    """
    events = _load_events(source)
    if service is None:
        service = _rebuild_service(events, problem, sinks, detectors)
    else:
        service.auto_drain = False

    capture = InMemorySink()
    service.sinks.append(capture)
    recorded: list[AlarmEvent] = []
    processed = 0
    for event in events:
        processed += 1
        if event.kind == "start":
            continue
        if event.kind == "attach":
            xhat0 = event.data.get("xhat0")
            service.attach(
                event.instance,
                xhat0=None if xhat0 is None else np.asarray(xhat0, dtype=float),
            )
        elif event.kind == "detach":
            service.detach(event.instance)
        elif event.kind == "swap":
            payload = dict(event.data)
            label = payload.pop("label")
            service.swap_thresholds({label: _swap_object({**payload, "label": label})})
        elif event.kind == "measurement":
            residue = event.data.get("residue")
            service.ingest(
                event.instance,
                np.asarray(event.data["measurement"], dtype=float),
                residue=None if residue is None else np.asarray(residue, dtype=float),
            )
        elif event.kind == "round":
            members = event.data.get("members")
            if members is not None and list(service.members) != [int(i) for i in members]:
                raise ValidationError(
                    f"membership diverged at event {event.seq}: the log drained "
                    f"{members}, the replayed service holds {list(service.members)}"
                )
            service.drain(max_rounds=1)
        elif event.kind == "alarm":
            recorded.append(
                AlarmEvent(
                    instance=int(event.instance),
                    step=int(event.step),
                    detector=str(event.data["detector"]),
                    first=bool(event.data.get("first", False)),
                )
            )
    service.sinks.remove(capture)
    return ReplayResult(
        recorded=recorded,
        replayed=list(capture.events),
        service=service,
        events_processed=processed,
    )


__all__ = ["ReplayResult", "replay"]
