"""Batched observer: turn ingested measurements into detector residues.

A deployed monitoring service receives raw sensor measurements from real
plant instances — it does not simulate the plant.  The residue detectors,
however, consume Kalman innovations.  :class:`BatchObserver` closes that gap
by running the estimator half of the closed loop for every attached
instance, with exactly the update order (and therefore exactly the floats)
of the fleet simulator's :class:`~repro.runtime.fleet._BatchStepper`::

    z_k    = y_k - (C xhat_k + D u_k)
    xhat'  = A xhat_k + B u_k + L z_k
    u'     = -K xhat' + N r

so a service fed a fleet run's recorded measurement stream reproduces that
run's residues bit-for-bit (locked in by ``tests/test_serve_service.py``).

All state is ``(N, ...)`` and supports the same :meth:`grow` /
:meth:`compact` membership hooks as the detector cores, so instances can
attach and detach while the service runs.
"""

from __future__ import annotations

import numpy as np

from repro.lti.simulate import ClosedLoopSystem
from repro.utils.validation import ValidationError


class BatchObserver:
    """Estimator state (``xhat``, ``u``) for ``N`` monitored instances.

    Parameters
    ----------
    system:
        The closed loop whose observer/controller design to replicate.
    xhat0:
        Default initial state estimate for newly attached instances
        (``(n,)``); zero when omitted, matching the fleet simulator.
    """

    def __init__(self, system: ClosedLoopSystem, xhat0: np.ndarray | None = None):
        plant = system.plant
        self.system = system
        self._A_T = plant.A.T.copy()
        self._B_T = plant.B.T.copy()
        self._C_T = plant.C.T.copy()
        self._D_T = plant.D.T.copy()
        self._L_T = system.L.T.copy()
        self._K_T = system.K.T.copy()
        self._feedforward = system.feedforward @ system.reference
        if xhat0 is None:
            xhat0 = np.zeros(plant.n_states)
        self._xhat0 = np.asarray(xhat0, dtype=float).reshape(-1)
        if self._xhat0.size != plant.n_states:
            raise ValidationError(
                f"xhat0 must have length {plant.n_states}, got {self._xhat0.size}"
            )
        self.Xhat = np.zeros((0, plant.n_states))
        self.U = np.zeros((0, plant.n_inputs))

    @property
    def n_instances(self) -> int:
        """Number of instance rows currently tracked."""
        return self.Xhat.shape[0]

    def step(self, measurements: np.ndarray) -> np.ndarray:
        """Consume one ``(N, m)`` measurement block, return the ``(N, m)`` residues.

        Advances every instance's estimator and control input to the next
        sample, mirroring the fleet stepper's expressions term for term.
        """
        measurements = np.atleast_2d(np.asarray(measurements, dtype=float))
        if measurements.shape[0] != self.n_instances:
            raise ValidationError(
                f"expected a block of {self.n_instances} instances, "
                f"got {measurements.shape[0]}"
            )
        output_feed = self.U @ self._D_T
        residues = measurements - (self.Xhat @ self._C_T + output_feed)
        input_feed = self.U @ self._B_T
        self.Xhat = self.Xhat @ self._A_T + input_feed + residues @ self._L_T
        self.U = -(self.Xhat @ self._K_T) + self._feedforward
        return residues

    def grow(self, count: int = 1, xhat0: np.ndarray | None = None) -> None:
        """Append ``count`` fresh instances starting from ``xhat0`` (or the default)."""
        count = int(count)
        if count <= 0:
            raise ValidationError("grow requires a positive instance count")
        start = self._xhat0 if xhat0 is None else np.asarray(xhat0, dtype=float).reshape(-1)
        if start.size != self.Xhat.shape[1]:
            raise ValidationError(
                f"xhat0 must have length {self.Xhat.shape[1]}, got {start.size}"
            )
        self.Xhat = np.vstack([self.Xhat, np.tile(start, (count, 1))])
        self.U = np.vstack([self.U, np.zeros((count, self.U.shape[1]))])

    def compact(self, keep: np.ndarray) -> None:
        """Keep only the given instance rows (strictly increasing indices)."""
        keep = np.asarray(keep, dtype=int).reshape(-1)
        if keep.size:
            if keep.min() < 0 or keep.max() >= self.n_instances:
                raise ValidationError(
                    f"compact indices out of range [0, {self.n_instances})"
                )
            if np.any(np.diff(keep) <= 0):
                raise ValidationError("compact indices must be strictly increasing")
        self.Xhat = self.Xhat[keep]
        self.U = self.U[keep]


__all__ = ["BatchObserver"]
