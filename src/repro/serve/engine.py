"""Config-driven service construction: from a ServiceConfig to a running service.

:func:`run_service` is to :class:`~repro.serve.service.MonitorService` what
:func:`~repro.runtime.engine.run_fleet` is to the fleet simulator: it
resolves the configured case study, assembles the detector bank through the
shared :func:`~repro.runtime.engine.build_detector_bank` (synthesis
algorithms, static thresholds, registry-named baselines, the plant's
``mdc``), wires the back-pressure and logging layers, and hands back the
*running* (empty) service — unlike ``run_fleet`` it does not simulate
anything, because the measurements come from the caller's streams.

The originating config rides along in the service log's ``"start"`` event,
which is what lets :func:`~repro.serve.replay.replay` rebuild an identical
service from a recorded log with no other context.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.runtime.engine import _resolve_problem, build_detector_bank
from repro.runtime.events import EventSink
from repro.serve.backpressure import BufferedSink
from repro.serve.log import ServiceLog
from repro.serve.service import MonitorService


def run_service(
    config,
    problem=None,
    *,
    sinks: Sequence[EventSink] = (),
    detectors: Mapping[str, object] | None = None,
    metrics=None,
    scraper=None,
) -> MonitorService:
    """Build a :class:`~repro.serve.service.MonitorService` from a config.

    Parameters
    ----------
    config:
        A :class:`~repro.api.config.ServiceConfig` describing the detector
        bank, residue source, ring buffers, back-pressure and logging.
    problem:
        The :class:`~repro.core.problem.SynthesisProblem` (or packaged case
        study) to serve; ``None`` builds it from ``config.case_study``.
    sinks:
        Alarm sinks; each is wrapped in a
        :class:`~repro.serve.backpressure.BufferedSink` when
        ``config.sink_capacity`` is set.
    detectors:
        Extra label → detector entries merged into the configured bank.
    metrics / scraper:
        Passed through to :class:`~repro.serve.service.MonitorService` —
        a shared :class:`~repro.obs.metrics.MetricsRegistry` and an optional
        :class:`~repro.obs.export.PeriodicScraper` exposition hook.  These
        are live objects, which is why they ride here rather than on the
        JSON-serializable :class:`~repro.api.config.ServiceConfig`.

    Returns
    -------
    MonitorService
        A running service with no instances attached yet; call
        :meth:`~repro.serve.service.MonitorService.attach` and start
        ingesting.
    """
    problem = _resolve_problem(config, problem)
    bank = build_detector_bank(problem, config, extra=detectors)

    wired = list(sinks)
    if config.sink_capacity is not None:
        wired = [
            BufferedSink(sink, capacity=config.sink_capacity, policy=config.sink_policy)
            for sink in wired
        ]
    log = ServiceLog(config.log_path, flush_every=config.flush_every)
    return MonitorService(
        problem.system,
        bank,
        residue_source=config.residue_source,
        ring_capacity=config.ring_capacity,
        overflow=config.overflow,
        auto_drain=config.auto_drain,
        sinks=wired,
        log=log,
        metadata={"config": config.to_dict(), "problem": problem.name},
        metrics=metrics,
        scraper=scraper,
        engine=config.engine,
        engine_options=config.engine_options,
    )


__all__ = ["run_service"]
