"""The always-on monitoring service: streaming ingest over batched detectors.

:class:`MonitorService` is the deployment form of the runtime subsystem.  A
:class:`~repro.runtime.fleet.FleetSimulator` *generates* a fleet and steps it
to a fixed horizon; the service instead runs indefinitely against streams it
does not control:

* each attached plant instance pushes measurement samples through its own
  fixed-size :class:`~repro.serve.ring.RingBuffer` (absorbing producer
  asynchrony, with an explicit overflow policy);
* whenever every attached instance has at least one pending sample, the
  service drains one *lockstep round* — one ``(N, m)`` block — through the
  shared batched detector cores of :mod:`repro.runtime.batch`, so serving
  reuses exactly the vectorized step whose alarms are proven
  trace-equivalent to the offline evaluators;
* instances may :meth:`~MonitorService.attach` and
  :meth:`~MonitorService.detach` while the service runs: the batch state
  grows/compacts row-wise and every other instance's detector state
  (CUSUM accumulators, dead-zone counters, threshold positions) is untouched;
* :meth:`~MonitorService.swap_thresholds` rebinds detector parameters
  atomically, again without resetting per-instance state — the mechanism for
  pushing re-synthesized thresholds into a live fleet;
* every externally visible action lands in an ordered
  :class:`~repro.serve.log.ServiceLog`, from which
  :func:`~repro.serve.replay.replay` reproduces the run deterministically.

Residues come from one of two sources: ``"observer"`` mode runs a
:class:`~repro.serve.observer.BatchObserver` over the ingested measurements
(the real-deployment shape: the service sees only sensor data), while
``"ingest"`` mode accepts pre-computed residues alongside each measurement
(for replaying recorded traces or fronting an external estimator).
"""

from __future__ import annotations

import copy
import threading
from typing import Mapping, Sequence

import numpy as np

from repro.detectors.chi_square import ChiSquareDetector
from repro.detectors.cusum import CusumDetector
from repro.detectors.threshold import ThresholdVector
from repro.lti.simulate import ClosedLoopSystem
from repro.monitors.base import Monitor
from repro.runtime.batch import (
    BatchChiSquare,
    BatchCusum,
    BatchDetector,
    BatchMonitor,
    BatchThresholdDetector,
    make_batched,
)
from repro.obs.clock import Stopwatch
from repro.obs.metrics import MetricsRegistry
from repro.registry import ENGINES
from repro.runtime.events import AlarmEvent, EventSink
from repro.serve.log import ServiceLog
from repro.serve.observer import BatchObserver
from repro.serve.ring import RingBuffer
from repro.utils.validation import ValidationError, check_positive

#: Ring-buffer overflow policies accepted by :class:`MonitorService`.
OVERFLOW_POLICIES = ("drop-oldest", "drop-newest", "error")

#: Residue sources accepted by :class:`MonitorService`.
RESIDUE_SOURCES = ("observer", "ingest")


def _swap_payload(label: str, core: BatchDetector, obj) -> tuple[object, dict]:
    """Coerce a hot-swap request into the core's parameter type plus a log payload.

    Returns ``(bound, payload)`` where ``bound`` is what ``core.rebind``
    accepts and ``payload`` is a JSON-compatible description from which
    :func:`~repro.serve.replay.replay` can rebuild ``bound``.  Monitor swaps
    carry ``"replayable": False`` — a :class:`~repro.monitors.base.Monitor`
    tree has no canonical plain-data form.
    """
    if isinstance(core, BatchThresholdDetector):
        if not isinstance(obj, ThresholdVector):
            obj = ThresholdVector(np.asarray(obj, dtype=float))
        weights = None if obj.weights is None else [float(w) for w in obj.weights]
        payload = {
            "detector_kind": "threshold",
            "values": [float(v) for v in obj.values],
            "norm": obj.norm,
            "weights": weights,
        }
        return obj, payload
    if isinstance(core, BatchCusum):
        if not isinstance(obj, CusumDetector):
            raise ValidationError(
                f"swapping {label!r} (a CUSUM core) requires a CusumDetector, "
                f"got {type(obj).__name__}"
            )
        payload = {
            "detector_kind": "cusum",
            "bias": float(obj.bias),
            "threshold": float(obj.threshold),
            "norm": obj.norm,
        }
        return obj, payload
    if isinstance(core, BatchChiSquare):
        if not isinstance(obj, ChiSquareDetector):
            raise ValidationError(
                f"swapping {label!r} (a chi-square core) requires a ChiSquareDetector, "
                f"got {type(obj).__name__}"
            )
        payload = {
            "detector_kind": "chi-square",
            "innovation_cov": np.asarray(obj.innovation_cov, dtype=float).tolist(),
            "threshold": float(obj.threshold),
        }
        return obj, payload
    if isinstance(core, BatchMonitor):
        if not isinstance(obj, Monitor):
            raise ValidationError(
                f"swapping {label!r} (a monitor core) requires a Monitor, "
                f"got {type(obj).__name__}"
            )
        return obj, {"detector_kind": "monitor", "replayable": False}
    raise ValidationError(
        f"detector {label!r} ({type(core).__name__}) does not support hot swapping"
    )


class MonitorService:
    """An always-on, dynamically-membered fleet monitor.

    Parameters
    ----------
    system:
        The closed loop every attached instance runs.
    detectors:
        Label → detector mapping (anything
        :func:`~repro.runtime.batch.make_batched` accepts); at least one
        entry.
    residue_source:
        ``"observer"`` (default) computes residues from ingested measurements
        with a :class:`~repro.serve.observer.BatchObserver`; ``"ingest"``
        expects the producer to supply residues alongside measurements.
    ring_capacity:
        Pending samples each instance's ring buffer holds.
    overflow:
        Ring-buffer overflow policy, one of :data:`OVERFLOW_POLICIES`.
    auto_drain:
        Drain complete rounds immediately from inside :meth:`ingest`
        (default).  Off, rounds accumulate until :meth:`drain` is called —
        the mode :func:`~repro.serve.replay.replay` uses to reproduce
        recorded drain timing.
    sinks:
        :class:`~repro.runtime.events.EventSink` objects receiving alarm
        batches (wrap slow consumers in a
        :class:`~repro.serve.backpressure.BufferedSink`).
    log:
        The :class:`~repro.serve.log.ServiceLog` to record to; ``None``
        creates an in-memory log.
    xhat0:
        Default initial state estimate for attaching instances (observer
        mode).
    metadata:
        Carried into the log's ``"start"`` event; :func:`run_service` stores
        the originating config here so logs are replayable standalone.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` the service records
        into.  ``None`` (default) gives the service its own always-enabled
        private registry — the service's counters are its operational state,
        so :meth:`stats` must work whether or not process-wide telemetry is
        on.  Pass a shared registry to fold serve metrics into a combined
        exposition (note a *disabled* shared registry records nothing and
        :meth:`stats` would read zeros).
    scraper:
        Optional :class:`~repro.obs.export.PeriodicScraper`; its
        ``maybe_scrape`` hook runs after every processed round and a final
        unconditional scrape happens on :meth:`close`, making the service a
        file-backed Prometheus scrape target.  Anything speaking the same
        interface fits — in particular a
        :class:`~repro.obs.watch.HealthWatcher` built over this service's
        ``metrics`` registry self-monitors the live gauge/counter-rate
        streams (ingest rate, members, round cost) with the repo's own
        CUSUM detectors, one observation per processed round.
    engine / engine_options:
        Name (from :data:`repro.registry.ENGINES`) and constructor options
        of the round-evaluation engine.  ``"legacy"`` (default) steps every
        core per round; ``"fused"`` evaluates rounds through a version-keyed
        :class:`~repro.runtime.kernel.serve.FusedServicePlan` that shares
        norm computations across the bank.  Alarm decisions, event ordering
        and per-instance detector state are identical either way — attach/
        detach/hot-swap bump each core's ``version``, which rebuilds the
        fused plan without resetting surviving instances.
    """

    def __init__(
        self,
        system: ClosedLoopSystem,
        detectors: Mapping[str, object],
        *,
        residue_source: str = "observer",
        ring_capacity: int = 64,
        overflow: str = "drop-oldest",
        auto_drain: bool = True,
        sinks: Sequence[EventSink] = (),
        log: ServiceLog | None = None,
        xhat0: np.ndarray | None = None,
        metadata: dict | None = None,
        metrics: MetricsRegistry | None = None,
        scraper=None,
        engine: str = "legacy",
        engine_options: Mapping[str, object] | None = None,
    ):
        if residue_source not in RESIDUE_SOURCES:
            raise ValidationError(
                f"unknown residue_source {residue_source!r}; "
                f"expected one of {RESIDUE_SOURCES}"
            )
        if overflow not in OVERFLOW_POLICIES:
            raise ValidationError(
                f"unknown overflow policy {overflow!r}; "
                f"expected one of {OVERFLOW_POLICIES}"
            )
        if not detectors:
            raise ValidationError("a MonitorService needs at least one detector")
        self.system = system
        self.residue_source = residue_source
        self.ring_capacity = int(check_positive("ring_capacity", ring_capacity))
        self.overflow = overflow
        self.auto_drain = bool(auto_drain)
        self.sinks = list(sinks)
        self.log = log if log is not None else ServiceLog()
        self.metadata = dict(metadata or {})
        self.engine = str(engine)
        self.engine_options = dict(engine_options or {})
        self._engine = ENGINES.create(self.engine, **self.engine_options)

        # Cores cannot be built empty (n_instances is validated positive), so
        # materialise each with one placeholder row and compact it away.
        empty = np.array([], dtype=int)
        self.detectors: dict[str, BatchDetector] = {}
        for label, detector in detectors.items():
            core = make_batched(detector, 1, dt=system.dt)
            core.compact(empty)
            self.detectors[str(label)] = core
        self._needs_residues = any(
            core.consumes == "residues" for core in self.detectors.values()
        )

        self._observer = (
            BatchObserver(system, xhat0) if residue_source == "observer" else None
        )
        m = system.plant.n_outputs
        self._n_outputs = m
        self._sample_width = m if residue_source == "observer" else 2 * m

        self._lock = threading.RLock()
        self._ids: list[int] = []  # row -> instance id, in attach order
        self._rows: dict[int, int] = {}  # instance id -> row
        self._rings: list[RingBuffer] = []
        self._ready = 0  # rings with >= 1 pending sample (lockstep readiness)
        self._local_steps: list[int] = []  # row -> samples consumed so far
        self._alarmed: dict[str, np.ndarray] = {
            label: np.zeros(0, dtype=bool) for label in self.detectors
        }
        self._next_id = 0

        # The service's counters live in a metrics registry (private and
        # always-enabled unless one is injected); the historical plain-int
        # attributes are read-only properties over it below.
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=True)
        self.scraper = scraper
        self._uptime = Stopwatch()
        self._c_ingested = self.metrics.counter(
            "serve_samples_ingested_total", help="Samples accepted into ring buffers."
        )
        self._c_dropped = self.metrics.counter(
            "serve_samples_dropped_total", help="Samples dropped by overflow policy."
        )
        self._c_rounds = self.metrics.counter(
            "serve_rounds_total", help="Lockstep rounds processed."
        )
        self._c_alarms = self.metrics.counter(
            "serve_alarms_total", help="Alarm events emitted, by detector."
        )
        self._c_swaps = self.metrics.counter(
            "serve_swaps_total", help="Hot threshold swaps applied."
        )
        self._c_attach = self.metrics.counter(
            "serve_attach_total", help="Instance attachments."
        )
        self._c_detach = self.metrics.counter(
            "serve_detach_total", help="Instance detachments."
        )
        self._g_members = self.metrics.gauge(
            "serve_members", help="Currently attached instances."
        )
        self._g_ingest_rate = self.metrics.gauge(
            "serve_ingest_rate_per_s",
            help="Samples ingested per second of service uptime.",
        )
        self._h_round = self.metrics.histogram(
            "serve_round_seconds", help="Wall time per lockstep round."
        )

        self.log.append(
            "start",
            data={
                "residue_source": self.residue_source,
                "ring_capacity": self.ring_capacity,
                "overflow": self.overflow,
                "detectors": list(self.detectors),
                "engine": self.engine,
                "metadata": self.metadata,
            },
        )

    # ------------------------------------------------------------------
    # membership
    @property
    def n_members(self) -> int:
        """Number of currently attached instances."""
        return len(self._ids)

    @property
    def members(self) -> tuple[int, ...]:
        """Attached instance ids, in row (attach) order."""
        return tuple(self._ids)

    def attach(self, instance_id: int | None = None, *, xhat0: np.ndarray | None = None) -> int:
        """Attach one plant instance; returns its id.

        Every batched core grows by one zero-state row; no other instance's
        detector state is touched.  ``instance_id`` defaults to the next
        unused id; ``xhat0`` seeds the observer's state estimate for this
        instance (observer mode only).
        """
        with self._lock:
            if instance_id is None:
                instance_id = self._next_id
            instance_id = int(instance_id)
            if instance_id < 0:
                raise ValidationError("instance ids must be non-negative")
            if instance_id in self._rows:
                raise ValidationError(f"instance {instance_id} is already attached")
            self._next_id = max(self._next_id, instance_id + 1)
            for core in self.detectors.values():
                core.grow(1)
            if self._observer is not None:
                self._observer.grow(1, xhat0)
            self._rows[instance_id] = len(self._ids)
            self._ids.append(instance_id)
            self._rings.append(RingBuffer(self.ring_capacity, self._sample_width))
            self._local_steps.append(0)
            for label in self._alarmed:
                self._alarmed[label] = np.append(self._alarmed[label], False)
            self._c_attach.inc()
            self._g_members.set(len(self._ids))
            self.log.append(
                "attach",
                instance=instance_id,
                data={
                    "xhat0": None if xhat0 is None else [float(v) for v in np.asarray(xhat0).reshape(-1)]
                },
            )
            return instance_id

    def detach(self, instance_id: int) -> None:
        """Detach one instance, discarding its pending samples.

        The batch state compacts row-wise: every remaining instance keeps its
        detector state (and its position in a later re-attach is a *fresh*
        instance — detector state is not parked).
        """
        with self._lock:
            row = self._rows.pop(int(instance_id), None)
            if row is None:
                raise ValidationError(f"instance {instance_id} is not attached")
            keep = np.array(
                [r for r in range(len(self._ids)) if r != row], dtype=int
            )
            for core in self.detectors.values():
                core.compact(keep)
            if self._observer is not None:
                self._observer.compact(keep)
            pending = len(self._rings[row])
            if pending:
                self._ready -= 1
            del self._ids[row]
            del self._rings[row]
            del self._local_steps[row]
            self._rows = {identity: r for r, identity in enumerate(self._ids)}
            for label in self._alarmed:
                self._alarmed[label] = self._alarmed[label][keep]
            self._c_detach.inc()
            self._g_members.set(len(self._ids))
            self.log.append(
                "detach", instance=int(instance_id), data={"pending_dropped": pending}
            )

    # ------------------------------------------------------------------
    # ingest and drain
    def ingest(
        self,
        instance_id: int,
        measurement: np.ndarray,
        residue: np.ndarray | None = None,
    ) -> bool:
        """Push one measurement sample for one instance.

        Returns True when the sample entered the instance's ring buffer.
        ``residue`` is required in ``"ingest"`` mode when any deployed
        detector consumes residues, and rejected in ``"observer"`` mode (the
        observer computes residues itself).  Under the ``"drop-newest"``
        overflow policy a sample arriving at a full buffer is counted dropped
        and False is returned; ``"drop-oldest"`` evicts the oldest pending
        sample instead; ``"error"`` raises.  Only samples that enter a buffer
        are logged, which is what makes recorded logs replayable.
        """
        with self._lock:
            row = self._rows.get(int(instance_id))
            if row is None:
                raise ValidationError(f"instance {instance_id} is not attached")
            measurement = np.asarray(measurement, dtype=float).reshape(-1)
            if measurement.size != self._n_outputs:
                raise ValidationError(
                    f"measurement has {measurement.size} channels, "
                    f"the plant has {self._n_outputs} outputs"
                )
            if self.residue_source == "observer":
                if residue is not None:
                    raise ValidationError(
                        "residues are computed by the observer; "
                        "pass measurements only (or use residue_source='ingest')"
                    )
                sample = measurement
            else:
                if residue is None:
                    if self._needs_residues:
                        raise ValidationError(
                            "residue_source='ingest' requires a residue with every "
                            "measurement while residue-consuming detectors are deployed"
                        )
                    residue = np.zeros(self._n_outputs)
                residue = np.asarray(residue, dtype=float).reshape(-1)
                if residue.size != self._n_outputs:
                    raise ValidationError(
                        f"residue has {residue.size} channels, "
                        f"the plant has {self._n_outputs} outputs"
                    )
                sample = np.concatenate([measurement, residue])

            ring = self._rings[row]
            if ring.is_full:
                if self.overflow == "error":
                    raise ValidationError(
                        f"instance {instance_id}'s ring buffer is full "
                        f"({self.ring_capacity} pending samples)"
                    )
                if self.overflow == "drop-newest":
                    self._c_dropped.inc(policy="drop-newest")
                    return False
                ring.drop_oldest()
                self._c_dropped.inc(policy="drop-oldest")
            if not len(ring):
                self._ready += 1
            ring.push(sample)
            self._c_ingested.inc()
            data = {"measurement": [float(v) for v in measurement]}
            if self.residue_source == "ingest":
                data["residue"] = [float(v) for v in sample[self._n_outputs :]]
            self.log.append("measurement", instance=int(instance_id), data=data)
            if self.auto_drain:
                self._drain_locked(None)
            return True

    def pending(self) -> dict[int, int]:
        """Pending (buffered, not yet drained) sample counts per instance id."""
        with self._lock:
            return {identity: len(ring) for identity, ring in zip(self._ids, self._rings)}

    def drain(self, max_rounds: int | None = None) -> int:
        """Process complete lockstep rounds; returns how many were drained.

        A round is complete when *every* attached instance has at least one
        pending sample — the service never steps a partial fleet, so the
        batched cores always see the full membership.
        """
        with self._lock:
            return self._drain_locked(max_rounds)

    def _drain_locked(self, max_rounds: int | None) -> int:
        # The readiness counter makes the lockstep check O(1) per ingest —
        # a per-call scan of all rings would make every round O(N^2).
        rounds = 0
        while self._ids and self._ready == len(self._ids):
            if max_rounds is not None and rounds >= max_rounds:
                break
            self._process_round()
            rounds += 1
        return rounds

    def _process_round(self) -> None:
        """Pop one sample per instance and step every detector once."""
        round_watch = Stopwatch()
        self.log.append("round", data={"members": list(self._ids)})
        block = np.stack([ring.pop() for ring in self._rings])
        self._ready -= sum(1 for ring in self._rings if not len(ring))
        measurements = block[:, : self._n_outputs]
        if self._observer is not None:
            residues = self._observer.step(measurements)
        else:
            residues = block[:, self._n_outputs :]
        steps = list(self._local_steps)
        round_alarms = self._engine.service_round(self.detectors, residues, measurements)
        for label in self.detectors:
            alarms = round_alarms[label]
            if not np.any(alarms):
                continue
            alarmed = self._alarmed[label]
            newly = alarms & ~alarmed
            self._alarmed[label] = alarmed | alarms
            events = [
                AlarmEvent(self._ids[r], steps[r], label, first=bool(newly[r]))
                for r in np.flatnonzero(alarms)
            ]
            for sink in self.sinks:
                sink.emit(events)
            for event in events:
                self.log.append(
                    "alarm",
                    instance=event.instance,
                    step=event.step,
                    data={"detector": label, "first": event.first},
                )
            self._c_alarms.inc(len(events), detector=label)
        for row in range(len(self._local_steps)):
            self._local_steps[row] += 1
        self._c_rounds.inc()
        self._h_round.observe(round_watch.elapsed())
        if self.scraper is not None:
            self._update_derived()
            self.scraper.maybe_scrape()

    # ------------------------------------------------------------------
    # hot swap
    def swap_thresholds(self, swaps: Mapping[str, object]) -> None:
        """Atomically rebind detector parameters without resetting state.

        ``swaps`` maps deployed labels to replacement parameters: a
        :class:`~repro.detectors.threshold.ThresholdVector` (or plain array)
        for threshold cores, a :class:`~repro.detectors.cusum.CusumDetector`
        for CUSUM cores, a :class:`~repro.detectors.chi_square.ChiSquareDetector`
        for chi-square cores, a structurally matching
        :class:`~repro.monitors.base.Monitor` for monitor cores.  Every swap
        is validated (including a dry-run rebind on a copy of the core)
        before *any* is applied, so a bad entry leaves the whole bank
        unchanged.  Per-instance detector state — threshold positions, CUSUM
        accumulators, dead-zone run lengths — survives the swap.
        """
        with self._lock:
            prepared = []
            for label, obj in swaps.items():
                label = str(label)
                core = self.detectors.get(label)
                if core is None:
                    raise ValidationError(
                        f"no detector labelled {label!r} is deployed "
                        f"(deployed: {', '.join(self.detectors)})"
                    )
                bound, payload = _swap_payload(label, core, obj)
                # Dry-run on a copy: rebind-time validation (e.g. monitor
                # structure checks) fails here, before anything is applied.
                copy.deepcopy(core).rebind(bound)
                prepared.append((label, core, bound, payload))
            for label, core, bound, payload in prepared:
                core.rebind(bound)
                self.log.append("swap", data={"label": label, **payload})
            self._c_swaps.inc(len(prepared))

    # ------------------------------------------------------------------
    # telemetry views — the historical plain-int counter attributes are
    # read-only properties over the registry, so existing callers (tests,
    # examples, benchmarks) keep working unchanged.
    @property
    def samples_ingested(self) -> int:
        """Samples accepted into ring buffers since start."""
        return int(self._c_ingested.total())

    @property
    def samples_dropped(self) -> int:
        """Samples dropped by the overflow policy since start."""
        return int(self._c_dropped.total())

    @property
    def rounds_processed(self) -> int:
        """Lockstep rounds processed since start."""
        return int(self._c_rounds.total())

    @property
    def alarms_emitted(self) -> int:
        """Alarm events emitted since start (all detectors)."""
        return int(self._c_alarms.total())

    @property
    def swaps_applied(self) -> int:
        """Hot swaps applied since start."""
        return int(self._c_swaps.total())

    def _update_derived(self) -> None:
        """Refresh gauges derived from counters (ingest rate)."""
        uptime = self._uptime.elapsed()
        if uptime > 0:
            self._g_ingest_rate.set(self._c_ingested.total() / uptime)

    def stats(self) -> dict:
        """Counters and membership snapshot of the running service.

        The counter values are a view over the service's metrics registry
        (see the ``metrics`` parameter); keys and meanings are unchanged
        from the pre-registry implementation.
        """
        with self._lock:
            self._update_derived()
            return {
                "members": list(self._ids),
                "pending": {
                    identity: len(ring)
                    for identity, ring in zip(self._ids, self._rings)
                },
                "samples_ingested": self.samples_ingested,
                "samples_dropped": self.samples_dropped,
                "rounds_processed": self.rounds_processed,
                "alarms_emitted": self.alarms_emitted,
                "swaps_applied": self.swaps_applied,
                "detectors": list(self.detectors),
                "residue_source": self.residue_source,
            }

    def close(self) -> None:
        """Close the event log and every sink (pending partial rounds are kept).

        A configured scraper gets one final unconditional scrape so the
        exposition file reflects the service's terminal counters.
        """
        with self._lock:
            if self.scraper is not None:
                self._update_derived()
                self.scraper.scrape()
            self.log.close()
            for sink in self.sinks:
                sink.close()

    def __enter__(self) -> "MonitorService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["OVERFLOW_POLICIES", "RESIDUE_SOURCES", "MonitorService"]
