"""Fixed-capacity ring buffers for per-instance measurement streams.

Each attached instance of a :class:`~repro.serve.service.MonitorService`
owns one :class:`RingBuffer` per ingested signal: producers push vectors as
they arrive (asynchronously, one instance at a time), the service drains
whole fleet rounds out of them into the batched detector step.  The buffer
is a preallocated ``(capacity, width)`` float array with head/count
indices — pushing and popping never allocates, so ingest stays cheap at
service rates.

Overflow is the caller's policy decision: :meth:`RingBuffer.push` refuses
when full (returns ``False``), :meth:`RingBuffer.drop_oldest` makes room by
discarding the oldest pending sample.  The service maps its configured
``overflow`` policy (``"drop-oldest"``, ``"drop-newest"``, ``"error"``) onto
these primitives and counts every dropped sample.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ValidationError, check_positive


class RingBuffer:
    """A FIFO of fixed-width float vectors with a hard capacity.

    Parameters
    ----------
    capacity:
        Maximum number of pending vectors.
    width:
        Vector width (the plant's output dimension ``m``).
    """

    def __init__(self, capacity: int, width: int):
        self.capacity = int(check_positive("capacity", capacity))
        self.width = int(check_positive("width", width))
        self._data = np.zeros((self.capacity, self.width))
        self._head = 0  # row of the oldest pending vector
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        """True when a further :meth:`push` would be refused."""
        return self._count >= self.capacity

    def push(self, vector: np.ndarray) -> bool:
        """Append one vector; returns ``False`` (and stores nothing) when full."""
        if self._count >= self.capacity:
            return False
        vector = np.asarray(vector, dtype=float).reshape(-1)
        if vector.size != self.width:
            raise ValidationError(
                f"sample has {vector.size} channels, the stream expects {self.width}"
            )
        row = (self._head + self._count) % self.capacity
        self._data[row] = vector
        self._count += 1
        return True

    def drop_oldest(self) -> None:
        """Discard the oldest pending vector (no-op on an empty buffer)."""
        if self._count:
            self._head = (self._head + 1) % self.capacity
            self._count -= 1

    def pop(self) -> np.ndarray:
        """Remove and return (a copy of) the oldest pending vector."""
        if not self._count:
            raise ValidationError("pop from an empty ring buffer")
        row = self._head
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        return self._data[row].copy()

    def peek(self) -> np.ndarray:
        """The oldest pending vector without removing it (a copy)."""
        if not self._count:
            raise ValidationError("peek into an empty ring buffer")
        return self._data[self._head].copy()

    def clear(self) -> int:
        """Discard every pending vector; returns how many were discarded."""
        pending = self._count
        self._head = 0
        self._count = 0
        return pending


__all__ = ["RingBuffer"]
