"""Always-on fleet serving: streaming ingest, dynamic membership, hot swaps.

Where :mod:`repro.runtime` *simulates* a monitored fleet to a fixed horizon,
:mod:`repro.serve` *operates* one indefinitely:

* :class:`~repro.serve.service.MonitorService` — the service itself:
  per-instance ring-buffer ingest draining lockstep rounds through the
  batched detector cores, ``attach``/``detach`` while running, and atomic
  ``swap_thresholds`` that preserves per-instance detector state;
* :class:`~repro.serve.observer.BatchObserver` — computes residues from raw
  measurements with the fleet simulator's exact estimator arithmetic;
* :class:`~repro.serve.ring.RingBuffer` — the fixed-capacity ingest queue;
* :class:`~repro.serve.backpressure.BufferedSink` — bounded, policy-driven
  buffering in front of slow alarm consumers;
* :class:`~repro.serve.log.ServiceLog` / :func:`~repro.serve.replay.replay`
  — the unified replayable event stream and the driver that re-runs it
  deterministically;
* :func:`~repro.serve.engine.run_service` — config-driven construction from
  a :class:`~repro.api.config.ServiceConfig`.

See ``docs/serving.md`` for the full lifecycle and semantics.
"""

from repro.serve.backpressure import POLICIES, BufferedSink
from repro.serve.engine import run_service
from repro.serve.log import EVENT_KINDS, ServiceEvent, ServiceLog
from repro.serve.observer import BatchObserver
from repro.serve.replay import ReplayResult, replay
from repro.serve.ring import RingBuffer
from repro.serve.service import (
    OVERFLOW_POLICIES,
    RESIDUE_SOURCES,
    MonitorService,
)

__all__ = [
    "BatchObserver",
    "BufferedSink",
    "EVENT_KINDS",
    "MonitorService",
    "OVERFLOW_POLICIES",
    "POLICIES",
    "RESIDUE_SOURCES",
    "ReplayResult",
    "RingBuffer",
    "ServiceEvent",
    "ServiceLog",
    "replay",
    "run_service",
]
