"""Quadruple-tank process-control case study.

The four-tank laboratory process (Johansson, 2000) linearised around an
operating point is the standard multi-input multi-output benchmark of the
false-data-injection literature (it appears in the works the paper cites on
residue-based detection for process control).  Two pumps feed four coupled
tanks; the two lower-tank levels are measured by sensors reachable over the
plant network and can be falsified.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.fdi import AttackChannelMask
from repro.core.problem import SynthesisProblem
from repro.core.specs import ReachSetCriterion
from repro.lti.discretize import zoh
from repro.lti.model import StateSpace
from repro.monitors.composite import CompositeMonitor
from repro.monitors.deadzone import DeadZoneMonitor
from repro.monitors.gradient_monitor import GradientMonitor
from repro.monitors.range_monitor import RangeMonitor
from repro.registry import CASE_STUDIES
from repro.systems.base import CaseStudy, design_closed_loop


@CASE_STUDIES.register("quadtank")
def build_quadtank_case_study(
    dt: float = 1.0,
    horizon: int = 40,
    level_tolerance: float = 1.0,
    with_monitors: bool = True,
    attack_bound: float = 5.0,
    strictness: float = 1e-4,
) -> CaseStudy:
    """Build the quadruple-tank level-regulation problem.

    The linearised model uses the minimum-phase parameter set of Johansson's
    original paper.  States are the level deviations of tanks 1-4 [cm] from
    the operating point, inputs are the two pump-voltage deviations, and the
    attackable outputs are the level sensors of tanks 1 and 2.
    """
    # Minimum-phase configuration constants (Johansson 2000).
    A1, A2, A3, A4 = 28.0, 32.0, 28.0, 32.0      # tank cross-sections [cm^2]
    a1, a2, a3, a4 = 0.071, 0.057, 0.071, 0.057  # outlet areas [cm^2]
    g = 981.0
    k1, k2 = 3.33, 3.35
    gamma1, gamma2 = 0.70, 0.60
    h0 = np.array([12.4, 12.7, 1.8, 1.4])        # operating levels [cm]

    T_const = [
        (Ai / ai) * np.sqrt(2.0 * h / g)
        for Ai, ai, h in zip((A1, A2, A3, A4), (a1, a2, a3, a4), h0)
    ]
    A = np.array(
        [
            [-1.0 / T_const[0], 0.0, A3 / (A1 * T_const[2]), 0.0],
            [0.0, -1.0 / T_const[1], 0.0, A4 / (A2 * T_const[3])],
            [0.0, 0.0, -1.0 / T_const[2], 0.0],
            [0.0, 0.0, 0.0, -1.0 / T_const[3]],
        ]
    )
    B = np.array(
        [
            [gamma1 * k1 / A1, 0.0],
            [0.0, gamma2 * k2 / A2],
            [0.0, (1.0 - gamma2) * k2 / A3],
            [(1.0 - gamma1) * k1 / A4, 0.0],
        ]
    )
    C = np.array([[1.0, 0.0, 0.0, 0.0], [0.0, 1.0, 0.0, 0.0]])

    continuous = StateSpace(
        A=A,
        B=B,
        C=C,
        Q_w=np.eye(4) * 1e-4 / dt,
        R_v=np.eye(2) * 0.01**2 * dt,
        name="quadruple-tank",
        state_names=("h1", "h2", "h3", "h4"),
        output_names=("h1", "h2"),
        input_names=("pump1", "pump2"),
    )
    plant = zoh(continuous, dt)

    system = design_closed_loop(
        plant,
        Q_lqr=np.diag([10.0, 10.0, 1.0, 1.0]),
        R_lqr=np.eye(2) * 0.5,
        reference=None,
        name="quadtank-loop",
    )

    # Start displaced from the operating point; the loop must return the two
    # measured levels to within the tolerance band.
    x0 = np.array([6.0, -5.0, 2.0, -2.0])
    pfc = ReachSetCriterion(
        x_des=np.zeros(4),
        epsilon=np.array([level_tolerance, level_tolerance, np.inf, np.inf]),
        components=(0, 1),
        at=horizon,
        name="levels-settle",
    )

    mdc = CompositeMonitor.empty()
    if with_monitors:
        mdc = CompositeMonitor(
            monitors=[
                DeadZoneMonitor(
                    inner=RangeMonitor(channel=0, low=-12.0, high=12.0, name="h1-range"),
                    dead_zone_samples=3,
                ),
                DeadZoneMonitor(
                    inner=RangeMonitor(channel=1, low=-12.0, high=12.0, name="h2-range"),
                    dead_zone_samples=3,
                ),
                DeadZoneMonitor(
                    inner=GradientMonitor(channel=0, max_rate=3.0, name="h1-gradient"),
                    dead_zone_samples=3,
                ),
                DeadZoneMonitor(
                    inner=GradientMonitor(channel=1, max_rate=3.0, name="h2-gradient"),
                    dead_zone_samples=3,
                ),
            ],
            name="quadtank-mdc",
        )

    problem = SynthesisProblem(
        system=system,
        pfc=pfc,
        horizon=horizon,
        mdc=mdc,
        x0=x0,
        attack_mask=AttackChannelMask.all_channels(plant.n_outputs),
        attack_bound=attack_bound,
        strictness=strictness,
        name="quadtank",
    )

    description = (
        "Quadruple-tank process with two attackable level sensors; the standard MIMO "
        "benchmark of the false-data-injection literature."
    )
    return CaseStudy(name="quadtank", problem=problem, description=description)
