"""Vehicle Stability Controller (VSC) case study — the paper's §IV.

The VSC of the paper receives wheel speeds (hard-wired, trusted), lateral
acceleration ``ay``, yaw rate ``gamma`` and steering angle over CAN; the
attacker can forge the yaw-rate and lateral-acceleration messages.  We model
the lateral dynamics with the standard linear single-track (bicycle) model
used by the vehicle-stability references the paper builds on (Aoki et al.,
Zheng et al.), augmented with a first-order lag for the hydraulic/steering
actuator the VSC commands:

states
    ``beta`` — body side-slip angle [rad], ``gamma`` — yaw rate [rad/s],
    ``delta_act`` — realised corrective steering angle [rad]
input
    ``delta_cmd`` — commanded corrective steering angle [rad]
outputs (CAN, attackable)
    ``gamma`` (yaw-rate sensor) and ``ay`` (lateral accelerometer)

The actuator lag is what makes the closed-loop response respect the ECU's
gradient monitors (the paper's command path goes through the hydraulic unit);
its time constant is chosen so that the nominal manoeuvre passes every
monitor with its 300 ms dead zone while still meeting the performance
criterion.

The existing monitoring system is reproduced exactly as described in §IV:

* range monitor on ``gamma``  (|gamma| <= 0.2 rad/s),
* gradient monitor on ``gamma`` (<= 0.175 rad/s^2),
* range monitor on ``ay`` (|ay| <= 15 m/s^2),
* gradient monitor on ``ay`` (<= 2 m/s^3),
* relation monitor |gamma - ay / v_x| <= allowedDiff (= 0.035 rad/s),
* each wrapped in a 300 ms dead zone (7 samples at Ts = 40 ms).

The performance criterion is the paper's: the yaw rate must reach at least
80 % of the desired value within 50 sampling instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.fdi import AttackChannelMask
from repro.core.problem import SynthesisProblem
from repro.core.specs import FractionOfTargetCriterion
from repro.lti.discretize import zoh
from repro.lti.model import StateSpace
from repro.monitors.composite import CompositeMonitor
from repro.monitors.deadzone import DeadZoneMonitor
from repro.monitors.gradient_monitor import GradientMonitor
from repro.monitors.range_monitor import RangeMonitor
from repro.monitors.relation_monitor import RelationMonitor
from repro.registry import CASE_STUDIES
from repro.systems.base import CaseStudy, design_closed_loop
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class VSCParameters:
    """Physical and monitoring parameters of the VSC case study.

    The vehicle parameters are representative mid-size-car values from the
    vehicle-stability literature; the monitoring limits, dead zone, sampling
    period and performance-criterion structure follow §IV of the paper
    verbatim.
    """

    mass: float = 1500.0              # vehicle mass [kg]
    inertia_z: float = 2500.0         # yaw inertia [kg m^2]
    cornering_front: float = 55000.0  # front cornering stiffness [N/rad]
    cornering_rear: float = 60000.0   # rear cornering stiffness [N/rad]
    length_front: float = 1.2         # CoG to front axle [m]
    length_rear: float = 1.3          # CoG to rear axle [m]
    speed: float = 10.0               # longitudinal speed v_x [m/s]
    actuator_time_constant: float = 0.8  # hydraulic/steering actuator lag [s]

    sampling_period: float = 0.040    # Ts = 40 ms
    horizon: int = 50                 # pfc deadline T (samples)
    desired_yaw_rate: float = 0.10    # gamma_des [rad/s]
    pfc_fraction: float = 0.8         # "within 80 % of desired"

    gamma_range: float = 0.2          # |gamma| limit [rad/s]
    gamma_gradient: float = 0.175     # d(gamma)/dt limit [rad/s^2]
    ay_range: float = 15.0            # |ay| limit [m/s^2]
    ay_gradient: float = 2.0          # d(ay)/dt limit [m/s^3]
    allowed_diff: float = 0.035       # relation monitor bound [rad/s]
    dead_zone_seconds: float = 0.300  # dead zone duration

    yaw_noise_std: float = 0.002      # yaw-rate sensor noise [rad/s]
    ay_noise_std: float = 0.05        # accelerometer noise [m/s^2]
    process_noise_std: float = 1e-4   # per-state process noise (simulation)
    kalman_q_std: float = 2e-3        # process-noise level assumed by the Kalman design

    attack_bound_gamma: float = 0.5   # |a_gamma| bound [rad/s]
    attack_bound_ay: float = 10.0     # |a_ay| bound [m/s^2]

    @property
    def dead_zone_samples(self) -> int:
        """Dead zone expressed in samples (paper: floor(300 ms / 40 ms) = 7)."""
        return int(self.dead_zone_seconds / self.sampling_period)


def build_vsc_plant(params: VSCParameters | None = None) -> StateSpace:
    """Single-track model + actuator lag, discretised at the VSC sampling period."""
    if params is None:
        params = VSCParameters()
    m, iz = params.mass, params.inertia_z
    cf, cr = params.cornering_front, params.cornering_rear
    lf, lr = params.length_front, params.length_rear
    v = check_positive("speed", params.speed)
    tau = check_positive("actuator_time_constant", params.actuator_time_constant)

    a11 = -(cf + cr) / (m * v)
    a12 = (cr * lr - cf * lf) / (m * v**2) - 1.0
    a21 = (cr * lr - cf * lf) / iz
    a22 = -(cf * lf**2 + cr * lr**2) / (iz * v)
    b1 = cf / (m * v)
    b2 = cf * lf / iz

    A = np.array(
        [
            [a11, a12, b1],
            [a21, a22, b2],
            [0.0, 0.0, -1.0 / tau],
        ]
    )
    B = np.array([[0.0], [0.0], [1.0 / tau]])

    # Outputs: yaw rate gamma (state 1) and lateral acceleration
    # ay = v * (beta_dot + gamma) = v*a11*beta + v*(a12 + 1)*gamma + v*b1*delta_act.
    C = np.array(
        [
            [0.0, 1.0, 0.0],
            [v * a11, v * (a12 + 1.0), v * b1],
        ]
    )

    Q_w = np.eye(3) * params.process_noise_std**2 / params.sampling_period
    R_v = np.diag([params.yaw_noise_std**2, params.ay_noise_std**2]) * params.sampling_period

    continuous = StateSpace(
        A=A,
        B=B,
        C=C,
        Q_w=Q_w,
        R_v=R_v,
        name="vsc-bicycle-model",
        state_names=("beta", "gamma", "delta_act"),
        output_names=("gamma", "ay"),
        input_names=("delta_cmd",),
    )
    return zoh(continuous, params.sampling_period)


def build_vsc_monitors(params: VSCParameters | None = None) -> CompositeMonitor:
    """The ECU's existing monitoring system (``mdc``) exactly as in §IV."""
    if params is None:
        params = VSCParameters()
    dead_zone = params.dead_zone_samples
    gamma_channel, ay_channel = 0, 1
    return CompositeMonitor(
        monitors=[
            DeadZoneMonitor(
                inner=RangeMonitor.symmetric(gamma_channel, params.gamma_range, name="gamma-range"),
                dead_zone_samples=dead_zone,
            ),
            DeadZoneMonitor(
                inner=GradientMonitor(gamma_channel, params.gamma_gradient, name="gamma-gradient"),
                dead_zone_samples=dead_zone,
            ),
            DeadZoneMonitor(
                inner=RangeMonitor.symmetric(ay_channel, params.ay_range, name="ay-range"),
                dead_zone_samples=dead_zone,
            ),
            DeadZoneMonitor(
                inner=GradientMonitor(ay_channel, params.ay_gradient, name="ay-gradient"),
                dead_zone_samples=dead_zone,
            ),
            DeadZoneMonitor(
                inner=RelationMonitor(
                    channel_a=gamma_channel,
                    channel_b=ay_channel,
                    gain=1.0 / params.speed,
                    allowed_diff=params.allowed_diff,
                    name="gamma-ay-relation",
                ),
                dead_zone_samples=dead_zone,
            ),
        ],
        name="vsc-mdc",
    )


@CASE_STUDIES.register("vsc")
def build_vsc_case_study(
    params: VSCParameters | None = None,
    with_monitors: bool = True,
    strictness: float = 1e-4,
) -> CaseStudy:
    """Assemble the full VSC synthesis problem of §IV."""
    if params is None:
        params = VSCParameters()
    plant = build_vsc_plant(params)

    ay_desired = params.speed * params.desired_yaw_rate
    reference = np.array([params.desired_yaw_rate, ay_desired])
    system = design_closed_loop(
        plant,
        Q_lqr=np.diag([1.0, 10.0, 0.1]),
        R_lqr=np.array([[100.0]]),
        # The estimator is designed against a larger assumed process noise than
        # the simulation truth (standard robust-filtering practice); this keeps
        # the Kalman gain responsive so residues actually react to injected
        # false data.
        Q_kalman=np.eye(3) * params.kalman_q_std**2,
        reference=reference,
        name="vsc-loop",
    )

    pfc = FractionOfTargetCriterion(
        state_index=1,  # gamma
        target=params.desired_yaw_rate,
        fraction=params.pfc_fraction,
        at=params.horizon,
        name="yaw-rate-settling",
    )

    mdc = build_vsc_monitors(params) if with_monitors else CompositeMonitor.empty()

    problem = SynthesisProblem(
        system=system,
        pfc=pfc,
        horizon=params.horizon,
        mdc=mdc,
        x0=np.zeros(3),
        attack_mask=AttackChannelMask.all_channels(plant.n_outputs),
        attack_bound=np.array([params.attack_bound_gamma, params.attack_bound_ay]),
        strictness=strictness,
        # Yaw rate (rad/s) and lateral acceleration (m/s^2) live on very
        # different scales; the detector therefore uses noise-normalised
        # residues so thresholds are expressed in sigma units.
        residue_weights=np.array([params.yaw_noise_std, params.ay_noise_std]),
        name="vsc",
    )

    description = (
        "Vehicle Stability Controller over a linear single-track model with actuator "
        "lag; yaw rate and lateral acceleration travel over CAN and can be forged.  "
        "Reproduces the §IV case study: monitoring-system bypass (Fig. 2), variable-"
        "threshold synthesis (Fig. 3) and the FAR comparison."
    )
    extras = {
        "params": params,
        # Settings used by the benchmark harness to reproduce §IV (threshold
        # floor for the synthesis loops, in sigma units, and the benign
        # operating envelope for the FAR study).
        "reproduction": {
            "min_threshold": 0.0,
            "far_noise_scale": 1.0,
            "far_initial_state_spread": np.array([0.001, 0.003, 0.0]),
            "far_count": 1000,
        },
    }
    return CaseStudy(name="vsc", problem=problem, description=description, extras=extras)
