"""Trajectory-tracking system (the paper's Fig. 1 motivational example).

A double-integrator vehicle tracks a position set point through a Kalman
filter + LQR loop; the attacker spoofs the position measurement (the GPS
channel of the UAV-capture scenario the paper cites).  The performance
criterion asks the position to be inside a small band around the set point by
the end of the window, which a small late-phase injection can prevent while a
static threshold sized for the early transient lets it through — exactly the
trade-off Fig. 1b illustrates.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.fdi import AttackChannelMask
from repro.core.problem import SynthesisProblem
from repro.core.specs import ReachSetCriterion
from repro.lti.discretize import zoh
from repro.lti.model import StateSpace
from repro.monitors.composite import CompositeMonitor
from repro.monitors.deadzone import DeadZoneMonitor
from repro.monitors.gradient_monitor import GradientMonitor
from repro.monitors.range_monitor import RangeMonitor
from repro.registry import CASE_STUDIES
from repro.systems.base import CaseStudy, design_closed_loop


@CASE_STUDIES.register("trajectory")
def build_trajectory_case_study(
    dt: float = 0.1,
    horizon: int = 10,
    target_position: float = 0.5,
    tolerance: float = 0.05,
    measurement_noise_std: float = 0.01,
    process_noise_std: float = 0.002,
    attack_bound: float = 0.5,
    with_monitors: bool = True,
    strictness: float = 1e-4,
) -> CaseStudy:
    """Build the trajectory-tracking problem of Fig. 1.

    Parameters
    ----------
    dt:
        Sampling period (the figure uses 0.1 s ticks).
    horizon:
        Analysis window ``T`` in samples (the figure spans 1 s = 10 samples).
    target_position:
        Position set point in metres.
    tolerance:
        Half-width of the acceptance band for the performance criterion.
    measurement_noise_std / process_noise_std:
        Gaussian noise levels of the position sensor and the dynamics.
    attack_bound:
        Per-sample bound on the injected position falsification (metres).
    with_monitors:
        Include a simple range + gradient plausibility monitor on the
        position channel (with a short dead zone), mirroring the structure of
        the VSC monitors at a smaller scale.
    """
    # Double integrator: states [position, velocity], input acceleration,
    # measured output: position.
    A = np.array([[0.0, 1.0], [0.0, 0.0]])
    B = np.array([[0.0], [1.0]])
    C = np.array([[1.0, 0.0]])
    continuous = StateSpace(
        A=A,
        B=B,
        C=C,
        Q_w=np.diag([0.0, process_noise_std**2]) / dt,
        R_v=np.array([[measurement_noise_std**2]]) * dt,
        name="trajectory-tracking",
        state_names=("position", "velocity"),
        output_names=("position",),
        input_names=("acceleration",),
    )
    plant = zoh(continuous, dt)

    reference = np.array([target_position])
    system = design_closed_loop(
        plant,
        Q_lqr=np.diag([400.0, 20.0]),
        R_lqr=np.array([[0.1]]),
        reference=reference,
        name="trajectory-tracking-loop",
    )

    pfc = ReachSetCriterion(
        x_des=np.array([target_position, 0.0]),
        epsilon=np.array([tolerance, np.inf]),
        components=(0,),
        at=horizon,
        name="reach-position",
    )

    mdc = CompositeMonitor.empty()
    if with_monitors:
        mdc = CompositeMonitor(
            monitors=[
                DeadZoneMonitor(
                    inner=RangeMonitor(channel=0, low=-0.5, high=1.5, name="position-range"),
                    dead_zone_samples=3,
                ),
                DeadZoneMonitor(
                    inner=GradientMonitor(channel=0, max_rate=5.0, name="position-gradient"),
                    dead_zone_samples=3,
                ),
            ],
            name="trajectory-mdc",
        )

    problem = SynthesisProblem(
        system=system,
        pfc=pfc,
        horizon=horizon,
        mdc=mdc,
        x0=np.zeros(2),
        attack_mask=AttackChannelMask.all_channels(plant.n_outputs),
        attack_bound=attack_bound,
        strictness=strictness,
        name="trajectory-tracking",
    )

    description = (
        "Double-integrator trajectory tracking with a spoofable position sensor; "
        "reproduces the motivational example of Fig. 1 (deviation and residue under "
        "noise vs. attack, static vs. variable thresholds)."
    )
    extras = {
        "target_position": target_position,
        "tolerance": tolerance,
        "measurement_noise_std": measurement_noise_std,
        # Settings used by the benchmark harness to reproduce the paper's
        # experiments on this system (threshold floor for the synthesis loops
        # and the benign operating envelope for the FAR study).
        "reproduction": {
            "min_threshold": 0.0,
            "far_noise_scale": 1.0,
            "far_initial_state_spread": np.array([0.04, 0.02]),
            "far_count": 1000,
        },
    }
    return CaseStudy(name="trajectory", problem=problem, description=description, extras=extras)
