"""Ready-made closed-loop case studies.

Each module builds a complete :class:`~repro.core.problem.SynthesisProblem`
(plant, controller, estimator, monitors, performance criterion, attacker
model) for one benchmark system:

* :mod:`repro.systems.vsc` — the paper's Vehicle Stability Controller (§IV),
* :mod:`repro.systems.trajectory` — the trajectory-tracking motivational
  example (Fig. 1),
* :mod:`repro.systems.dcmotor`, :mod:`repro.systems.quadtank`,
  :mod:`repro.systems.cruise`, :mod:`repro.systems.pendulum` — additional
  standard CPS security benchmarks used by the examples, tests and ablation
  benchmarks.
"""

from repro.systems.base import CaseStudy, design_closed_loop
from repro.systems.vsc import build_vsc_case_study, VSCParameters
from repro.systems.trajectory import build_trajectory_case_study
from repro.systems.dcmotor import build_dcmotor_case_study
from repro.systems.quadtank import build_quadtank_case_study
from repro.systems.cruise import build_cruise_case_study
from repro.systems.pendulum import build_pendulum_case_study

__all__ = [
    "CaseStudy",
    "design_closed_loop",
    "build_vsc_case_study",
    "VSCParameters",
    "build_trajectory_case_study",
    "build_dcmotor_case_study",
    "build_quadtank_case_study",
    "build_cruise_case_study",
    "build_pendulum_case_study",
]
