"""DC-motor speed-control case study.

A classic SISO benchmark: armature-controlled DC motor whose angular velocity
is measured by an encoder that the attacker can spoof on the fieldbus.  The
loop must bring the speed close to a set point within the analysis window.
Small state dimension and a single output make this the fastest-solving
benchmark — it is used heavily by the unit tests and the backend ablation.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.fdi import AttackChannelMask
from repro.core.problem import SynthesisProblem
from repro.core.specs import ReachSetCriterion
from repro.lti.discretize import zoh
from repro.lti.model import StateSpace
from repro.monitors.composite import CompositeMonitor
from repro.monitors.deadzone import DeadZoneMonitor
from repro.monitors.gradient_monitor import GradientMonitor
from repro.monitors.range_monitor import RangeMonitor
from repro.registry import CASE_STUDIES
from repro.systems.base import CaseStudy, design_closed_loop


@CASE_STUDIES.register("dcmotor")
def build_dcmotor_case_study(
    dt: float = 0.05,
    horizon: int = 30,
    target_speed: float = 2.0,
    tolerance: float = 0.1,
    with_monitors: bool = True,
    attack_bound: float = 3.0,
    strictness: float = 1e-4,
) -> CaseStudy:
    """Build the DC-motor speed-control problem.

    Parameters
    ----------
    dt:
        Sampling period in seconds.
    horizon:
        Analysis window in samples.
    target_speed:
        Desired angular velocity [rad/s].
    tolerance:
        Acceptance band half-width for the performance criterion.
    with_monitors:
        Include range/gradient plausibility monitors on the speed channel.
    attack_bound:
        Per-sample bound on the injected speed falsification [rad/s].
    """
    # States: [angular velocity omega, armature current i]; input: voltage.
    J, b = 0.01, 0.1          # rotor inertia, viscous friction
    Kt, Ke = 0.01, 0.01       # torque and back-EMF constants
    R, L_ind = 1.0, 0.5       # armature resistance and inductance
    A = np.array([[-b / J, Kt / J], [-Ke / L_ind, -R / L_ind]])
    B = np.array([[0.0], [1.0 / L_ind]])
    C = np.array([[1.0, 0.0]])
    continuous = StateSpace(
        A=A,
        B=B,
        C=C,
        Q_w=np.diag([1e-6, 1e-6]) / dt,
        R_v=np.array([[1e-4]]) * dt,
        name="dc-motor",
        state_names=("omega", "current"),
        output_names=("omega",),
        input_names=("voltage",),
    )
    plant = zoh(continuous, dt)

    system = design_closed_loop(
        plant,
        Q_lqr=np.diag([10.0, 1.0]),
        R_lqr=np.array([[0.1]]),
        # Estimator designed against a larger assumed process noise so the
        # Kalman gain stays responsive to the (attackable) speed measurement.
        Q_kalman=np.diag([1e-2, 1e-2]),
        reference=np.array([target_speed]),
        name="dc-motor-loop",
    )

    pfc = ReachSetCriterion(
        x_des=np.array([target_speed, 0.0]),
        epsilon=np.array([tolerance, np.inf]),
        components=(0,),
        at=horizon,
        name="reach-speed",
    )

    mdc = CompositeMonitor.empty()
    if with_monitors:
        mdc = CompositeMonitor(
            monitors=[
                DeadZoneMonitor(
                    inner=RangeMonitor(channel=0, low=-0.5, high=2.5 * target_speed, name="speed-range"),
                    dead_zone_samples=3,
                ),
                DeadZoneMonitor(
                    inner=GradientMonitor(channel=0, max_rate=8.0 * target_speed, name="speed-gradient"),
                    dead_zone_samples=3,
                ),
            ],
            name="dc-motor-mdc",
        )

    problem = SynthesisProblem(
        system=system,
        pfc=pfc,
        horizon=horizon,
        mdc=mdc,
        x0=np.zeros(2),
        attack_mask=AttackChannelMask.all_channels(plant.n_outputs),
        attack_bound=attack_bound,
        strictness=strictness,
        name="dc-motor",
    )

    description = (
        "Armature-controlled DC motor with a spoofable speed encoder; the smallest "
        "benchmark, used for fast unit tests and the backend ablation study."
    )
    return CaseStudy(name="dcmotor", problem=problem, description=description)
