"""Inverted-pendulum-on-cart case study.

An open-loop-unstable benchmark: the cart position and pendulum angle are
measured, and the angle encoder is attackable.  Because the plant is
unstable, even small stealthy measurement falsifications can have outsized
effects, which stresses the threshold-synthesis loops differently from the
stable automotive benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.fdi import AttackChannelMask
from repro.core.problem import SynthesisProblem
from repro.core.specs import ReachSetCriterion
from repro.lti.discretize import zoh
from repro.lti.model import StateSpace
from repro.monitors.composite import CompositeMonitor
from repro.monitors.deadzone import DeadZoneMonitor
from repro.monitors.range_monitor import RangeMonitor
from repro.registry import CASE_STUDIES
from repro.systems.base import CaseStudy, design_closed_loop


@CASE_STUDIES.register("pendulum")
def build_pendulum_case_study(
    dt: float = 0.02,
    horizon: int = 60,
    angle_tolerance: float = 0.05,
    with_monitors: bool = True,
    attack_bound: float = 0.2,
    strictness: float = 1e-4,
) -> CaseStudy:
    """Build the inverted-pendulum stabilisation problem.

    States: cart position [m], cart velocity [m/s], pendulum angle [rad],
    angular velocity [rad/s].  Input: horizontal force on the cart.
    Outputs: cart position (trusted) and pendulum angle (attackable).
    """
    M, m_p, length, g, friction = 0.5, 0.2, 0.3, 9.81, 0.1
    denom = M + m_p
    A = np.array(
        [
            [0.0, 1.0, 0.0, 0.0],
            [0.0, -friction / denom, -m_p * g / denom, 0.0],
            [0.0, 0.0, 0.0, 1.0],
            [0.0, friction / (denom * length), (denom * g) / (denom * length), 0.0],
        ]
    )
    B = np.array([[0.0], [1.0 / denom], [0.0], [-1.0 / (denom * length)]])
    C = np.array([[1.0, 0.0, 0.0, 0.0], [0.0, 0.0, 1.0, 0.0]])
    continuous = StateSpace(
        A=A,
        B=B,
        C=C,
        Q_w=np.eye(4) * 1e-6 / dt,
        R_v=np.diag([1e-4, 1e-5]) * dt,
        name="inverted-pendulum",
        state_names=("position", "velocity", "angle", "angular_velocity"),
        output_names=("position", "angle"),
        input_names=("force",),
    )
    plant = zoh(continuous, dt)

    system = design_closed_loop(
        plant,
        Q_lqr=np.diag([10.0, 1.0, 100.0, 1.0]),
        R_lqr=np.array([[0.5]]),
        reference=None,
        name="pendulum-loop",
    )

    # Start with the pendulum displaced by 0.1 rad; the loop must return the
    # angle to within the tolerance band by the end of the window.
    x0 = np.array([0.0, 0.0, 0.1, 0.0])
    pfc = ReachSetCriterion(
        x_des=np.zeros(4),
        epsilon=np.array([np.inf, np.inf, angle_tolerance, np.inf]),
        components=(2,),
        at=horizon,
        name="angle-settles",
    )

    mdc = CompositeMonitor.empty()
    if with_monitors:
        mdc = CompositeMonitor(
            monitors=[
                DeadZoneMonitor(
                    inner=RangeMonitor(channel=0, low=-1.0, high=1.0, name="position-range"),
                    dead_zone_samples=5,
                ),
                DeadZoneMonitor(
                    inner=RangeMonitor(channel=1, low=-0.5, high=0.5, name="angle-range"),
                    dead_zone_samples=5,
                ),
            ],
            name="pendulum-mdc",
        )

    problem = SynthesisProblem(
        system=system,
        pfc=pfc,
        horizon=horizon,
        mdc=mdc,
        x0=x0,
        attack_mask=AttackChannelMask(n_outputs=plant.n_outputs, attackable=(1,)),
        attack_bound=attack_bound,
        strictness=strictness,
        name="pendulum",
    )

    description = (
        "Inverted pendulum on a cart with an attackable angle encoder; an open-loop "
        "unstable benchmark stressing the synthesis loops."
    )
    return CaseStudy(name="pendulum", problem=problem, description=description)
