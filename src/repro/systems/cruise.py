"""Adaptive-cruise-control (ACC) case study.

The following vehicle regulates the inter-vehicle gap and relative speed; the
radar/V2V messages carrying those two measurements are attackable.  A
stealthy attacker tries to keep the loop from closing the gap to the desired
spacing — the automotive scenario the CPS-security literature most often
evaluates, included here as a second multi-output benchmark next to the VSC.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.fdi import AttackChannelMask
from repro.core.problem import SynthesisProblem
from repro.core.specs import ReachSetCriterion
from repro.lti.discretize import zoh
from repro.lti.model import StateSpace
from repro.monitors.composite import CompositeMonitor
from repro.monitors.deadzone import DeadZoneMonitor
from repro.monitors.gradient_monitor import GradientMonitor
from repro.monitors.range_monitor import RangeMonitor
from repro.monitors.relation_monitor import RelationMonitor
from repro.registry import CASE_STUDIES
from repro.systems.base import CaseStudy, design_closed_loop


@CASE_STUDIES.register("cruise")
def build_cruise_case_study(
    dt: float = 0.1,
    horizon: int = 40,
    gap_error_target: float = 0.0,
    tolerance: float = 0.5,
    time_constant: float = 0.5,
    with_monitors: bool = True,
    attack_bound: float = 5.0,
    strictness: float = 1e-4,
) -> CaseStudy:
    """Build the ACC gap-regulation problem.

    States: gap error ``e`` [m], relative speed ``dv`` [m/s], ego acceleration
    ``a`` [m/s^2] (first-order actuator lag).  Input: acceleration command.
    Outputs (attackable): gap error and relative speed.
    """
    tau = float(time_constant)
    A = np.array(
        [
            [0.0, 1.0, 0.0],
            [0.0, 0.0, -1.0],
            [0.0, 0.0, -1.0 / tau],
        ]
    )
    B = np.array([[0.0], [0.0], [1.0 / tau]])
    C = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
    continuous = StateSpace(
        A=A,
        B=B,
        C=C,
        Q_w=np.diag([1e-4, 1e-4, 1e-4]) / dt,
        R_v=np.diag([0.05**2, 0.05**2]) * dt,
        name="acc",
        state_names=("gap_error", "relative_speed", "acceleration"),
        output_names=("gap_error", "relative_speed"),
        input_names=("accel_command",),
    )
    plant = zoh(continuous, dt)

    system = design_closed_loop(
        plant,
        Q_lqr=np.diag([5.0, 2.0, 0.1]),
        R_lqr=np.array([[1.0]]),
        reference=None,
        name="acc-loop",
    )

    # Start with a 4 m gap error and 1 m/s closing speed; the loop must bring
    # the gap error close to zero by the end of the window.
    x0 = np.array([4.0, 1.0, 0.0])
    pfc = ReachSetCriterion(
        x_des=np.array([gap_error_target, 0.0, 0.0]),
        epsilon=np.array([tolerance, np.inf, np.inf]),
        components=(0,),
        at=horizon,
        name="close-gap",
    )

    mdc = CompositeMonitor.empty()
    if with_monitors:
        mdc = CompositeMonitor(
            monitors=[
                DeadZoneMonitor(
                    inner=RangeMonitor(channel=0, low=-2.0, high=8.0, name="gap-range"),
                    dead_zone_samples=4,
                ),
                DeadZoneMonitor(
                    inner=GradientMonitor(channel=0, max_rate=6.0, name="gap-gradient"),
                    dead_zone_samples=4,
                ),
                DeadZoneMonitor(
                    inner=RangeMonitor(channel=1, low=-4.0, high=4.0, name="speed-range"),
                    dead_zone_samples=4,
                ),
                # Kinematic consistency: the change of the gap error should
                # match the measured relative speed (expressed per sample).
                DeadZoneMonitor(
                    inner=RelationMonitor(
                        channel_a=0,
                        channel_b=1,
                        gain=0.0,
                        allowed_diff=8.0,
                        name="gap-speed-consistency",
                    ),
                    dead_zone_samples=4,
                ),
            ],
            name="acc-mdc",
        )

    problem = SynthesisProblem(
        system=system,
        pfc=pfc,
        horizon=horizon,
        mdc=mdc,
        x0=x0,
        attack_mask=AttackChannelMask(n_outputs=plant.n_outputs, attackable=(0, 1)),
        attack_bound=attack_bound,
        strictness=strictness,
        name="acc",
    )

    description = (
        "Adaptive cruise control regulating gap error and relative speed from "
        "attackable radar/V2V measurements; a second multi-output benchmark."
    )
    return CaseStudy(name="cruise", problem=problem, description=description)
