"""Shared plumbing for the benchmark case studies."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.control.lqr import lqr_gain
from repro.control.tracking import feedforward_gain, tracking_state_target
from repro.core.problem import SynthesisProblem
from repro.estimation.kalman import steady_state_kalman
from repro.lti.model import StateSpace
from repro.lti.simulate import ClosedLoopSystem


@dataclass
class CaseStudy:
    """A packaged benchmark: problem instance plus descriptive metadata.

    Attributes
    ----------
    problem:
        The ready-to-solve :class:`~repro.core.problem.SynthesisProblem`.
    description:
        One-paragraph description (used by the examples and reports).
    extras:
        System-specific artefacts (e.g. the raw monitor limits for plots).
    """

    name: str
    problem: SynthesisProblem
    description: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def system(self) -> ClosedLoopSystem:
        """The closed loop under analysis."""
        return self.problem.system

    @property
    def horizon(self) -> int:
        """The analysis horizon ``T``."""
        return self.problem.horizon


def design_closed_loop(
    plant: StateSpace,
    Q_lqr: np.ndarray | None = None,
    R_lqr: np.ndarray | None = None,
    Q_kalman: np.ndarray | None = None,
    R_kalman: np.ndarray | None = None,
    reference: np.ndarray | None = None,
    x_reference: np.ndarray | None = None,
    name: str = "closed-loop",
) -> ClosedLoopSystem:
    """Standard loop-closure recipe used by every case study.

    The controller gain comes from LQR, the observer gain from the
    steady-state Kalman filter, and (when an output reference is given) the
    static feedforward makes the closed loop track it with unit DC gain.  The
    state-space set point ``x_reference`` defaults to the steady state
    achieving the output reference.
    """
    K = lqr_gain(plant, Q_lqr, R_lqr)
    L, _ = steady_state_kalman(plant, Q_kalman, R_kalman)
    feedforward = None
    if reference is not None:
        reference = np.asarray(reference, dtype=float).reshape(-1)
        feedforward = feedforward_gain(plant, K)
        if x_reference is None:
            x_reference, _ = tracking_state_target(plant, reference)
    return ClosedLoopSystem(
        plant=plant,
        K=K,
        L=L,
        reference=reference,
        feedforward=feedforward,
        x_reference=x_reference,
        name=name,
    )
