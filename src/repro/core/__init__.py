"""The paper's primary contribution: formal attack-vector synthesis and
variable-threshold synthesis for residue-based detectors.

Module map (paper artefact → implementation):

* Algorithm 1 (``ATTVECSYN``)       → :func:`repro.core.attack_synthesis.synthesize_attack`
                                      (incremental: :class:`repro.core.session.SynthesisSession`)
* Algorithm 2 (pivot-based)         → :class:`repro.core.pivot.PivotThresholdSynthesizer`
* Algorithm 3 (step-wise) + MinAreaRectangle
                                    → :class:`repro.core.stepwise.StepwiseThresholdSynthesizer`,
                                      :func:`repro.core.stepwise.min_area_rectangle`
* provably-safe static baseline     → :class:`repro.core.static_synthesis.StaticThresholdSynthesizer`
* FAR study (§IV)                   → :class:`repro.core.far.FalseAlarmEvaluator`
* end-to-end flow                   → :class:`repro.core.pipeline.SynthesisPipeline`
"""

from repro.core.specs import (
    StateCondition,
    PerformanceCriterion,
    ReachSetCriterion,
    FractionOfTargetCriterion,
    StateBoundCriterion,
    CompositeCriterion,
)
from repro.core.problem import SynthesisProblem
from repro.core.unroll import ClosedLoopUnrolling, AffineConstraint
from repro.core.encoding import AttackEncoding
from repro.core.attack_synthesis import AttackSynthesisResult, synthesize_attack
from repro.core.session import SynthesisSession
from repro.core.pivot import PivotThresholdSynthesizer
from repro.core.stepwise import StepwiseThresholdSynthesizer, min_area_rectangle
from repro.core.static_synthesis import StaticThresholdSynthesizer
from repro.core.relaxation import ThresholdRelaxer, RelaxationResult
from repro.core.synthesis_result import ThresholdSynthesisResult
from repro.core.far import FalseAlarmEvaluator, FalseAlarmStudy
from repro.core.pipeline import SynthesisPipeline, PipelineReport

__all__ = [
    "StateCondition",
    "PerformanceCriterion",
    "ReachSetCriterion",
    "FractionOfTargetCriterion",
    "StateBoundCriterion",
    "CompositeCriterion",
    "SynthesisProblem",
    "ClosedLoopUnrolling",
    "AffineConstraint",
    "AttackEncoding",
    "AttackSynthesisResult",
    "synthesize_attack",
    "SynthesisSession",
    "PivotThresholdSynthesizer",
    "StepwiseThresholdSynthesizer",
    "min_area_rectangle",
    "StaticThresholdSynthesizer",
    "ThresholdRelaxer",
    "RelaxationResult",
    "ThresholdSynthesisResult",
    "FalseAlarmEvaluator",
    "FalseAlarmStudy",
    "SynthesisPipeline",
    "PipelineReport",
]
