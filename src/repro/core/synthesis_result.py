"""Shared result container for the threshold-synthesis algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detectors.threshold import ThresholdVector
from repro.utils.results import SolveStatus, SynthesisRecord


@dataclass
class ThresholdSynthesisResult:
    """Outcome of a threshold-synthesis run (Algorithms 2, 3 or the static baseline).

    Attributes
    ----------
    threshold:
        The synthesized threshold vector.
    rounds:
        Number of attack-synthesis (Algorithm 1) calls made — the paper's
        "round" counter.
    converged:
        True when the final Algorithm 1 call proved that no stealthy
        successful attack remains (``UNSAT``).
    status:
        Status of the final Algorithm 1 call.
    vulnerable_without_detector:
        Whether an attack existed before any threshold was introduced (if
        False the existing monitors already suffice and ``threshold`` is
        all-unset).
    history:
        One :class:`~repro.utils.results.SynthesisRecord` per refinement
        round, for plots and debugging.
    total_solver_time:
        Accumulated wall-clock seconds spent inside Algorithm 1 calls.
    """

    threshold: ThresholdVector
    rounds: int
    converged: bool
    status: SolveStatus
    vulnerable_without_detector: bool
    history: list[SynthesisRecord] = field(default_factory=list)
    total_solver_time: float = 0.0
    algorithm: str = ""

    @property
    def is_secure(self) -> bool:
        """True when the synthesized detector provably blocks all stealthy attacks."""
        return self.converged
