"""The threshold-synthesis problem instance ``<S, C, pfc>``.

Bundles everything Algorithm 1 needs: the closed-loop implementation (plant
model, controller gain, estimator gain), the performance criterion ``pfc``,
the pre-existing monitoring constraints ``mdc``, the analysis horizon ``T``,
the attacker model (attackable channels, per-sample injection bound) and the
initial condition (point or box).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.attacks.fdi import AttackChannelMask, FDIAttack
from repro.core.specs import PerformanceCriterion
from repro.core.unroll import ClosedLoopUnrolling
from repro.detectors.threshold import ThresholdVector
from repro.lti.simulate import (
    ClosedLoopSystem,
    SimulationOptions,
    SimulationTrace,
    simulate_closed_loop,
)
from repro.monitors.composite import CompositeMonitor
from repro.utils.validation import ValidationError, check_positive


@dataclass
class SynthesisProblem:
    """One instance of the paper's formal problem statement.

    Parameters
    ----------
    system:
        The closed-loop implementation under analysis.
    pfc:
        Performance criterion the controller must satisfy within ``horizon``
        iterations.
    horizon:
        Analysis window ``T`` (number of closed-loop iterations).
    mdc:
        Existing monitoring constraints (empty composite when the plant has
        none).
    x0:
        Initial plant state used by the formal model (defaults to zero).
    initial_box:
        Optional ``(low, high)`` component-wise box of initial states; when
        given, the attacker may also pick the initial state inside the box.
    attack_mask:
        Channels the attacker can falsify (default: all).
    attack_bound:
        Per-sample bound on the magnitude of the injected false data (scalar
        or per-channel array).  ``None`` leaves the injection unbounded,
        relying on ``mdc`` and the thresholds to constrain it.
    strictness:
        Margin used to turn the strict inequalities of the stealth condition
        into numerically robust constraints; also guarantees progress of the
        synthesis loops.
    residue_norm:
        Norm used by the detector (``"inf"`` keeps the encoding affine).
    residue_weights:
        Optional per-channel residue scaling (normalised residues): the
        detector compares ``norm(z_k / weights)`` against the threshold.
        Use the per-channel noise standard deviations when the measurement
        channels have very different physical units.
    """

    system: ClosedLoopSystem
    pfc: PerformanceCriterion
    horizon: int
    mdc: CompositeMonitor = field(default_factory=CompositeMonitor.empty)
    x0: np.ndarray | None = None
    initial_box: tuple[np.ndarray, np.ndarray] | None = None
    attack_mask: AttackChannelMask | None = None
    attack_bound: float | np.ndarray | None = None
    strictness: float = 1e-4
    residue_norm: float | str = "inf"
    residue_weights: np.ndarray | None = None
    name: str = "synthesis-problem"

    def __post_init__(self) -> None:
        self.horizon = int(check_positive("horizon", self.horizon))
        n = self.system.plant.n_states
        m = self.system.plant.n_outputs
        if self.x0 is None:
            self.x0 = np.zeros(n)
        else:
            self.x0 = np.asarray(self.x0, dtype=float).reshape(-1)
            if self.x0.size != n:
                raise ValidationError(f"x0 must have length {n}")
        if self.attack_mask is None:
            self.attack_mask = AttackChannelMask.all_channels(m)
        if self.residue_weights is not None:
            self.residue_weights = np.asarray(self.residue_weights, dtype=float).reshape(-1)
            if self.residue_weights.size != m:
                raise ValidationError(f"residue_weights must have length {m}")
            if np.any(self.residue_weights <= 0):
                raise ValidationError("residue_weights must be strictly positive")
        if self.strictness < 0:
            raise ValidationError("strictness must be non-negative")
        required = self.pfc.required_horizon()
        if required is not None and required > self.horizon:
            raise ValidationError(
                f"pfc requires horizon >= {required}, problem horizon is {self.horizon}"
            )

    # ------------------------------------------------------------------
    @property
    def dt(self) -> float:
        """Sampling period of the plant."""
        return self.system.dt

    @property
    def n_outputs(self) -> int:
        """Number of measurement channels."""
        return self.system.plant.n_outputs

    def unrolling(self) -> ClosedLoopUnrolling:
        """Affine unrolling of the (noiseless) closed loop for this problem."""
        return ClosedLoopUnrolling(
            system=self.system,
            horizon=self.horizon,
            attack_mask=self.attack_mask,
            x0=self.x0,
            initial_box=self.initial_box,
        )

    def fresh_threshold(self) -> ThresholdVector:
        """An all-unset threshold vector of the problem's horizon."""
        return ThresholdVector.unset(
            self.horizon, norm=self.residue_norm, weights=self.residue_weights
        )

    def static_threshold(self, value: float) -> ThresholdVector:
        """A static threshold vector carrying the problem's norm and weights."""
        return ThresholdVector.static(
            value, self.horizon, norm=self.residue_norm, weights=self.residue_weights
        )

    # ------------------------------------------------------------------
    # simulation helpers
    # ------------------------------------------------------------------
    def simulate(
        self,
        attack: FDIAttack | np.ndarray | None = None,
        with_noise: bool = False,
        seed=None,
        x0: np.ndarray | None = None,
        measurement_noise: np.ndarray | None = None,
        process_noise: np.ndarray | None = None,
    ) -> SimulationTrace:
        """Simulate the closed loop over the problem horizon.

        With ``with_noise=False`` and no explicit noise this reproduces the
        deterministic formal model used by the solver encodings.
        """
        attack_values = None
        if attack is not None:
            attack_values = attack.values if isinstance(attack, FDIAttack) else np.asarray(attack)
        options = SimulationOptions(
            horizon=self.horizon,
            with_noise=with_noise,
            seed=seed,
            x0=self.x0 if x0 is None else x0,
        )
        return simulate_closed_loop(
            self.system,
            options,
            attack=attack_values,
            measurement_noise=measurement_noise,
            process_noise=process_noise,
        )

    # ------------------------------------------------------------------
    # verdicts on concrete traces
    # ------------------------------------------------------------------
    def pfc_satisfied(self, trace: SimulationTrace) -> bool:
        """Does the trace meet the performance criterion?"""
        return self.pfc.satisfied_on_trace(trace)

    def mdc_alarm(self, trace: SimulationTrace) -> bool:
        """Does any existing monitor alarm on the trace's measurements?"""
        if len(self.mdc) == 0:
            return False
        return bool(np.any(self.mdc.alarms(trace.measurements, self.dt)))

    def detector_alarm(self, trace: SimulationTrace, threshold: ThresholdVector) -> bool:
        """Does the residue-based detector with ``threshold`` alarm on the trace?"""
        return bool(np.any(threshold.alarms(trace.residues)))

    def is_successful_stealthy_attack(
        self,
        trace: SimulationTrace,
        threshold: ThresholdVector | None,
    ) -> bool:
        """Paper's success notion: ``pfc`` violated while every detector stays quiet."""
        if self.pfc_satisfied(trace):
            return False
        if self.mdc_alarm(trace):
            return False
        if threshold is not None and self.detector_alarm(trace, threshold):
            return False
        return True

    # ------------------------------------------------------------------
    def with_horizon(self, horizon: int) -> "SynthesisProblem":
        """Copy of the problem with a different analysis horizon."""
        return replace(self, horizon=int(horizon))

    def residue_norms(self, residues: np.ndarray) -> np.ndarray:
        """Residue norms under the problem's detector norm and channel weights."""
        residues = np.atleast_2d(np.asarray(residues, dtype=float))
        if self.residue_weights is not None:
            residues = residues / self.residue_weights
        if self.residue_norm == "inf":
            return np.max(np.abs(residues), axis=1)
        return np.linalg.norm(residues, ord=self.residue_norm, axis=1)
