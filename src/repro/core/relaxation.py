"""Greedy threshold relaxation (false-alarm minimisation post-pass).

The counterexample-guided loops of Algorithms 2 and 3 drive thresholds *down*
until no stealthy attack remains; nothing in them pushes thresholds back *up*
where tightness is not actually needed, yet every unnecessary tightening
costs false alarms.  This module adds the natural dual pass: walk over the
sampling instants and try to raise each threshold as far as monotonicity
allows, keeping a raise only if Algorithm 1 re-verifies that no stealthy
successful attack exists against the relaxed vector.

Every accepted raise is individually certified by the solver, so the final
vector carries exactly the same security guarantee as its input while having
pointwise larger (hence lower-FAR) thresholds.  This implements the "FAR is
minimised" half of the paper's problem statement more aggressively than the
paper's own greedy loops and is used by the benchmark harness for the §IV
false-alarm study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import SynthesisProblem
from repro.core.session import SynthesisSession
from repro.detectors.threshold import ThresholdVector
from repro.utils.results import SolveStatus, SynthesisRecord


@dataclass
class RelaxationResult:
    """Outcome of one relaxation pass."""

    threshold: ThresholdVector
    raised_instants: list[int] = field(default_factory=list)
    rounds: int = 0
    certified: bool = True
    history: list[SynthesisRecord] = field(default_factory=list)
    total_solver_time: float = 0.0


@dataclass
class ThresholdRelaxer:
    """Greedy, solver-certified relaxation of a safe threshold vector.

    Parameters
    ----------
    backend:
        Attack-synthesis backend used for the per-raise certification calls.
    time_budget_per_call:
        Optional wall-clock budget per certification call.
    preserve_monotonicity:
        When True (default) a threshold is never raised above its predecessor,
        so a monotonically decreasing input stays monotonically decreasing.
    raise_cap:
        Optional absolute ceiling on raised values (``None`` = no extra cap).
    """

    backend: str | object = "lp"
    time_budget_per_call: float | None = None
    preserve_monotonicity: bool = True
    raise_cap: float | None = None

    def relax(
        self,
        problem: SynthesisProblem,
        threshold: ThresholdVector,
        verify_input: bool = True,
        session: SynthesisSession | None = None,
    ) -> RelaxationResult:
        """Raise thresholds greedily while preserving the no-stealthy-attack guarantee.

        Parameters
        ----------
        problem:
            The synthesis problem the vector was synthesized for.
        threshold:
            A (presumably safe) threshold vector; it is not modified.
        verify_input:
            When True, first re-verify that the input vector is indeed safe;
            if it is not, the input is returned unchanged with
            ``certified=False``.
        session:
            Optional shared :class:`~repro.core.session.SynthesisSession`;
            when omitted one is opened for the pass (one certification call
            per instant makes relaxation the heaviest per-problem consumer of
            Algorithm 1 after the synthesis loops themselves).
        """
        if session is None:
            session = SynthesisSession(problem, backend=self.backend)
        current = threshold.copy()
        history: list[SynthesisRecord] = []
        total_time = 0.0
        rounds = 0

        if verify_input:
            check = session.solve(current, time_budget=self.time_budget_per_call)
            rounds += 1
            total_time += check.elapsed
            if check.status is not SolveStatus.UNSAT:
                return RelaxationResult(
                    threshold=current,
                    rounds=rounds,
                    certified=False,
                    history=history,
                    total_solver_time=total_time,
                )

        raised: list[int] = []
        for k in range(current.length):
            candidate = self._candidate(current, k)
            if candidate is None or candidate <= current[k] + 1e-12:
                continue
            trial = current.copy()
            trial.set_value(k, candidate)
            result = session.solve(trial, time_budget=self.time_budget_per_call)
            rounds += 1
            total_time += result.elapsed
            accepted = result.status is SolveStatus.UNSAT
            history.append(
                SynthesisRecord(
                    round_index=rounds,
                    action=(
                        f"raise Th[{k}] {current[k]:.6g} -> {candidate:.6g}: "
                        f"{'accepted' if accepted else 'rejected'}"
                    ),
                    threshold=trial.copy() if accepted else None,
                    solver_time=result.elapsed,
                )
            )
            if accepted:
                current = trial
                raised.append(k)

        return RelaxationResult(
            threshold=current,
            raised_instants=raised,
            rounds=rounds,
            certified=True,
            history=history,
            total_solver_time=total_time,
        )

    # ------------------------------------------------------------------
    def _candidate(self, threshold: ThresholdVector, k: int) -> float | None:
        """The value instant ``k`` would be raised to."""
        if not threshold.is_set(k):
            return None
        if self.preserve_monotonicity and k > 0:
            ceiling = threshold[k - 1]
        else:
            finite = threshold.values[np.isfinite(threshold.values)]
            ceiling = 10.0 * float(np.max(finite)) if finite.size else None
        if ceiling is None or not np.isfinite(ceiling):
            ceiling = self.raise_cap
        if ceiling is None:
            return None
        if self.raise_cap is not None:
            ceiling = min(ceiling, self.raise_cap)
        return float(ceiling)
