"""Greedy threshold relaxation (false-alarm minimisation post-pass).

The counterexample-guided loops of Algorithms 2 and 3 drive thresholds *down*
until no stealthy attack remains; nothing in them pushes thresholds back *up*
where tightness is not actually needed, yet every unnecessary tightening
costs false alarms.  This module adds the natural dual pass: walk over the
sampling instants and try to raise each threshold as far as monotonicity
allows, keeping a raise only if Algorithm 1 re-verifies that no stealthy
successful attack exists against the relaxed vector.

Every accepted raise is individually certified by the solver, so the final
vector carries exactly the same security guarantee as its input while having
pointwise larger (hence lower-FAR) thresholds.  This implements the "FAR is
minimised" half of the paper's problem statement more aggressively than the
paper's own greedy loops and is used by the benchmark harness for the §IV
false-alarm study.

Certified raises alone cannot always un-saturate the false-alarm rate: on
the VSC case study, un-floored stepwise synthesis pins a ~0 threshold at the
horizon end, and the solver (correctly) rejects *every* raise there — an
attack that violates the performance criterion with an arbitrarily small
terminal residue exists, so FAR stays at 100 % no matter how the rest of
the vector is relaxed.  The ``floor`` knob makes the paper's residual-risk
trade explicit: before the greedy pass, every *set* threshold below
``floor`` is lifted to ``floor`` **without** certification.  The lifted
instants are reported in :attr:`RelaxationResult.floored_instants`, and
``certified`` is ``False`` whenever the floored vector itself admits a
stealthy attack — the formal no-stealthy-attack guarantee is knowingly
traded for false-alarm rate at exactly those instants, which is the
trade-off the paper's §IV FAR study quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import SynthesisProblem
from repro.core.session import SynthesisSession
from repro.detectors.threshold import ThresholdVector
from repro.utils.results import SolveStatus, SynthesisRecord
from repro.utils.validation import ValidationError


@dataclass
class RelaxationResult:
    """Outcome of one relaxation pass.

    Attributes
    ----------
    threshold:
        The relaxed vector (pointwise >= the input everywhere).
    raised_instants:
        Instants whose greedy raise was solver-certified and kept.
    floored_instants:
        Instants lifted to the relaxer's ``floor`` *without* certification —
        the explicitly accepted residual-risk instants (empty when no floor
        was configured or nothing sat below it).
    rounds:
        Algorithm 1 certification calls issued.
    certified:
        True when the output vector is solver-certified to admit no stealthy
        successful attack.  False when the input failed its safety
        re-verification, or when the floored vector itself admits an attack
        (every further raise would too, so the greedy pass is skipped).
    history:
        One :class:`~repro.utils.results.SynthesisRecord` per decision.
    total_solver_time:
        Wall-clock seconds spent inside certification calls.
    """

    threshold: ThresholdVector
    raised_instants: list[int] = field(default_factory=list)
    floored_instants: list[int] = field(default_factory=list)
    rounds: int = 0
    certified: bool = True
    history: list[SynthesisRecord] = field(default_factory=list)
    total_solver_time: float = 0.0


@dataclass
class ThresholdRelaxer:
    """Greedy, solver-certified relaxation of a safe threshold vector.

    Parameters
    ----------
    backend:
        Attack-synthesis backend used for the per-raise certification calls.
    time_budget_per_call:
        Optional wall-clock budget per certification call.
    preserve_monotonicity:
        When True (default) a threshold is never raised above its predecessor,
        so a monotonically decreasing input stays monotonically decreasing.
    raise_cap:
        Optional absolute ceiling on raised values (``None`` = no extra cap).
    floor:
        Optional uncertified lower bound applied *before* the greedy pass:
        every set threshold below ``floor`` is lifted to it and recorded in
        :attr:`RelaxationResult.floored_instants`.  This knowingly voids the
        formal guarantee at those instants (see the module docstring) — it is
        the paper's FAR-vs-residual-risk knob, applied as a cheap post-pass
        instead of a full floored re-synthesis.
    """

    backend: str | object = "lp"
    time_budget_per_call: float | None = None
    preserve_monotonicity: bool = True
    raise_cap: float | None = None
    floor: float | None = None

    def relax(
        self,
        problem: SynthesisProblem,
        threshold: ThresholdVector,
        verify_input: bool = True,
        session: SynthesisSession | None = None,
    ) -> RelaxationResult:
        """Raise thresholds greedily while preserving the no-stealthy-attack guarantee.

        Parameters
        ----------
        problem:
            The synthesis problem the vector was synthesized for.
        threshold:
            A (presumably safe) threshold vector; it is not modified.
        verify_input:
            When True, first re-verify that the input vector is indeed safe;
            if it is not, the input is returned unchanged with
            ``certified=False``.
        session:
            Optional shared :class:`~repro.core.session.SynthesisSession`;
            when omitted one is opened for the pass (one certification call
            per instant makes relaxation the heaviest per-problem consumer of
            Algorithm 1 after the synthesis loops themselves).
        """
        if (
            self.floor is not None
            and self.raise_cap is not None
            and self.floor > self.raise_cap
        ):
            raise ValidationError(
                f"floor ({self.floor}) must not exceed raise_cap ({self.raise_cap})"
            )
        if session is None:
            session = SynthesisSession(problem, backend=self.backend)
        current = threshold.copy()
        history: list[SynthesisRecord] = []
        total_time = 0.0
        rounds = 0

        if verify_input:
            check = session.solve(current, time_budget=self.time_budget_per_call)
            rounds += 1
            total_time += check.elapsed
            if check.status is not SolveStatus.UNSAT:
                return RelaxationResult(
                    threshold=current,
                    rounds=rounds,
                    certified=False,
                    history=history,
                    total_solver_time=total_time,
                )

        floored: list[int] = []
        if self.floor is not None:
            for k in range(current.length):
                if current.is_set(k) and current[k] < self.floor:
                    current.set_value(k, float(self.floor))
                    floored.append(k)
        if floored:
            # One check decides the whole pass: raising thresholds only
            # enlarges the attacker's stealth-feasible set, so if the floored
            # vector already admits a stealthy attack every greedy raise
            # would be rejected too — return it uncertified immediately.
            check = session.solve(current, time_budget=self.time_budget_per_call)
            rounds += 1
            total_time += check.elapsed
            history.append(
                SynthesisRecord(
                    round_index=rounds,
                    action=(
                        f"floor {len(floored)} instant(s) at {self.floor:.6g}: "
                        f"{'certified' if check.status is SolveStatus.UNSAT else 'uncertified'}"
                    ),
                    threshold=current.copy(),
                    solver_time=check.elapsed,
                )
            )
            if check.status is not SolveStatus.UNSAT:
                return RelaxationResult(
                    threshold=current,
                    floored_instants=floored,
                    rounds=rounds,
                    certified=False,
                    history=history,
                    total_solver_time=total_time,
                )

        raised: list[int] = []
        for k in range(current.length):
            candidate = self._candidate(current, k)
            if candidate is None or candidate <= current[k] + 1e-12:
                continue
            trial = current.copy()
            trial.set_value(k, candidate)
            result = session.solve(trial, time_budget=self.time_budget_per_call)
            rounds += 1
            total_time += result.elapsed
            accepted = result.status is SolveStatus.UNSAT
            history.append(
                SynthesisRecord(
                    round_index=rounds,
                    action=(
                        f"raise Th[{k}] {current[k]:.6g} -> {candidate:.6g}: "
                        f"{'accepted' if accepted else 'rejected'}"
                    ),
                    threshold=trial.copy() if accepted else None,
                    solver_time=result.elapsed,
                )
            )
            if accepted:
                current = trial
                raised.append(k)

        return RelaxationResult(
            threshold=current,
            raised_instants=raised,
            floored_instants=floored,
            rounds=rounds,
            certified=True,
            history=history,
            total_solver_time=total_time,
        )

    # ------------------------------------------------------------------
    def _candidate(self, threshold: ThresholdVector, k: int) -> float | None:
        """The value instant ``k`` would be raised to."""
        if not threshold.is_set(k):
            return None
        if self.preserve_monotonicity and k > 0:
            ceiling = threshold[k - 1]
        else:
            finite = threshold.values[np.isfinite(threshold.values)]
            ceiling = 10.0 * float(np.max(finite)) if finite.size else None
        if ceiling is None or not np.isfinite(ceiling):
            ceiling = self.raise_cap
        if ceiling is None:
            return None
        if self.raise_cap is not None:
            ceiling = min(ceiling, self.raise_cap)
        return float(ceiling)
