"""Provably safe static-threshold baseline.

The paper compares its variable thresholds against "a provably safe static
threshold based detector": a single constant ``Th`` applied at every sampling
instance such that no stealthy successful attack exists.  Because enlarging a
static threshold only gives the attacker more room, the set of safe constants
is a down-closed interval ``[0, c*]``; the most permissive (lowest-FAR) safe
choice is its upper end ``c*``, which this module finds by bisection over
Algorithm 1 calls.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attack_synthesis import synthesize_attack
from repro.core.problem import SynthesisProblem
from repro.core.session import SynthesisSession
from repro.core.synthesis_result import ThresholdSynthesisResult
from repro.detectors.threshold import ThresholdVector
from repro.registry import SYNTHESIZERS
from repro.utils.results import SolveStatus, SynthesisRecord
from repro.utils.validation import ValidationError, check_positive


@SYNTHESIZERS.register("static")
@dataclass
class StaticThresholdSynthesizer:
    """Bisection search for the largest safe static threshold.

    Parameters
    ----------
    backend:
        Attack-synthesis backend name or instance.
    tolerance:
        Absolute bisection tolerance on the threshold value.
    max_rounds:
        Safety cap on the number of Algorithm 1 calls.
    initial_upper:
        Optional starting upper bound for the search; when omitted it is
        taken from the maximal residue of the unconstrained attack (times a
        safety factor), which is always an unsafe value if any attack exists.
    reuse_session:
        When True (default) all Algorithm 1 probes run through one
        :class:`~repro.core.session.SynthesisSession`, so the encoding and
        backend state are built once per problem; ``False`` keeps the legacy
        one-encoding-per-call behaviour (results are bit-identical — the flag
        exists for benchmarking and debugging).
    """

    backend: str | object = "lp"
    tolerance: float = 1e-3
    max_rounds: int = 60
    initial_upper: float | None = None
    time_budget_per_call: float | None = None
    reuse_session: bool = True

    def __post_init__(self) -> None:
        self.tolerance = check_positive("tolerance", self.tolerance)

    # ------------------------------------------------------------------
    def _open_session(self, problem: SynthesisProblem) -> SynthesisSession | None:
        return SynthesisSession(problem, backend=self.backend) if self.reuse_session else None

    def _call(
        self,
        problem: SynthesisProblem,
        threshold: ThresholdVector | None,
        session: SynthesisSession | None,
    ):
        if session is None:
            return synthesize_attack(
                problem,
                threshold=threshold,
                backend=self.backend,
                time_budget=self.time_budget_per_call,
            )
        return session.solve(threshold, time_budget=self.time_budget_per_call)

    def _is_safe(
        self,
        problem: SynthesisProblem,
        value: float,
        session: SynthesisSession | None,
    ) -> tuple[bool, SolveStatus, float]:
        threshold = problem.static_threshold(value)
        result = self._call(problem, threshold, session)
        return (not result.found), result.status, result.elapsed

    # ------------------------------------------------------------------
    def synthesize(
        self, problem: SynthesisProblem, session: SynthesisSession | None = None
    ) -> ThresholdSynthesisResult:
        """Find the largest safe static threshold by bisection.

        ``session`` lets a caller (the pipeline, the batch runner) share one
        incremental session across several algorithms; when omitted the
        bisection opens its own (or falls back to per-call encodings when
        ``reuse_session`` is False).
        """
        if session is None:
            session = self._open_session(problem)
        history: list[SynthesisRecord] = []
        total_time = 0.0

        unconstrained = self._call(problem, None, session)
        total_time += unconstrained.elapsed
        rounds = 1
        if not unconstrained.found:
            # Existing monitors already block every attack; any threshold is safe.
            threshold = problem.static_threshold(np.inf)
            return ThresholdSynthesisResult(
                threshold=threshold,
                rounds=rounds,
                converged=unconstrained.status is SolveStatus.UNSAT,
                status=unconstrained.status,
                vulnerable_without_detector=False,
                history=history,
                total_solver_time=total_time,
                algorithm="static",
            )

        max_residue = float(np.max(unconstrained.residue_norms))
        upper = self.initial_upper if self.initial_upper is not None else max(2.0 * max_residue, 1e-6)
        lower = 0.0

        # Ensure the upper end really is unsafe; if it is safe we are done early.
        safe_upper, status_upper, elapsed = self._is_safe(problem, upper, session)
        total_time += elapsed
        rounds += 1
        history.append(
            SynthesisRecord(
                round_index=rounds,
                action=f"probe upper={upper:.6g} safe={safe_upper}",
                threshold=upper,
                solver_time=elapsed,
            )
        )
        if safe_upper:
            threshold = problem.static_threshold(upper)
            return ThresholdSynthesisResult(
                threshold=threshold,
                rounds=rounds,
                converged=status_upper is SolveStatus.UNSAT,
                status=status_upper,
                vulnerable_without_detector=True,
                history=history,
                total_solver_time=total_time,
                algorithm="static",
            )

        best_safe = None
        final_status = SolveStatus.UNKNOWN
        while upper - lower > self.tolerance and rounds < self.max_rounds:
            middle = 0.5 * (lower + upper)
            safe, status, elapsed = self._is_safe(problem, middle, session)
            total_time += elapsed
            rounds += 1
            history.append(
                SynthesisRecord(
                    round_index=rounds,
                    action=f"probe {middle:.6g} safe={safe}",
                    threshold=middle,
                    solver_time=elapsed,
                )
            )
            if safe:
                best_safe = middle
                final_status = status
                lower = middle
            else:
                upper = middle

        if best_safe is None:
            # Even tiny thresholds admit attacks within tolerance; fall back to
            # the lower end of the bracket (threshold 0 alarms on everything
            # and is therefore trivially safe).
            best_safe = lower
            final_status = SolveStatus.UNSAT if lower == 0.0 else final_status

        threshold = problem.static_threshold(best_safe)
        converged = final_status is SolveStatus.UNSAT
        return ThresholdSynthesisResult(
            threshold=threshold,
            rounds=rounds,
            converged=converged,
            status=final_status,
            vulnerable_without_detector=True,
            history=history,
            total_solver_time=total_time,
            algorithm="static",
        )


def verify_no_attack(
    problem: SynthesisProblem,
    threshold: ThresholdVector,
    backend: str | object = "lp",
    time_budget: float | None = None,
) -> bool:
    """Convenience check: does ``threshold`` provably block every stealthy attack?"""
    result = synthesize_attack(problem, threshold=threshold, backend=backend, time_budget=time_budget)
    if result.found:
        return False
    if result.status is not SolveStatus.UNSAT:
        raise ValidationError("verification inconclusive (solver returned UNKNOWN)")
    return True
