"""Algorithm 1 — attack-vector synthesis (``ATTVECSYN``).

Given the problem instance, a candidate threshold vector and a backend, decide
whether a false-data-injection attack exists that

* keeps every residue strictly below the threshold,
* satisfies all existing monitoring constraints, and
* makes the closed loop miss its performance criterion,

and if so return the concrete attack vector together with the deterministic
trace it induces (which the threshold-synthesis loops mine for residues).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.attacks.fdi import FDIAttack
from repro.core.encoding import AttackEncoding
from repro.core.problem import SynthesisProblem
from repro.detectors.threshold import ThresholdVector
from repro.falsification.registry import get_backend
from repro.lti.simulate import SimulationTrace
from repro.utils.results import SolveStatus


@dataclass
class AttackSynthesisResult:
    """Outcome of one ``ATTVECSYN`` call.

    Attributes
    ----------
    status:
        ``SAT`` — stealthy successful attack found; ``UNSAT`` — provably none
        exists (under the backend's encoding); ``UNKNOWN`` — undecided.
    attack:
        The synthesized attack vector (``None`` unless ``SAT``).
    trace:
        Deterministic (noiseless) closed-loop trace under the attack.
    residue_norms:
        Per-sample residue norms of that trace (the quantities the
        threshold-synthesis algorithms pivot on).
    initial_state:
        The initial plant state chosen by the solver (equals the problem's
        ``x0`` unless an initial box was given).
    verified:
        True when re-simulating the attack confirmed stealth and pfc
        violation (a consistency check between encoder and simulator).
    diagnostics:
        Backend statistics.
    """

    status: SolveStatus
    attack: FDIAttack | None = None
    trace: SimulationTrace | None = None
    residue_norms: np.ndarray | None = None
    initial_state: np.ndarray | None = None
    verified: bool = False
    elapsed: float = 0.0
    diagnostics: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        """Truthiness mirrors the paper's ``if ATTVECSYN(...)`` usage."""
        return self.status is SolveStatus.SAT

    @property
    def found(self) -> bool:
        """True when an attack vector was synthesized."""
        return self.status is SolveStatus.SAT


def synthesize_attack(
    problem: SynthesisProblem,
    threshold: ThresholdVector | None = None,
    backend: str | object = "lp",
    time_budget: float | None = None,
    verify: bool = True,
    **backend_kwargs,
) -> AttackSynthesisResult:
    """Run Algorithm 1 on ``problem`` with the candidate ``threshold``.

    Parameters
    ----------
    problem:
        The synthesis problem instance ``<S, C, pfc>`` plus attacker model.
    threshold:
        Candidate residue thresholds; ``None`` (or an all-unset vector)
        models the system without a residue detector.
    backend:
        ``"lp"`` (default), ``"smt"``, ``"optimizer"`` or a backend instance.
    time_budget:
        Optional wall-clock budget in seconds for the backend (the paper used
        a 12-hour Z3 timeout; our instances need seconds).
    verify:
        Re-simulate the synthesized attack and check stealth / pfc violation
        on the concrete trace.
    """
    start = time.monotonic()
    encoding = AttackEncoding(problem=problem, threshold=threshold)
    solver = get_backend(backend, **backend_kwargs)
    answer = solver.solve(encoding, time_budget=time_budget)
    elapsed = time.monotonic() - start

    if not answer.found_attack:
        return AttackSynthesisResult(
            status=answer.status,
            elapsed=elapsed,
            diagnostics=answer.diagnostics,
        )

    attack = encoding.unrolling.attack_from_theta(answer.theta)
    initial_state = encoding.unrolling.initial_state_from_theta(answer.theta)
    trace = problem.simulate(attack=attack, with_noise=False, x0=initial_state)
    residue_norms = problem.residue_norms(trace.residues)

    verified = True
    if verify:
        pfc_ok = problem.pfc_satisfied(trace)
        mdc_alarm = problem.mdc_alarm(trace)
        detector_alarm = (
            problem.detector_alarm(trace, threshold) if threshold is not None else False
        )
        verified = (not pfc_ok) and (not mdc_alarm) and (not detector_alarm)

    return AttackSynthesisResult(
        status=SolveStatus.SAT,
        attack=attack,
        trace=trace,
        residue_norms=residue_norms,
        initial_state=initial_state,
        verified=verified,
        elapsed=elapsed,
        diagnostics=answer.diagnostics,
    )
