"""Algorithm 1 — attack-vector synthesis (``ATTVECSYN``).

Given the problem instance, a candidate threshold vector and a backend, decide
whether a false-data-injection attack exists that

* keeps every residue strictly below the threshold,
* satisfies all existing monitoring constraints, and
* makes the closed loop miss its performance criterion,

and if so return the concrete attack vector together with the deterministic
trace it induces (which the threshold-synthesis loops mine for residues).

This one-shot entry point is a :class:`~repro.core.session.SynthesisSession`
of length one; loops that query the same problem repeatedly should open a
session directly so the encoding and the backend's solver state are built
once instead of once per call.
"""

from __future__ import annotations

from repro.obs.clock import Stopwatch

from repro.core.problem import SynthesisProblem
from repro.core.session import AttackSynthesisResult, SynthesisSession
from repro.detectors.threshold import ThresholdVector

__all__ = ["AttackSynthesisResult", "synthesize_attack"]


def synthesize_attack(
    problem: SynthesisProblem,
    threshold: ThresholdVector | None = None,
    backend: str | object = "lp",
    time_budget: float | None = None,
    verify: bool = True,
    **backend_kwargs,
) -> AttackSynthesisResult:
    """Run Algorithm 1 on ``problem`` with the candidate ``threshold``.

    Parameters
    ----------
    problem:
        The synthesis problem instance ``<S, C, pfc>`` plus attacker model.
    threshold:
        Candidate residue thresholds; ``None`` (or an all-unset vector)
        models the system without a residue detector.
    backend:
        ``"lp"`` (default), ``"smt"``, ``"optimizer"`` or a backend instance.
    time_budget:
        Optional wall-clock budget in seconds for the backend (the paper used
        a 12-hour Z3 timeout; our instances need seconds).
    verify:
        Re-simulate the synthesized attack and check stealth / pfc violation
        on the concrete trace.
    """
    start = Stopwatch()
    session = SynthesisSession(problem, backend=backend, verify=verify, **backend_kwargs)
    result = session.solve(threshold, time_budget=time_budget)
    # One-shot elapsed covers the encoding build as well (historical semantics).
    result.elapsed = start.elapsed()
    return result
