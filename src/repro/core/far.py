"""False-alarm-rate (FAR) evaluation.

Reproduces the paper's §IV study: draw a population of random bounded
measurement-noise vectors, keep only those that (a) keep the performance
criterion satisfied and (b) pass the existing monitors, then report — for
each candidate detector — the fraction of the surviving benign traces on
which it raises an alarm.

The benign population is generated with the vectorized fleet stepper
(:func:`repro.runtime.fleet.batch_simulate`): all trials advance together in
batched numpy instead of one Python simulation loop per trial, and detector
evaluation runs over the stacked ``(N, T, m)`` residue tensor in one pass
per detector.  Each trial keeps its own noise stream (one spawned RNG per
trial, drawn in the same order as the historical per-trace loop), so rates
are identical to the sequential implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import SynthesisProblem
from repro.detectors.threshold import ThresholdVector, alarm_comparison
from repro.lti.simulate import SimulationTrace
from repro.noise.models import BoundedUniformNoise, NoiseModel
from repro.runtime.fleet import batch_simulate
from repro.utils.rng import spawn_rngs
from repro.utils.validation import ValidationError, check_positive


@dataclass
class FalseAlarmStudy:
    """Result of one FAR study.

    Attributes
    ----------
    rates:
        Mapping from detector label to false alarm rate (fraction in [0, 1]).
    generated:
        Number of noise vectors drawn.
    kept:
        Number of benign traces surviving the pfc / mdc filters (the FAR
        denominators).
    discarded_pfc / discarded_mdc:
        How many trials each filter removed.
    """

    rates: dict[str, float] = field(default_factory=dict)
    generated: int = 0
    kept: int = 0
    discarded_pfc: int = 0
    discarded_mdc: int = 0
    details: dict = field(default_factory=dict)

    def rate(self, label: str) -> float:
        """FAR of one detector (by label)."""
        return self.rates[label]


class FalseAlarmEvaluator:
    """Monte-Carlo FAR evaluation over benign (noise-only) traces.

    Parameters
    ----------
    problem:
        The synthesis problem; its closed loop, pfc and mdc define the benign
        population and the filters.
    noise_model:
        Measurement-noise model; defaults to bounded uniform noise with
        per-channel bounds of one standard deviation of the plant's
        measurement-noise covariance (the paper's "suitably small range").
    count:
        Number of noise vectors to draw (the paper used 1000).
    seed:
        RNG seed for reproducibility.
    include_process_noise:
        When True the plant's process noise is also sampled (the paper's
        study perturbs measurements only, so the default is False).
    filter_pfc / filter_mdc:
        Whether to discard trials violating pfc or alarming mdc before
        computing rates (both True per the paper).
    initial_state_spread:
        Optional per-state half-widths of a uniform box around the problem's
        nominal initial state.  Each benign trial draws its initial plant
        state from that box while the estimator still starts at the nominal
        value, producing the realistic early innovation transient of a system
        whose operating point is only approximately known.  ``None`` keeps
        the nominal initial state for every trial.
    engine / engine_options:
        Execution engine for the benign-population simulation, resolved
        through :data:`repro.registry.ENGINES` (``"legacy"`` or ``"fused"``).
        The fused float64 engine is gated to stay bit-identical, so rates
        match the legacy engine exactly.
    """

    def __init__(
        self,
        problem: SynthesisProblem,
        noise_model: NoiseModel | None = None,
        count: int = 1000,
        seed: int | None = 0,
        include_process_noise: bool = False,
        filter_pfc: bool = True,
        filter_mdc: bool = True,
        initial_state_spread: np.ndarray | None = None,
        engine: str = "legacy",
        engine_options: dict | None = None,
    ):
        self.problem = problem
        self.count = int(check_positive("count", count))
        self.seed = seed
        self.include_process_noise = include_process_noise
        self.filter_pfc = filter_pfc
        self.filter_mdc = filter_mdc
        if initial_state_spread is not None:
            initial_state_spread = np.asarray(initial_state_spread, dtype=float).reshape(-1)
            if initial_state_spread.size != problem.system.plant.n_states:
                raise ValidationError(
                    "initial_state_spread must have one entry per plant state"
                )
            if np.any(initial_state_spread < 0):
                raise ValidationError("initial_state_spread must be non-negative")
        self.initial_state_spread = initial_state_spread
        if noise_model is None:
            noise_model = self.default_noise_model(problem)
        if noise_model.dimension != problem.n_outputs:
            raise ValidationError(
                f"noise model dimension {noise_model.dimension} does not match "
                f"the plant's {problem.n_outputs} outputs"
            )
        self.noise_model = noise_model
        self.engine = str(engine)
        self.engine_options = dict(engine_options or {})
        self._traces: list[SimulationTrace] | None = None
        self._residue_stack: np.ndarray | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def default_noise_model(problem: SynthesisProblem, scale: float = 1.0) -> NoiseModel:
        """Bounded uniform noise with bounds of ``scale`` sigma of the measurement noise."""
        std = problem.system.plant.measurement_noise_std()
        if not np.any(std > 0):
            raise ValidationError(
                "plant has no measurement-noise covariance; pass an explicit noise_model"
            )
        return BoundedUniformNoise(bounds=float(scale) * std)

    # ------------------------------------------------------------------
    def benign_traces(self) -> list[SimulationTrace]:
        """The filtered benign population (memoised across evaluate() calls).

        All trials are simulated together through the vectorized fleet
        stepper; only the per-trial noise *sampling* (one independent RNG per
        trial, same draw order as the historical sequential loop) and the
        pfc/mdc filtering remain per trial.
        """
        if self._traces is not None:
            return self._traces
        problem = self.problem
        plant = problem.system.plant
        T, n, m = problem.horizon, plant.n_states, plant.n_outputs
        count = self.count
        rngs = spawn_rngs(self.seed, count)

        measurement_noise = np.zeros((count, T, m))
        process_noise = None
        draw_process = self.include_process_noise and plant.Q_w is not None
        if draw_process:
            process_noise = np.zeros((count, T, n))
        x0 = np.tile(problem.x0, (count, 1))
        for i, rng in enumerate(rngs):
            measurement_noise[i] = self.noise_model.sample(T, rng)
            if draw_process:
                process_noise[i] = rng.multivariate_normal(np.zeros(n), plant.Q_w, size=T)
            if self.initial_state_spread is not None:
                offset = rng.uniform(-1.0, 1.0, size=self.initial_state_spread.size)
                x0[i] = problem.x0 + offset * self.initial_state_spread

        fleet = batch_simulate(
            problem.system,
            T,
            x0=x0,
            measurement_noise=measurement_noise,
            process_noise=process_noise,
            engine=self.engine,
            engine_options=self.engine_options,
        )

        traces: list[SimulationTrace] = []
        self._discarded_pfc = 0
        self._discarded_mdc = 0
        for i in range(count):
            trace = fleet.instance(i)
            if self.filter_pfc and not problem.pfc_satisfied(trace):
                self._discarded_pfc += 1
                continue
            if self.filter_mdc and problem.mdc_alarm(trace):
                self._discarded_mdc += 1
                continue
            traces.append(trace)
        self._traces = traces
        self._residue_stack = None
        return traces

    def _residues(self) -> np.ndarray:
        """The surviving population's residues stacked into ``(kept, T, m)``."""
        if getattr(self, "_residue_stack", None) is None:
            traces = self.benign_traces()
            if traces:
                self._residue_stack = np.stack([trace.residues for trace in traces])
            else:
                self._residue_stack = np.zeros((0, self.problem.horizon, self.problem.n_outputs))
        return self._residue_stack

    # ------------------------------------------------------------------
    def evaluate(self, detectors: dict[str, ThresholdVector]) -> FalseAlarmStudy:
        """Compute the FAR of each labelled detector over the benign population."""
        if not detectors:
            raise ValidationError("need at least one detector to evaluate")
        traces = self.benign_traces()
        study = FalseAlarmStudy(
            generated=self.count,
            kept=len(traces),
            discarded_pfc=getattr(self, "_discarded_pfc", 0),
            discarded_mdc=getattr(self, "_discarded_mdc", 0),
        )
        if not traces:
            raise ValidationError(
                "every benign trace was filtered out; reduce the noise bounds or "
                "disable the filters"
            )
        # One vectorized pass per detector over the stacked residue tensor:
        # per-trace norms and threshold comparisons ride the flattened
        # (kept * T, m) axis, which is row-for-row the per-trace computation.
        residues = self._residues()
        kept, horizon, m = residues.shape
        for label, threshold in detectors.items():
            norms = threshold.residue_norms(residues.reshape(-1, m)).reshape(kept, horizon)
            alarms = alarm_comparison(norms, threshold.effective(horizon))
            study.rates[label] = float(np.mean(np.any(alarms, axis=1)))
        return study

    def evaluate_single(self, threshold: ThresholdVector, label: str = "detector") -> float:
        """FAR of a single detector."""
        return self.evaluate({label: threshold}).rates[label]
