"""Algorithm 2 — pivot-based variable-threshold synthesis.

Counterexample-guided loop: synthesize an attack, place (or tighten) a
threshold at a pivot instant chosen from the attack's residues, repeat until
no stealthy successful attack remains.  The refinement follows the paper's
three cases:

* **Case 1a** — the current attack produced, before some already-thresholded
  instant ``p``, a residue at least as large as ``Th[p]``: threshold the
  largest such residue (monotonicity is preserved automatically).
* **Case 1b** — otherwise, threshold the largest residue occurring after some
  thresholded instant, provided doing so keeps the vector monotonically
  decreasing.
* **Case 1c** — otherwise reduce an existing threshold: pick the one whose
  gap to the attack's residue is smallest, set it to that residue and clamp
  all later thresholds to keep the vector monotone.

Termination is guaranteed for a positive strictness margin: cases 1a/1b add
at most ``T`` new thresholds and every case 1c step lowers a threshold by at
least the margin.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.core.attack_synthesis import synthesize_attack
from repro.core.problem import SynthesisProblem
from repro.core.session import SynthesisSession
from repro.core.synthesis_result import ThresholdSynthesisResult
from repro.detectors.threshold import ThresholdVector
from repro.registry import SYNTHESIZERS
from repro.utils.results import SolveStatus, SynthesisRecord
from repro.utils.validation import ValidationError

logger = logging.getLogger(__name__)


@SYNTHESIZERS.register("pivot")
@dataclass
class PivotThresholdSynthesizer:
    """Pivot-based synthesis of a monotonically decreasing threshold vector.

    Parameters
    ----------
    backend:
        Attack-synthesis backend name or instance (``"lp"``, ``"smt"``, ...).
    max_rounds:
        Safety cap on the number of Algorithm 1 calls.
    time_budget_per_call:
        Optional per-call wall-clock budget (the paper's 12-hour analogue).
    pivot_rule:
        ``"max-residue"`` (paper) or ``"first-violation"`` (ablation): which
        instant of the first counterexample receives the first threshold.
    min_threshold:
        Floor below which thresholds are never placed (guards against
        degenerate zero thresholds when an attack produces a zero residue at
        the pivot instant).
    reuse_session:
        When True (default) all Algorithm 1 rounds run through one
        :class:`~repro.core.session.SynthesisSession`, so the encoding and
        backend state are built once per problem; ``False`` keeps the legacy
        one-encoding-per-call behaviour (results are bit-identical — the flag
        exists for benchmarking and debugging).
    """

    backend: str | object = "lp"
    max_rounds: int = 500
    time_budget_per_call: float | None = None
    pivot_rule: str = "max-residue"
    min_threshold: float = 0.0
    reuse_session: bool = True
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.pivot_rule not in {"max-residue", "first-violation"}:
            raise ValidationError("pivot_rule must be 'max-residue' or 'first-violation'")

    # ------------------------------------------------------------------
    def _open_session(self, problem: SynthesisProblem) -> SynthesisSession | None:
        return SynthesisSession(problem, backend=self.backend) if self.reuse_session else None

    def _call(
        self,
        problem: SynthesisProblem,
        threshold: ThresholdVector | None,
        session: SynthesisSession | None,
    ):
        if session is None:
            return synthesize_attack(
                problem,
                threshold=threshold,
                backend=self.backend,
                time_budget=self.time_budget_per_call,
            )
        return session.solve(threshold, time_budget=self.time_budget_per_call)

    def _initial_pivot(self, norms: np.ndarray) -> int:
        if self.pivot_rule == "max-residue":
            return int(np.argmax(norms))
        nonzero = np.flatnonzero(norms > self.min_threshold)
        return int(nonzero[0]) if nonzero.size else int(np.argmax(norms))

    # ------------------------------------------------------------------
    def synthesize(
        self, problem: SynthesisProblem, session: SynthesisSession | None = None
    ) -> ThresholdSynthesisResult:
        """Run the full synthesis loop on ``problem``.

        ``session`` lets a caller (the pipeline, the batch runner) share one
        incremental session across several algorithms; when omitted the loop
        opens its own (or falls back to per-call encodings when
        ``reuse_session`` is False).
        """
        if session is None:
            session = self._open_session(problem)
        threshold = problem.fresh_threshold()
        history: list[SynthesisRecord] = []
        total_time = 0.0

        first = self._call(problem, None, session)
        total_time += first.elapsed
        rounds = 1
        if not first.found:
            return ThresholdSynthesisResult(
                threshold=threshold,
                rounds=rounds,
                converged=first.status is SolveStatus.UNSAT,
                status=first.status,
                vulnerable_without_detector=False,
                history=history,
                total_solver_time=total_time,
                algorithm="pivot",
            )

        norms = first.residue_norms
        pivot = self._initial_pivot(norms)
        threshold.set_value(pivot, max(norms[pivot], self.min_threshold))
        history.append(
            SynthesisRecord(
                round_index=rounds,
                action=f"initial pivot at k={pivot}",
                threshold=threshold.copy(),
                attack=first.attack,
                solver_time=first.elapsed,
            )
        )

        final_status = SolveStatus.UNKNOWN
        while rounds < self.max_rounds:
            result = self._call(problem, threshold, session)
            total_time += result.elapsed
            rounds += 1
            final_status = result.status
            if not result.found:
                break
            norms = result.residue_norms
            before = threshold.values.copy()
            action = self._refine(threshold, norms)
            if self.verbose:  # pragma: no cover - logging only
                logger.info("round %d: %s", rounds, action)
            history.append(
                SynthesisRecord(
                    round_index=rounds,
                    action=action,
                    threshold=threshold.copy(),
                    attack=result.attack,
                    solver_time=result.elapsed,
                )
            )
            if np.array_equal(before, threshold.values):
                # The refinement is blocked (typically by the min_threshold
                # floor): no further progress is possible.
                final_status = SolveStatus.UNKNOWN
                break

        converged = final_status is SolveStatus.UNSAT
        return ThresholdSynthesisResult(
            threshold=threshold,
            rounds=rounds,
            converged=converged,
            status=final_status,
            vulnerable_without_detector=True,
            history=history,
            total_solver_time=total_time,
            algorithm="pivot",
        )

    # ------------------------------------------------------------------
    def _refine(self, threshold: ThresholdVector, norms: np.ndarray) -> str:
        """Apply one refinement (cases 1a / 1b / 1c) in place; returns a description."""
        horizon = len(norms)
        set_indices = [int(i) for i in threshold.set_indices()]

        # ----- Case 1a --------------------------------------------------
        for p in set_indices:
            earlier = [k for k in range(p) if norms[k] >= threshold[p] and not threshold.is_set(k)]
            if not earlier:
                continue
            i = max(earlier, key=lambda k: norms[k])
            value = threshold.monotone_cap(i, float(norms[i]))
            value = max(value, self.min_threshold)
            threshold.set_value(i, value)
            threshold.clamp_successors(i)
            return f"case-1a new threshold Th[{i}]={value:.6g} (before p={p})"

        # ----- Case 1b --------------------------------------------------
        for p in set_indices:
            later = [k for k in range(p + 1, horizon) if not threshold.is_set(k)]
            if not later:
                continue
            i = max(later, key=lambda k: norms[k])
            if norms[i] <= self.min_threshold:
                continue
            later_thresholds = [threshold[k] for k in set_indices if k > i]
            if any(norms[i] < value for value in later_thresholds):
                continue
            value = threshold.monotone_cap(i, float(norms[i]))
            value = max(value, self.min_threshold)
            threshold.set_value(i, value)
            threshold.clamp_successors(i)
            return f"case-1b new threshold Th[{i}]={value:.6g} (after p={p})"

        # ----- Case 1c --------------------------------------------------
        reducible = [
            k for k in set_indices if max(float(norms[k]), self.min_threshold) < threshold[k]
        ]
        if not reducible:
            return "case-1c blocked by min_threshold floor (no progress possible)"
        i = min(reducible, key=lambda k: threshold[k] - norms[k])
        value = max(float(norms[i]), self.min_threshold)
        threshold.set_value(i, value)
        threshold.clamp_successors(i)
        return f"case-1c reduced Th[{i}] to {value:.6g}"
