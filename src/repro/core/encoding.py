"""Constraint encoding shared by the attack-synthesis backends.

Algorithm 1 asks for an attack vector such that

* every residue stays strictly below its threshold (stealth w.r.t. the
  residue detector),
* every existing monitoring constraint ``mdc`` is satisfied (stealth w.r.t.
  the plant monitors), and
* the performance criterion ``pfc`` is violated.

For the noiseless LTI closed loop all involved signals are affine in the
decision vector, so the first two items become a conjunction of affine
constraints and the third a disjunction of affine constraints (one branch per
way of violating a ``pfc`` condition).  This module materialises exactly that
structure; the LP backend enumerates the branches and the SMT backend hands
the disjunction to the DPLL(T) solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import SynthesisProblem
from repro.core.unroll import AffineConstraint, ClosedLoopUnrolling
from repro.detectors.threshold import ThresholdVector
from repro.utils.validation import ValidationError


@dataclass
class AttackEncoding:
    """Affine-constraint view of one Algorithm 1 query.

    Attributes
    ----------
    problem:
        The synthesis problem being queried.
    threshold:
        Candidate threshold vector (``None`` disables the residue detector,
        matching the first call of the synthesis loops).
    unrolling:
        The affine closed-loop unrolling used to build every constraint.
    """

    problem: SynthesisProblem
    threshold: ThresholdVector | None = None
    unrolling: ClosedLoopUnrolling = None
    _base: list[AffineConstraint] = field(default_factory=list, repr=False)
    _branches: list[AffineConstraint] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.problem.residue_norm != "inf":
            raise ValidationError(
                "formal attack synthesis requires the infinity residue norm "
                "(problem.residue_norm='inf'); other norms are only supported "
                "for simulation-based evaluation"
            )
        if self.unrolling is None:
            self.unrolling = self.problem.unrolling()
        self._base = self._build_base_constraints()
        self._branches = self._build_violation_branches()

    # ------------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        """Number of decision variables."""
        return self.unrolling.n_variables

    @property
    def variable_names(self) -> list[str]:
        """Names of the decision variables (for the SMT backend and diagnostics)."""
        return self.unrolling.variable_names

    def base_constraints(self) -> list[AffineConstraint]:
        """Stealth + monitor constraints that must all hold."""
        return list(self._base)

    def violation_branches(self) -> list[AffineConstraint]:
        """One constraint per way of violating the performance criterion."""
        return list(self._branches)

    def variable_bounds(self) -> list[tuple[float | None, float | None]]:
        """Box bounds on the decision variables (attack bound + initial box)."""
        return self.unrolling.variable_bounds(self.problem.attack_bound)

    # ------------------------------------------------------------------
    def _strictified(
        self, row: np.ndarray, constant: float, label: str, kind: str = "generic"
    ) -> AffineConstraint:
        """Encode a strict inequality ``row·theta + constant < 0`` robustly.

        With a positive strictness margin the constraint becomes the
        non-strict ``row·theta + constant + margin <= 0``; with zero margin
        the strict flag is kept (the SMT backend handles it exactly, the LP
        backend treats it as non-strict).
        """
        margin = float(self.problem.strictness)
        if margin > 0:
            return AffineConstraint(
                row=row, constant=constant + margin, strict=False, label=label, kind=kind
            )
        return AffineConstraint(row=row, constant=constant, strict=True, label=label, kind=kind)

    def _build_base_constraints(self) -> list[AffineConstraint]:
        constraints: list[AffineConstraint] = []
        constraints.extend(self._stealth_constraints())
        constraints.extend(self._monitor_constraints())
        return constraints

    def _stealth_constraints(self) -> list[AffineConstraint]:
        """``|z_k[i]| / w_i < Th[k]`` for every instance with a finite threshold."""
        if self.threshold is None:
            return []
        constraints: list[AffineConstraint] = []
        horizon = self.problem.horizon
        effective = self.threshold.effective(horizon)
        weights = self.problem.residue_weights
        if weights is None:
            weights = np.ones(self.problem.n_outputs)
        for k in range(horizon):
            bound = effective[k]
            if not np.isfinite(bound):
                continue
            residue = self.unrolling.residue_map(k)
            for channel in range(self.problem.n_outputs):
                row, constant = residue.row(channel)
                scale = float(weights[channel])
                row = row / scale
                constant = constant / scale
                constraints.append(
                    self._strictified(
                        row, constant - bound, f"stealth[z{channel}@{k}]<Th", kind="stealth"
                    )
                )
                constraints.append(
                    self._strictified(
                        -row, -constant - bound, f"stealth[-z{channel}@{k}]<Th", kind="stealth"
                    )
                )
        return constraints

    def _monitor_constraints(self) -> list[AffineConstraint]:
        """All ``mdc`` conditions mapped onto the decision variables.

        The encoding requires the monitors to be satisfied at every sampling
        instance.  This is the conservative reading of dead-zone monitors
        (the attacker never violates them); see
        ``DeadZoneMonitor.stealth_windows`` for the exact semantics, which the
        SMT backend can optionally enumerate.
        """
        constraints: list[AffineConstraint] = []
        mdc = self.problem.mdc
        if len(mdc) == 0:
            return constraints
        dt = self.problem.dt
        for k in range(self.problem.horizon):
            for condition in mdc.conditions_at(k, dt):
                row = np.zeros(self.n_variables)
                constant = condition.constant
                for sample, channel, coefficient in condition.terms:
                    sample_row, sample_constant = self.unrolling.measurement_map(sample).row(channel)
                    row = row + coefficient * sample_row
                    constant += coefficient * sample_constant
                if condition.upper is not None:
                    constraints.append(
                        AffineConstraint(
                            row=row,
                            constant=constant - condition.upper,
                            strict=False,
                            label=f"mdc[{condition.label}]<=ub",
                            kind="mdc",
                        )
                    )
                if condition.lower is not None:
                    constraints.append(
                        AffineConstraint(
                            row=-row,
                            constant=condition.lower - constant,
                            strict=False,
                            label=f"mdc[{condition.label}]>=lb",
                            kind="mdc",
                        )
                    )
        return constraints

    def _build_violation_branches(self) -> list[AffineConstraint]:
        """Each branch asserts that one ``pfc`` condition fails (strictly)."""
        branches: list[AffineConstraint] = []
        for condition in self.problem.pfc.conditions(self.problem.horizon):
            row = np.zeros(self.n_variables)
            constant = condition.constant
            for sample, index, coefficient in condition.terms:
                sample_row, sample_constant = self.unrolling.state_map(sample).row(index)
                row = row + coefficient * sample_row
                constant += coefficient * sample_constant
            if condition.lower is not None:
                # Violation: value < lower.
                branches.append(
                    self._strictified(
                        row,
                        constant - condition.lower,
                        f"violate[{condition.label}]<lb",
                        kind="violation",
                    )
                )
            if condition.upper is not None:
                # Violation: value > upper.
                branches.append(
                    self._strictified(
                        -row,
                        condition.upper - constant,
                        f"violate[{condition.label}]>ub",
                        kind="violation",
                    )
                )
        return branches

    # ------------------------------------------------------------------
    def theta_satisfies_base(self, theta: np.ndarray) -> bool:
        """Check a candidate decision vector against all base constraints."""
        theta = np.asarray(theta, dtype=float).reshape(-1)
        return not any(constraint.violated_by(theta) for constraint in self._base)

    def theta_violates_pfc(self, theta: np.ndarray) -> bool:
        """Check whether a candidate decision vector triggers some violation branch."""
        theta = np.asarray(theta, dtype=float).reshape(-1)
        for branch in self._branches:
            value = float(branch.row @ theta) + branch.constant
            if value <= 0.0:
                return True
        return False
