"""Constraint encoding shared by the attack-synthesis backends.

Algorithm 1 asks for an attack vector such that

* every residue stays strictly below its threshold (stealth w.r.t. the
  residue detector),
* every existing monitoring constraint ``mdc`` is satisfied (stealth w.r.t.
  the plant monitors), and
* the performance criterion ``pfc`` is violated.

For the noiseless LTI closed loop all involved signals are affine in the
decision vector, so the first two items become a conjunction of affine
constraints and the third a disjunction of affine constraints (one branch per
way of violating a ``pfc`` condition).  This module materialises exactly that
structure; the LP backend enumerates the branches and the SMT backend hands
the disjunction to the DPLL(T) solver.

The encoding is split along the counterexample-guided synthesis loop's axis
of change: the horizon unrolling, the monitor (``mdc``) constraints and the
violation branches depend only on the problem and are built once; the stealth
constraints depend on the candidate threshold vector and are re-emitted per
round from a precomputed :class:`StealthTemplate` (fixed rows, per-round
constants).  :meth:`AttackEncoding.with_threshold` rebinds an encoding to a
new threshold in O(1) without touching the static blocks, which is what makes
:class:`~repro.core.session.SynthesisSession` cheap.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import SynthesisProblem
from repro.core.unroll import AffineConstraint, ClosedLoopUnrolling
from repro.detectors.threshold import ThresholdVector
from repro.utils.validation import ValidationError

# Count of full (static-block) encoding builds, for benchmarks and regression
# tests of the session engine: a synthesis loop routed through a session
# should register one build per problem, not one per round.
_FULL_BUILDS = 0


def encoding_build_count() -> int:
    """Number of full :class:`AttackEncoding` builds since interpreter start."""
    return _FULL_BUILDS


@dataclass(frozen=True)
class StealthTemplate:
    """Threshold-independent part of the stealth constraints.

    The stealth condition at instance ``k``, channel ``c`` is the pair
    ``±z_k[c] / w_c < Th[k]``; only the bound ``Th[k]`` changes between
    synthesis rounds.  The template stores, in exactly the emission order of
    the legacy per-round build (``k`` outer, channel inner, ``+`` row before
    ``-`` row), the scaled rows, scaled constants, per-row sample index and
    labels, so each round only subtracts the per-row bound.

    Attributes
    ----------
    rows:
        ``(2 * horizon * m, n_variables)`` stacked constraint rows.
    constants:
        ``(2 * horizon * m,)`` scaled affine constants (bound not applied).
    sample_index:
        ``(2 * horizon * m,)`` sampling instance of each row (for selecting
        the per-row threshold bound).
    labels:
        Constraint labels, aligned with ``rows``.
    """

    rows: np.ndarray
    constants: np.ndarray
    sample_index: np.ndarray
    labels: tuple[str, ...]

    @property
    def n_rows(self) -> int:
        """Total number of template rows (finite and not)."""
        return self.rows.shape[0]

    def bounds_per_row(self, effective: np.ndarray) -> np.ndarray:
        """Per-row threshold bound for one effective threshold vector."""
        return effective[self.sample_index]

    def finite_mask(self, effective: np.ndarray) -> np.ndarray:
        """Rows whose instance carries a finite threshold (emitted rows)."""
        return np.isfinite(self.bounds_per_row(effective))


@dataclass
class AttackEncoding:
    """Affine-constraint view of one Algorithm 1 query.

    Attributes
    ----------
    problem:
        The synthesis problem being queried.
    threshold:
        Candidate threshold vector (``None`` disables the residue detector,
        matching the first call of the synthesis loops).
    unrolling:
        The affine closed-loop unrolling used to build every constraint.
    """

    problem: SynthesisProblem
    threshold: ThresholdVector | None = None
    unrolling: ClosedLoopUnrolling = None
    _static: list[AffineConstraint] = field(default_factory=list, repr=False)
    _branches: list[AffineConstraint] = field(default_factory=list, repr=False)
    _stealth_template: StealthTemplate | None = field(default=None, repr=False)
    _stealth: list[AffineConstraint] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.problem.residue_norm != "inf":
            raise ValidationError(
                "formal attack synthesis requires the infinity residue norm "
                "(problem.residue_norm='inf'); other norms are only supported "
                "for simulation-based evaluation"
            )
        if self.unrolling is None:
            self.unrolling = self.problem.unrolling()
        self._static = self._monitor_constraints()
        self._branches = self._build_violation_branches()
        self._stealth_template = self._build_stealth_template()
        self._stealth = None
        global _FULL_BUILDS
        _FULL_BUILDS += 1

    # ------------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        """Number of decision variables."""
        return self.unrolling.n_variables

    @property
    def variable_names(self) -> list[str]:
        """Names of the decision variables (for the SMT backend and diagnostics)."""
        return self.unrolling.variable_names

    def base_constraints(self) -> list[AffineConstraint]:
        """Stealth + monitor constraints that must all hold."""
        if self._stealth is None:
            self._stealth = self.stealth_constraints(self.threshold)
        return self._stealth + self._static

    def static_constraints(self) -> list[AffineConstraint]:
        """The threshold-independent conjunctive block (monitor constraints)."""
        return list(self._static)

    def violation_branches(self) -> list[AffineConstraint]:
        """One constraint per way of violating the performance criterion."""
        return list(self._branches)

    def variable_bounds(self) -> list[tuple[float | None, float | None]]:
        """Box bounds on the decision variables (attack bound + initial box)."""
        return self.unrolling.variable_bounds(self.problem.attack_bound)

    @property
    def stealth_template(self) -> StealthTemplate:
        """The precomputed threshold-independent stealth structure."""
        return self._stealth_template

    # ------------------------------------------------------------------
    def with_threshold(self, threshold: ThresholdVector | None) -> "AttackEncoding":
        """Rebind this encoding to a new candidate threshold in O(1).

        The clone shares the unrolling, the monitor constraints, the
        violation branches and the stealth template with ``self``; only the
        (lazily built) stealth constraint list differs.
        """
        clone = copy.copy(self)
        clone.threshold = threshold
        clone._stealth = None
        return clone

    # ------------------------------------------------------------------
    def _strictified(
        self, row: np.ndarray, constant: float, label: str, kind: str = "generic"
    ) -> AffineConstraint:
        """Encode a strict inequality ``row·theta + constant < 0`` robustly.

        With a positive strictness margin the constraint becomes the
        non-strict ``row·theta + constant + margin <= 0``; with zero margin
        the strict flag is kept (the SMT backend handles it exactly, the LP
        backend treats it as non-strict).
        """
        margin = float(self.problem.strictness)
        if margin > 0:
            return AffineConstraint(
                row=row, constant=constant + margin, strict=False, label=label, kind=kind
            )
        return AffineConstraint(row=row, constant=constant, strict=True, label=label, kind=kind)

    def _build_stealth_template(self) -> StealthTemplate:
        """Precompute rows/constants of ``|z_k[i]| / w_i < Th[k]`` for every instance."""
        horizon = self.problem.horizon
        m = self.problem.n_outputs
        weights = self.problem.residue_weights
        if weights is None:
            weights = np.ones(m)
        rows = np.zeros((2 * horizon * m, self.n_variables))
        constants = np.zeros(2 * horizon * m)
        sample_index = np.zeros(2 * horizon * m, dtype=int)
        labels: list[str] = []
        position = 0
        for k in range(horizon):
            residue = self.unrolling.residue_map(k)
            for channel in range(m):
                row, constant = residue.row(channel)
                scale = float(weights[channel])
                row = row / scale
                constant = constant / scale
                rows[position] = row
                constants[position] = constant
                sample_index[position] = k
                labels.append(f"stealth[z{channel}@{k}]<Th")
                position += 1
                rows[position] = -row
                constants[position] = -constant
                sample_index[position] = k
                labels.append(f"stealth[-z{channel}@{k}]<Th")
                position += 1
        return StealthTemplate(
            rows=rows,
            constants=constants,
            sample_index=sample_index,
            labels=tuple(labels),
        )

    def stealth_constraints(
        self, threshold: ThresholdVector | None
    ) -> list[AffineConstraint]:
        """``|z_k[i]| / w_i < Th[k]`` for every instance with a finite threshold.

        Built from the precomputed template; rows, constants, labels and
        emission order are identical to a from-scratch per-round build.
        """
        if threshold is None:
            return []
        template = self._stealth_template
        effective = threshold.effective(self.problem.horizon)
        bounds = template.bounds_per_row(effective)
        constraints: list[AffineConstraint] = []
        for index in np.flatnonzero(np.isfinite(bounds)):
            constraints.append(
                self._strictified(
                    template.rows[index],
                    template.constants[index] - bounds[index],
                    template.labels[index],
                    kind="stealth",
                )
            )
        return constraints

    def _monitor_constraints(self) -> list[AffineConstraint]:
        """All ``mdc`` conditions mapped onto the decision variables.

        The encoding requires the monitors to be satisfied at every sampling
        instance.  This is the conservative reading of dead-zone monitors
        (the attacker never violates them); see
        ``DeadZoneMonitor.stealth_windows`` for the exact semantics, which the
        SMT backend can optionally enumerate.
        """
        constraints: list[AffineConstraint] = []
        mdc = self.problem.mdc
        if len(mdc) == 0:
            return constraints
        dt = self.problem.dt
        for k in range(self.problem.horizon):
            for condition in mdc.conditions_at(k, dt):
                row = np.zeros(self.n_variables)
                constant = condition.constant
                for sample, channel, coefficient in condition.terms:
                    sample_row, sample_constant = self.unrolling.measurement_map(sample).row(channel)
                    row = row + coefficient * sample_row
                    constant += coefficient * sample_constant
                if condition.upper is not None:
                    constraints.append(
                        AffineConstraint(
                            row=row,
                            constant=constant - condition.upper,
                            strict=False,
                            label=f"mdc[{condition.label}]<=ub",
                            kind="mdc",
                        )
                    )
                if condition.lower is not None:
                    constraints.append(
                        AffineConstraint(
                            row=-row,
                            constant=condition.lower - constant,
                            strict=False,
                            label=f"mdc[{condition.label}]>=lb",
                            kind="mdc",
                        )
                    )
        return constraints

    def _build_violation_branches(self) -> list[AffineConstraint]:
        """Each branch asserts that one ``pfc`` condition fails (strictly)."""
        branches: list[AffineConstraint] = []
        for condition in self.problem.pfc.conditions(self.problem.horizon):
            row = np.zeros(self.n_variables)
            constant = condition.constant
            for sample, index, coefficient in condition.terms:
                sample_row, sample_constant = self.unrolling.state_map(sample).row(index)
                row = row + coefficient * sample_row
                constant += coefficient * sample_constant
            if condition.lower is not None:
                # Violation: value < lower.
                branches.append(
                    self._strictified(
                        row,
                        constant - condition.lower,
                        f"violate[{condition.label}]<lb",
                        kind="violation",
                    )
                )
            if condition.upper is not None:
                # Violation: value > upper.
                branches.append(
                    self._strictified(
                        -row,
                        condition.upper - constant,
                        f"violate[{condition.label}]>ub",
                        kind="violation",
                    )
                )
        return branches

    # ------------------------------------------------------------------
    def theta_satisfies_base(self, theta: np.ndarray) -> bool:
        """Check a candidate decision vector against all base constraints."""
        theta = np.asarray(theta, dtype=float).reshape(-1)
        return not any(constraint.violated_by(theta) for constraint in self.base_constraints())

    def theta_violates_pfc(self, theta: np.ndarray) -> bool:
        """Check whether a candidate decision vector triggers some violation branch."""
        theta = np.asarray(theta, dtype=float).reshape(-1)
        for branch in self._branches:
            value = float(branch.row @ theta) + branch.constant
            if value <= 0.0:
                return True
        return False
