"""End-to-end synthesis pipeline.

One call runs the whole workflow of the paper's case study:

1. check whether the existing monitors already block every stealthy attack
   (Algorithm 1 with no residue detector),
2. synthesize variable thresholds with Algorithm 2 (pivot) and Algorithm 3
   (step-wise), and the provably safe static baseline,
3. evaluate the false-alarm rate of every synthesized detector over a
   benign-noise population,
4. assemble a report comparing rounds, convergence and FAR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.attack_synthesis import AttackSynthesisResult, synthesize_attack
from repro.core.far import FalseAlarmEvaluator, FalseAlarmStudy
from repro.core.pivot import PivotThresholdSynthesizer
from repro.core.problem import SynthesisProblem
from repro.core.static_synthesis import StaticThresholdSynthesizer
from repro.core.stepwise import StepwiseThresholdSynthesizer
from repro.core.synthesis_result import ThresholdSynthesisResult
from repro.noise.models import NoiseModel
from repro.utils.validation import ValidationError

_KNOWN_ALGORITHMS = ("pivot", "stepwise", "static")


@dataclass
class PipelineReport:
    """Aggregated output of a :class:`SynthesisPipeline` run.

    Attributes
    ----------
    vulnerability:
        Algorithm 1 result with no residue detector: does an attack bypass
        the existing monitors at all?
    synthesis:
        Per-algorithm :class:`ThresholdSynthesisResult`.
    far_study:
        FAR comparison over the shared benign population (``None`` when FAR
        evaluation was skipped).
    """

    vulnerability: AttackSynthesisResult
    synthesis: dict[str, ThresholdSynthesisResult] = field(default_factory=dict)
    far_study: FalseAlarmStudy | None = None

    @property
    def is_vulnerable(self) -> bool:
        """True when the plant's own monitors can be bypassed."""
        return self.vulnerability.found

    def summary_rows(self) -> list[dict]:
        """Tabular summary (one row per algorithm) used by the benchmarks and examples."""
        rows = []
        for name, result in self.synthesis.items():
            row = {
                "algorithm": name,
                "rounds": result.rounds,
                "converged": result.converged,
                "solver_time_s": round(result.total_solver_time, 3),
            }
            if self.far_study is not None and name in self.far_study.rates:
                row["false_alarm_rate"] = self.far_study.rates[name]
            rows.append(row)
        return rows


@dataclass
class SynthesisPipeline:
    """Convenience wrapper running vulnerability check, synthesis and FAR study.

    Parameters
    ----------
    problem:
        The synthesis problem instance.
    backend:
        Attack-synthesis backend shared by all algorithms.
    algorithms:
        Subset of ``("pivot", "stepwise", "static")`` to run.
    far_count:
        Size of the benign-noise population for the FAR study (0 disables it).
    far_noise_model:
        Noise model for the FAR study (default: 3-sigma bounded uniform).
    seed:
        RNG seed for the FAR study.
    """

    problem: SynthesisProblem
    backend: str | object = "lp"
    algorithms: tuple[str, ...] = _KNOWN_ALGORITHMS
    far_count: int = 200
    far_noise_model: NoiseModel | None = None
    far_initial_state_spread: object = None
    seed: int | None = 0
    max_rounds: int = 500
    min_threshold: float = 0.0

    def __post_init__(self) -> None:
        unknown = set(self.algorithms) - set(_KNOWN_ALGORITHMS)
        if unknown:
            raise ValidationError(
                f"unknown algorithms {sorted(unknown)}; known: {_KNOWN_ALGORITHMS}"
            )

    # ------------------------------------------------------------------
    def _synthesizer(self, name: str):
        if name == "pivot":
            return PivotThresholdSynthesizer(
                backend=self.backend, max_rounds=self.max_rounds, min_threshold=self.min_threshold
            )
        if name == "stepwise":
            return StepwiseThresholdSynthesizer(
                backend=self.backend, max_rounds=self.max_rounds, min_threshold=self.min_threshold
            )
        return StaticThresholdSynthesizer(backend=self.backend)

    # ------------------------------------------------------------------
    def run(self) -> PipelineReport:
        """Execute the full pipeline and return the report."""
        vulnerability = synthesize_attack(self.problem, threshold=None, backend=self.backend)
        report = PipelineReport(vulnerability=vulnerability)

        for name in self.algorithms:
            synthesizer = self._synthesizer(name)
            report.synthesis[name] = synthesizer.synthesize(self.problem)

        if self.far_count > 0 and report.synthesis:
            evaluator = FalseAlarmEvaluator(
                self.problem,
                noise_model=self.far_noise_model,
                count=self.far_count,
                seed=self.seed,
                initial_state_spread=self.far_initial_state_spread,
            )
            detectors = {
                name: result.threshold
                for name, result in report.synthesis.items()
                if result.threshold is not None
            }
            report.far_study = evaluator.evaluate(detectors)
        return report
