"""Legacy end-to-end pipeline — thin adapter over :mod:`repro.api`.

:class:`SynthesisPipeline` predates the declarative Experiment API and is
kept as a backward-compatible shim: its constructor signature is unchanged
and ``run()`` simply translates the stored kwargs into a
:class:`~repro.api.config.SynthesisConfig` / :class:`~repro.api.config.FARConfig`
pair and delegates to :func:`~repro.api.execute.run_pipeline`.

New code should use :func:`repro.api.run_pipeline` directly (one problem) or
:func:`repro.api.run_experiments` (sweeps); see the module docstring of
:mod:`repro.api`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.api.config import FARConfig, SynthesisConfig
from repro.api.execute import PipelineReport, run_pipeline
from repro.core.problem import SynthesisProblem
from repro.noise.models import NoiseModel
from repro.registry import SYNTHESIZERS
from repro.utils.validation import ValidationError

# Deprecated alias kept for external callers; the authoritative name list
# lives in repro.registry.SYNTHESIZERS.
_KNOWN_ALGORITHMS = ("pivot", "stepwise", "static")


@dataclass
class SynthesisPipeline:
    """Deprecated convenience wrapper around :func:`repro.api.run_pipeline`.

    Parameters
    ----------
    problem:
        The synthesis problem instance.
    backend:
        Attack-synthesis backend shared by all algorithms (registry name or
        instance).
    algorithms:
        Subset of the registered synthesizer names (built-ins: ``"pivot"``,
        ``"stepwise"``, ``"static"``).
    far_count:
        Size of the benign-noise population for the FAR study (0 disables it).
    far_noise_model:
        Noise model for the FAR study (default: 3-sigma bounded uniform).
    seed:
        RNG seed for the FAR study.

    .. deprecated:: 2.0
        Use :func:`repro.api.run_pipeline` with a
        :class:`~repro.api.config.SynthesisConfig` instead.
    """

    problem: SynthesisProblem
    backend: str | object = "lp"
    algorithms: tuple[str, ...] = _KNOWN_ALGORITHMS
    far_count: int = 200
    far_noise_model: NoiseModel | None = None
    far_initial_state_spread: object = None
    seed: int | None = 0
    max_rounds: int = 500
    min_threshold: float = 0.0

    def __post_init__(self) -> None:
        warnings.warn(
            "SynthesisPipeline is deprecated; use repro.api.run_pipeline with a "
            "SynthesisConfig (and repro.api.run_experiments for sweeps)",
            DeprecationWarning,
            stacklevel=3,
        )
        known = SYNTHESIZERS.available()
        unknown = set(self.algorithms) - set(known)
        if unknown:
            raise ValidationError(
                f"unknown algorithms {sorted(unknown)}; known: {tuple(known)}"
            )

    # ------------------------------------------------------------------
    def to_configs(self) -> tuple[SynthesisConfig, FARConfig | None]:
        """The declarative configs equivalent to this pipeline's kwargs.

        A caller-supplied backend *instance* cannot be expressed declaratively;
        the config then records the default ``"lp"`` name and :meth:`run`
        passes the instance through as an override.
        """
        synthesis = SynthesisConfig(
            algorithms=tuple(self.algorithms),
            backend=self.backend if isinstance(self.backend, str) else "lp",
            max_rounds=self.max_rounds,
            min_threshold=self.min_threshold,
        )
        far = None
        if self.far_count > 0:
            spread = self.far_initial_state_spread
            if spread is not None:
                spread = np.asarray(spread, dtype=float).reshape(-1).tolist()
            far = FARConfig(count=self.far_count, seed=self.seed, initial_state_spread=spread)
        return synthesis, far

    # ------------------------------------------------------------------
    def run(self) -> PipelineReport:
        """Execute the full pipeline and return the report."""
        synthesis, far = self.to_configs()
        return run_pipeline(
            self.problem,
            synthesis=synthesis,
            far=far,
            backend=None if isinstance(self.backend, str) else self.backend,
            far_noise_model=self.far_noise_model,
        )


__all__ = ["SynthesisPipeline", "PipelineReport"]
