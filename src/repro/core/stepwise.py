"""Algorithm 3 — step-wise (staircase) variable-threshold synthesis.

The threshold vector is maintained as a monotonically decreasing staircase.
Synthesis proceeds in two phases:

* **Phase 1 — initial step formation.**  Starting from the attack found with
  no detector, the first step covers samples ``0..i`` at the height of the
  maximal residue.  Each subsequent counterexample extends the staircase to
  the right with a new, lower step whose height is the largest residue the
  new attack produces beyond the current staircase (capped by the previous
  step to preserve monotonicity).
* **Phase 2 — step reduction.**  While attacks still exist, the
  :func:`min_area_rectangle` rule picks the sampling instance at which
  forcing detection is cheapest — i.e. lowering the staircase from that
  instant onward to the attack's residue level removes the least area from
  under the threshold curve — and applies that cut.

Every phase-2 cut removes at least ``strictness`` of threshold height at the
chosen instant, so the loop terminates; it typically needs markedly fewer
rounds than Algorithm 2 because a single cut re-shapes a whole tail segment
instead of one sample.

The paper's pseudo-code for phase 2 is under-specified (it manipulates a
separate ``Steps`` array whose invariants are not stated); this
implementation keeps the documented intent — staircase structure, monotone
decrease, minimum-area greedy choice — and is noted as such in DESIGN.md.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.core.attack_synthesis import synthesize_attack
from repro.core.problem import SynthesisProblem
from repro.core.session import SynthesisSession
from repro.core.synthesis_result import ThresholdSynthesisResult
from repro.detectors.threshold import ThresholdVector
from repro.registry import SYNTHESIZERS
from repro.utils.results import SolveStatus, SynthesisRecord

logger = logging.getLogger(__name__)


def min_area_rectangle(
    norms: np.ndarray, threshold: ThresholdVector, floor: float = 0.0
) -> int | None:
    """Pick the instant where forcing detection removes the least threshold area.

    For each candidate instant ``i`` (with a finite threshold and a residue
    strictly below it), the cost is the area that would be removed from under
    the threshold curve by lowering every threshold from ``i`` onward down to
    ``max(norms[i], floor)``:

    ``area_i = sum_{j >= i} max(0, Th[j] - max(norms[i], floor))``.

    Returns the index with the smallest positive area, or ``None`` when no
    candidate exists (e.g. the attack already touches every threshold, or the
    floor prevents any cut).
    """
    norms = np.asarray(norms, dtype=float).reshape(-1)
    values = threshold.effective(norms.shape[0])
    best_index = None
    best_area = np.inf
    for i in range(norms.shape[0]):
        if not np.isfinite(values[i]):
            continue
        level = max(float(norms[i]), float(floor))
        if level >= values[i]:
            continue
        tail = values[i:]
        finite_tail = np.where(np.isfinite(tail), tail, level)
        area = float(np.sum(np.maximum(0.0, finite_tail - level)))
        if 0.0 < area < best_area:
            best_area = area
            best_index = i
    return best_index


@SYNTHESIZERS.register("stepwise")
@dataclass
class StepwiseThresholdSynthesizer:
    """Step-wise synthesis of a monotonically decreasing staircase threshold.

    Parameters
    ----------
    backend:
        Attack-synthesis backend name or instance.
    max_rounds:
        Safety cap on the number of Algorithm 1 calls.
    time_budget_per_call:
        Optional per-call wall-clock budget.
    min_threshold:
        Floor below which steps are never placed.
    step_rule:
        ``"min-area"`` (paper-style greedy) or ``"fixed-width"`` (ablation:
        cut at the earliest undetected instant instead of the cheapest one).
    reuse_session:
        When True (default) all Algorithm 1 rounds run through one
        :class:`~repro.core.session.SynthesisSession`, so the encoding and
        backend state are built once per problem; ``False`` keeps the legacy
        one-encoding-per-call behaviour (results are bit-identical — the flag
        exists for benchmarking and debugging).
    """

    backend: str | object = "lp"
    max_rounds: int = 500
    time_budget_per_call: float | None = None
    min_threshold: float = 0.0
    step_rule: str = "min-area"
    reuse_session: bool = True
    verbose: bool = False

    # ------------------------------------------------------------------
    def _open_session(self, problem: SynthesisProblem) -> SynthesisSession | None:
        return SynthesisSession(problem, backend=self.backend) if self.reuse_session else None

    def _call(
        self,
        problem: SynthesisProblem,
        threshold: ThresholdVector | None,
        session: SynthesisSession | None,
    ):
        if session is None:
            return synthesize_attack(
                problem,
                threshold=threshold,
                backend=self.backend,
                time_budget=self.time_budget_per_call,
            )
        return session.solve(threshold, time_budget=self.time_budget_per_call)

    # ------------------------------------------------------------------
    def synthesize(
        self, problem: SynthesisProblem, session: SynthesisSession | None = None
    ) -> ThresholdSynthesisResult:
        """Run the two-phase synthesis loop on ``problem``.

        ``session`` lets a caller (the pipeline, the batch runner) share one
        incremental session across several algorithms; when omitted the loop
        opens its own (or falls back to per-call encodings when
        ``reuse_session`` is False).
        """
        if session is None:
            session = self._open_session(problem)
        horizon = problem.horizon
        threshold = problem.fresh_threshold()
        history: list[SynthesisRecord] = []
        total_time = 0.0

        first = self._call(problem, None, session)
        total_time += first.elapsed
        rounds = 1
        if not first.found:
            return ThresholdSynthesisResult(
                threshold=threshold,
                rounds=rounds,
                converged=first.status is SolveStatus.UNSAT,
                status=first.status,
                vulnerable_without_detector=False,
                history=history,
                total_solver_time=total_time,
                algorithm="stepwise",
            )

        norms = first.residue_norms
        pivot = int(np.argmax(norms))
        height = max(float(norms[pivot]), self.min_threshold)
        threshold.fill_step(0, pivot, height)
        last_filled = pivot
        history.append(
            SynthesisRecord(
                round_index=rounds,
                action=f"initial step [0..{pivot}] at {height:.6g}",
                threshold=threshold.copy(),
                attack=first.attack,
                solver_time=first.elapsed,
            )
        )

        final_status = SolveStatus.UNKNOWN

        # ----- Phase 1: extend the staircase to cover the whole horizon -----
        while last_filled < horizon - 1 and rounds < self.max_rounds:
            result = self._call(problem, threshold, session)
            total_time += result.elapsed
            rounds += 1
            final_status = result.status
            if not result.found:
                break
            norms = result.residue_norms
            start = last_filled + 1
            candidates = np.arange(start, horizon)
            previous_height = threshold[last_filled]
            feasible = [int(k) for k in candidates if norms[k] <= previous_height]
            if feasible:
                k = max(feasible, key=lambda idx: norms[idx])
                height = max(float(norms[k]), self.min_threshold)
            else:
                k = int(candidates[int(np.argmax(norms[candidates]))])
                height = previous_height
            threshold.fill_step(start, k, height)
            last_filled = k
            history.append(
                SynthesisRecord(
                    round_index=rounds,
                    action=f"phase-1 step [{start}..{k}] at {height:.6g}",
                    threshold=threshold.copy(),
                    attack=result.attack,
                    solver_time=result.elapsed,
                )
            )

        # Samples never reached by phase 1 keep the last step's height so the
        # final vector is a complete staircase.
        if last_filled < horizon - 1:
            threshold.fill_step(last_filled + 1, horizon - 1, threshold[last_filled])

        # ----- Phase 2: carve steps down until no attack remains -----------
        while final_status is not SolveStatus.UNSAT and rounds < self.max_rounds:
            result = self._call(problem, threshold, session)
            total_time += result.elapsed
            rounds += 1
            final_status = result.status
            if not result.found:
                break
            norms = result.residue_norms
            if self.step_rule == "min-area":
                cut_index = min_area_rectangle(norms, threshold, floor=self.min_threshold)
            else:
                undetected = [
                    i for i in range(horizon) if norms[i] < threshold[i] and np.isfinite(threshold[i])
                ]
                cut_index = undetected[0] if undetected else None
            if cut_index is None:
                # Degenerate: the attack touches every threshold (should not
                # happen for verified counterexamples); lower everything by
                # the strictness margin to force progress.
                cut_index = 0
                cut_value = max(threshold[0] - problem.strictness, self.min_threshold)
            else:
                cut_value = max(float(norms[cut_index]), self.min_threshold)
            before = threshold.values.copy()
            for j in range(cut_index, horizon):
                if threshold[j] > cut_value:
                    threshold.set_value(j, cut_value)
            if self.verbose:  # pragma: no cover - logging only
                logger.info("round %d: cut at %d to %.6g", rounds, cut_index, cut_value)
            history.append(
                SynthesisRecord(
                    round_index=rounds,
                    action=f"phase-2 cut [{cut_index}..] to {cut_value:.6g}",
                    threshold=threshold.copy(),
                    attack=result.attack,
                    solver_time=result.elapsed,
                )
            )
            if np.array_equal(before, threshold.values):
                # Blocked (typically by the min_threshold floor): stop rather
                # than loop without progress.
                final_status = SolveStatus.UNKNOWN
                break

        converged = final_status is SolveStatus.UNSAT
        return ThresholdSynthesisResult(
            threshold=threshold,
            rounds=rounds,
            converged=converged,
            status=final_status,
            vulnerable_without_detector=True,
            history=history,
            total_solver_time=total_time,
            algorithm="stepwise",
        )
