"""Performance criteria (the paper's ``pfc``).

A performance criterion is a conjunction of affine conditions over the plant
state trajectory.  The paper's running example — "reach ``x_des ± epsilon``
within ``T`` iterations" and the VSC instance "yaw rate must reach within
80 % of the desired value within 50 sampling instances" — are both of this
form, so the class hierarchy below exposes:

* :class:`StateCondition` — one affine double inequality over state samples,
* :class:`PerformanceCriterion` — the abstract conjunction-of-conditions
  interface consumed by the attack-synthesis encodings (the attacker must
  violate *some* condition), and
* concrete criteria (:class:`ReachSetCriterion`,
  :class:`FractionOfTargetCriterion`, :class:`StateBoundCriterion`,
  :class:`CompositeCriterion`).

Index convention: state sample ``k`` refers to the plant state after ``k``
closed-loop iterations; ``k = 0`` is the initial state and ``k = horizon`` is
the final state of the analysis window (``trace.states[k]``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class StateCondition:
    """Affine double inequality over plant-state samples.

    Semantics: ``lower <= sum(coeff * x[sample][index]) + constant <= upper``.
    Either bound may be ``None``.
    """

    terms: tuple[tuple[int, int, float], ...]
    constant: float = 0.0
    lower: float | None = None
    upper: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.lower is None and self.upper is None:
            raise ValidationError("StateCondition needs at least one bound")
        terms = tuple((int(k), int(i), float(w)) for k, i, w in self.terms)
        object.__setattr__(self, "terms", terms)

    def value(self, states: np.ndarray) -> float:
        """Evaluate the affine expression on a ``(T + 1, n)`` state trajectory."""
        total = self.constant
        for sample, index, coefficient in self.terms:
            total += coefficient * float(states[sample, index])
        return total

    def holds(self, states: np.ndarray, tol: float = 1e-9) -> bool:
        """Check the condition on a concrete state trajectory."""
        value = self.value(states)
        if self.lower is not None and value < self.lower - tol:
            return False
        if self.upper is not None and value > self.upper + tol:
            return False
        return True

    def max_sample(self) -> int:
        """Largest state-sample index referenced (defines the horizon needed)."""
        return max(k for k, _, _ in self.terms)


class PerformanceCriterion(abc.ABC):
    """Abstract conjunction of :class:`StateCondition` objects."""

    name: str = "pfc"

    @abc.abstractmethod
    def conditions(self, horizon: int) -> list[StateCondition]:
        """The conditions instantiated for an analysis window of ``horizon`` iterations."""

    def satisfied(self, states: np.ndarray, horizon: int | None = None) -> bool:
        """True when every condition holds on the given state trajectory."""
        states = np.atleast_2d(np.asarray(states, dtype=float))
        if horizon is None:
            horizon = states.shape[0] - 1
        return all(condition.holds(states) for condition in self.conditions(horizon))

    def satisfied_on_trace(self, trace) -> bool:
        """Evaluate the criterion on a :class:`~repro.lti.simulate.SimulationTrace`."""
        return self.satisfied(trace.states, trace.horizon)

    def required_horizon(self) -> int | None:
        """Minimum horizon needed, when the criterion pins specific samples (else None)."""
        return None


@dataclass
class ReachSetCriterion(PerformanceCriterion):
    """Reach ``x_des ± epsilon`` (component-wise) at iteration ``at``.

    This is the paper's formal target property: the closed loop must drive the
    state into the epsilon-box around the set point within ``T`` iterations;
    an attacker succeeds by keeping the final state outside the box.

    Parameters
    ----------
    x_des:
        Desired state (length ``n``).
    epsilon:
        Scalar or per-component half-width of the acceptance box.
    components:
        State indices the criterion constrains (default: all).
    at:
        Iteration index at which the box must be reached; ``None`` means the
        final iteration of the analysis window.
    """

    x_des: np.ndarray
    epsilon: np.ndarray | float
    components: tuple[int, ...] | None = None
    at: int | None = None
    name: str = "reach-set"

    def __post_init__(self) -> None:
        self.x_des = np.asarray(self.x_des, dtype=float).reshape(-1)
        epsilon = np.asarray(self.epsilon, dtype=float)
        if epsilon.ndim == 0:
            epsilon = np.full(self.x_des.size, float(epsilon))
        self.epsilon = epsilon.reshape(-1)
        if self.epsilon.size != self.x_des.size:
            raise ValidationError("epsilon must be scalar or match x_des length")
        if np.any(self.epsilon < 0):
            raise ValidationError("epsilon must be non-negative")
        if self.components is None:
            self.components = tuple(range(self.x_des.size))
        else:
            self.components = tuple(int(i) for i in self.components)

    def conditions(self, horizon: int) -> list[StateCondition]:
        sample = int(horizon if self.at is None else self.at)
        result = []
        for index in self.components:
            result.append(
                StateCondition(
                    terms=((sample, index, 1.0),),
                    constant=-float(self.x_des[index]),
                    lower=-float(self.epsilon[index]),
                    upper=float(self.epsilon[index]),
                    label=f"{self.name}[x{index}@{sample}]",
                )
            )
        return result

    def required_horizon(self) -> int | None:
        return None if self.at is None else int(self.at)


@dataclass
class FractionOfTargetCriterion(PerformanceCriterion):
    """A state component must reach a fraction of its target value.

    Models the VSC performance criterion: "yaw rate must reach within 80 % of
    the desired value within 50 sampling instances", i.e.
    ``x[at][index] >= fraction * target`` for a positive target (the
    inequality direction flips automatically for negative targets).  With
    ``two_sided=True`` the state must additionally not overshoot beyond
    ``(2 - fraction) * target``.
    """

    state_index: int
    target: float
    fraction: float
    at: int | None = None
    two_sided: bool = False
    name: str = "fraction-of-target"

    def __post_init__(self) -> None:
        self.state_index = int(self.state_index)
        self.target = float(self.target)
        self.fraction = float(self.fraction)
        if not 0.0 < self.fraction <= 1.0:
            raise ValidationError("fraction must lie in (0, 1]")
        if self.target == 0.0:
            raise ValidationError(
                "target must be non-zero; use ReachSetCriterion for zero targets"
            )

    def conditions(self, horizon: int) -> list[StateCondition]:
        sample = int(horizon if self.at is None else self.at)
        near_bound = self.fraction * self.target
        far_bound = (2.0 - self.fraction) * self.target
        lower: float | None
        upper: float | None
        if self.target > 0:
            lower, upper = near_bound, (far_bound if self.two_sided else None)
        else:
            lower, upper = (far_bound if self.two_sided else None), near_bound
        return [
            StateCondition(
                terms=((sample, self.state_index, 1.0),),
                lower=lower,
                upper=upper,
                label=f"{self.name}[x{self.state_index}@{sample}]",
            )
        ]

    def required_horizon(self) -> int | None:
        return None if self.at is None else int(self.at)


@dataclass
class StateBoundCriterion(PerformanceCriterion):
    """Generic bound on one state component at one or every iteration.

    With ``at=None`` and ``every_step=True`` this doubles as a safety
    invariant ("the deviation never exceeds ...") which is useful for the
    trajectory-tracking example.
    """

    state_index: int
    lower: float | None = None
    upper: float | None = None
    at: int | None = None
    every_step: bool = False
    name: str = "state-bound"

    def __post_init__(self) -> None:
        self.state_index = int(self.state_index)
        if self.lower is None and self.upper is None:
            raise ValidationError("StateBoundCriterion needs at least one bound")

    def conditions(self, horizon: int) -> list[StateCondition]:
        if self.every_step:
            samples = range(1, int(horizon) + 1)
        else:
            samples = [int(horizon if self.at is None else self.at)]
        return [
            StateCondition(
                terms=((sample, self.state_index, 1.0),),
                lower=self.lower,
                upper=self.upper,
                label=f"{self.name}[x{self.state_index}@{sample}]",
            )
            for sample in samples
        ]

    def required_horizon(self) -> int | None:
        return None if self.at is None else int(self.at)


@dataclass
class CompositeCriterion(PerformanceCriterion):
    """Conjunction of several criteria."""

    members: list[PerformanceCriterion] = field(default_factory=list)
    name: str = "composite-pfc"

    def conditions(self, horizon: int) -> list[StateCondition]:
        result: list[StateCondition] = []
        for member in self.members:
            result.extend(member.conditions(horizon))
        return result

    def required_horizon(self) -> int | None:
        horizons = [m.required_horizon() for m in self.members]
        horizons = [h for h in horizons if h is not None]
        return max(horizons) if horizons else None
