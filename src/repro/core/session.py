"""Incremental synthesis sessions — the per-problem Algorithm 1 engine.

The threshold-synthesis loops (pivot, stepwise, static bisection, the
relaxation post-pass) call Algorithm 1 up to hundreds of times per problem,
changing nothing between rounds except the candidate threshold vector.  A
:class:`SynthesisSession` exploits that: it constructs the closed-loop
horizon unrolling and every static constraint block (dynamics, attacker
model, monitor ``mdc`` rows, variable bounds, pfc violation branches)
**exactly once** per problem and opens an incremental
:class:`~repro.falsification.base.BackendSession` over them; each
:meth:`solve` call then only re-emits the threshold-dependent stealth
constraints — the LP backend appends the per-round stealth right-hand side
to its cached matrices, the SMT backend push/pops the stealth clauses.

Sessions are stateless between calls (an answer depends only on the
threshold handed to that call), so one session can serve several synthesis
algorithms over the same ``(problem, backend)`` pair — which is how
:func:`repro.api.execute.run_pipeline` and the batch runner share one
encoding per group.  The one-shot
:func:`~repro.core.attack_synthesis.synthesize_attack` is a session of
length one, and both paths produce bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.attacks.fdi import FDIAttack
from repro.core.encoding import AttackEncoding
from repro.core.problem import SynthesisProblem
from repro.detectors.threshold import ThresholdVector
from repro.falsification.registry import get_backend
from repro.lti.simulate import SimulationTrace
from repro.obs.clock import Stopwatch
from repro.obs.metrics import get_registry, timed
from repro.obs.trace import span
from repro.utils.results import SolveStatus


@dataclass
class AttackSynthesisResult:
    """Outcome of one ``ATTVECSYN`` call.

    Attributes
    ----------
    status:
        ``SAT`` — stealthy successful attack found; ``UNSAT`` — provably none
        exists (under the backend's encoding); ``UNKNOWN`` — undecided.
    attack:
        The synthesized attack vector (``None`` unless ``SAT``).
    trace:
        Deterministic (noiseless) closed-loop trace under the attack.
    residue_norms:
        Per-sample residue norms of that trace (the quantities the
        threshold-synthesis algorithms pivot on).
    initial_state:
        The initial plant state chosen by the solver (equals the problem's
        ``x0`` unless an initial box was given).
    verified:
        True when re-simulating the attack confirmed stealth and pfc
        violation (a consistency check between encoder and simulator).
    diagnostics:
        Backend statistics.
    """

    status: SolveStatus
    attack: FDIAttack | None = None
    trace: SimulationTrace | None = None
    residue_norms: np.ndarray | None = None
    initial_state: np.ndarray | None = None
    verified: bool = False
    elapsed: float = 0.0
    diagnostics: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        """Truthiness mirrors the paper's ``if ATTVECSYN(...)`` usage."""
        return self.status is SolveStatus.SAT

    @property
    def found(self) -> bool:
        """True when an attack vector was synthesized."""
        return self.status is SolveStatus.SAT


class SynthesisSession:
    """Incremental Algorithm 1 engine for one ``(problem, backend)`` pair.

    Parameters
    ----------
    problem:
        The synthesis problem instance ``<S, C, pfc>`` plus attacker model.
    backend:
        ``"lp"`` (default), ``"smt"``, ``"optimizer"`` or a backend instance.
    verify:
        Default for re-simulating synthesized attacks and checking stealth /
        pfc violation on the concrete trace (overridable per call).
    backend_kwargs:
        Constructor arguments forwarded when ``backend`` is a name.

    Attributes
    ----------
    encoding:
        The shared :class:`~repro.core.encoding.AttackEncoding` (static
        blocks built once at session open).
    solves:
        Number of :meth:`solve` calls served so far.
    """

    def __init__(
        self,
        problem: SynthesisProblem,
        backend: str | object = "lp",
        verify: bool = True,
        **backend_kwargs,
    ):
        self.problem = problem
        self.solver = get_backend(backend, **backend_kwargs)
        self.verify = bool(verify)
        registry = get_registry()
        backend_name = getattr(self.solver, "name", str(backend))
        build_seconds = registry.histogram(
            "synthesis_encoding_build_seconds",
            help="Wall time to build the static encoding and open a backend session.",
        )
        with span("synthesis.encode", problem=problem.name, backend=backend_name):
            with timed(build_seconds, backend=backend_name):
                self.encoding = AttackEncoding(problem=problem, threshold=None)
                self._backend_session = self.solver.open_session(self.encoding)
        registry.counter(
            "synthesis_sessions_total",
            help="Synthesis sessions opened (one static encoding built each).",
        ).inc(backend=backend_name)
        self.solves = 0
        # The detector-free query (threshold None) is issued by the pipeline's
        # vulnerability check *and* as round one of every synthesis loop; the
        # solver is deterministic, so the session memoises it per verify flag.
        self._none_cache: dict[bool, AttackSynthesisResult] = {}

    # ------------------------------------------------------------------
    def solve(
        self,
        threshold: ThresholdVector | None = None,
        time_budget: float | None = None,
        verify: bool | None = None,
    ) -> AttackSynthesisResult:
        """Run one Algorithm 1 round with the candidate ``threshold``.

        Parameters
        ----------
        threshold:
            Candidate residue thresholds; ``None`` (or an all-unset vector)
            models the system without a residue detector.
        time_budget:
            Optional wall-clock budget in seconds for the backend (the paper
            used a 12-hour Z3 timeout; our instances need seconds).
        verify:
            Per-call override of the session's ``verify`` default.
        """
        start = Stopwatch()
        verify = self.verify if verify is None else verify
        registry = get_registry()
        backend_name = getattr(self.solver, "name", "?")
        if threshold is None:
            cached = self._none_cache.get(verify)
            if cached is not None:
                self.solves += 1
                registry.counter(
                    "synthesis_memo_hits_total",
                    help="Detector-free solves served from the session memo.",
                ).inc(backend=backend_name)
                # Fresh shell per hit: callers own their result's ``elapsed``
                # (charging the original solve time again would double-count
                # wall clock in per-algorithm totals) and may overwrite it.
                return replace(cached, elapsed=start.elapsed())
        with span("synthesis.solve", problem=self.problem.name, backend=backend_name):
            answer = self._backend_session.solve(threshold, time_budget=time_budget)
        self.solves += 1
        elapsed = start.elapsed()
        registry.histogram(
            "synthesis_solve_seconds",
            help="Backend solve time per Algorithm 1 round.",
        ).observe(elapsed, backend=backend_name, problem=self.problem.name)
        registry.counter(
            "synthesis_solves_total",
            help="Algorithm 1 rounds solved, by backend and outcome.",
        ).inc(backend=backend_name, status=answer.status.name)

        if not answer.found_attack:
            result = AttackSynthesisResult(
                status=answer.status,
                elapsed=elapsed,
                diagnostics=answer.diagnostics,
            )
            if threshold is None and answer.status is not SolveStatus.UNKNOWN:
                self._none_cache[verify] = result
            return result

        attack = self.encoding.unrolling.attack_from_theta(answer.theta)
        initial_state = self.encoding.unrolling.initial_state_from_theta(answer.theta)
        trace = self.problem.simulate(attack=attack, with_noise=False, x0=initial_state)
        residue_norms = self.problem.residue_norms(trace.residues)

        verified = True
        if verify:
            pfc_ok = self.problem.pfc_satisfied(trace)
            mdc_alarm = self.problem.mdc_alarm(trace)
            detector_alarm = (
                self.problem.detector_alarm(trace, threshold) if threshold is not None else False
            )
            verified = (not pfc_ok) and (not mdc_alarm) and (not detector_alarm)

        result = AttackSynthesisResult(
            status=SolveStatus.SAT,
            attack=attack,
            trace=trace,
            residue_norms=residue_norms,
            initial_state=initial_state,
            verified=verified,
            elapsed=elapsed,
            diagnostics=answer.diagnostics,
        )
        if threshold is None:
            self._none_cache[verify] = result
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SynthesisSession(problem={self.problem.name!r}, "
            f"backend={getattr(self.solver, 'name', self.solver)!r}, solves={self.solves})"
        )
