"""Affine unrolling of the attacked closed loop.

For the formal analysis the closed loop is noiseless and every signal is an
affine function of the decision vector ``theta`` consisting of

* the injected false data ``a_k[c]`` for every attackable channel ``c`` and
  every sampling instance ``k`` (0-based, ``k = 0 .. T-1``), and
* optionally the free components of the initial state when an initial *set*
  rather than a point is analysed.

Following the update order of the paper's Algorithm 1, the augmented state
``s_k = [x_k; xhat_k; u_k]`` evolves as

.. math::

    s_{k+1} = M s_k + G a_k + h, \\qquad
    M = \\begin{bmatrix} A & 0 & B \\\\ LC & A - LC & B \\\\
        -KLC & -K(A - LC) & -KB \\end{bmatrix},\\;
    G = \\begin{bmatrix} 0 \\\\ L \\\\ -KL \\end{bmatrix},\\;
    h = \\begin{bmatrix} 0 \\\\ 0 \\\\ N r \\end{bmatrix},

with residue ``z_k = C (x_k - xhat_k) + a_k`` and attacked measurement
``y_k = C x_k + D u_k + a_k``.  This module computes, for each sampling
instance, the matrices mapping ``theta`` to those signals, which both the LP
and the SMT attack-synthesis backends consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.fdi import AttackChannelMask, FDIAttack
from repro.lti.simulate import ClosedLoopSystem
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class AffineConstraint:
    """A constraint ``row · theta + constant <= 0`` (strict when ``strict``).

    ``kind`` tags the constraint's origin (``"stealth"``, ``"mdc"`` or
    ``"generic"``); the LP backend uses it to decide which constraints
    receive the stealth-margin slack when searching for maximally stealthy
    counterexamples.
    """

    row: np.ndarray
    constant: float
    strict: bool = False
    label: str = ""
    kind: str = "generic"

    def __post_init__(self) -> None:
        object.__setattr__(self, "row", np.asarray(self.row, dtype=float).reshape(-1))
        object.__setattr__(self, "constant", float(self.constant))

    def violated_by(self, theta: np.ndarray, tol: float = 1e-7) -> bool:
        """Check the constraint on a concrete decision vector."""
        value = float(self.row @ theta) + self.constant
        return value >= 0.0 if self.strict else value > tol


@dataclass(frozen=True)
class AffineMap:
    """An affine map ``value = matrix @ theta + constant``."""

    matrix: np.ndarray
    constant: np.ndarray

    def __call__(self, theta: np.ndarray) -> np.ndarray:
        return self.matrix @ np.asarray(theta, dtype=float).reshape(-1) + self.constant

    def row(self, index: int) -> tuple[np.ndarray, float]:
        """One output component as ``(row, constant)``."""
        return self.matrix[index], float(self.constant[index])


class ClosedLoopUnrolling:
    """Affine maps from the decision vector to every closed-loop signal.

    Parameters
    ----------
    system:
        The closed loop to unroll (its plant noise model is ignored — the
        formal analysis is deterministic).
    horizon:
        Number of closed-loop iterations ``T``.
    attack_mask:
        Channels the attacker controls; protected channels carry no decision
        variable (their injection is identically zero).
    x0:
        Nominal initial plant state ``x_1``.
    initial_box:
        Optional per-component ``(low, high)`` bounds; components whose
        bounds differ become decision variables constrained to the interval
        (the paper's "any initial state in V").
    """

    def __init__(
        self,
        system: ClosedLoopSystem,
        horizon: int,
        attack_mask: AttackChannelMask | None = None,
        x0: np.ndarray | None = None,
        initial_box: tuple[np.ndarray, np.ndarray] | None = None,
    ):
        if int(horizon) <= 0:
            raise ValidationError("horizon must be positive")
        self.system = system
        self.horizon = int(horizon)
        plant = system.plant
        n, m, p = plant.n_states, plant.n_outputs, plant.n_inputs
        self.n_states, self.n_outputs, self.n_inputs = n, m, p

        if attack_mask is None:
            attack_mask = AttackChannelMask.all_channels(m)
        if attack_mask.n_outputs != m:
            raise ValidationError(
                f"attack mask covers {attack_mask.n_outputs} outputs, plant has {m}"
            )
        self.attack_mask = attack_mask

        if x0 is None:
            x0 = np.zeros(n)
        self.x0 = np.asarray(x0, dtype=float).reshape(-1)
        if self.x0.size != n:
            raise ValidationError(f"x0 must have length {n}, got {self.x0.size}")

        self.initial_box = initial_box
        self._free_initial_components: list[int] = []
        if initial_box is not None:
            low = np.asarray(initial_box[0], dtype=float).reshape(-1)
            high = np.asarray(initial_box[1], dtype=float).reshape(-1)
            if low.size != n or high.size != n:
                raise ValidationError("initial_box bounds must have length n")
            if np.any(low > high):
                raise ValidationError("initial_box must satisfy low <= high componentwise")
            self.initial_box = (low, high)
            self._free_initial_components = [int(i) for i in range(n) if high[i] > low[i]]

        # ------------------------------------------------------------------
        # Decision-variable layout: attack variables first, then free x0.
        # ------------------------------------------------------------------
        self._attack_channels = list(self.attack_mask.attackable)
        self._attack_var_count = self.horizon * len(self._attack_channels)
        self.n_variables = self._attack_var_count + len(self._free_initial_components)

        names: list[str] = []
        for k in range(self.horizon):
            for channel in self._attack_channels:
                names.append(f"a[{k}][{channel}]")
        for index in self._free_initial_components:
            names.append(f"x0[{index}]")
        self.variable_names = names

        self._build_maps()

    # ------------------------------------------------------------------
    def attack_variable_index(self, k: int, channel: int) -> int:
        """Position of ``a_k[channel]`` in the decision vector."""
        if channel not in self._attack_channels:
            raise ValidationError(f"channel {channel} is not attackable")
        return k * len(self._attack_channels) + self._attack_channels.index(channel)

    def initial_variable_index(self, component: int) -> int:
        """Position of free initial-state component ``x0[component]``."""
        if component not in self._free_initial_components:
            raise ValidationError(f"x0[{component}] is not a free variable")
        return self._attack_var_count + self._free_initial_components.index(component)

    def _attack_selector(self, k: int) -> np.ndarray:
        """Matrix mapping theta to the full m-dimensional injection at step k."""
        selector = np.zeros((self.n_outputs, self.n_variables))
        for channel in self._attack_channels:
            selector[channel, self.attack_variable_index(k, channel)] = 1.0
        return selector

    # ------------------------------------------------------------------
    def _build_maps(self) -> None:
        plant = self.system.plant
        n, m, p = self.n_states, self.n_outputs, self.n_inputs
        A, B, C, D = plant.A, plant.B, plant.C, plant.D
        K, L = self.system.K, self.system.L
        feedforward_term = self.system.feedforward @ self.system.reference

        dim = 2 * n + p
        M = np.zeros((dim, dim))
        M[:n, :n] = A
        M[:n, 2 * n :] = B
        M[n : 2 * n, :n] = L @ C
        M[n : 2 * n, n : 2 * n] = A - L @ C
        M[n : 2 * n, 2 * n :] = B
        M[2 * n :, :n] = -K @ L @ C
        M[2 * n :, n : 2 * n] = -K @ (A - L @ C)
        M[2 * n :, 2 * n :] = -K @ B

        G = np.zeros((dim, m))
        G[n : 2 * n, :] = L
        G[2 * n :, :] = -K @ L

        h = np.zeros(dim)
        h[2 * n :] = feedforward_term

        # Initial augmented state as an affine function of theta.
        S = np.zeros((dim, self.n_variables))
        s_const = np.zeros(dim)
        s_const[:n] = self.x0
        for component in self._free_initial_components:
            S[component, self.initial_variable_index(component)] = 1.0
            s_const[component] = 0.0

        # Output selection blocks.
        residue_block = np.hstack([C, -C, np.zeros((m, p))])
        measurement_block = np.hstack([C, np.zeros((m, n)), D])
        state_block = np.hstack([np.eye(n), np.zeros((n, n + p))])
        estimate_block = np.hstack([np.zeros((n, n)), np.eye(n), np.zeros((n, p))])
        input_block = np.hstack([np.zeros((p, 2 * n)), np.eye(p)])

        self._state_maps: list[AffineMap] = []
        self._estimate_maps: list[AffineMap] = []
        self._input_maps: list[AffineMap] = []
        self._residue_maps: list[AffineMap] = []
        self._measurement_maps: list[AffineMap] = []

        for k in range(self.horizon + 1):
            self._state_maps.append(AffineMap(state_block @ S, state_block @ s_const))
            self._estimate_maps.append(AffineMap(estimate_block @ S, estimate_block @ s_const))
            self._input_maps.append(AffineMap(input_block @ S, input_block @ s_const))
            if k < self.horizon:
                selector = self._attack_selector(k)
                self._residue_maps.append(
                    AffineMap(residue_block @ S + selector, residue_block @ s_const)
                )
                self._measurement_maps.append(
                    AffineMap(measurement_block @ S + selector, measurement_block @ s_const)
                )
                S = M @ S + G @ selector
                s_const = M @ s_const + h

    # ------------------------------------------------------------------
    # public accessors
    # ------------------------------------------------------------------
    def state_map(self, k: int) -> AffineMap:
        """Affine map to the plant state after ``k`` iterations (``k = 0 .. T``)."""
        return self._state_maps[k]

    def estimate_map(self, k: int) -> AffineMap:
        """Affine map to the estimator state after ``k`` iterations."""
        return self._estimate_maps[k]

    def input_map(self, k: int) -> AffineMap:
        """Affine map to the control input applied during iteration ``k``."""
        return self._input_maps[k]

    def residue_map(self, k: int) -> AffineMap:
        """Affine map to the residue ``z_{k+1}`` observed at iteration ``k`` (``k = 0 .. T-1``)."""
        return self._residue_maps[k]

    def measurement_map(self, k: int) -> AffineMap:
        """Affine map to the attacked measurement delivered at iteration ``k``."""
        return self._measurement_maps[k]

    # ------------------------------------------------------------------
    def attack_from_theta(self, theta: np.ndarray) -> FDIAttack:
        """Extract the ``(T, m)`` attack matrix encoded in a decision vector."""
        theta = np.asarray(theta, dtype=float).reshape(-1)
        if theta.size != self.n_variables:
            raise ValidationError(
                f"theta must have length {self.n_variables}, got {theta.size}"
            )
        values = np.zeros((self.horizon, self.n_outputs))
        for k in range(self.horizon):
            for channel in self._attack_channels:
                values[k, channel] = theta[self.attack_variable_index(k, channel)]
        return FDIAttack(values, mask=self.attack_mask)

    def initial_state_from_theta(self, theta: np.ndarray) -> np.ndarray:
        """Extract the initial plant state encoded in a decision vector."""
        theta = np.asarray(theta, dtype=float).reshape(-1)
        x0 = self.x0.copy()
        for component in self._free_initial_components:
            x0[component] = theta[self.initial_variable_index(component)]
        return x0

    def theta_from_attack(self, attack: FDIAttack, x0: np.ndarray | None = None) -> np.ndarray:
        """Inverse of :meth:`attack_from_theta` (useful in tests)."""
        theta = np.zeros(self.n_variables)
        values = attack.values
        for k in range(min(self.horizon, values.shape[0])):
            for channel in self._attack_channels:
                theta[self.attack_variable_index(k, channel)] = values[k, channel]
        if x0 is not None:
            x0 = np.asarray(x0, dtype=float).reshape(-1)
            for component in self._free_initial_components:
                theta[self.initial_variable_index(component)] = x0[component]
        return theta

    # ------------------------------------------------------------------
    def variable_bounds(
        self,
        attack_bound: float | np.ndarray | None,
    ) -> list[tuple[float | None, float | None]]:
        """Per-variable ``(low, high)`` bounds for the LP backend.

        Attack variables get ``[-attack_bound, attack_bound]`` (per channel
        when an array is given); free initial-state variables get the
        initial-box bounds.
        """
        bounds: list[tuple[float | None, float | None]] = []
        if attack_bound is None:
            per_channel = {channel: None for channel in self._attack_channels}
        else:
            bound_array = np.asarray(attack_bound, dtype=float)
            if bound_array.ndim == 0:
                per_channel = {channel: float(bound_array) for channel in self._attack_channels}
            else:
                bound_array = bound_array.reshape(-1)
                if bound_array.size != self.n_outputs:
                    raise ValidationError(
                        f"attack_bound array must have length {self.n_outputs}"
                    )
                per_channel = {channel: float(bound_array[channel]) for channel in self._attack_channels}
        for _ in range(self.horizon):
            for channel in self._attack_channels:
                bound = per_channel[channel]
                bounds.append((None, None) if bound is None else (-bound, bound))
        if self.initial_box is not None:
            low, high = self.initial_box
            for component in self._free_initial_components:
                bounds.append((float(low[component]), float(high[component])))
        return bounds
