"""Formal synthesis of monitoring and detection systems for secure CPS implementations.

A from-scratch Python reproduction of Koley et al., DATE 2020: residue-based
attack detectors with formally synthesized variable thresholds for LTI
control loops under false-data-injection attacks.

Quick start (one problem)::

    from repro import SynthesisConfig, get_case_study, run_pipeline

    case = get_case_study("vsc")
    report = run_pipeline(case.problem, SynthesisConfig(algorithms=("pivot",)))
    print(report.summary_rows())

Quick start (a sweep)::

    from repro import ExperimentSpec, run_experiments

    spec = ExperimentSpec(
        case_studies=("dcmotor", "trajectory"),
        backends=("lp", "smt"),
        algorithms=("pivot", "static"),
    )
    result = run_experiments(spec, workers=4)
    print(result.to_json())

Every component is resolved by name through the plugin registries in
:mod:`repro.registry` (``available_backends()``, ``available_case_studies()``,
...); register your own backends, synthesizers, detectors, noise models and
case studies there and sweep them with the same API.

Subpackages
-----------
``repro.api``
    Experiment API v2: declarative configs (``SynthesisConfig``, ``FARConfig``,
    ``ExperimentSpec``), ``run_pipeline`` and the ``BatchRunner`` sweep engine.
``repro.registry``
    The shared plugin registries behind every string-resolved component name.
``repro.core``
    Algorithms 1-3, the static baseline, FAR evaluation, the legacy pipeline shim.
``repro.lti``, ``repro.estimation``, ``repro.control``
    The plant / estimator / controller substrate.
``repro.attacks``, ``repro.monitors``, ``repro.detectors``, ``repro.noise``
    Attacker models, plant monitors (``mdc``), residue detectors, noise models.
``repro.smt``, ``repro.falsification``
    The formal solver substrate (DPLL(T) + simplex) and the attack-synthesis backends.
``repro.systems``
    Ready-made case studies (VSC, trajectory tracking, DC motor, ...).
``repro.runtime``
    The streaming fleet-monitoring engine: online detector wrappers,
    the vectorized ``FleetSimulator`` with scheduled attacks, alarm-event
    sinks, and the ``run_fleet`` deployment entry point.
``repro.serve``
    Always-on fleet serving: the ``MonitorService`` with ring-buffer ingest,
    dynamic attach/detach, atomic threshold hot-swap, back-pressure-aware
    sinks, and a replayable service event log (``run_service``, ``replay``).
``repro.explore``
    Design-space exploration: declarative ``SearchSpace`` axes, grid and
    adaptive-bisection samplers, a persistent content-addressed
    ``ResultStore``, and Pareto-front extraction over (FAR, detection
    latency, stealth margin).
"""

from repro.core import (
    SynthesisProblem,
    ReachSetCriterion,
    FractionOfTargetCriterion,
    StateBoundCriterion,
    CompositeCriterion,
    synthesize_attack,
    AttackSynthesisResult,
    SynthesisSession,
    PivotThresholdSynthesizer,
    StepwiseThresholdSynthesizer,
    StaticThresholdSynthesizer,
    ThresholdRelaxer,
    FalseAlarmEvaluator,
    SynthesisPipeline,
)
from repro.core.synthesis_result import ThresholdSynthesisResult
from repro.api import (
    SynthesisConfig,
    FARConfig,
    RelaxConfig,
    ExperimentSpec,
    ExperimentUnit,
    RuntimeConfig,
    ServiceConfig,
    ExploreConfig,
    PipelineReport,
    run_pipeline,
    run_fleet,
    run_service,
    run_exploration,
    BatchRunner,
    ExperimentResult,
    ExperimentRow,
    default_workers,
    run_experiments,
)
from repro.explore import (
    AdaptiveBisectionSampler,
    ExplorationReport,
    ExplorePoint,
    Explorer,
    GridSampler,
    ResultStore,
    SearchSpace,
    pareto_front,
)
from repro.serve import (
    BufferedSink,
    MonitorService,
    ReplayResult,
    ServiceEvent,
    ServiceLog,
    replay,
)
from repro.runtime import (
    AlarmEvent,
    FleetReport,
    FleetSimulator,
    FleetTrace,
    InMemorySink,
    JSONLSink,
    OnlineChiSquare,
    OnlineCusum,
    OnlineMonitor,
    OnlineResidueDetector,
    ScheduledAttack,
    batch_simulate,
    make_online,
)
from repro.registry import (
    Registry,
    RegistryError,
    register,
    register_sampler,
    get_registry,
    available_backends,
    available_synthesizers,
    available_detectors,
    available_noise_models,
    available_case_studies,
    available_attack_templates,
    available_samplers,
    available_engines,
    get_case_study,
    get_noise_model,
    get_detector,
    get_synthesizer,
    get_attack_template,
    get_sampler,
)
from repro.falsification.registry import get_backend
from repro.detectors import ThresholdVector, ResidueDetector, ChiSquareDetector, CusumDetector
from repro.attacks import FDIAttack, AttackChannelMask
from repro.lti import StateSpace, ClosedLoopSystem, SimulationOptions, simulate_closed_loop, discretize
from repro.monitors import (
    CompositeMonitor,
    RangeMonitor,
    GradientMonitor,
    RelationMonitor,
    DeadZoneMonitor,
)
from repro.systems import (
    build_vsc_case_study,
    build_trajectory_case_study,
    build_dcmotor_case_study,
    build_quadtank_case_study,
    build_cruise_case_study,
    build_pendulum_case_study,
    CaseStudy,
)
from repro.utils.results import SolveStatus

__version__ = "2.0.0"

__all__ = [
    # Experiment API v2
    "SynthesisConfig",
    "FARConfig",
    "RelaxConfig",
    "ExperimentSpec",
    "ExperimentUnit",
    "RuntimeConfig",
    "PipelineReport",
    "run_pipeline",
    "BatchRunner",
    "ExperimentResult",
    "ExperimentRow",
    "default_workers",
    "run_experiments",
    # design-space exploration
    "ExploreConfig",
    "run_exploration",
    "Explorer",
    "ExplorationReport",
    "ExplorePoint",
    "SearchSpace",
    "GridSampler",
    "AdaptiveBisectionSampler",
    "ResultStore",
    "pareto_front",
    # runtime fleet monitoring
    "run_fleet",
    "FleetSimulator",
    "FleetReport",
    "FleetTrace",
    "ScheduledAttack",
    "AlarmEvent",
    "InMemorySink",
    "JSONLSink",
    "OnlineResidueDetector",
    "OnlineCusum",
    "OnlineChiSquare",
    "OnlineMonitor",
    "batch_simulate",
    "make_online",
    # always-on serving
    "ServiceConfig",
    "run_service",
    "MonitorService",
    "BufferedSink",
    "ServiceEvent",
    "ServiceLog",
    "ReplayResult",
    "replay",
    # registries
    "Registry",
    "RegistryError",
    "register",
    "get_registry",
    "available_backends",
    "available_synthesizers",
    "available_detectors",
    "available_noise_models",
    "available_case_studies",
    "available_attack_templates",
    "available_samplers",
    "available_engines",
    "register_sampler",
    "get_sampler",
    "get_backend",
    "get_case_study",
    "get_noise_model",
    "get_detector",
    "get_synthesizer",
    "get_attack_template",
    # core algorithms
    "SynthesisProblem",
    "ReachSetCriterion",
    "FractionOfTargetCriterion",
    "StateBoundCriterion",
    "CompositeCriterion",
    "synthesize_attack",
    "SynthesisSession",
    "AttackSynthesisResult",
    "PivotThresholdSynthesizer",
    "StepwiseThresholdSynthesizer",
    "StaticThresholdSynthesizer",
    "ThresholdRelaxer",
    "ThresholdSynthesisResult",
    "FalseAlarmEvaluator",
    "SynthesisPipeline",
    # detectors / attacks / substrate
    "ThresholdVector",
    "ResidueDetector",
    "ChiSquareDetector",
    "CusumDetector",
    "FDIAttack",
    "AttackChannelMask",
    "StateSpace",
    "ClosedLoopSystem",
    "SimulationOptions",
    "simulate_closed_loop",
    "discretize",
    "CompositeMonitor",
    "RangeMonitor",
    "GradientMonitor",
    "RelationMonitor",
    "DeadZoneMonitor",
    # case studies
    "build_vsc_case_study",
    "build_trajectory_case_study",
    "build_dcmotor_case_study",
    "build_quadtank_case_study",
    "build_cruise_case_study",
    "build_pendulum_case_study",
    "CaseStudy",
    "SolveStatus",
    "__version__",
]
