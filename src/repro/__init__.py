"""Formal synthesis of monitoring and detection systems for secure CPS implementations.

A from-scratch Python reproduction of Koley et al., DATE 2020: residue-based
attack detectors with formally synthesized variable thresholds for LTI
control loops under false-data-injection attacks.

Quick start::

    from repro import build_vsc_case_study, synthesize_attack, PivotThresholdSynthesizer

    case = build_vsc_case_study()
    vulnerability = synthesize_attack(case.problem)          # Algorithm 1
    result = PivotThresholdSynthesizer().synthesize(case.problem)   # Algorithm 2
    print(result.threshold.values)

Subpackages
-----------
``repro.core``
    Algorithms 1-3, the static baseline, FAR evaluation, the end-to-end pipeline.
``repro.lti``, ``repro.estimation``, ``repro.control``
    The plant / estimator / controller substrate.
``repro.attacks``, ``repro.monitors``, ``repro.detectors``, ``repro.noise``
    Attacker models, plant monitors (``mdc``), residue detectors, noise models.
``repro.smt``, ``repro.falsification``
    The formal solver substrate (DPLL(T) + simplex) and the attack-synthesis backends.
``repro.systems``
    Ready-made case studies (VSC, trajectory tracking, DC motor, ...).
"""

from repro.core import (
    SynthesisProblem,
    ReachSetCriterion,
    FractionOfTargetCriterion,
    StateBoundCriterion,
    CompositeCriterion,
    synthesize_attack,
    AttackSynthesisResult,
    PivotThresholdSynthesizer,
    StepwiseThresholdSynthesizer,
    StaticThresholdSynthesizer,
    ThresholdRelaxer,
    FalseAlarmEvaluator,
    SynthesisPipeline,
)
from repro.core.synthesis_result import ThresholdSynthesisResult
from repro.detectors import ThresholdVector, ResidueDetector, ChiSquareDetector, CusumDetector
from repro.attacks import FDIAttack, AttackChannelMask
from repro.lti import StateSpace, ClosedLoopSystem, SimulationOptions, simulate_closed_loop, discretize
from repro.monitors import (
    CompositeMonitor,
    RangeMonitor,
    GradientMonitor,
    RelationMonitor,
    DeadZoneMonitor,
)
from repro.systems import (
    build_vsc_case_study,
    build_trajectory_case_study,
    build_dcmotor_case_study,
    build_quadtank_case_study,
    build_cruise_case_study,
    build_pendulum_case_study,
    CaseStudy,
)
from repro.utils.results import SolveStatus

__version__ = "1.0.0"

__all__ = [
    "SynthesisProblem",
    "ReachSetCriterion",
    "FractionOfTargetCriterion",
    "StateBoundCriterion",
    "CompositeCriterion",
    "synthesize_attack",
    "AttackSynthesisResult",
    "PivotThresholdSynthesizer",
    "StepwiseThresholdSynthesizer",
    "StaticThresholdSynthesizer",
    "ThresholdRelaxer",
    "ThresholdSynthesisResult",
    "FalseAlarmEvaluator",
    "SynthesisPipeline",
    "ThresholdVector",
    "ResidueDetector",
    "ChiSquareDetector",
    "CusumDetector",
    "FDIAttack",
    "AttackChannelMask",
    "StateSpace",
    "ClosedLoopSystem",
    "SimulationOptions",
    "simulate_closed_loop",
    "discretize",
    "CompositeMonitor",
    "RangeMonitor",
    "GradientMonitor",
    "RelationMonitor",
    "DeadZoneMonitor",
    "build_vsc_case_study",
    "build_trajectory_case_study",
    "build_dcmotor_case_study",
    "build_quadtank_case_study",
    "build_cruise_case_study",
    "build_pendulum_case_study",
    "CaseStudy",
    "SolveStatus",
    "__version__",
]
