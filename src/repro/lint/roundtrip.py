"""Round-trip rule: REP005 — serializable configs rebuild losslessly.

Every config dataclass in the repository (``SynthesisConfig``,
``RelaxConfig``, ``SearchSpace``, ``ServiceConfig``, ...) promises a JSON
round trip: ``to_json``/``to_dict`` produce a plain-data form and
``from_json``/``from_dict`` rebuild an equal object.  Stores key on the
canonical dict (first-write-wins content addressing), so a field that
silently falls out of ``to_dict`` corrupts both resumability and cache
identity.  Two checks:

* a class defining ``to_json`` must define ``from_json`` (one-way JSON is
  a report, not a config — name it something else);
* a dataclass defining **both** ``to_dict`` and ``from_dict`` where
  ``to_dict`` returns a literal ``{...}`` must include every dataclass
  field among the literal's keys (extra derived keys are fine; a *missing*
  field is dropped by the round trip).  Deliberately lossy serializations
  carry a justified pragma.
"""

from __future__ import annotations

import ast

from repro.lint.base import FileContext, Finding, LintRule

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_dataclass(node: ast.ClassDef) -> bool:
    """Whether ``node`` carries a ``@dataclass`` / ``@dataclass(...)`` decorator."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> list[str]:
    """Names of the class's annotated fields (``ClassVar`` excluded)."""
    fields = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.dump(statement.annotation)
        if "ClassVar" in annotation:
            continue
        name = statement.target.id
        if not name.startswith("_"):
            fields.append(name)
    return fields


def _literal_dict_keys(function: ast.FunctionDef) -> set[str] | None:
    """Constant keys of the dict literal(s) ``function`` returns.

    ``None`` when any return is not a dict literal with all-constant string
    keys (the serialization is computed — nothing to compare statically).
    """
    keys: set[str] = set()
    returns = [
        node
        for node in ast.walk(function)
        if isinstance(node, ast.Return) and node.value is not None
    ]
    if not returns:
        return None
    for node in returns:
        value = node.value
        if not isinstance(value, ast.Dict):
            return None
        for key in value.keys:
            if key is None:
                continue  # ``**spread`` — unknowable, but the rest still counts
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                return None
            keys.add(key.value)
    return keys


class RoundTripRule(LintRule):
    """REP005: ``to_json`` pairs with ``from_json``; ``to_dict`` covers all fields."""

    code = "REP005"
    name = "config-round-trip"
    description = (
        "Config dataclasses defining to_json must define from_json, and a "
        "literal to_dict must carry every dataclass field — JSON round "
        "trips (and store content addresses) must not silently drop state."
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        """Flag one-way ``to_json`` and field-dropping ``to_dict`` in ``ctx``."""
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                entry.name: entry
                for entry in node.body
                if isinstance(entry, _FUNCTION_NODES)
            }
            if "to_json" in methods and "from_json" not in methods:
                findings.append(
                    self.finding(
                        ctx,
                        methods["to_json"],
                        f"{node.name}.to_json has no from_json counterpart — "
                        "configs must round-trip",
                    )
                )
            if (
                _is_dataclass(node)
                and "to_dict" in methods
                and "from_dict" in methods
            ):
                keys = _literal_dict_keys(methods["to_dict"])
                if keys is None:
                    continue
                missing = [
                    field for field in _dataclass_fields(node) if field not in keys
                ]
                if missing:
                    findings.append(
                        self.finding(
                            ctx,
                            methods["to_dict"],
                            f"{node.name}.to_dict omits dataclass field(s) "
                            f"{missing} — the from_dict round trip silently "
                            "drops them",
                        )
                    )
        return findings
