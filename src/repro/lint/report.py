"""Reporters: render a :class:`~repro.lint.engine.LintResult` as text or JSON.

The text form is one ``path:line:col: CODE message`` line per finding plus
a one-line summary — grep- and editor-friendly.  The JSON form is the
machine contract the CI ``lint-invariants`` job uploads as an artifact:
``{"files_scanned", "summary", "findings": [...]}`` with each finding in
its :meth:`~repro.lint.base.Finding.to_dict` shape, suppressed findings
included (with their justification) so the artifact documents every
standing exemption.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult


def text_report(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary line."""
    lines = [finding.render() for finding in result.findings]
    unsuppressed = len(result.unsuppressed)
    suppressed = len(result.suppressed)
    lines.append(
        f"{unsuppressed} finding(s) ({suppressed} suppressed) "
        f"in {result.files_scanned} file(s)"
    )
    return "\n".join(lines)


def json_report(result: LintResult, indent: int | None = 2) -> str:
    """Machine-readable report (the CI artifact format)."""
    payload = {
        "files_scanned": result.files_scanned,
        "summary": {
            "total": len(result.findings),
            "unsuppressed": len(result.unsuppressed),
            "suppressed": len(result.suppressed),
        },
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=indent, sort_keys=False)
