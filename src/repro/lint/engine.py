"""Lint orchestration: walk files, run rules, apply suppressions.

``run_lint(paths)`` is the single entry point behind both the CLI and the
self-gate test: it parses every file once, runs each active rule's
per-file ``check`` and cross-file ``finish``, then applies the suppression
pragmas — a finding is suppressed exactly when a well-formed
``# repro: noqa <code> — <justification>`` pragma sits on its line and
names its code.  Pragmas that suppress nothing are themselves reported
(suppressions rot when the code they excuse goes away), as are malformed
pragmas and syntax errors, under the never-suppressible ``REP000`` code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.base import PRAGMA_CODE, Finding, LintRule, ProjectContext
from repro.lint.determinism import GlobalRngRule, WallClockRule
from repro.lint.hygiene import BroadExceptRule
from repro.lint.instruments import MetricNamingRule
from repro.lint.plugins import RegistryRule
from repro.lint.roundtrip import RoundTripRule
from repro.lint.walker import collect_files, load_file

#: Rule classes in code order; instantiated fresh per run.
RULE_CLASSES: tuple[type[LintRule], ...] = (
    WallClockRule,
    GlobalRngRule,
    BroadExceptRule,
    RegistryRule,
    RoundTripRule,
    MetricNamingRule,
)


def default_rules() -> list[LintRule]:
    """Fresh instances of every built-in rule (rules may carry run state)."""
    return [rule_class() for rule_class in RULE_CLASSES]


def known_codes() -> frozenset[str]:
    """Every valid rule code, the pragma meta-code included."""
    return frozenset({PRAGMA_CODE, *(rule.code for rule in RULE_CLASSES)})


@dataclass
class LintResult:
    """Outcome of one lint run: every finding, suppressed ones included."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def unsuppressed(self) -> list[Finding]:
        """Findings that gate the run (not excused by a pragma)."""
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        """Findings excused by a justified pragma."""
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def exit_code(self) -> int:
        """Process exit status: non-zero iff any unsuppressed finding."""
        return 1 if self.unsuppressed else 0


def run_lint(
    paths: list[str | Path],
    select: list[str] | None = None,
    rules: list[LintRule] | None = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` and return the findings.

    Parameters
    ----------
    paths:
        Files or directories to scan.
    select:
        Optional rule codes to restrict the run to (``["REP001"]``);
        ``None`` runs every rule.  Unused-suppression detection only runs
        with the full rule set (a pragma for an unselected rule is not
        "unused").
    rules:
        Optional explicit rule instances (overrides ``select``).
    """
    codes = known_codes()
    if rules is None:
        rules = default_rules()
        if select is not None:
            wanted = set(select)
            unknown = wanted - codes
            if unknown:
                raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
            rules = [rule for rule in rules if rule.code in wanted]
    full_run = {rule.code for rule in rules} == {cls.code for cls in RULE_CLASSES}

    findings: list[Finding] = []
    contexts = []
    for path in collect_files(paths):
        context, file_findings = load_file(path, codes)
        findings.extend(file_findings)
        if context is not None:
            contexts.append(context)

    project = ProjectContext(files=contexts)
    for rule in rules:
        for context in contexts:
            findings.extend(rule.check(context))
        findings.extend(rule.finish(project))

    # Suppression pass: pragma on the finding's line, naming its code.
    pragma_by_location = {
        (str(context.path), line): pragma
        for context in contexts
        for line, pragma in context.pragmas.items()
    }
    used: set[tuple[str, int, str]] = set()
    for finding in findings:
        if finding.code == PRAGMA_CODE:
            continue
        pragma = pragma_by_location.get((finding.path, finding.line))
        if pragma is not None and pragma.covers(finding.code):
            finding.suppressed = True
            finding.justification = pragma.justification
            used.add((finding.path, finding.line, finding.code))

    if full_run:
        for context in contexts:
            for line, pragma in context.pragmas.items():
                stale = [
                    code
                    for code in pragma.codes
                    if (str(context.path), line, code) not in used
                ]
                if stale:
                    findings.append(
                        Finding(
                            code=PRAGMA_CODE,
                            message=(
                                f"unused suppression for {', '.join(stale)} — "
                                "the excused finding no longer exists; drop the pragma"
                            ),
                            path=str(context.path),
                            line=line,
                        )
                    )

    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return LintResult(findings=findings, files_scanned=len(contexts))
