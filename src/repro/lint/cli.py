"""Command-line interface: ``python -m repro.lint [paths]``.

Exit status is non-zero exactly when unsuppressed findings remain, so the
command doubles as a CI gate::

    python -m repro.lint src                          # human-readable
    python -m repro.lint src --format json            # machine-readable
    python -m repro.lint src --format json --output lint-report.json
    python -m repro.lint src --select REP001,REP003   # subset of rules
    python -m repro.lint --list-rules                 # rule catalogue

``--output`` writes the report to a file (useful with ``--format json`` to
upload a CI artifact) while the exit code still reflects the findings; a
one-line summary goes to stderr so the terminal shows the outcome either
way.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.engine import RULE_CLASSES, run_lint
from repro.lint.report import json_report, text_report


def _default_paths() -> list[str]:
    """``src`` when the working directory has one, else the working directory."""
    return ["src"] if Path("src").is_dir() else ["."]


def _rule_catalogue() -> str:
    """One line per rule: code, name, description."""
    lines = []
    for rule_class in RULE_CLASSES:
        lines.append(f"{rule_class.code}  {rule_class.name}")
        lines.append(f"       {rule_class.description}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Run the linter; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Repo-invariant static analysis for the repro library.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: ./src if present, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_rule_catalogue())
        return 0

    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    try:
        result = run_lint(args.paths or _default_paths(), select=select)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    report = json_report(result) if args.format == "json" else text_report(result)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        print(
            f"{len(result.unsuppressed)} unsuppressed finding(s); "
            f"report written to {args.output}",
            file=sys.stderr,
        )
    else:
        print(report)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
