"""Hygiene rule: REP003 — no bare or broad exception handlers.

A ``except:`` / ``except Exception:`` / ``except BaseException:`` handler
swallows programming errors (``NameError``, ``AttributeError``) along with
the failure it meant to tolerate, which turns bugs into silently wrong
results — fatal in a reproduction whose value *is* numeric fidelity.
Handlers must name the exception types they expect; genuinely deliberate
catch-alls (worker isolation in a sweep) carry a justified
``# repro: noqa REP003 — <why>`` pragma instead.
"""

from __future__ import annotations

import ast

from repro.lint.base import FileContext, Finding, LintRule

_BROAD = ("Exception", "BaseException")


class BroadExceptRule(LintRule):
    """REP003: exception handlers must name the exceptions they expect."""

    code = "REP003"
    name = "no-broad-except"
    description = (
        "No bare `except:` and no `except Exception/BaseException` — name "
        "the expected exception types; deliberate catch-alls need a "
        "justified pragma."
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        """Flag bare/broad exception handlers in ``ctx``."""
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "bare `except:` — name the expected exception types",
                    )
                )
                continue
            caught = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            for entry in caught:
                if isinstance(entry, ast.Name) and entry.id in _BROAD:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"broad `except {entry.id}` — name the expected "
                            "exception types (or justify with a pragma)",
                        )
                    )
        return findings
