"""Determinism rules: REP001 (wall clock) and REP002 (global NumPy RNG).

Both rules protect the repository's replay guarantees — bit-identical
online/offline detector equivalence, bit-identical CEGIS sessions,
first-write-wins content-addressed stores, and bit-identical
``serve.replay`` — which hold only while replayable code paths consume
neither wall-clock time nor unseeded global randomness.

* **REP001** flags every direct wall-clock read (``time.time``,
  ``time.perf_counter``, ``time.monotonic``, ``time.process_time`` and
  their ``_ns`` forms, ``datetime.now``/``utcnow``/``today``) outside
  :mod:`repro.obs` (the designated clock owner — everything else measures
  durations through :class:`repro.obs.clock.Stopwatch`) and outside
  benchmark directories.
* **REP002** flags legacy global NumPy RNG calls (``np.random.seed``,
  ``np.random.normal``, ``np.random.RandomState()``, ...) and *unseeded*
  ``default_rng()`` calls everywhere except :mod:`repro.utils.rng`, the
  single module through which all randomness flows.
"""

from __future__ import annotations

import ast

from repro.lint.base import FileContext, Finding, LintRule

#: Wall-clock reading functions of the :mod:`time` module.
WALL_CLOCK_TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)

#: Wall-clock reading constructors on ``datetime.datetime`` / ``datetime.date``.
DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: Legacy global-state functions (and the legacy generator class) under
#: ``numpy.random`` whose use bypasses :func:`repro.utils.rng.ensure_rng`.
LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "random_integers",
        "normal",
        "uniform",
        "choice",
        "shuffle",
        "permutation",
        "standard_normal",
        "beta",
        "binomial",
        "poisson",
        "exponential",
        "gamma",
        "lognormal",
        "multivariate_normal",
        "get_state",
        "set_state",
        "RandomState",
    }
)


class WallClockRule(LintRule):
    """REP001: wall-clock reads are confined to ``repro.obs`` (and benchmarks)."""

    code = "REP001"
    name = "wall-clock-confinement"
    description = (
        "No direct wall-clock reads (time.time/perf_counter/monotonic/"
        "process_time, datetime.now) outside repro.obs and benchmarks — "
        "use repro.obs.clock.Stopwatch.  Protects serve.replay and session "
        "bit-identity."
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        """Flag wall-clock reads in ``ctx`` unless the module is exempt."""
        if ctx.module == "repro.obs" or ctx.module.startswith("repro.obs."):
            return []
        if any(part == "benchmarks" for part in ctx.path.parts):
            return []

        time_aliases: set[str] = set()
        datetime_module_aliases: set[str] = set()
        datetime_class_aliases: set[str] = set()
        direct_fns: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
                    elif alias.name == "datetime":
                        datetime_module_aliases.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in WALL_CLOCK_TIME_FNS:
                            direct_fns[alias.asname or alias.name] = f"time.{alias.name}"
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_class_aliases.add(alias.asname or alias.name)

        findings = []

        def flag(node: ast.AST, what: str) -> None:
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"wall-clock read `{what}` outside repro.obs — measure "
                    "durations with repro.obs.clock.Stopwatch (replay paths "
                    "must be clock-free)",
                )
            )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                value = node.value
                if (
                    isinstance(value, ast.Name)
                    and value.id in time_aliases
                    and node.attr in WALL_CLOCK_TIME_FNS
                ):
                    flag(node, f"time.{node.attr}")
                elif node.attr in DATETIME_FNS and (
                    (isinstance(value, ast.Name) and value.id in datetime_class_aliases)
                    or (
                        isinstance(value, ast.Attribute)
                        and value.attr in ("datetime", "date")
                        and isinstance(value.value, ast.Name)
                        and value.value.id in datetime_module_aliases
                    )
                ):
                    flag(node, f"datetime.{node.attr}")
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in direct_fns
            ):
                flag(node, direct_fns[node.id])
        return findings


class GlobalRngRule(LintRule):
    """REP002: all randomness flows through ``repro.utils.rng``."""

    code = "REP002"
    name = "no-global-rng"
    description = (
        "No legacy global NumPy RNG (np.random.<fn>) and no unseeded "
        "default_rng() outside repro.utils.rng — per-stream seeded "
        "Generators keep noise realizations reproducible."
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        """Flag legacy/unseeded RNG use in ``ctx`` unless the module is exempt."""
        if ctx.module == "repro.utils.rng":
            return []

        numpy_aliases: set[str] = set()
        random_module_aliases: set[str] = set()
        direct_legacy: dict[str, str] = {}
        direct_default_rng: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        # ``import numpy.random`` binds the top-level package.
                        numpy_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            random_module_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name in LEGACY_NP_RANDOM:
                            direct_legacy[alias.asname or alias.name] = alias.name
                        elif alias.name == "default_rng":
                            direct_default_rng.add(alias.asname or "default_rng")

        def is_np_random(value: ast.AST) -> bool:
            if isinstance(value, ast.Name) and value.id in random_module_aliases:
                return True
            return (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in numpy_aliases
            )

        def unseeded(call: ast.Call) -> bool:
            if call.args:
                first = call.args[0]
                return isinstance(first, ast.Constant) and first.value is None
            seed_kw = next((kw for kw in call.keywords if kw.arg == "seed"), None)
            if seed_kw is not None:
                return isinstance(seed_kw.value, ast.Constant) and seed_kw.value.value is None
            return True

        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and is_np_random(func.value):
                if func.attr in LEGACY_NP_RANDOM:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"legacy global NumPy RNG `np.random.{func.attr}()` — "
                            "route randomness through repro.utils.rng.ensure_rng",
                        )
                    )
                elif func.attr == "default_rng" and unseeded(node):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "unseeded `default_rng()` — pass an explicit seed or "
                            "use repro.utils.rng.ensure_rng",
                        )
                    )
            elif isinstance(func, ast.Name):
                if func.id in direct_legacy:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"legacy global NumPy RNG `{direct_legacy[func.id]}()` — "
                            "route randomness through repro.utils.rng.ensure_rng",
                        )
                    )
                elif func.id in direct_default_rng and unseeded(node):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "unseeded `default_rng()` — pass an explicit seed or "
                            "use repro.utils.rng.ensure_rng",
                        )
                    )
        return findings
