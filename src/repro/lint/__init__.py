"""`repro.lint`: repo-invariant static analysis with a CI gate.

Every guarantee this reproduction makes — bit-identical online/offline
detector equivalence, bit-identical CEGIS sessions, first-write-wins
content-addressed stores, bit-identical ``serve.replay`` — rests on
invariants that generic linters cannot see.  This package encodes them as
AST-based rules and gates the tree on every commit (the
``lint-invariants`` CI job and ``tests/test_lint_self.py`` both run
``python -m repro.lint src`` and require zero unsuppressed findings):

==========  ===========================================================
code        invariant protected
==========  ===========================================================
``REP001``  no wall-clock reads outside :mod:`repro.obs`/benchmarks —
            replayable paths measure time via
            :class:`repro.obs.clock.Stopwatch` only
``REP002``  no legacy global NumPy RNG and no unseeded ``default_rng()``
            — all randomness flows through :mod:`repro.utils.rng`
``REP003``  no bare/broad ``except:`` — handlers name what they expect
``REP004``  plugin registrations are unique and live in modules their
            package ``__init__`` imports
``REP005``  config dataclasses round-trip: ``to_json`` pairs with
            ``from_json``, literal ``to_dict`` covers every field
``REP006``  counters are named ``*_total``, gauges are not, histogram
            bucket tuples are strictly increasing — the Prometheus
            exposition stays invertible
==========  ===========================================================

Findings are suppressed per line with ``# repro: noqa REP0xx — <why>``;
the justification is mandatory, and malformed or unused pragmas are
themselves findings (``REP000``, never suppressible).  See
``docs/static-analysis.md`` for the rule catalogue and policy.
"""

from repro.lint.base import FileContext, Finding, LintRule, ProjectContext
from repro.lint.engine import (
    RULE_CLASSES,
    LintResult,
    default_rules,
    known_codes,
    run_lint,
)
from repro.lint.pragmas import SuppressionPragma, parse_pragmas
from repro.lint.report import json_report, text_report

__all__ = [
    "FileContext",
    "Finding",
    "LintResult",
    "LintRule",
    "ProjectContext",
    "RULE_CLASSES",
    "SuppressionPragma",
    "default_rules",
    "json_report",
    "known_codes",
    "parse_pragmas",
    "run_lint",
    "text_report",
]
