"""Core datatypes of the lint framework: findings, contexts, and the rule base.

A lint run parses every file once into a :class:`FileContext` (AST, module
name, suppression pragmas), hands each context to every active rule's
``check``, then calls each rule's ``finish`` with the whole-project
:class:`ProjectContext` so cross-file rules (e.g. registry uniqueness) can
reconcile what they collected.  Rules return :class:`Finding` objects;
suppression is applied afterwards by the engine, so rules never need to
know about pragmas.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.lint.pragmas import SuppressionPragma

#: Code used for meta-findings (malformed pragmas, syntax errors, unused
#: suppressions).  Never suppressible — a broken suppression must not be
#: able to hide itself.
PRAGMA_CODE = "REP000"


@dataclass
class Finding:
    """One rule violation (or pragma/parse error) at a source location."""

    code: str
    message: str
    path: str
    line: int
    column: int = 0
    suppressed: bool = False
    justification: str | None = None

    def render(self) -> str:
        """One-line human-readable form (``path:line:col: CODE message``)."""
        suffix = f"  [suppressed: {self.justification}]" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}{suffix}"

    def to_dict(self) -> dict:
        """JSON-compatible representation (used by the JSON reporter)."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }


@dataclass
class FileContext:
    """One parsed source file: path, dotted module name, AST, and pragmas."""

    path: Path
    module: str
    source: str
    tree: ast.Module
    pragmas: dict[int, "SuppressionPragma"] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """Dotted name of the containing package (empty for top-level files)."""
        return self.module.rpartition(".")[0]


@dataclass
class ProjectContext:
    """Every successfully parsed file of the run, for cross-file rules."""

    files: list[FileContext] = field(default_factory=list)

    def by_path(self, path: Path) -> FileContext | None:
        """The context parsed from ``path`` (``None`` when not in the run)."""
        for ctx in self.files:
            if ctx.path == path:
                return ctx
        return None


class LintRule:
    """Base class every rule derives from.

    Subclasses set ``code`` (``"REP0xx"``), ``name`` and ``description``,
    and override :meth:`check` (per file) and/or :meth:`finish` (once, after
    every file was checked — for cross-file analyses).  Rules are
    instantiated fresh per run, so they may accumulate state in ``check``
    and reconcile it in ``finish``.
    """

    code: str = PRAGMA_CODE
    name: str = ""
    description: str = ""

    def check(self, ctx: FileContext) -> list[Finding]:
        """Findings for one file (default: none)."""
        return []

    def finish(self, project: ProjectContext) -> list[Finding]:
        """Cross-file findings after every file was checked (default: none)."""
        return []

    # ------------------------------------------------------------------
    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` for this rule anchored at ``node``."""
        return Finding(
            code=self.code,
            message=message,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
        )
