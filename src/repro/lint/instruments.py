"""Metrics-instrument rule: REP006 — exposition-safe metric registration.

The Prometheus text exposition in :mod:`repro.obs.export` is *exactly
invertible* (``parse_prometheus_text(prometheus_text(r)) == r.snapshot()``)
only because counters are registered with their final ``*_total`` name —
no suffix rewriting happens on the way out — and histogram bucket bounds
are strictly increasing tuples fixed at registration.  This rule checks
every registration call site statically:

* ``.counter("name", ...)`` names must end in ``_total``;
* ``.gauge("name", ...)`` names must *not* end in ``_total`` (that suffix
  marks a counter in the exposition);
* ``.histogram("name", buckets=(...))`` literal bucket tuples must be
  strictly increasing (the runtime check raises, but only on the first
  enabled run — lint catches it before it ships).
"""

from __future__ import annotations

import ast

from repro.lint.base import FileContext, Finding, LintRule


def _constant_name(call: ast.Call) -> str | None:
    """The call's constant-string first argument (``None`` when dynamic)."""
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value
    return None


def _literal_buckets(call: ast.Call) -> list[float] | None:
    """The literal bucket bounds of a histogram call (``None`` when absent)."""
    candidate = None
    for keyword in call.keywords:
        if keyword.arg == "buckets":
            candidate = keyword.value
    if candidate is None and len(call.args) >= 3:
        candidate = call.args[2]
    if not isinstance(candidate, (ast.Tuple, ast.List)):
        return None
    bounds = []
    for element in candidate.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, (int, float))
            and not isinstance(element.value, bool)
        ):
            return None
        bounds.append(float(element.value))
    return bounds


class MetricNamingRule(LintRule):
    """REP006: counter names end `_total`; histogram buckets sorted."""

    code = "REP006"
    name = "metric-conventions"
    description = (
        "Counters registered via repro.obs must be named *_total, gauges "
        "must not be, and literal histogram bucket tuples must be strictly "
        "increasing — protects the invertible Prometheus exposition."
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        """Flag non-conforming instrument registrations in ``ctx``."""
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            kind = node.func.attr
            if kind not in ("counter", "gauge", "histogram"):
                continue
            name = _constant_name(node)
            if name is None:
                continue
            if kind == "counter" and not name.endswith("_total"):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"counter {name!r} must be named '*_total' — the "
                        "Prometheus exposition appends no suffix",
                    )
                )
            elif kind == "gauge" and name.endswith("_total"):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"gauge {name!r} must not be named '*_total' — that "
                        "suffix marks a counter in the exposition",
                    )
                )
            elif kind == "histogram":
                bounds = _literal_buckets(node)
                if bounds is not None and any(
                    b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"histogram {name!r} bucket bounds must be strictly "
                            "increasing",
                        )
                    )
        return findings
