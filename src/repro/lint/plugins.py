"""Plugin-registry rule: REP004 — registrations are unique and reachable.

The library's seven string-resolved extension points (``BACKENDS``,
``SYNTHESIZERS``, ``DETECTORS``, ``NOISE_MODELS``, ``CASE_STUDIES``,
``ATTACK_TEMPLATES``, ``SAMPLERS`` in :mod:`repro.registry`) populate
themselves when their defining modules are imported.  Two invariants keep
that working:

* **Uniqueness** — one name, one registration site.  A duplicate name
  would either raise :class:`~repro.registry.RegistryError` at import time
  or (with ``overwrite=True``) silently shadow a built-in.
* **Reachability** — the module containing a registration must be imported
  by its package's ``__init__.py``; otherwise the plugin exists only for
  callers that happen to import the module directly, and registry lookups
  that rely on the package import miss it.

This is a cross-file rule: registrations are collected per file in
``check`` and reconciled once in ``finish``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.lint.base import FileContext, Finding, LintRule, ProjectContext

#: Registry variables in :mod:`repro.registry`, by conventional name.
REGISTRY_VARS = frozenset(
    {
        "BACKENDS",
        "SYNTHESIZERS",
        "DETECTORS",
        "NOISE_MODELS",
        "CASE_STUDIES",
        "ATTACK_TEMPLATES",
        "SAMPLERS",
        "ENGINES",
    }
)

#: Helper decorators that register into a fixed registry.
HELPER_FUNCS = {"register_sampler": "SAMPLERS"}

#: ``register(kind, name)`` kind strings → registry variable.
KIND_TO_VAR = {
    "backend": "BACKENDS",
    "synthesizer": "SYNTHESIZERS",
    "detector": "DETECTORS",
    "noise_model": "NOISE_MODELS",
    "noise model": "NOISE_MODELS",
    "case_study": "CASE_STUDIES",
    "case study": "CASE_STUDIES",
    "attack_template": "ATTACK_TEMPLATES",
    "attack template": "ATTACK_TEMPLATES",
    "sampler": "SAMPLERS",
    "engine": "ENGINES",
}


@dataclass(frozen=True)
class Registration:
    """One statically visible ``<registry>.register(<name>)`` site."""

    registry: str
    plugin: str
    module: str
    path: Path
    line: int
    column: int


def _registration_target(call: ast.Call) -> str | None:
    """The registry a ``register`` call targets, or ``None`` when unrelated."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "register"
        and isinstance(func.value, ast.Name)
        and func.value.id in REGISTRY_VARS
    ):
        return func.value.id
    if isinstance(func, ast.Name):
        if func.id in HELPER_FUNCS:
            return HELPER_FUNCS[func.id]
        if func.id == "register" and len(call.args) >= 2:
            kind = call.args[0]
            if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
                return KIND_TO_VAR.get(kind.value)
    return None


def _plugin_name(call: ast.Call, registry: str) -> str | None:
    """The constant plugin name of a register call (``None`` when dynamic)."""
    index = 1 if isinstance(call.func, ast.Name) and call.func.id == "register" else 0
    if len(call.args) <= index:
        return None
    name = call.args[index]
    if isinstance(name, ast.Constant) and isinstance(name.value, str):
        return name.value
    return None


class RegistryRule(LintRule):
    """REP004: plugin names are unique and their modules package-reachable."""

    code = "REP004"
    name = "registry-integrity"
    description = (
        "Every @register*-decorated plugin lives in a module imported by its "
        "package __init__, and registry names are unique across the tree."
    )

    def __init__(self) -> None:
        self._registrations: list[Registration] = []

    # ------------------------------------------------------------------
    def check(self, ctx: FileContext) -> list[Finding]:
        """Collect every statically visible registration in ``ctx``."""
        calls: list[ast.Call] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                calls.extend(
                    decorator
                    for decorator in node.decorator_list
                    if isinstance(decorator, ast.Call)
                )
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                calls.append(node.value)
        for call in calls:
            registry = _registration_target(call)
            if registry is None:
                continue
            plugin = _plugin_name(call, registry)
            if plugin is None:
                continue
            self._registrations.append(
                Registration(
                    registry=registry,
                    plugin=plugin,
                    module=ctx.module,
                    path=ctx.path,
                    line=call.lineno,
                    column=call.col_offset,
                )
            )
        return []

    # ------------------------------------------------------------------
    def finish(self, project: ProjectContext) -> list[Finding]:
        """Reconcile collected registrations: uniqueness, then reachability."""
        findings: list[Finding] = []

        by_name: dict[tuple[str, str], list[Registration]] = {}
        for registration in self._registrations:
            by_name.setdefault(
                (registration.registry, registration.plugin), []
            ).append(registration)
        for (registry, plugin), sites in sorted(by_name.items()):
            if len(sites) < 2:
                continue
            sites = sorted(sites, key=lambda s: (str(s.path), s.line))
            first = sites[0]
            for extra in sites[1:]:
                findings.append(
                    Finding(
                        code=self.code,
                        message=(
                            f"{registry} name {plugin!r} is registered more than "
                            f"once (first at {first.path}:{first.line}) — registry "
                            "names must be unique"
                        ),
                        path=str(extra.path),
                        line=extra.line,
                        column=extra.column,
                    )
                )

        for registration in self._registrations:
            problem = self._reachability_problem(registration, project)
            if problem is not None:
                findings.append(
                    Finding(
                        code=self.code,
                        message=problem,
                        path=str(registration.path),
                        line=registration.line,
                        column=registration.column,
                    )
                )
        return findings

    # ------------------------------------------------------------------
    def _reachability_problem(
        self, registration: Registration, project: ProjectContext
    ) -> str | None:
        """Why ``registration``'s module is unreachable (``None`` when fine)."""
        module = registration.module
        if registration.path.name == "__init__.py":
            return None  # registered in the package itself
        init_path = registration.path.parent / "__init__.py"
        if not init_path.exists():
            return (
                f"{registration.registry}.register({registration.plugin!r}) sits in "
                f"{module}, which is not inside a package — nothing imports it"
            )
        context = project.by_path(init_path.resolve())
        if context is not None:
            tree = context.tree
        else:
            try:
                tree = ast.parse(init_path.read_text(encoding="utf-8"))
            except (OSError, SyntaxError):
                return None  # the walker/CI reports the broken __init__ itself
        last_segment = module.rpartition(".")[2]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any(alias.name == module for alias in node.names):
                    return None
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == module:
                    return None
                if node.level == 1 and node.module == last_segment:
                    return None
                if node.level == 0 and node.module == registration.module.rpartition(".")[0]:
                    # ``from repro.pkg import mod``
                    if any(alias.name == last_segment for alias in node.names):
                        return None
        return (
            f"{registration.registry}.register({registration.plugin!r}) sits in "
            f"{module}, but {init_path} never imports it — the plugin is "
            "invisible until the module is imported by hand"
        )
