"""Suppression pragmas: ``# repro: noqa REP0xx — justification``.

A finding is suppressed by a pragma comment **on the same line**, and the
pragma *must* carry both the rule code(s) being suppressed and a written
justification — a bare ``# repro: noqa`` (blanket suppression) or a pragma
without justification is itself reported as a :data:`~repro.lint.base.
PRAGMA_CODE` finding, which is never suppressible.  Multiple codes are
comma-separated; the justification follows an em-dash/hyphen/colon
separator::

    except Exception as exc:  # repro: noqa REP003 — one bad group must not kill the sweep

Pragmas are extracted from real comment tokens (via :mod:`tokenize`), so
pragma-shaped text inside strings and docstrings — like the example above —
is ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path

from repro.lint.base import PRAGMA_CODE, Finding

_PRAGMA = re.compile(r"#\s*repro:\s*noqa\b(?P<rest>.*)$")
_REST = re.compile(
    r"^\s*(?P<codes>REP\d{3}(?:\s*,\s*REP\d{3})*)?"
    r"\s*(?:(?:—|–|--|-|:)\s*(?P<just>.*))?$"
)
_CODE = re.compile(r"REP\d{3}")


@dataclass(frozen=True)
class SuppressionPragma:
    """One well-formed suppression: line, suppressed codes, justification."""

    line: int
    codes: tuple[str, ...]
    justification: str

    def covers(self, code: str) -> bool:
        """Whether this pragma suppresses findings with ``code``."""
        return code in self.codes


def parse_pragmas(
    source: str, path: Path, known_codes: frozenset[str]
) -> tuple[dict[int, SuppressionPragma], list[Finding]]:
    """Extract suppression pragmas (and malformed-pragma findings) from a file.

    Returns ``(pragmas_by_line, findings)``: well-formed pragmas keyed by
    their 1-based line number, and one :data:`PRAGMA_CODE` finding per
    malformed pragma (no codes, unknown code, or missing justification).
    """
    pragmas: dict[int, SuppressionPragma] = {}
    findings: list[Finding] = []

    def bad(line: int, column: int, message: str) -> None:
        findings.append(
            Finding(code=PRAGMA_CODE, message=message, path=str(path), line=line, column=column)
        )

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable files already get a syntax-error finding from the
        # walker; there are no comments to honour in them.
        return {}, []

    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        line, column = token.start
        rest = _REST.match(match.group("rest"))
        codes = _CODE.findall(rest.group("codes") or "") if rest else []
        justification = (rest.group("just") or "").strip() if rest else ""
        if not codes:
            bad(
                line,
                column,
                "suppression pragma names no rule codes — blanket "
                "'# repro: noqa' is not allowed, name the REP0xx code(s)",
            )
            continue
        unknown = [code for code in codes if code not in known_codes]
        if unknown:
            bad(line, column, f"suppression pragma names unknown rule code(s): {unknown}")
            continue
        if not justification:
            bad(
                line,
                column,
                f"suppression of {', '.join(codes)} requires a written "
                "justification ('# repro: noqa REP0xx — <why>')",
            )
            continue
        pragmas[line] = SuppressionPragma(
            line=line, codes=tuple(codes), justification=justification
        )
    return pragmas, findings
