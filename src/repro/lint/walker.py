"""File discovery and parsing: paths → :class:`~repro.lint.base.FileContext`.

``collect_files`` expands the CLI's path arguments (files or directories)
into a sorted, de-duplicated list of ``.py`` files, skipping hidden
directories and ``__pycache__``.  ``load_file`` parses one file into a
:class:`FileContext`, deriving its dotted module name by walking up through
``__init__.py``-bearing parents (so ``src/repro/obs/clock.py`` becomes
``repro.obs.clock`` regardless of the working directory) and extracting its
suppression pragmas.  Unparseable files yield a syntax-error finding
instead of a context.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.base import PRAGMA_CODE, FileContext, Finding
from repro.lint.pragmas import parse_pragmas


def collect_files(paths: list[str | Path]) -> list[Path]:
    """Sorted unique ``.py`` files under ``paths`` (files or directories)."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.relative_to(path).parts
                if any(part == "__pycache__" or part.startswith(".") for part in parts):
                    continue
                files.add(candidate.resolve())
        elif path.suffix == ".py":
            files.add(path.resolve())
    return sorted(files)


def module_name(path: Path) -> str:
    """Dotted module name of ``path``, derived from ``__init__.py`` parents.

    Walks upward while the parent directory is a package; a file outside
    any package is its bare stem.  ``__init__.py`` itself resolves to the
    *package* name (``repro/obs/__init__.py`` → ``repro.obs``).
    """
    path = path.resolve()
    parts = [] if path.stem == "__init__" else [path.stem]
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        current = current.parent
    return ".".join(parts) if parts else path.stem


def load_file(
    path: Path, known_codes: frozenset[str]
) -> tuple[FileContext | None, list[Finding]]:
    """Parse ``path`` into a context; syntax errors become findings.

    Returns ``(context, findings)`` — ``context`` is ``None`` exactly when
    the file failed to parse, and ``findings`` carries malformed-pragma
    findings (and the syntax error, if any).
    """
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return None, [
            Finding(
                code=PRAGMA_CODE,
                message=f"cannot read file: {error}",
                path=str(path),
                line=1,
            )
        ]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return None, [
            Finding(
                code=PRAGMA_CODE,
                message=f"syntax error: {error.msg}",
                path=str(path),
                line=error.lineno or 1,
                column=(error.offset or 1) - 1,
            )
        ]
    pragmas, findings = parse_pragmas(source, path, known_codes)
    context = FileContext(
        path=path, module=module_name(path), source=source, tree=tree, pragmas=pragmas
    )
    return context, findings
