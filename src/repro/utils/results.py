"""Common result containers used across synthesis and detection modules."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class SolveStatus(enum.Enum):
    """Outcome of a solver or synthesis query.

    The semantics mirror SMT conventions:

    * ``SAT`` — a witness (attack vector / model) was found.
    * ``UNSAT`` — proved that no witness exists.
    * ``UNKNOWN`` — resource budget exhausted before a verdict.
    """

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return self is SolveStatus.SAT


@dataclass
class SynthesisRecord:
    """One round of a counterexample-guided synthesis loop.

    Attributes
    ----------
    round_index:
        Zero-based round counter.
    action:
        Human-readable description of the refinement applied in this round
        (e.g. ``"case-1a new threshold at k=12"``).
    threshold:
        Snapshot of the threshold vector *after* the refinement.
    attack:
        The counterexample attack that triggered the refinement, if any.
    solver_time:
        Wall-clock seconds spent inside the attack-synthesis call.
    extra:
        Backend-specific diagnostics.
    """

    round_index: int
    action: str
    threshold: Any = None
    attack: Any = None
    solver_time: float = 0.0
    extra: dict = field(default_factory=dict)
