"""Shared utilities: linear-algebra helpers, validation and result containers.

These helpers are deliberately dependency-light (numpy + scipy only) and are
used by every other subpackage.  They are part of the public API because
downstream users building their own plant models need the same validation and
Riccati machinery the library uses internally.
"""

from repro.utils.linalg import (
    as_matrix,
    as_vector,
    dlyap,
    dare,
    is_positive_definite,
    is_positive_semidefinite,
    is_stable_discrete,
    spectral_radius,
    controllability_matrix,
    observability_matrix,
)
from repro.utils.validation import (
    check_square,
    check_shape,
    check_symmetric,
    check_finite,
    ValidationError,
)
from repro.utils.rng import ensure_rng
from repro.utils.results import SolveStatus, SynthesisRecord

__all__ = [
    "as_matrix",
    "as_vector",
    "dlyap",
    "dare",
    "is_positive_definite",
    "is_positive_semidefinite",
    "is_stable_discrete",
    "spectral_radius",
    "controllability_matrix",
    "observability_matrix",
    "check_square",
    "check_shape",
    "check_symmetric",
    "check_finite",
    "ValidationError",
    "ensure_rng",
    "SolveStatus",
    "SynthesisRecord",
]
