"""Random-number-generator handling.

Every stochastic routine in the library accepts either a seed, an existing
:class:`numpy.random.Generator` or ``None`` and funnels it through
:func:`ensure_rng` so that experiments are reproducible end-to-end.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(seed_or_rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed_or_rng:
        ``None`` for an unseeded generator, an ``int`` seed, or an existing
        generator (returned unchanged so streams can be shared).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(seed_or_rng: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent child generators from one parent stream.

    Used by Monte-Carlo routines (for example the FAR study) so each trial has
    an independent, reproducible stream.
    """
    parent = ensure_rng(seed_or_rng)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
