"""Input validation helpers shared across the library.

All public constructors validate their numerical inputs through these helpers
so that shape or definiteness errors are reported early with a clear message
instead of surfacing as cryptic ``numpy`` broadcasting failures deep inside a
simulation loop.
"""

from __future__ import annotations

import numpy as np


class ValidationError(ValueError):
    """Raised when a numerical input does not satisfy a structural contract."""


def check_finite(name: str, array: np.ndarray) -> np.ndarray:
    """Ensure ``array`` contains only finite values.

    Parameters
    ----------
    name:
        Human-readable name used in the error message.
    array:
        Array to validate.

    Returns
    -------
    numpy.ndarray
        The validated array (unchanged), for chaining.
    """
    array = np.asarray(array, dtype=float)
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} must contain only finite values")
    return array


def check_square(name: str, matrix: np.ndarray) -> np.ndarray:
    """Ensure ``matrix`` is a square 2-D array."""
    matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(
            f"{name} must be a square matrix, got shape {matrix.shape}"
        )
    return matrix


def check_shape(name: str, array: np.ndarray, shape: tuple) -> np.ndarray:
    """Ensure ``array`` has exactly the given ``shape``."""
    array = np.asarray(array, dtype=float)
    if array.shape != tuple(shape):
        raise ValidationError(
            f"{name} must have shape {tuple(shape)}, got {array.shape}"
        )
    return array


def check_symmetric(name: str, matrix: np.ndarray, tol: float = 1e-8) -> np.ndarray:
    """Ensure ``matrix`` is symmetric up to ``tol`` and return the symmetrised copy."""
    matrix = check_square(name, matrix)
    if not np.allclose(matrix, matrix.T, atol=tol):
        raise ValidationError(f"{name} must be symmetric")
    return 0.5 * (matrix + matrix.T)


def check_vector(name: str, vector: np.ndarray, size: int | None = None) -> np.ndarray:
    """Ensure ``vector`` is 1-D (flattening column vectors) with optional length check."""
    vector = np.asarray(vector, dtype=float)
    vector = vector.reshape(-1)
    if size is not None and vector.size != size:
        raise ValidationError(f"{name} must have length {size}, got {vector.size}")
    return vector


def check_probability(name: str, value: float) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Ensure ``value`` is positive (strictly by default)."""
    value = float(value)
    if strict and value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_index(name: str, value: int, upper: int) -> int:
    """Ensure ``value`` is an integer index in ``[0, upper)``."""
    value = int(value)
    if not 0 <= value < upper:
        raise ValidationError(f"{name} must lie in [0, {upper}), got {value}")
    return value
