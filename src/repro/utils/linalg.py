"""Linear-algebra primitives for discrete-time control.

Implements the small set of matrix-equation solvers the rest of the library
needs — discrete Lyapunov and Riccati equations, controllability and
observability tests — on top of :mod:`numpy`/:mod:`scipy`.  The Riccati solver
uses a structure-preserving doubling iteration with a ``scipy`` fallback so
the library keeps working even on plants where one method struggles.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro.utils.validation import ValidationError, check_square, check_symmetric


def as_matrix(value, name: str = "matrix") -> np.ndarray:
    """Coerce ``value`` to a 2-D float array (scalars become 1x1)."""
    array = np.asarray(value, dtype=float)
    if array.ndim == 0:
        array = array.reshape(1, 1)
    elif array.ndim == 1:
        array = array.reshape(1, -1)
    elif array.ndim != 2:
        raise ValidationError(f"{name} must be at most 2-dimensional")
    return array


def as_vector(value, name: str = "vector") -> np.ndarray:
    """Coerce ``value`` to a 1-D float array."""
    array = np.asarray(value, dtype=float).reshape(-1)
    return array


def spectral_radius(matrix: np.ndarray) -> float:
    """Return the spectral radius (largest eigenvalue magnitude) of ``matrix``."""
    matrix = check_square("matrix", matrix)
    if matrix.size == 0:
        return 0.0
    return float(np.max(np.abs(np.linalg.eigvals(matrix))))


def is_stable_discrete(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    """True when all eigenvalues of ``matrix`` lie strictly inside the unit circle."""
    return spectral_radius(matrix) < 1.0 - tol


def is_positive_definite(matrix: np.ndarray, tol: float = 1e-10) -> bool:
    """True when the symmetric part of ``matrix`` is positive definite."""
    matrix = check_square("matrix", matrix)
    sym = 0.5 * (matrix + matrix.T)
    try:
        eigenvalues = np.linalg.eigvalsh(sym)
    except np.linalg.LinAlgError:
        return False
    return bool(np.all(eigenvalues > tol))


def is_positive_semidefinite(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """True when the symmetric part of ``matrix`` is positive semidefinite."""
    matrix = check_square("matrix", matrix)
    sym = 0.5 * (matrix + matrix.T)
    try:
        eigenvalues = np.linalg.eigvalsh(sym)
    except np.linalg.LinAlgError:
        return False
    return bool(np.all(eigenvalues > -tol))


def controllability_matrix(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Return the controllability matrix ``[B, AB, ..., A^{n-1}B]``."""
    A = check_square("A", A)
    B = as_matrix(B, "B")
    n = A.shape[0]
    if B.shape[0] != n:
        raise ValidationError(f"B must have {n} rows, got {B.shape[0]}")
    blocks = []
    current = B.copy()
    for _ in range(n):
        blocks.append(current)
        current = A @ current
    return np.hstack(blocks)


def observability_matrix(A: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Return the observability matrix ``[C; CA; ...; CA^{n-1}]``."""
    A = check_square("A", A)
    C = as_matrix(C, "C")
    n = A.shape[0]
    if C.shape[1] != n:
        raise ValidationError(f"C must have {n} columns, got {C.shape[1]}")
    blocks = []
    current = C.copy()
    for _ in range(n):
        blocks.append(current)
        current = current @ A
    return np.vstack(blocks)


def is_controllable(A: np.ndarray, B: np.ndarray, tol: float | None = None) -> bool:
    """Kalman rank test for controllability of the pair ``(A, B)``."""
    ctrb = controllability_matrix(A, B)
    return np.linalg.matrix_rank(ctrb, tol=tol) == check_square("A", A).shape[0]


def is_observable(A: np.ndarray, C: np.ndarray, tol: float | None = None) -> bool:
    """Kalman rank test for observability of the pair ``(A, C)``."""
    obsv = observability_matrix(A, C)
    return np.linalg.matrix_rank(obsv, tol=tol) == check_square("A", A).shape[0]


def dlyap(A: np.ndarray, Q: np.ndarray) -> np.ndarray:
    """Solve the discrete Lyapunov equation ``A X A^T - X + Q = 0``.

    Uses the Kronecker-product (vectorisation) formulation, which is exact for
    the small state dimensions typical of CPS control loops.
    """
    A = check_square("A", A)
    Q = check_square("Q", Q)
    if A.shape != Q.shape:
        raise ValidationError("A and Q must have identical shapes")
    n = A.shape[0]
    lhs = np.eye(n * n) - np.kron(A, A)
    vec_x = np.linalg.solve(lhs, Q.reshape(-1))
    X = vec_x.reshape(n, n)
    return 0.5 * (X + X.T)


def _dare_doubling(
    A: np.ndarray,
    B: np.ndarray,
    Q: np.ndarray,
    R: np.ndarray,
    max_iterations: int = 200,
    tol: float = 1e-12,
) -> np.ndarray:
    """Structure-preserving doubling algorithm for the DARE.

    Solves ``X = A^T X A - A^T X B (R + B^T X B)^{-1} B^T X A + Q``.
    """
    n = A.shape[0]
    G = B @ np.linalg.solve(R, B.T)
    Ak = A.copy()
    Gk = G.copy()
    Hk = Q.copy()
    identity = np.eye(n)
    for _ in range(max_iterations):
        W = identity + Gk @ Hk
        try:
            W_inv_A = np.linalg.solve(W, Ak)
            W_inv_G = np.linalg.solve(W, Gk)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
            raise ValidationError("DARE doubling iteration became singular") from exc
        A_next = Ak @ W_inv_A
        G_next = Gk + Ak @ W_inv_G @ Ak.T
        H_next = Hk + W_inv_A.T @ Hk @ Ak
        delta = np.linalg.norm(H_next - Hk, ord="fro")
        Ak, Gk, Hk = A_next, G_next, H_next
        if delta <= tol * max(1.0, np.linalg.norm(Hk, ord="fro")):
            break
    return 0.5 * (Hk + Hk.T)


def dare(
    A: np.ndarray,
    B: np.ndarray,
    Q: np.ndarray,
    R: np.ndarray,
    method: str = "auto",
) -> np.ndarray:
    """Solve the discrete-time algebraic Riccati equation.

    ``X = A^T X A - A^T X B (R + B^T X B)^{-1} B^T X A + Q``

    Parameters
    ----------
    A, B:
        State transition and input matrices.
    Q, R:
        State and input weight matrices (symmetric PSD / PD respectively).
    method:
        ``"auto"`` (scipy, falling back to doubling), ``"scipy"`` or
        ``"doubling"``.

    Returns
    -------
    numpy.ndarray
        The symmetric stabilising solution ``X``.
    """
    A = check_square("A", A)
    B = as_matrix(B, "B")
    Q = check_symmetric("Q", Q)
    R = check_symmetric("R", R)
    if not is_positive_semidefinite(Q):
        raise ValidationError("Q must be positive semidefinite")
    if not is_positive_definite(R):
        raise ValidationError("R must be positive definite")

    if method not in {"auto", "scipy", "doubling"}:
        raise ValidationError(f"unknown DARE method {method!r}")

    if method in {"auto", "scipy"}:
        try:
            X = sla.solve_discrete_are(A, B, Q, R)
            return 0.5 * (X + X.T)
        except sla.LinAlgError:
            # scipy signals DARE numerical failure (no finite solution, pencil
            # eigenvalues on the unit circle) as LinAlgError; only that case
            # falls back to the doubling iteration.  Shape/definiteness errors
            # cannot occur here — the inputs are validated above — and any
            # other exception is a real bug that must propagate.
            if method == "scipy":
                raise
    return _dare_doubling(A, B, Q, R)


def matrix_power_series(A: np.ndarray, horizon: int) -> list[np.ndarray]:
    """Return ``[I, A, A^2, ..., A^horizon]`` as a list of matrices."""
    A = check_square("A", A)
    powers = [np.eye(A.shape[0])]
    for _ in range(horizon):
        powers.append(A @ powers[-1])
    return powers
