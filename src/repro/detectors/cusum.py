"""CUSUM residue detector (classical baseline).

The cumulative-sum detector integrates evidence over time:

``S_k = max(0, S_{k-1} + ||z_k|| - bias)`` and alarms when ``S_k >= threshold``.

It detects small persistent residue shifts that a per-sample static threshold
misses, which makes it a natural additional baseline next to the paper's
variable-threshold detectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detectors.residue import DetectionResult
from repro.registry import DETECTORS
from repro.utils.validation import ValidationError, check_positive


@DETECTORS.register("cusum")
@dataclass
class CusumDetector:
    """One-sided CUSUM on the residue norm.

    Parameters
    ----------
    bias:
        Drift term subtracted at every step (sets the detector's tolerance to
        nominal noise); must be positive.
    threshold:
        Alarm level on the accumulated statistic.
    norm:
        Residue norm used per sample (``2`` or ``"inf"``).
    """

    bias: float
    threshold: float
    norm: float | str = 2

    def __post_init__(self) -> None:
        self.bias = check_positive("bias", self.bias)
        self.threshold = check_positive("threshold", self.threshold)
        if self.norm not in (1, 2, "inf"):
            raise ValidationError("norm must be 1, 2 or 'inf'")

    def _norms(self, residues: np.ndarray) -> np.ndarray:
        residues = np.atleast_2d(np.asarray(residues, dtype=float))
        if self.norm == "inf":
            return np.max(np.abs(residues), axis=1)
        return np.linalg.norm(residues, ord=self.norm, axis=1)

    def statistics(self, residues: np.ndarray) -> np.ndarray:
        """The accumulated CUSUM statistic ``S_k`` per sample."""
        norms = self._norms(residues)
        statistics = np.zeros_like(norms)
        accumulator = 0.0
        for k, value in enumerate(norms):
            accumulator = max(0.0, accumulator + value - self.bias)
            statistics[k] = accumulator
        return statistics

    def evaluate(self, residues: np.ndarray) -> DetectionResult:
        """Run the detector over a residue sequence."""
        statistics = self.statistics(residues)
        thresholds = np.full(statistics.shape[0], self.threshold)
        alarms = statistics >= thresholds
        return DetectionResult(
            alarms=alarms,
            norms=statistics,
            thresholds=thresholds,
            metadata={"detector": "cusum"},
        )

    def detects(self, residues: np.ndarray) -> bool:
        """True when the accumulated statistic ever crosses the threshold."""
        return self.evaluate(residues).detected
