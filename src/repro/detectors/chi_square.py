"""Chi-square residue detector (classical baseline).

The chi-square detector compares the normalised innovation squared
``g_k = z_k^T S^{-1} z_k`` against a threshold chosen from the chi-square
distribution with ``m`` degrees of freedom at a target false-alarm
probability.  It is the standard static baseline the residue-detector
literature (Mo & Sinopoli, Liu et al.) evaluates against, and serves here as
an additional comparison point for the synthesized variable thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.detectors.residue import DetectionResult
from repro.registry import DETECTORS
from repro.utils.validation import ValidationError, check_probability, check_symmetric


@DETECTORS.register("chi-square")
@dataclass
class ChiSquareDetector:
    """Detector alarming when ``z_k^T S^{-1} z_k >= threshold``.

    Parameters
    ----------
    innovation_cov:
        Innovation covariance ``S`` of the Kalman filter.
    threshold:
        Alarm threshold on the chi-square statistic.
    """

    innovation_cov: np.ndarray
    threshold: float

    def __post_init__(self) -> None:
        self.innovation_cov = check_symmetric("innovation_cov", self.innovation_cov)
        self.threshold = float(self.threshold)
        if self.threshold <= 0:
            raise ValidationError("chi-square threshold must be positive")
        try:
            self._inverse = np.linalg.inv(self.innovation_cov)
        except np.linalg.LinAlgError as exc:
            raise ValidationError("innovation covariance is singular") from exc

    @classmethod
    def from_false_alarm_probability(
        cls,
        innovation_cov: np.ndarray,
        false_alarm_probability: float,
    ) -> "ChiSquareDetector":
        """Choose the threshold so that P(alarm | no attack) equals the target.

        Uses the chi-square inverse CDF with ``m`` degrees of freedom, exact
        under the Gaussian/no-attack hypothesis.
        """
        false_alarm_probability = check_probability(
            "false_alarm_probability", false_alarm_probability
        )
        if false_alarm_probability in (0.0, 1.0):
            raise ValidationError("false_alarm_probability must be strictly inside (0, 1)")
        innovation_cov = check_symmetric("innovation_cov", innovation_cov)
        degrees = innovation_cov.shape[0]
        threshold = float(stats.chi2.ppf(1.0 - false_alarm_probability, df=degrees))
        return cls(innovation_cov=innovation_cov, threshold=threshold)

    def statistics(self, residues: np.ndarray) -> np.ndarray:
        """Per-sample chi-square statistics ``g_k``."""
        residues = np.atleast_2d(np.asarray(residues, dtype=float))
        return np.einsum("ki,ij,kj->k", residues, self._inverse, residues)

    def evaluate(self, residues: np.ndarray) -> DetectionResult:
        """Run the detector over a residue sequence."""
        statistics = self.statistics(residues)
        thresholds = np.full(statistics.shape[0], self.threshold)
        alarms = statistics >= thresholds
        return DetectionResult(
            alarms=alarms,
            norms=statistics,
            thresholds=thresholds,
            metadata={"detector": "chi-square"},
        )

    def detects(self, residues: np.ndarray) -> bool:
        """True when any sample exceeds the chi-square threshold."""
        return self.evaluate(residues).detected
