"""Detector evaluation metrics.

Implements the quantities reported in the paper's case study (false alarm
rate over a population of benign noise traces) plus the complementary metrics
a practitioner needs when choosing a detector: detection rate over attacked
traces, detection delay, and ROC sweeps for static thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.detectors.residue import DetectionResult
from repro.utils.validation import ValidationError


@dataclass
class DetectorEvaluation:
    """Aggregate evaluation of one detector over benign and attacked traces.

    Attributes
    ----------
    false_alarm_rate:
        Fraction of benign traces on which the detector alarmed.
    detection_rate:
        Fraction of attacked traces on which the detector alarmed.
    mean_detection_delay:
        Average index of the first alarm over detected attacked traces
        (``None`` when nothing was detected).
    benign_count, attacked_count:
        Population sizes.
    """

    false_alarm_rate: float
    detection_rate: float
    mean_detection_delay: float | None
    benign_count: int
    attacked_count: int
    details: dict = field(default_factory=dict)


def _as_results(detector, residue_sequences: Iterable[np.ndarray]) -> list[DetectionResult]:
    return [detector.evaluate(residues) for residues in residue_sequences]


def false_alarm_rate(detector, benign_residues: Sequence[np.ndarray]) -> float:
    """Fraction of benign residue sequences that trigger at least one alarm.

    This is the paper's FAR metric: the benign sequences come from random
    bounded measurement noise that keeps the performance criterion satisfied
    and passes the existing monitors.
    """
    benign_residues = list(benign_residues)
    if not benign_residues:
        raise ValidationError("need at least one benign residue sequence")
    results = _as_results(detector, benign_residues)
    return float(np.mean([r.detected for r in results]))


def detection_rate(detector, attacked_residues: Sequence[np.ndarray]) -> float:
    """Fraction of attacked residue sequences that trigger at least one alarm."""
    attacked_residues = list(attacked_residues)
    if not attacked_residues:
        raise ValidationError("need at least one attacked residue sequence")
    results = _as_results(detector, attacked_residues)
    return float(np.mean([r.detected for r in results]))


def detection_delay(detector, attacked_residues: Sequence[np.ndarray]) -> float | None:
    """Mean index of the first alarm over the attacked sequences that were detected.

    Returns ``None`` when the detector misses every attack.
    """
    attacked_residues = list(attacked_residues)
    if not attacked_residues:
        raise ValidationError("need at least one attacked residue sequence")
    delays = []
    for residues in attacked_residues:
        result = detector.evaluate(residues)
        if result.detected:
            delays.append(result.first_alarm)
    if not delays:
        return None
    return float(np.mean(delays))


def evaluate_detector(
    detector,
    benign_residues: Sequence[np.ndarray],
    attacked_residues: Sequence[np.ndarray],
) -> DetectorEvaluation:
    """Full benign/attacked evaluation of one detector."""
    far = false_alarm_rate(detector, benign_residues)
    rate = detection_rate(detector, attacked_residues)
    delay = detection_delay(detector, attacked_residues)
    return DetectorEvaluation(
        false_alarm_rate=far,
        detection_rate=rate,
        mean_detection_delay=delay,
        benign_count=len(list(benign_residues)),
        attacked_count=len(list(attacked_residues)),
    )


def roc_curve(
    detector_factory,
    thresholds: Sequence[float],
    benign_residues: Sequence[np.ndarray],
    attacked_residues: Sequence[np.ndarray],
) -> list[tuple[float, float, float]]:
    """Sweep a family of detectors and report ``(threshold, FAR, detection rate)``.

    Parameters
    ----------
    detector_factory:
        Callable mapping a threshold value to a detector object.
    thresholds:
        Threshold values to sweep.
    benign_residues, attacked_residues:
        Evaluation populations shared by every point of the sweep.
    """
    benign_residues = list(benign_residues)
    attacked_residues = list(attacked_residues)
    curve = []
    for value in thresholds:
        detector = detector_factory(value)
        far = false_alarm_rate(detector, benign_residues)
        rate = detection_rate(detector, attacked_residues)
        curve.append((float(value), far, rate))
    return curve
