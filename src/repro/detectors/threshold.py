"""Threshold specifications for residue-based detectors.

A threshold specification ``Th`` is a length-``l`` vector: ``Th[k]`` is the
residue bound applied at the ``(k+1)``-th sampling instance.  The paper's
synthesis algorithms produce *monotonically decreasing* variable thresholds;
this class records the vector, offers the structural predicates the
algorithms need (static / variable, monotone, staircase) and the mutation
helpers used by the synthesis loops (set a value while preserving
monotonicity, clamp successors, fill steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import ValidationError, check_positive

#: Comparison slack of the alarm predicate ``||z_k|| >= Th[k]``.  The solver
#: encodings place residues *exactly* on the threshold boundary (up to LP/SMT
#: arithmetic), so the concrete-trace alarm check must not let a residue that
#: is numerically equal to the threshold slip under it.  Every alarm path —
#: offline (:meth:`ThresholdVector.alarms`, ``ResidueDetector``), the FAR
#: study and the online runtime cores — goes through :func:`alarm_comparison`
#: so the convention cannot drift between deployments.
ALARM_TOLERANCE = 1e-12


def alarm_comparison(norms: np.ndarray, thresholds: np.ndarray | float) -> np.ndarray:
    """The shared alarm predicate ``norms >= thresholds - ALARM_TOLERANCE``.

    ``norms`` may carry any batch shape (per-sample, per-instance, or a full
    ``(N, T)`` block) as long as it broadcasts against ``thresholds``.
    """
    return np.asarray(norms) >= np.asarray(thresholds) - ALARM_TOLERANCE


@dataclass
class ThresholdVector:
    """A per-sample residue threshold ``Th``.

    Attributes
    ----------
    values:
        Length-``l`` array of thresholds.  The sentinel value ``numpy.inf``
        means "no threshold at this instance yet" (the synthesis algorithms
        start from an all-unset vector, the paper's ``Th = NULL``).
    norm:
        Which residue norm the detector compares against the threshold:
        ``2`` (Euclidean) or ``"inf"`` (max absolute component).  The formal
        encodings use the infinity norm so that stealth is an affine
        condition; the default mirrors that.
    weights:
        Optional per-channel scaling: the detector compares
        ``norm(z_k / weights)`` against ``Th[k]``.  Setting the weights to the
        per-channel noise standard deviations yields the classical
        *normalised residue*, which keeps channels with very different
        physical units (e.g. rad/s vs m/s^2) comparable.
    """

    values: np.ndarray
    norm: float | str = "inf"
    weights: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float).reshape(-1)
        if values.size == 0:
            raise ValidationError("ThresholdVector must have at least one entry")
        if np.any(values < 0):
            raise ValidationError("thresholds must be non-negative")
        self.values = values
        if self.norm not in (1, 2, "inf"):
            raise ValidationError("norm must be 1, 2 or 'inf'")
        if self.weights is not None:
            weights = np.asarray(self.weights, dtype=float).reshape(-1)
            if np.any(weights <= 0):
                raise ValidationError("residue weights must be strictly positive")
            self.weights = weights

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def unset(
        cls, length: int, norm: float | str = "inf", weights: np.ndarray | None = None
    ) -> "ThresholdVector":
        """The all-unset vector (no detection at any instance)."""
        length = int(check_positive("length", length))
        return cls(np.full(length, np.inf), norm=norm, weights=weights)

    @classmethod
    def static(
        cls,
        value: float,
        length: int,
        norm: float | str = "inf",
        weights: np.ndarray | None = None,
    ) -> "ThresholdVector":
        """A constant (static) threshold of the given length."""
        length = int(check_positive("length", length))
        value = float(value)
        if value < 0:
            raise ValidationError("static threshold must be non-negative")
        return cls(np.full(length, value), norm=norm, weights=weights)

    # ------------------------------------------------------------------
    # structure predicates
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of sampling instances covered."""
        return self.values.size

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, index: int) -> float:
        return float(self.values[index])

    def is_set(self, index: int) -> bool:
        """True when a finite threshold has been placed at ``index``."""
        return bool(np.isfinite(self.values[index]))

    def set_indices(self) -> np.ndarray:
        """Indices carrying a finite threshold."""
        return np.flatnonzero(np.isfinite(self.values))

    @property
    def is_fully_set(self) -> bool:
        """True when every instance has a finite threshold."""
        return bool(np.all(np.isfinite(self.values)))

    @property
    def is_static(self) -> bool:
        """True when all finite entries share a single value (paper's static Th)."""
        finite = self.values[np.isfinite(self.values)]
        if finite.size == 0:
            return True
        return bool(np.allclose(finite, finite[0]))

    @property
    def is_variable(self) -> bool:
        """True when at least two finite entries differ."""
        return not self.is_static

    def is_monotone_decreasing(self, tol: float = 1e-9) -> bool:
        """True when the finite entries are non-increasing in time.

        Unset (infinite) entries are ignored: the paper's invariant concerns
        the thresholds actually placed so far.
        """
        finite_indices = self.set_indices()
        finite = self.values[finite_indices]
        return bool(np.all(np.diff(finite) <= tol))

    def is_staircase(self, tol: float = 1e-9) -> bool:
        """True when the vector is piecewise constant with decreasing steps."""
        if not self.is_fully_set:
            return False
        if not self.is_monotone_decreasing(tol):
            return False
        return True

    def step_edges(self, tol: float = 1e-9) -> list[int]:
        """Indices at which the threshold value changes (staircase step edges)."""
        if self.length <= 1:
            return []
        changes = np.flatnonzero(np.abs(np.diff(self.values)) > tol)
        return [int(i + 1) for i in changes]

    # ------------------------------------------------------------------
    # mutation helpers used by the synthesis algorithms
    # ------------------------------------------------------------------
    def copy(self) -> "ThresholdVector":
        """Deep copy (the synthesis loops snapshot the vector every round)."""
        weights = None if self.weights is None else self.weights.copy()
        return ThresholdVector(
            self.values.copy(), norm=self.norm, weights=weights, metadata=dict(self.metadata)
        )

    def with_value(self, index: int, value: float) -> "ThresholdVector":
        """Copy with ``values[index] = value`` (no monotonicity repair)."""
        updated = self.copy()
        updated.values[index] = float(value)
        return updated

    def set_value(self, index: int, value: float) -> None:
        """In-place ``values[index] = value``."""
        self.values[int(index)] = float(value)

    def clamp_successors(self, index: int) -> None:
        """Force every later finite entry down to ``values[index]`` (paper Case 1c)."""
        ceiling = self.values[index]
        for k in range(index + 1, self.length):
            if np.isfinite(self.values[k]) and self.values[k] > ceiling:
                self.values[k] = ceiling

    def monotone_cap(self, index: int, candidate: float) -> float:
        """Largest value ``<= candidate`` that keeps monotonicity w.r.t. earlier entries.

        Mirrors the paper's ``min(forall k < i with Th[k] set, Th[k], candidate)``
        used when inserting a new threshold at ``index``.
        """
        earlier = self.values[:index]
        finite_earlier = earlier[np.isfinite(earlier)]
        if finite_earlier.size == 0:
            return float(candidate)
        return float(min(float(np.min(finite_earlier)), candidate))

    def fill_step(self, start: int, end: int, value: float) -> None:
        """Set ``values[start:end + 1] = value`` (staircase step in Algorithm 3)."""
        if start > end:
            raise ValidationError("fill_step requires start <= end")
        self.values[int(start) : int(end) + 1] = float(value)

    # ------------------------------------------------------------------
    # detector semantics
    # ------------------------------------------------------------------
    def effective(self, length: int | None = None) -> np.ndarray:
        """The finite threshold vector to hand to an online detector.

        Unset entries become ``inf`` (no detection at that instance).  When
        ``length`` exceeds the stored length, the last value is held; when it
        is shorter, the vector is truncated.
        """
        if length is None or length == self.length:
            return self.values.copy()
        length = int(length)
        if length < self.length:
            return self.values[:length].copy()
        extension = np.full(length - self.length, self.values[-1])
        return np.concatenate([self.values, extension])

    def residue_norms(self, residues: np.ndarray) -> np.ndarray:
        """Per-sample (weighted) residue norms using this specification's norm."""
        residues = np.atleast_2d(np.asarray(residues, dtype=float))
        if self.weights is not None:
            if residues.shape[1] != self.weights.size:
                raise ValidationError(
                    f"residues have {residues.shape[1]} channels, weights expect {self.weights.size}"
                )
            residues = residues / self.weights
        if self.norm == "inf":
            return np.max(np.abs(residues), axis=1)
        return np.linalg.norm(residues, ord=self.norm, axis=1)

    def alarms(self, residues: np.ndarray) -> np.ndarray:
        """Alarm flags ``||z_k|| >= Th[k]`` on a concrete residue sequence."""
        norms = self.residue_norms(residues)
        thresholds = self.effective(norms.shape[0])
        return alarm_comparison(norms, thresholds)

    def admits(self, residues: np.ndarray) -> bool:
        """True when the residue sequence stays strictly below the thresholds everywhere."""
        return not bool(np.any(self.alarms(residues)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "static" if self.is_static else "variable"
        return f"ThresholdVector(length={self.length}, {kind}, norm={self.norm!r})"
