"""Residue-based attack detectors and their evaluation.

The paper's detector raises an alarm whenever ``||z_k|| >= Th[k]`` where
``z_k`` is the Kalman innovation (residue) and ``Th`` is a threshold
specification — static (one constant) or variable (one value per sampling
instance).  This package provides:

* :class:`~repro.detectors.threshold.ThresholdVector` — the threshold
  specification object produced by the synthesis algorithms,
* :class:`~repro.detectors.residue.ResidueDetector` — the online detector,
* chi-square and CUSUM baseline detectors from the literature,
* evaluation metrics (false alarm rate, detection rate, detection delay,
  ROC sweeps).
"""

from repro.detectors.threshold import ALARM_TOLERANCE, ThresholdVector, alarm_comparison
from repro.detectors.residue import ResidueDetector, DetectionResult
from repro.detectors.chi_square import ChiSquareDetector
from repro.detectors.cusum import CusumDetector
from repro.detectors.evaluation import (
    false_alarm_rate,
    detection_rate,
    detection_delay,
    roc_curve,
    DetectorEvaluation,
)

__all__ = [
    "ALARM_TOLERANCE",
    "alarm_comparison",
    "ThresholdVector",
    "ResidueDetector",
    "DetectionResult",
    "ChiSquareDetector",
    "CusumDetector",
    "false_alarm_rate",
    "detection_rate",
    "detection_delay",
    "roc_curve",
    "DetectorEvaluation",
]
