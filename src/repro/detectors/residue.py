"""The residue-based threshold detector.

Wraps a :class:`~repro.detectors.threshold.ThresholdVector` into an online
detector object that consumes residue sequences (from a simulation trace or a
live Kalman filter) and reports alarms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.detectors.threshold import ThresholdVector, alarm_comparison
from repro.lti.simulate import SimulationTrace
from repro.registry import DETECTORS


@dataclass
class DetectionResult:
    """Outcome of running a detector over one residue sequence.

    Attributes
    ----------
    alarms:
        Boolean per-sample alarm flags.
    norms:
        Residue norms compared against the thresholds.
    thresholds:
        The effective per-sample thresholds used.
    """

    alarms: np.ndarray
    norms: np.ndarray
    thresholds: np.ndarray
    metadata: dict = field(default_factory=dict)

    @property
    def detected(self) -> bool:
        """True when at least one alarm fired."""
        return bool(np.any(self.alarms))

    @property
    def first_alarm(self) -> int | None:
        """Index of the first alarm, or ``None`` when no alarm fired."""
        indices = np.flatnonzero(self.alarms)
        return int(indices[0]) if indices.size else None

    @property
    def alarm_count(self) -> int:
        """Total number of alarmed samples."""
        return int(np.sum(self.alarms))


@DETECTORS.register("residue")
@dataclass
class ResidueDetector:
    """Threshold detector over Kalman residues.

    Parameters
    ----------
    threshold:
        The threshold specification (static or variable).
    """

    threshold: ThresholdVector

    @classmethod
    def static(cls, value: float, length: int, norm: float | str = "inf") -> "ResidueDetector":
        """Convenience constructor for a static threshold detector."""
        return cls(ThresholdVector.static(value, length, norm=norm))

    def evaluate(self, residues: np.ndarray) -> DetectionResult:
        """Run the detector over a ``(T, m)`` residue sequence."""
        residues = np.atleast_2d(np.asarray(residues, dtype=float))
        norms = self.threshold.residue_norms(residues)
        thresholds = self.threshold.effective(norms.shape[0])
        alarms = alarm_comparison(norms, thresholds)
        return DetectionResult(alarms=alarms, norms=norms, thresholds=thresholds)

    def evaluate_trace(self, trace: SimulationTrace) -> DetectionResult:
        """Run the detector over a simulation trace's residues."""
        result = self.evaluate(trace.residues)
        result.metadata["system"] = trace.metadata.get("system")
        return result

    def detects(self, residues: np.ndarray) -> bool:
        """True when the residue sequence triggers at least one alarm."""
        return self.evaluate(residues).detected

    def is_stealthy(self, residues: np.ndarray) -> bool:
        """True when the residue sequence never triggers an alarm."""
        return not self.detects(residues)
