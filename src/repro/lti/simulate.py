"""Closed-loop simulation engine with noise and attack hooks.

The simulation follows exactly the update order used by the paper's
Algorithm 1 so that simulated traces and formally encoded traces are sample
for sample comparable:

.. code-block:: text

    x_1 given, xhat_1 = 0, u_1 = 0
    for k = 1 .. T:
        y_k      = C x_k + D u_k + a_k + v_k          (attacked measurement)
        yhat_k   = C xhat_k + D u_k
        z_k      = y_k - yhat_k                        (residue)
        x_{k+1}  = A x_k + B u_k + w_k
        xhat_{k+1} = A xhat_k + B u_k + L z_k          (Kalman update)
        u_{k+1}  = -K xhat_{k+1} + N r                 (state feedback + feedforward)

The engine is deliberately free of any detector logic: detectors and monitors
consume the returned :class:`SimulationTrace` offline, which keeps a single
source of truth for the closed-loop dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lti.model import StateSpace
from repro.utils.linalg import as_matrix
from repro.utils.rng import ensure_rng
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class ClosedLoopSystem:
    """A plant closed with a state-feedback controller and an observer.

    Parameters
    ----------
    plant:
        Discrete-time :class:`~repro.lti.model.StateSpace` model.
    K:
        State-feedback gain (``p x n``); the control law is ``u = -K xhat``.
    L:
        Observer (Kalman) gain (``n x m``).
    reference:
        Output-space reference ``r`` (length ``m``); combined with the
        feedforward gain ``N`` as ``u = -K xhat + N r``.  Defaults to zero.
    feedforward:
        Feedforward gain ``N`` (``p x m``).  Defaults to zero, matching the
        paper's pure regulation law ``u_k = -K xhat_k``.
    x_reference:
        State-space set point ``x_des`` used by performance criteria; purely
        informational for the simulator.
    name:
        Display name.
    """

    plant: StateSpace
    K: np.ndarray
    L: np.ndarray
    reference: np.ndarray | None = None
    feedforward: np.ndarray | None = None
    x_reference: np.ndarray | None = None
    name: str = "closed-loop"

    def __post_init__(self) -> None:
        if not self.plant.is_discrete:
            raise ValidationError("ClosedLoopSystem requires a discrete-time plant")
        n = self.plant.n_states
        m = self.plant.n_outputs
        p = self.plant.n_inputs
        K = as_matrix(self.K, "K")
        L = as_matrix(self.L, "L")
        if K.shape != (p, n):
            raise ValidationError(f"K must have shape {(p, n)}, got {K.shape}")
        if L.shape != (n, m):
            raise ValidationError(f"L must have shape {(n, m)}, got {L.shape}")
        reference = self.reference
        if reference is None:
            reference = np.zeros(m)
        else:
            reference = np.asarray(reference, dtype=float).reshape(-1)
            if reference.size != m:
                raise ValidationError(f"reference must have length {m}, got {reference.size}")
        feedforward = self.feedforward
        if feedforward is None:
            feedforward = np.zeros((p, m))
        else:
            feedforward = as_matrix(feedforward, "feedforward")
            if feedforward.shape != (p, m):
                raise ValidationError(
                    f"feedforward must have shape {(p, m)}, got {feedforward.shape}"
                )
        x_reference = self.x_reference
        if x_reference is not None:
            x_reference = np.asarray(x_reference, dtype=float).reshape(-1)
            if x_reference.size != n:
                raise ValidationError(
                    f"x_reference must have length {n}, got {x_reference.size}"
                )
        object.__setattr__(self, "K", K)
        object.__setattr__(self, "L", L)
        object.__setattr__(self, "reference", reference)
        object.__setattr__(self, "feedforward", feedforward)
        object.__setattr__(self, "x_reference", x_reference)

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """State dimension of the underlying plant."""
        return self.plant.n_states

    @property
    def n_outputs(self) -> int:
        """Output dimension of the underlying plant."""
        return self.plant.n_outputs

    @property
    def n_inputs(self) -> int:
        """Input dimension of the underlying plant."""
        return self.plant.n_inputs

    @property
    def dt(self) -> float:
        """Sampling period of the underlying plant."""
        return float(self.plant.dt)

    def control(self, xhat: np.ndarray) -> np.ndarray:
        """Control law ``u = -K xhat + N r``."""
        xhat = np.asarray(xhat, dtype=float).reshape(-1)
        return -self.K @ xhat + self.feedforward @ self.reference

    def closed_loop_matrix(self) -> np.ndarray:
        """Closed-loop state matrix of the nominal (full-state) loop, ``A - B K``."""
        return self.plant.A - self.plant.B @ self.K

    def estimator_matrix(self) -> np.ndarray:
        """Estimator error dynamics matrix ``A - L C``."""
        return self.plant.A - self.L @ self.plant.C


@dataclass(frozen=True)
class SimulationOptions:
    """Knobs controlling a closed-loop simulation run.

    Attributes
    ----------
    horizon:
        Number of closed-loop iterations ``T``.
    with_noise:
        When True, process/measurement noise is drawn from the plant's
        covariances (unless explicit noise sequences are supplied).
    seed:
        Seed or generator for the noise streams.
    x0:
        Initial plant state (defaults to zero).
    xhat0:
        Initial estimator state (defaults to zero, as in the paper).
    """

    horizon: int
    with_noise: bool = False
    seed: int | np.random.Generator | None = None
    x0: np.ndarray | None = None
    xhat0: np.ndarray | None = None

    def __post_init__(self) -> None:
        if int(self.horizon) <= 0:
            raise ValidationError("horizon must be a positive integer")
        object.__setattr__(self, "horizon", int(self.horizon))


@dataclass
class SimulationTrace:
    """Time-indexed record of one closed-loop run.

    All arrays are indexed so that row ``k`` (0-based) corresponds to the
    paper's sampling instance ``k+1``.

    Attributes
    ----------
    states:
        Plant states ``x_1 .. x_{T+1}``; shape ``(T + 1, n)``.
    estimates:
        Estimator states ``xhat_1 .. xhat_{T+1}``; shape ``(T + 1, n)``.
    inputs:
        Control inputs ``u_1 .. u_{T+1}``; shape ``(T + 1, p)``.
    measurements:
        Attacked measurements ``y_k`` delivered to the estimator; ``(T, m)``.
    true_outputs:
        Un-attacked sensor outputs ``C x_k + D u_k + v_k``; ``(T, m)``.
    residues:
        Residue vectors ``z_k``; ``(T, m)``.
    attacks:
        Injected false data ``a_k``; ``(T, m)``.
    process_noise / measurement_noise:
        Realised noise samples; ``(T, n)`` and ``(T, m)``.
    """

    states: np.ndarray
    estimates: np.ndarray
    inputs: np.ndarray
    measurements: np.ndarray
    true_outputs: np.ndarray
    residues: np.ndarray
    attacks: np.ndarray
    process_noise: np.ndarray
    measurement_noise: np.ndarray
    dt: float = 1.0
    metadata: dict = field(default_factory=dict)

    @property
    def horizon(self) -> int:
        """Number of closed-loop iterations ``T``."""
        return self.residues.shape[0]

    def residue_norms(self, order: float | str = 2) -> np.ndarray:
        """Per-sample residue norms ``||z_k||`` (Euclidean by default)."""
        if order == "inf":
            return np.max(np.abs(self.residues), axis=1)
        return np.linalg.norm(self.residues, ord=order, axis=1)

    def state_deviation(self, x_reference: np.ndarray) -> np.ndarray:
        """Per-sample Euclidean distance of the plant state from ``x_reference``."""
        x_reference = np.asarray(x_reference, dtype=float).reshape(-1)
        return np.linalg.norm(self.states[:-1] - x_reference, axis=1)

    def output_trajectory(self, output_index: int = 0) -> np.ndarray:
        """True (un-attacked) trajectory of one output channel."""
        return self.true_outputs[:, output_index]

    def final_state(self) -> np.ndarray:
        """Plant state after the last iteration, ``x_{T+1}``."""
        return self.states[-1]

    def times(self) -> np.ndarray:
        """Physical time stamps of samples ``1..T`` in seconds."""
        return self.dt * np.arange(1, self.horizon + 1)

    def is_attacked(self) -> bool:
        """True when any non-zero false data was injected."""
        return bool(np.any(self.attacks != 0.0))


def _noise_samples(
    covariance: np.ndarray | None,
    dimension: int,
    horizon: int,
    rng: np.random.Generator,
    enabled: bool,
) -> np.ndarray:
    """Draw a ``(horizon, dimension)`` block of Gaussian noise (or zeros)."""
    if not enabled or covariance is None or not np.any(covariance):
        return np.zeros((horizon, dimension))
    return rng.multivariate_normal(np.zeros(dimension), covariance, size=horizon)


def simulate_closed_loop(
    system: ClosedLoopSystem,
    options: SimulationOptions,
    attack: np.ndarray | None = None,
    process_noise: np.ndarray | None = None,
    measurement_noise: np.ndarray | None = None,
) -> SimulationTrace:
    """Simulate ``system`` for ``options.horizon`` iterations.

    Parameters
    ----------
    system:
        The closed loop (plant + gains) to simulate.
    options:
        Horizon, noise switch, seed and initial conditions.
    attack:
        Optional false-data-injection sequence ``a_1..a_T`` of shape
        ``(T, m)``; added to the sensor measurements before they reach the
        estimator.  ``None`` means no attack.
    process_noise, measurement_noise:
        Optional explicit noise sequences (shape ``(T, n)`` / ``(T, m)``);
        when given they override the random draws regardless of
        ``options.with_noise``.

    Returns
    -------
    SimulationTrace
    """
    plant = system.plant
    T = options.horizon
    n, m, p = plant.n_states, plant.n_outputs, plant.n_inputs
    rng = ensure_rng(options.seed)

    if attack is None:
        attack = np.zeros((T, m))
    else:
        attack = np.asarray(attack, dtype=float)
        if attack.shape != (T, m):
            raise ValidationError(f"attack must have shape {(T, m)}, got {attack.shape}")

    if process_noise is None:
        process_noise = _noise_samples(plant.Q_w, n, T, rng, options.with_noise)
    else:
        process_noise = np.asarray(process_noise, dtype=float)
        if process_noise.shape != (T, n):
            raise ValidationError(
                f"process_noise must have shape {(T, n)}, got {process_noise.shape}"
            )
    if measurement_noise is None:
        measurement_noise = _noise_samples(plant.R_v, m, T, rng, options.with_noise)
    else:
        measurement_noise = np.asarray(measurement_noise, dtype=float)
        if measurement_noise.shape != (T, m):
            raise ValidationError(
                f"measurement_noise must have shape {(T, m)}, got {measurement_noise.shape}"
            )

    x = np.zeros(n) if options.x0 is None else np.asarray(options.x0, dtype=float).reshape(-1)
    xhat = (
        np.zeros(n)
        if options.xhat0 is None
        else np.asarray(options.xhat0, dtype=float).reshape(-1)
    )
    if x.size != n:
        raise ValidationError(f"x0 must have length {n}, got {x.size}")
    if xhat.size != n:
        raise ValidationError(f"xhat0 must have length {n}, got {xhat.size}")
    u = np.zeros(p)

    states = np.zeros((T + 1, n))
    estimates = np.zeros((T + 1, n))
    inputs = np.zeros((T + 1, p))
    measurements = np.zeros((T, m))
    true_outputs = np.zeros((T, m))
    residues = np.zeros((T, m))

    states[0] = x
    estimates[0] = xhat
    inputs[0] = u

    for k in range(T):
        v_k = measurement_noise[k]
        w_k = process_noise[k]
        y_true = plant.output(x, u, v_k)
        y_attacked = y_true + attack[k]
        y_estimate = plant.output(xhat, u)
        z = y_attacked - y_estimate

        true_outputs[k] = y_true
        measurements[k] = y_attacked
        residues[k] = z

        x = plant.step_state(x, u, w_k)
        xhat = plant.step_state(xhat, u) + system.L @ z
        u = system.control(xhat)

        states[k + 1] = x
        estimates[k + 1] = xhat
        inputs[k + 1] = u

    return SimulationTrace(
        states=states,
        estimates=estimates,
        inputs=inputs,
        measurements=measurements,
        true_outputs=true_outputs,
        residues=residues,
        attacks=attack.copy(),
        process_noise=process_noise.copy(),
        measurement_noise=measurement_noise.copy(),
        dt=system.dt,
        metadata={"system": system.name},
    )
