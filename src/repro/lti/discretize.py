"""Continuous-to-discrete conversion of state-space models.

Three discretisation schemes are provided:

* :func:`zoh` — exact zero-order-hold discretisation via the matrix
  exponential of the augmented ``[[A, B], [0, 0]]`` block matrix.
* :func:`euler` — forward-Euler approximation ``A_d = I + A dt``.
* :func:`tustin` — bilinear (trapezoidal) transform.

Noise covariances are mapped with the standard first-order approximations
``Q_d ≈ Q_c dt`` and ``R_d ≈ R_c / dt`` when present.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg as sla

from repro.lti.model import StateSpace
from repro.utils.validation import ValidationError, check_positive


def _discrete_noise(model: StateSpace, dt: float) -> tuple[np.ndarray | None, np.ndarray | None]:
    """First-order mapping of continuous noise intensities to discrete covariances."""
    Q_d = None if model.Q_w is None else model.Q_w * dt
    R_d = None if model.R_v is None else model.R_v / dt
    return Q_d, R_d


def zoh(model: StateSpace, dt: float) -> StateSpace:
    """Exact zero-order-hold discretisation of a continuous-time model."""
    if model.is_discrete:
        raise ValidationError("model is already discrete; cannot apply ZOH again")
    dt = check_positive("dt", dt)
    n = model.n_states
    p = model.n_inputs
    augmented = np.zeros((n + p, n + p))
    augmented[:n, :n] = model.A * dt
    augmented[:n, n:] = model.B * dt
    expm = sla.expm(augmented)
    A_d = expm[:n, :n]
    B_d = expm[:n, n:]
    Q_d, R_d = _discrete_noise(model, dt)
    return StateSpace(
        A=A_d,
        B=B_d,
        C=model.C,
        D=model.D,
        Q_w=Q_d,
        R_v=R_d,
        dt=dt,
        name=model.name,
        state_names=model.state_names,
        output_names=model.output_names,
        input_names=model.input_names,
    )


def euler(model: StateSpace, dt: float) -> StateSpace:
    """Forward-Euler discretisation ``A_d = I + A dt``, ``B_d = B dt``."""
    if model.is_discrete:
        raise ValidationError("model is already discrete; cannot apply Euler again")
    dt = check_positive("dt", dt)
    n = model.n_states
    A_d = np.eye(n) + model.A * dt
    B_d = model.B * dt
    Q_d, R_d = _discrete_noise(model, dt)
    return StateSpace(
        A=A_d,
        B=B_d,
        C=model.C,
        D=model.D,
        Q_w=Q_d,
        R_v=R_d,
        dt=dt,
        name=model.name,
        state_names=model.state_names,
        output_names=model.output_names,
        input_names=model.input_names,
    )


def tustin(model: StateSpace, dt: float) -> StateSpace:
    """Bilinear (Tustin) discretisation.

    ``A_d = (I - A dt/2)^{-1} (I + A dt/2)``,
    ``B_d = (I - A dt/2)^{-1} B dt``.
    The output matrices are kept unchanged, which is the convention used for
    control design (as opposed to exact input/output equivalence).
    """
    if model.is_discrete:
        raise ValidationError("model is already discrete; cannot apply Tustin again")
    dt = check_positive("dt", dt)
    n = model.n_states
    identity = np.eye(n)
    left = identity - model.A * (dt / 2.0)
    try:
        left_inv = np.linalg.inv(left)
    except np.linalg.LinAlgError as exc:
        raise ValidationError("Tustin transform is singular for this model/dt") from exc
    A_d = left_inv @ (identity + model.A * (dt / 2.0))
    B_d = left_inv @ (model.B * dt)
    Q_d, R_d = _discrete_noise(model, dt)
    return StateSpace(
        A=A_d,
        B=B_d,
        C=model.C,
        D=model.D,
        Q_w=Q_d,
        R_v=R_d,
        dt=dt,
        name=model.name,
        state_names=model.state_names,
        output_names=model.output_names,
        input_names=model.input_names,
    )


_METHODS = {"zoh": zoh, "euler": euler, "tustin": tustin}


def discretize(model: StateSpace, dt: float, method: str = "zoh") -> StateSpace:
    """Discretise ``model`` with sampling period ``dt`` using ``method``.

    Parameters
    ----------
    model:
        Continuous-time :class:`~repro.lti.model.StateSpace` model.
    dt:
        Sampling period in seconds.
    method:
        One of ``"zoh"``, ``"euler"`` or ``"tustin"``.
    """
    try:
        fn = _METHODS[method]
    except KeyError:
        raise ValidationError(
            f"unknown discretisation method {method!r}; expected one of {sorted(_METHODS)}"
        ) from None
    return fn(model, dt)
