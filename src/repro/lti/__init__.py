"""Discrete linear time-invariant (LTI) plant substrate.

Provides the plant-model abstraction used throughout the library (the paper's
``S``: ``x_{k+1} = A x_k + B u_k + w_k``, ``y_k = C x_k + D u_k + v_k``),
continuous-to-discrete conversion, structural analysis, and the closed-loop
simulation engine with noise and attack injection hooks.
"""

from repro.lti.model import StateSpace, LTISystem
from repro.lti.discretize import discretize, zoh, euler, tustin
from repro.lti.analysis import (
    stability_margin,
    is_stable,
    is_controllable,
    is_observable,
    dc_gain,
    step_response,
    impulse_response,
    settling_time,
)
from repro.lti.simulate import (
    ClosedLoopSystem,
    SimulationOptions,
    SimulationTrace,
    simulate_closed_loop,
)

__all__ = [
    "StateSpace",
    "LTISystem",
    "discretize",
    "zoh",
    "euler",
    "tustin",
    "stability_margin",
    "is_stable",
    "is_controllable",
    "is_observable",
    "dc_gain",
    "step_response",
    "impulse_response",
    "settling_time",
    "ClosedLoopSystem",
    "SimulationOptions",
    "SimulationTrace",
    "simulate_closed_loop",
]
