"""Structural and response analysis of LTI models.

Thin, well-tested wrappers around :mod:`repro.utils.linalg` plus open-loop
response computations (step, impulse, settling time, DC gain) that the
benchmark systems and the documentation examples use to sanity-check plant
definitions before running the security analysis.
"""

from __future__ import annotations

import numpy as np

from repro.lti.model import StateSpace
from repro.utils import linalg as rla
from repro.utils.validation import ValidationError, check_positive


def is_stable(model: StateSpace) -> bool:
    """Stability of the open-loop plant.

    For discrete models this is Schur stability (eigenvalues inside the unit
    circle); for continuous models Hurwitz stability (eigenvalues with
    negative real part).
    """
    eigenvalues = np.linalg.eigvals(model.A)
    if model.is_discrete:
        return bool(np.all(np.abs(eigenvalues) < 1.0))
    return bool(np.all(eigenvalues.real < 0.0))


def stability_margin(model: StateSpace) -> float:
    """Distance to instability.

    Discrete: ``1 - spectral_radius(A)``.  Continuous: ``-max(Re(eig(A)))``.
    Positive values mean stable.
    """
    eigenvalues = np.linalg.eigvals(model.A)
    if model.is_discrete:
        return float(1.0 - np.max(np.abs(eigenvalues)))
    return float(-np.max(eigenvalues.real))


def is_controllable(model: StateSpace) -> bool:
    """Kalman rank test on ``(A, B)``."""
    return rla.is_controllable(model.A, model.B)


def is_observable(model: StateSpace) -> bool:
    """Kalman rank test on ``(A, C)``."""
    return rla.is_observable(model.A, model.C)


def dc_gain(model: StateSpace) -> np.ndarray:
    """Steady-state gain from input to output.

    Discrete: ``C (I - A)^{-1} B + D``.  Continuous: ``-C A^{-1} B + D``.
    """
    n = model.n_states
    if model.is_discrete:
        core = np.linalg.solve(np.eye(n) - model.A, model.B)
    else:
        core = np.linalg.solve(-model.A, model.B)
    return model.C @ core + model.D


def step_response(
    model: StateSpace,
    horizon: int,
    input_index: int = 0,
    x0: np.ndarray | None = None,
) -> np.ndarray:
    """Open-loop unit-step response of a discrete model.

    Returns an array of shape ``(horizon + 1, n_outputs)`` with the output at
    samples ``0..horizon`` when input ``input_index`` is held at 1.
    """
    _require_discrete(model, "step_response")
    horizon = int(check_positive("horizon", horizon))
    if not 0 <= input_index < model.n_inputs:
        raise ValidationError(
            f"input_index must be in [0, {model.n_inputs}), got {input_index}"
        )
    u = np.zeros(model.n_inputs)
    u[input_index] = 1.0
    x = np.zeros(model.n_states) if x0 is None else np.asarray(x0, dtype=float).reshape(-1)
    outputs = np.zeros((horizon + 1, model.n_outputs))
    for k in range(horizon + 1):
        outputs[k] = model.output(x, u)
        x = model.step_state(x, u)
    return outputs


def impulse_response(model: StateSpace, horizon: int, input_index: int = 0) -> np.ndarray:
    """Open-loop unit-impulse response of a discrete model.

    The impulse is applied at sample 0 only; returns shape
    ``(horizon + 1, n_outputs)``.
    """
    _require_discrete(model, "impulse_response")
    horizon = int(check_positive("horizon", horizon))
    if not 0 <= input_index < model.n_inputs:
        raise ValidationError(
            f"input_index must be in [0, {model.n_inputs}), got {input_index}"
        )
    x = np.zeros(model.n_states)
    outputs = np.zeros((horizon + 1, model.n_outputs))
    for k in range(horizon + 1):
        u = np.zeros(model.n_inputs)
        if k == 0:
            u[input_index] = 1.0
        outputs[k] = model.output(x, u)
        x = model.step_state(x, u)
    return outputs


def settling_time(
    response: np.ndarray,
    final_value: float | np.ndarray | None = None,
    tolerance: float = 0.02,
) -> int | None:
    """Index after which ``response`` stays within ``tolerance`` of its final value.

    Parameters
    ----------
    response:
        Array of shape ``(T,)`` or ``(T, m)``.
    final_value:
        Reference value; defaults to the last sample.
    tolerance:
        Relative band (fraction of ``max(|final_value|, 1e-12)``).

    Returns
    -------
    int or None
        First index ``k`` such that every later sample stays inside the band,
        or ``None`` if the response never settles.
    """
    response = np.asarray(response, dtype=float)
    if response.ndim == 1:
        response = response.reshape(-1, 1)
    if final_value is None:
        final = response[-1]
    else:
        final = np.broadcast_to(np.asarray(final_value, dtype=float), response.shape[1:]).copy()
    scale = np.maximum(np.abs(final), 1e-12)
    within = np.all(np.abs(response - final) <= tolerance * scale, axis=1)
    # Find the first index from which all subsequent samples are within band.
    for k in range(len(within)):
        if np.all(within[k:]):
            return k
    return None


def _require_discrete(model: StateSpace, what: str) -> None:
    if not model.is_discrete:
        raise ValidationError(f"{what} requires a discrete-time model; call discretize() first")
