"""State-space plant models.

The central class is :class:`StateSpace`, a discrete (or continuous) LTI model

.. math::

    x_{k+1} = A x_k + B u_k + w_k, \\qquad
    y_k     = C x_k + D u_k + v_k,

with optional process/measurement noise covariances ``Q_w`` and ``R_v``.  The
class is an immutable value object: all transformation methods return new
instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.utils.linalg import as_matrix, is_positive_semidefinite
from repro.utils.validation import ValidationError, check_finite


@dataclass(frozen=True)
class StateSpace:
    """An LTI state-space model with optional Gaussian noise covariances.

    Parameters
    ----------
    A, B, C, D:
        System matrices.  ``D`` defaults to the zero matrix.
    Q_w:
        Process-noise covariance (``n x n``).  ``None`` means noiseless.
    R_v:
        Measurement-noise covariance (``m x m``).  ``None`` means noiseless.
    dt:
        Sampling period in seconds.  ``None`` marks a continuous-time model;
        a positive float marks a discrete-time model sampled every ``dt``
        seconds.
    name:
        Optional human-readable name used in reports.
    """

    A: np.ndarray
    B: np.ndarray
    C: np.ndarray
    D: np.ndarray | None = None
    Q_w: np.ndarray | None = None
    R_v: np.ndarray | None = None
    dt: float | None = None
    name: str = "plant"
    state_names: tuple[str, ...] = field(default=())
    output_names: tuple[str, ...] = field(default=())
    input_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        A = as_matrix(self.A, "A")
        B = as_matrix(self.B, "B")
        C = as_matrix(self.C, "C")
        n = A.shape[0]
        if A.shape[1] != n:
            raise ValidationError(f"A must be square, got shape {A.shape}")
        if B.shape[0] != n:
            raise ValidationError(f"B must have {n} rows, got {B.shape}")
        if C.shape[1] != n:
            raise ValidationError(f"C must have {n} columns, got {C.shape}")
        m = C.shape[0]
        p = B.shape[1]
        D = self.D
        if D is None:
            D = np.zeros((m, p))
        else:
            D = as_matrix(D, "D")
            if D.shape != (m, p):
                raise ValidationError(f"D must have shape {(m, p)}, got {D.shape}")
        Q_w = self.Q_w
        if Q_w is not None:
            Q_w = as_matrix(Q_w, "Q_w")
            if Q_w.shape != (n, n):
                raise ValidationError(f"Q_w must have shape {(n, n)}, got {Q_w.shape}")
            if not is_positive_semidefinite(Q_w):
                raise ValidationError("Q_w must be positive semidefinite")
        R_v = self.R_v
        if R_v is not None:
            R_v = as_matrix(R_v, "R_v")
            if R_v.shape != (m, m):
                raise ValidationError(f"R_v must have shape {(m, m)}, got {R_v.shape}")
            if not is_positive_semidefinite(R_v):
                raise ValidationError("R_v must be positive semidefinite")
        if self.dt is not None and self.dt <= 0:
            raise ValidationError("dt must be positive for discrete-time models")
        for matrix, label in ((A, "A"), (B, "B"), (C, "C"), (D, "D")):
            check_finite(label, matrix)

        state_names = self.state_names or tuple(f"x{i}" for i in range(n))
        output_names = self.output_names or tuple(f"y{i}" for i in range(m))
        input_names = self.input_names or tuple(f"u{i}" for i in range(p))
        if len(state_names) != n:
            raise ValidationError(f"expected {n} state names, got {len(state_names)}")
        if len(output_names) != m:
            raise ValidationError(f"expected {m} output names, got {len(output_names)}")
        if len(input_names) != p:
            raise ValidationError(f"expected {p} input names, got {len(input_names)}")

        object.__setattr__(self, "A", A)
        object.__setattr__(self, "B", B)
        object.__setattr__(self, "C", C)
        object.__setattr__(self, "D", D)
        object.__setattr__(self, "Q_w", Q_w)
        object.__setattr__(self, "R_v", R_v)
        object.__setattr__(self, "state_names", tuple(state_names))
        object.__setattr__(self, "output_names", tuple(output_names))
        object.__setattr__(self, "input_names", tuple(input_names))

    # ------------------------------------------------------------------
    # dimensions
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of state variables ``n``."""
        return self.A.shape[0]

    @property
    def n_inputs(self) -> int:
        """Number of control inputs ``p``."""
        return self.B.shape[1]

    @property
    def n_outputs(self) -> int:
        """Number of measured outputs ``m``."""
        return self.C.shape[0]

    @property
    def is_discrete(self) -> bool:
        """True when the model carries a sampling period."""
        return self.dt is not None

    @property
    def is_continuous(self) -> bool:
        """True when the model is continuous-time."""
        return self.dt is None

    @property
    def has_noise(self) -> bool:
        """True when either noise covariance is set and non-zero."""
        q_set = self.Q_w is not None and np.any(self.Q_w != 0)
        r_set = self.R_v is not None and np.any(self.R_v != 0)
        return bool(q_set or r_set)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def with_noise(self, Q_w: np.ndarray | None, R_v: np.ndarray | None) -> "StateSpace":
        """Return a copy with the given noise covariances."""
        return replace(self, Q_w=Q_w, R_v=R_v)

    def without_noise(self) -> "StateSpace":
        """Return a noiseless copy (used by the formal synthesis encodings)."""
        return replace(self, Q_w=None, R_v=None)

    def with_name(self, name: str) -> "StateSpace":
        """Return a copy with a different display name."""
        return replace(self, name=name)

    def process_noise_std(self) -> np.ndarray:
        """Per-state standard deviation implied by ``Q_w`` (zeros if unset)."""
        if self.Q_w is None:
            return np.zeros(self.n_states)
        return np.sqrt(np.clip(np.diag(self.Q_w), 0.0, None))

    def measurement_noise_std(self) -> np.ndarray:
        """Per-output standard deviation implied by ``R_v`` (zeros if unset)."""
        if self.R_v is None:
            return np.zeros(self.n_outputs)
        return np.sqrt(np.clip(np.diag(self.R_v), 0.0, None))

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def step_state(self, x: np.ndarray, u: np.ndarray, w: np.ndarray | None = None) -> np.ndarray:
        """Advance the state one sample: ``A x + B u + w``."""
        x = np.asarray(x, dtype=float).reshape(-1)
        u = np.asarray(u, dtype=float).reshape(-1)
        nxt = self.A @ x + self.B @ u
        if w is not None:
            nxt = nxt + np.asarray(w, dtype=float).reshape(-1)
        return nxt

    def output(self, x: np.ndarray, u: np.ndarray, v: np.ndarray | None = None) -> np.ndarray:
        """Measurement equation: ``C x + D u + v``."""
        x = np.asarray(x, dtype=float).reshape(-1)
        u = np.asarray(u, dtype=float).reshape(-1)
        y = self.C @ x + self.D @ u
        if v is not None:
            y = y + np.asarray(v, dtype=float).reshape(-1)
        return y

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "discrete" if self.is_discrete else "continuous"
        return (
            f"StateSpace(name={self.name!r}, {kind}, n={self.n_states}, "
            f"p={self.n_inputs}, m={self.n_outputs}, dt={self.dt})"
        )


# Backwards-compatible alias matching the paper's terminology ("plant model S").
LTISystem = StateSpace
