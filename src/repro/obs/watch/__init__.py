"""`repro.obs.watch`: the repo's own detectors watching its own telemetry.

The reproduction synthesizes and deploys online change detectors — so this
subpackage closes the loop and points them at the repository itself (the
classic self-adaptive MAPE-K monitoring shape):

* :mod:`repro.obs.watch.history` — :class:`BenchHistory` parses the
  machine-readable ``BENCH_<test>.json`` perf trajectory that
  ``benchmarks/conftest.py`` appends to (both schema variants: records with
  a measured ``elapsed`` and ``timing_disabled`` smoke records that only
  carry the test's own ``extra_info`` numbers) into per-test, per-metric
  time series with git-SHA/timestamp provenance, plus crash-tolerant JSONL
  append/merge for accumulating history across CI runs;
* :mod:`repro.obs.watch.baseline` — benign-envelope estimation
  (median/MAD over the leading warm-up window) that auto-derives per-series
  CUSUM bias/threshold parameters, the same profile-then-threshold shape
  the paper uses on benign residue streams;
* :mod:`repro.obs.watch.detect` — :class:`SeriesWatcher` adapters around
  the existing :class:`~repro.runtime.online.OnlineCusum` core (no new
  detector math) emitting typed :class:`RegressionEvent` alarms into the
  existing :class:`~repro.runtime.events.EventSink` layer, with a
  dead-zone-style consecutive-alarm confirmation;
* :mod:`repro.obs.watch.service` — :class:`HealthWatcher` applies the same
  detectors to live :class:`~repro.obs.metrics.MetricsRegistry` snapshots
  (gauge values and counter rates); it speaks the
  :class:`~repro.obs.export.PeriodicScraper` protocol, so it drops into the
  ``scraper=`` hook of a running
  :class:`~repro.serve.service.MonitorService` or
  :class:`~repro.runtime.fleet.FleetSimulator` unchanged;
* :mod:`repro.obs.watch.cli` — ``python -m repro.obs.watch check`` (the CI
  gate: non-zero exit on a confirmed regression) and ``... report``
  (per-series sparkline/trend summary).

See ``docs/self-monitoring.md`` for baseline semantics, the CI gate, and
how to silence a known intentional perf change.
"""

from repro.obs.watch.baseline import Baseline, WatchPolicy, estimate_baseline, orientation_for
from repro.obs.watch.detect import RegressionEvent, SeriesWatcher
from repro.obs.watch.history import BenchHistory, BenchRecord, BenchSeries
from repro.obs.watch.service import HealthWatcher, WatchSpec

__all__ = [
    "Baseline",
    "BenchHistory",
    "BenchRecord",
    "BenchSeries",
    "HealthWatcher",
    "RegressionEvent",
    "SeriesWatcher",
    "WatchPolicy",
    "WatchSpec",
    "estimate_baseline",
    "orientation_for",
]
