"""Entry point for ``python -m repro.obs.watch``."""

import sys

from repro.obs.watch.cli import main

if __name__ == "__main__":
    sys.exit(main())
