"""CUSUM watchers over telemetry series — adapters, no new detector math.

:class:`SeriesWatcher` streams one scalar series (a benchmark metric
trajectory or a live gauge/counter-rate) through one
:class:`~repro.runtime.online.OnlineCusum` instance — the exact detector
core the serving layer deploys on plant residues.  The first
``policy.window`` samples freeze the benign baseline
(:func:`~repro.obs.watch.baseline.estimate_baseline`); each later sample's
oriented normalized deviation is rectified at zero (only bad-direction
drift accumulates, mirroring the one-sided CUSUM recursion) and fed to the
core.  Alarms become typed :class:`RegressionEvent` objects pushed through
the existing :class:`~repro.runtime.events.EventSink` layer, and a
dead-zone-style run length of ``policy.confirm`` consecutive alarmed
bad-side samples upgrades a suspect to a *confirmed* regression — the
CI-gating verdict.  (Only samples whose own deviation is positive extend
the run, so an isolated spike whose accumulated statistic is still
decaying stays a suspect.)

Onset estimation uses the classic CUSUM change-point estimate: the first
sample after the accumulator last sat at zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.obs.watch.baseline import Baseline, WatchPolicy, estimate_baseline
from repro.runtime.events import AlarmEvent, EventSink
from repro.runtime.online import OnlineCusum


@dataclass(frozen=True)
class RegressionEvent(AlarmEvent):
    """An alarm on a watched telemetry series.

    Subclasses :class:`~repro.runtime.events.AlarmEvent` so every existing
    sink (in-memory, JSONL, buffered) accepts it unchanged; ``detector``
    carries ``watch:<series key>``, ``step`` the 0-based sample index, and
    ``instance`` is always 0 (one watcher = one logical instance).

    Attributes
    ----------
    series:
        Display key of the watched series (e.g. ``test/metric``).
    metric:
        The metric name alone.
    direction:
        Raw-value direction of the regression: ``"drop"`` for a
        higher-is-better metric, ``"rise"`` for a lower-is-better one.
    onset:
        Estimated 0-based change-point index (first sample after the CUSUM
        accumulator last touched zero).
    magnitude:
        Oriented deviation of the alarming sample in baseline noise units.
    rel_change:
        Signed relative change of the alarming sample vs the baseline
        median (``(value - median) / |median|``).
    value:
        The alarming sample's raw value.
    baseline_median / baseline_scale:
        The frozen benign envelope the deviation was measured against.
    confirmed:
        True once ``policy.confirm`` consecutive samples have alarmed —
        the dead-zone criterion that gates CI.
    """

    series: str = ""
    metric: str = ""
    direction: str = ""
    onset: int = -1
    magnitude: float = 0.0
    rel_change: float = 0.0
    value: float = 0.0
    baseline_median: float = 0.0
    baseline_scale: float = 0.0
    confirmed: bool = False

    @classmethod
    def from_dict(cls, data: dict) -> "RegressionEvent":
        """Inverse of :meth:`~repro.runtime.events.AlarmEvent.to_dict`."""
        return cls(**data)


class SeriesWatcher:
    """One CUSUM detector instance watching one scalar series.

    Parameters
    ----------
    key:
        Display key for events and reports (e.g. ``test/metric``).
    metric:
        Metric name (used for the event's ``metric`` field).
    orientation:
        ``"higher-better"`` or ``"lower-better"`` — which raw direction is
        a regression.
    policy:
        Shared :class:`~repro.obs.watch.baseline.WatchPolicy` (warm-up
        window, CUSUM parameters, confirm run length).
    sinks:
        Existing alarm sinks; every :class:`RegressionEvent` is emitted to
        each as a one-event batch.
    baseline:
        Optional pre-frozen benign envelope; when omitted the first
        ``policy.window`` samples are used (and detection starts after
        them).
    """

    def __init__(
        self,
        key: str,
        metric: str = "",
        orientation: str = "lower-better",
        policy: Optional[WatchPolicy] = None,
        sinks: Iterable[EventSink] = (),
        baseline: Optional[Baseline] = None,
    ) -> None:
        if orientation not in ("higher-better", "lower-better"):
            raise ValueError(f"unknown orientation: {orientation!r}")
        self.key = key
        self.metric = metric or key
        self.orientation = orientation
        self.policy = policy or WatchPolicy()
        self.sinks = list(sinks)
        self.baseline = baseline
        self.events: list[RegressionEvent] = []
        self.index = -1
        self._cusum: Optional[OnlineCusum] = None
        self._warmup: list[float] = []
        self._last_zero = -1
        self._run_length = 0
        self._alarmed = False
        self._confirmed_onset: Optional[int] = None
        self._max_magnitude = 0.0
        self.last_value: Optional[float] = None
        if baseline is not None:
            self._arm(baseline)

    def _arm(self, baseline: Baseline) -> None:
        self.baseline = baseline
        self._cusum = OnlineCusum(
            bias=self.policy.bias_mads, threshold=self.policy.threshold_mads
        )
        self._last_zero = self.index

    @property
    def warming_up(self) -> bool:
        """True while the benign baseline is still being collected."""
        return self._cusum is None

    @property
    def direction(self) -> str:
        """Raw-value direction a regression would take on this series."""
        return "drop" if self.orientation == "higher-better" else "rise"

    @property
    def status(self) -> str:
        """``warming-up`` | ``ok`` | ``suspect`` | ``regression``."""
        if self._confirmed_onset is not None:
            return "regression"
        if self._alarmed:
            return "suspect"
        if self.warming_up:
            return "warming-up"
        return "ok"

    @property
    def onset(self) -> Optional[int]:
        """Estimated change-point index of the confirmed regression, if any."""
        return self._confirmed_onset

    def observe(self, value: float) -> Optional[RegressionEvent]:
        """Consume one sample; returns the emitted event when it alarms."""
        self.index += 1
        self.last_value = value = float(value)
        if self._cusum is None:
            self._warmup.append(value)
            if len(self._warmup) >= self.policy.window:
                self._arm(estimate_baseline(self._warmup, self.policy))
            return None
        assert self.baseline is not None
        deviation = self.baseline.deviation(value, self.orientation)
        alarm = self._cusum.step([max(0.0, deviation)])
        if self._cusum.statistic == 0.0:
            self._last_zero = self.index
        if not alarm:
            self._run_length = 0
            return None
        # Confirmation counts consecutive alarmed samples that are themselves
        # on the bad side of the baseline: while an isolated spike's statistic
        # decays (still >= threshold, deviation back at zero) the run length
        # resets, so a transient stays "suspect" instead of confirming.
        self._run_length = self._run_length + 1 if deviation > 0.0 else 0
        self._max_magnitude = max(self._max_magnitude, deviation)
        first = not self._alarmed
        self._alarmed = True
        onset = self._last_zero + 1
        confirmed = self._run_length >= self.policy.confirm
        if confirmed and self._confirmed_onset is None:
            self._confirmed_onset = onset
        center = self.baseline.median
        event = RegressionEvent(
            instance=0,
            step=self.index,
            detector=f"watch:{self.key}",
            first=first,
            series=self.key,
            metric=self.metric,
            direction=self.direction,
            onset=onset,
            magnitude=deviation,
            rel_change=(value - center) / abs(center) if center else 0.0,
            value=value,
            baseline_median=center,
            baseline_scale=self.baseline.scale,
            confirmed=confirmed,
        )
        self.events.append(event)
        for sink in self.sinks:
            sink.emit([event])
        return event

    def observe_many(self, values: Sequence[float]) -> list[RegressionEvent]:
        """Stream a whole series; returns every emitted event."""
        out = []
        for value in values:
            event = self.observe(value)
            if event is not None:
                out.append(event)
        return out

    def verdict(self) -> dict:
        """Plain-data summary of this watcher's state (JSON-compatible)."""
        baseline = self.baseline
        return {
            "series": self.key,
            "metric": self.metric,
            "orientation": self.orientation,
            "status": self.status,
            "samples": self.index + 1,
            "direction": self.direction if self._alarmed else "",
            "onset": self._confirmed_onset,
            "alarms": len(self.events),
            "max_magnitude": self._max_magnitude,
            "last_value": self.last_value,
            "baseline_median": None if baseline is None else baseline.median,
            "baseline_scale": None if baseline is None else baseline.scale,
        }


__all__ = ["RegressionEvent", "SeriesWatcher"]
