"""Command-line interface: ``python -m repro.obs.watch <check|report>``.

``check`` is the CI gate: it scans benchmark trajectory files, runs one
CUSUM watcher per orientation-known series, and exits non-zero exactly
when a *confirmed* regression (``policy.confirm`` consecutive alarmed
samples) is present.  Series still shorter than the warm-up window are
reported as ``warming-up`` and never gate — the grace period while CI
accumulates history::

    python -m repro.obs.watch check                       # BENCH_DIR or .
    python -m repro.obs.watch check .bench-history --format json \\
        --output watch-report.json
    python -m repro.obs.watch check --ignore 'test_backend_ablation/*'

``report`` renders a per-series sparkline/trend summary and always exits
zero.  ``--ignore`` takes fnmatch patterns over the ``test/metric`` series
key — the documented way to silence a known intentional perf change (see
``docs/self-monitoring.md``).  ``--output`` writes the report to a file
(the CI artifact) with a one-line summary on stderr, exactly like
``python -m repro.lint``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from datetime import datetime, timezone
from fnmatch import fnmatch
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.watch.baseline import WatchPolicy, orientation_for
from repro.obs.watch.detect import SeriesWatcher
from repro.obs.watch.history import BenchHistory, BenchSeries

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def _sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a series (empty string for an empty series)."""
    if not values:
        return ""
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[min(top, int((v - low) / span * top))] for v in values
    )


def _iso(timestamp: float) -> str:
    """Compact UTC ISO form of an epoch timestamp."""
    return datetime.fromtimestamp(timestamp, tz=timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    )


def _load_history(paths: Sequence[str]) -> BenchHistory:
    """Aggregate BENCH arrays (files or directories) and JSONL histories."""
    history = BenchHistory()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            history.load_dir(path)
        elif path.suffix == ".jsonl":
            history.load_jsonl(path)
        else:
            history.load_file(path)
    return history


def _ignored(key: str, patterns: Sequence[str]) -> bool:
    return any(fnmatch(key, pattern) for pattern in patterns)


def _analyze(
    history: BenchHistory, policy: WatchPolicy, ignore: Sequence[str]
) -> dict:
    """Run one watcher per watchable series; returns the full report dict."""
    rows: list[dict] = []
    unwatched: list[str] = []
    for series in history.all_series():
        if _ignored(series.key, ignore):
            rows.append(
                {"series": series.key, "metric": series.metric, "status": "ignored",
                 "samples": len(series)}
            )
            continue
        orientation = orientation_for(series.metric)
        if orientation is None:
            unwatched.append(series.key)
            continue
        watcher = SeriesWatcher(
            series.key, metric=series.metric, orientation=orientation, policy=policy
        )
        watcher.observe_many(series.values)
        rows.append(_row(series, watcher))
    counts: dict[str, int] = {}
    for row in rows:
        counts[row["status"]] = counts.get(row["status"], 0) + 1
    return {
        "policy": {
            "window": policy.window,
            "bias_mads": policy.bias_mads,
            "threshold_mads": policy.threshold_mads,
            "confirm": policy.confirm,
        },
        "records": len(history),
        "skipped_files": list(history.skipped_files),
        "series": rows,
        "unwatched": sorted(unwatched),
        "counts": counts,
        "regressions": [r["series"] for r in rows if r["status"] == "regression"],
    }


def _row(series: BenchSeries, watcher: SeriesWatcher) -> dict:
    """One report row: the watcher verdict plus trajectory provenance."""
    row = watcher.verdict()
    row["sparkline"] = _sparkline(series.values)
    onset = row["onset"]
    if onset is not None and 0 <= onset < len(series):
        row["onset_timestamp"] = _iso(series.timestamps[onset])
        row["onset_sha"] = series.shas[onset][:12]
    return row


def _text_report(report: dict) -> str:
    """Human-readable form: one aligned line per series, worst first."""
    order = {"regression": 0, "suspect": 1, "warming-up": 2, "ok": 3, "ignored": 4}
    rows = sorted(report["series"], key=lambda r: (order.get(r["status"], 9), r["series"]))
    width = max((len(r["series"]) for r in rows), default=0)
    lines = []
    for row in rows:
        line = f"{row['status']:<11} {row['series']:<{width}}  n={row['samples']}"
        if row["status"] in ("regression", "suspect"):
            onset = row.get("onset")
            detail = f"{row['direction']} of {row['max_magnitude']:.1f} noise units"
            if onset is not None:
                detail += f", onset #{onset}"
                if row.get("onset_sha"):
                    detail += f" @ {row['onset_sha']}"
                if row.get("onset_timestamp"):
                    detail += f" ({row['onset_timestamp']})"
            line += f"  {detail}"
        if row.get("sparkline") and row["status"] != "ignored":
            line += f"  {row['sparkline']}"
        lines.append(line)
    counts = ", ".join(f"{k}={v}" for k, v in sorted(report["counts"].items()))
    lines.append(
        f"{len(report['series'])} series over {report['records']} records"
        + (f" ({counts})" if counts else "")
    )
    if report["regressions"]:
        lines.append("confirmed regressions: " + ", ".join(report["regressions"]))
    return "\n".join(lines)


def _trend_report(report: dict) -> str:
    """The ``report`` subcommand's sparkline/trend rendering."""
    rows = sorted(report["series"], key=lambda r: r["series"])
    width = max((len(r["series"]) for r in rows), default=0)
    lines = []
    for row in rows:
        spark = row.get("sparkline", "")
        line = f"{row['series']:<{width}}  {spark}"
        last, median = row.get("last_value"), row.get("baseline_median")
        if last is not None and median:
            change = (last - median) / abs(median) * 100.0
            line += f"  last {last:.6g} ({change:+.1f}% vs baseline median)"
        elif last is not None:
            line += f"  last {last:.6g}"
        line += f"  [{row['status']}]"
        lines.append(line)
    if report["unwatched"]:
        lines.append("unwatched (no orientation): " + ", ".join(report["unwatched"]))
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.watch",
        description="Self-monitoring: CUSUM watchers over the repo's benchmark trajectory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("check", "scan trajectories; non-zero exit on a confirmed regression"),
        ("report", "per-series sparkline/trend summary (always exits zero)"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument(
            "paths",
            nargs="*",
            help="BENCH_*.json files, directories, or .jsonl histories "
            "(default: $BENCH_DIR or .)",
        )
        cmd.add_argument("--format", choices=("text", "json"), default="text")
        cmd.add_argument("--output", default=None, help="write the report to this file")
        cmd.add_argument(
            "--ignore",
            action="append",
            default=[],
            metavar="GLOB",
            help="fnmatch pattern over 'test/metric' series keys to silence "
            "(repeatable)",
        )
        cmd.add_argument("--window", type=int, default=WatchPolicy.window)
        cmd.add_argument("--bias-mads", type=float, default=WatchPolicy.bias_mads)
        cmd.add_argument(
            "--threshold-mads", type=float, default=WatchPolicy.threshold_mads
        )
        cmd.add_argument("--confirm", type=int, default=WatchPolicy.confirm)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """Run the watcher CLI; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    try:
        policy = WatchPolicy(
            window=args.window,
            bias_mads=args.bias_mads,
            threshold_mads=args.threshold_mads,
            confirm=args.confirm,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    paths = args.paths or [os.environ.get("BENCH_DIR") or "."]
    history = _load_history(paths)
    report = _analyze(history, policy, args.ignore)

    if args.format == "json":
        rendered = json.dumps(report, indent=2, sort_keys=True)
    elif args.command == "report":
        rendered = _trend_report(report)
    else:
        rendered = _text_report(report)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(
            f"{len(report['regressions'])} confirmed regression(s) across "
            f"{len(report['series'])} series; report written to {args.output}",
            file=sys.stderr,
        )
    else:
        print(rendered)
    if args.command == "check" and report["regressions"]:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
