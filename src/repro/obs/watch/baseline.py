"""Benign-envelope estimation: profile noise, then derive CUSUM parameters.

The paper's synthesis flow profiles the *benign* residue distribution
before choosing detector thresholds; this module does the same for the
repo's own telemetry.  The first :attr:`WatchPolicy.window` samples of a
series are treated as the benign envelope: their median is the center and
their MAD (scaled by 1.4826 to estimate sigma under normality, with
relative/absolute floors so a near-constant series doesn't produce a
degenerate scale) is the noise unit.  Subsequent samples are normalized to
``(value - median) / scale`` and oriented so the *bad* direction is
positive, which lets every series share one dimensionless
:class:`~repro.runtime.online.OnlineCusum` parameterization:
``bias = bias_mads`` and ``threshold = threshold_mads``, both in noise
units.

Orientation is inferred from the metric name
(:func:`orientation_for`): throughput-like names regress by *dropping*,
latency-like names by *rising*; metrics whose orientation can't be
inferred (e.g. the constant ``instance_steps``) are not watched by
default.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Optional, Sequence

from repro.utils.validation import ValidationError, check_positive

#: Substrings marking a metric where *higher is better* (regression = drop).
_HIGHER_BETTER = ("throughput", "per_s", "_rate", "speedup", "ops")
#: Substrings marking a metric where *lower is better* (regression = rise).
_LOWER_BETTER = ("elapsed", "seconds", "latency", "duration", "_time", "time_")


def orientation_for(metric: str) -> Optional[str]:
    """Infer a metric's orientation from its name, or None if unknown.

    Returns ``"higher-better"`` / ``"lower-better"``; higher-better
    patterns win ties (``throughput_time_s`` is nonsensical anyway).
    Unknown metrics should not be watched: without an orientation there is
    no bad direction to accumulate.
    """
    name = metric.lower()
    if any(pattern in name for pattern in _HIGHER_BETTER):
        return "higher-better"
    if any(pattern in name for pattern in _LOWER_BETTER) or name.endswith("_s"):
        return "lower-better"
    return None


@dataclass(frozen=True)
class WatchPolicy:
    """Knobs shared by every watcher: warm-up size and CUSUM parameters.

    ``window`` is the benign warm-up: the number of leading samples frozen
    into the baseline before detection starts (a series shorter than this
    stays in warn-only ``warming-up`` status — the CI grace period).
    ``bias_mads``/``threshold_mads`` are the CUSUM drift allowance and
    alarm threshold in baseline noise units.  ``confirm`` is the dead-zone
    run length: a regression is *confirmed* (CI-gating) only after that
    many consecutive alarmed samples, mirroring
    :class:`~repro.monitors.deadzone.DeadZoneMonitor` semantics.
    ``min_rel_scale``/``min_abs_scale`` floor the noise estimate so a
    perfectly quiet baseline still tolerates small benign jitter.
    """

    window: int = 10
    bias_mads: float = 1.0
    threshold_mads: float = 8.0
    confirm: int = 2
    min_rel_scale: float = 0.05
    min_abs_scale: float = 1e-9

    def __post_init__(self) -> None:
        if self.window < 3:
            raise ValidationError(f"window must be >= 3, got {self.window}")
        if self.confirm < 1:
            raise ValidationError(f"confirm must be >= 1, got {self.confirm}")
        check_positive("bias_mads", self.bias_mads)
        check_positive("threshold_mads", self.threshold_mads)
        check_positive("min_rel_scale", self.min_rel_scale, strict=False)
        check_positive("min_abs_scale", self.min_abs_scale)


@dataclass(frozen=True)
class Baseline:
    """A frozen benign envelope: center, noise scale, and sample count."""

    median: float
    mad: float
    scale: float
    n: int

    def deviation(self, value: float, orientation: str) -> float:
        """Normalized deviation of ``value`` with the bad direction positive."""
        raw = (value - self.median) / self.scale
        return -raw if orientation == "higher-better" else raw


def estimate_baseline(values: Sequence[float], policy: WatchPolicy) -> Baseline:
    """Median/MAD envelope over ``values`` with the policy's scale floors."""
    if not values:
        raise ValidationError("cannot estimate a baseline from zero samples")
    center = float(median(values))
    mad = float(median(abs(v - center) for v in values))
    scale = max(
        mad * 1.4826,
        policy.min_rel_scale * abs(center),
        policy.min_abs_scale,
    )
    return Baseline(median=center, mad=mad, scale=scale, n=len(values))
