"""Benchmark-trajectory store: parse ``BENCH_*.json`` into watchable series.

``benchmarks/conftest.py`` appends one record per benchmark run to
``BENCH_<test>.json`` (a JSON array, newest last, capped).  The schema has
drifted benignly over the repo's history and this parser tolerates every
variant in the wild:

* timed records carry ``elapsed`` (pytest-benchmark wall total) *and*
  whatever JSON-native numbers the test stuffed into ``extra_info``
  (``throughput``, ``elapsed_s``, ``instance_steps``, ...);
* ``--benchmark-disable`` smoke records have ``timing_disabled: true`` and
  may omit ``elapsed`` entirely;
* records written since the provenance stamp may carry ``git_sha`` /
  ``git_dirty``; older ones don't.

Every *numeric, non-provenance* key becomes its own metric series, so a
test contributes e.g. ``(test, "throughput")`` and ``(test, "elapsed")``
independently and a record missing a metric simply contributes no point to
that series.

:class:`BenchHistory` also reads/appends crash-tolerant JSONL (one raw
record per line) in the ``ResultStore``/``ServiceLog`` style — a truncated
trailing line (killed mid-append) is dropped silently, a corrupt interior
line raises — and supports first-write-wins :meth:`BenchHistory.merge` so
CI can accumulate history across runs from cached artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.runtime.events import _stripped_lines

#: Keys that are provenance/metadata, never metric values.
_PROVENANCE_KEYS = frozenset({"name", "timestamp", "timing_disabled", "git_sha", "git_dirty"})


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark observation: a test name, a timestamp, and its metrics.

    ``metrics`` maps metric name to value for every numeric non-provenance
    key of the raw record (bools excluded).  ``git_sha`` is ``""`` and
    ``git_dirty`` is ``False`` when the record predates the provenance
    stamp or was produced outside a git checkout.
    """

    test: str
    timestamp: float
    timing_disabled: bool = False
    git_sha: str = ""
    git_dirty: bool = False
    metrics: Mapping[str, float] = field(default_factory=dict)

    @classmethod
    def from_raw(cls, raw: Mapping[str, object]) -> "BenchRecord":
        """Build a record from one raw BENCH dict, tolerating schema drift."""
        metrics = {
            key: float(value)
            for key, value in raw.items()
            if key not in _PROVENANCE_KEYS
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
        }
        return cls(
            test=str(raw.get("name", "")),
            timestamp=float(raw.get("timestamp", 0.0)),  # type: ignore[arg-type]
            timing_disabled=bool(raw.get("timing_disabled", False)),
            git_sha=str(raw.get("git_sha", "")),
            git_dirty=bool(raw.get("git_dirty", False)),
            metrics=metrics,
        )

    def to_raw(self) -> dict:
        """Inverse of :meth:`from_raw`: the flat BENCH-file dict form."""
        raw: dict = {
            "name": self.test,
            "timestamp": self.timestamp,
            "timing_disabled": self.timing_disabled,
        }
        if self.git_sha:
            raw["git_sha"] = self.git_sha
            raw["git_dirty"] = self.git_dirty
        raw.update(self.metrics)
        return raw

    def key(self) -> str:
        """Canonical content address used for first-write-wins dedupe."""
        return json.dumps(self.to_raw(), sort_keys=True)


@dataclass(frozen=True)
class BenchSeries:
    """One (test, metric) time series, ordered by record timestamp."""

    test: str
    metric: str
    values: tuple[float, ...]
    timestamps: tuple[float, ...]
    shas: tuple[str, ...]

    @property
    def key(self) -> str:
        """Display key, e.g. ``test_fleet_throughput/throughput``."""
        return f"{self.test}/{self.metric}"

    def __len__(self) -> int:
        return len(self.values)


class BenchHistory:
    """In-memory collection of :class:`BenchRecord` with dedupe and series views."""

    def __init__(self, records: Iterable[BenchRecord] = ()) -> None:
        self._records: list[BenchRecord] = []
        self._seen: set[str] = set()
        self.skipped_files: list[str] = []
        for record in records:
            self.add(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[BenchRecord]:
        return iter(self._records)

    @property
    def records(self) -> tuple[BenchRecord, ...]:
        """All records in insertion order (dedupe already applied)."""
        return tuple(self._records)

    def add(self, record: BenchRecord) -> bool:
        """Add one record; returns False (and keeps the first copy) on a dupe."""
        key = record.key()
        if key in self._seen:
            return False
        self._seen.add(key)
        self._records.append(record)
        return True

    # -- loading --------------------------------------------------------

    def load_file(self, path: str | Path) -> int:
        """Load one ``BENCH_*.json`` array file; returns records added.

        Mirrors the writer's own tolerance: an unreadable / non-array file
        (e.g. truncated by a crash mid-rewrite) is recorded in
        :attr:`skipped_files` and contributes nothing, matching how
        ``benchmarks/conftest.py`` restarts such a history from scratch.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.skipped_files.append(str(path))
            return 0
        if not isinstance(payload, list):
            self.skipped_files.append(str(path))
            return 0
        added = 0
        for raw in payload:
            if isinstance(raw, dict):
                added += self.add(BenchRecord.from_raw(raw))
        return added

    def load_dir(self, directory: str | Path, pattern: str = "BENCH_*.json") -> int:
        """Load every matching trajectory file in ``directory``; returns records added."""
        directory = Path(directory)
        added = 0
        for path in sorted(directory.glob(pattern)):
            added += self.load_file(path)
        return added

    # -- JSONL append/merge (ResultStore/ServiceLog style) --------------

    def load_jsonl(self, path: str | Path) -> int:
        """Load an accumulated JSONL history; returns records added.

        Crash-tolerant in the ``ServiceLog`` style: a truncated *trailing*
        line is dropped silently; a corrupt *interior* line raises
        ``ValueError`` because it means the file was damaged, not merely
        cut short by a crash mid-append.
        """
        path = Path(path)
        if not path.exists():
            return 0
        lines = _stripped_lines(path)
        added = 0
        for i, line in enumerate(lines):
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break
                raise ValueError(f"corrupt interior line {i + 1} in {path}") from None
            if isinstance(raw, dict):
                added += self.add(BenchRecord.from_raw(raw))
        return added

    def append_jsonl(self, path: str | Path) -> int:
        """Append records not yet present in ``path``; returns lines written.

        Reads the existing file first (crash-tolerantly) so repeated
        appends of overlapping histories stay idempotent.
        """
        path = Path(path)
        existing = BenchHistory()
        existing.load_jsonl(path)
        fresh = [r for r in self._records if r.key() not in existing._seen]
        if not fresh:
            return 0
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as handle:
            for record in fresh:
                handle.write(json.dumps(record.to_raw(), sort_keys=True) + "\n")
        return len(fresh)

    def merge(self, other: "BenchHistory") -> int:
        """First-write-wins merge of another history; returns records added."""
        added = 0
        for record in other:
            added += self.add(record)
        return added

    # -- series views ---------------------------------------------------

    def tests(self) -> tuple[str, ...]:
        """Distinct test names, sorted."""
        return tuple(sorted({r.test for r in self._records}))

    def metrics(self, test: str) -> tuple[str, ...]:
        """Distinct metric names recorded for ``test``, sorted."""
        names: set[str] = set()
        for record in self._records:
            if record.test == test:
                names.update(record.metrics)
        return tuple(sorted(names))

    def series(self, test: str, metric: str) -> BenchSeries:
        """The (test, metric) series ordered by timestamp (stable on ties)."""
        points = sorted(
            (
                (r.timestamp, r.metrics[metric], r.git_sha)
                for r in self._records
                if r.test == test and metric in r.metrics
            ),
            key=lambda point: point[0],
        )
        return BenchSeries(
            test=test,
            metric=metric,
            values=tuple(p[1] for p in points),
            timestamps=tuple(p[0] for p in points),
            shas=tuple(p[2] for p in points),
        )

    def all_series(self) -> tuple[BenchSeries, ...]:
        """Every non-empty (test, metric) series, sorted by display key."""
        out = [
            self.series(test, metric)
            for test in self.tests()
            for metric in self.metrics(test)
        ]
        return tuple(s for s in out if len(s))
