"""Live self-monitoring: the same CUSUM watchers over metric snapshots.

:class:`HealthWatcher` subscribes to a :class:`~repro.obs.metrics.MetricsRegistry`
and, on every observation, extracts one scalar per :class:`WatchSpec` from
a snapshot — a gauge's current value or a counter's *rate* (delta between
consecutive snapshots, which is deterministic where wall-clock-derived
gauges are not) — and feeds it to the matching
:class:`~repro.obs.watch.detect.SeriesWatcher`.

It speaks the :class:`~repro.obs.export.PeriodicScraper` duck interface
(``maybe_scrape(now=None)`` / ``scrape()`` plus the ``scrapes``/``path``
attributes), so it drops straight into the ``scraper=`` hook of a running
:class:`~repro.serve.service.MonitorService` (observed once per processed
round) or :class:`~repro.runtime.fleet.FleetSimulator` (once per fleet
step).  Pass an inner :class:`~repro.obs.export.PeriodicScraper` to keep
writing exposition files while watching — ``maybe_scrape`` observes first
and then delegates, while the shutdown ``scrape()`` only delegates (a
flush is not a processing round, so counter-rate streams never see a
phantom zero delta).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.watch.baseline import WatchPolicy
from repro.obs.watch.detect import RegressionEvent, SeriesWatcher
from repro.runtime.events import EventSink


@dataclass(frozen=True)
class WatchSpec:
    """Which live metric stream to watch, and how.

    Attributes
    ----------
    metric:
        Registry metric name (a gauge or counter, per ``mode``).
    mode:
        ``"gauge"`` watches the instantaneous value; ``"counter-rate"``
        watches the per-observation delta of a monotonic counter.
    labels:
        Exact label set selecting one cell (default: the unlabelled cell).
    orientation:
        ``"higher-better"`` / ``"lower-better"`` — which direction is bad.
    key:
        Display key for events/reports; defaults to the metric name (with
        ``/rate`` appended in counter-rate mode).
    """

    metric: str
    mode: str = "gauge"
    labels: Mapping[str, str] = field(default_factory=dict)
    orientation: str = "higher-better"
    key: str = ""

    def __post_init__(self) -> None:
        if self.mode not in ("gauge", "counter-rate"):
            raise ValueError(f"unknown watch mode: {self.mode!r}")

    @property
    def display_key(self) -> str:
        """The series key used in events and reports."""
        if self.key:
            return self.key
        suffix = "/rate" if self.mode == "counter-rate" else ""
        labels = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(self.labels.items())) + "}"
            if self.labels
            else ""
        )
        return f"{self.metric}{labels}{suffix}"


def _extract(snapshot: Mapping, spec: WatchSpec) -> Optional[float]:
    """Pull the spec's cell value out of one registry snapshot, or None."""
    family = "gauges" if spec.mode == "gauge" else "counters"
    entry = snapshot.get(family, {}).get(spec.metric)
    if entry is None:
        return None
    wanted = dict(spec.labels)
    for cell in entry["values"]:
        if cell["labels"] == wanted:
            return float(cell["value"])
    return None


class HealthWatcher:
    """Applies CUSUM watchers to live registry snapshots; scraper-compatible.

    Parameters
    ----------
    specs:
        The metric streams to watch.
    registry:
        Registry to snapshot; defaults to the ambient
        :func:`~repro.obs.metrics.get_registry` at each observation (pass
        a service's private registry explicitly when watching a
        :class:`~repro.serve.service.MonitorService` constructed with
        ``metrics=registry``).
    policy:
        Shared :class:`~repro.obs.watch.baseline.WatchPolicy`.
    sinks:
        Existing alarm sinks every :class:`RegressionEvent` flows through.
    scraper:
        Optional inner :class:`~repro.obs.export.PeriodicScraper`; the
        watcher observes first, then delegates ``maybe_scrape``/``scrape``
        so exposition files keep flowing.
    """

    def __init__(
        self,
        specs: Iterable[WatchSpec],
        registry: Optional[MetricsRegistry] = None,
        policy: Optional[WatchPolicy] = None,
        sinks: Iterable[EventSink] = (),
        scraper=None,
    ) -> None:
        self.specs = tuple(specs)
        self.registry = registry
        self.policy = policy or WatchPolicy()
        self.scraper = scraper
        self.watchers: dict[str, SeriesWatcher] = {}
        self._spec_by_key: dict[str, WatchSpec] = {}
        sinks = list(sinks)
        for spec in self.specs:
            key = spec.display_key
            self.watchers[key] = SeriesWatcher(
                key,
                metric=spec.metric,
                orientation=spec.orientation,
                policy=self.policy,
                sinks=sinks,
            )
            self._spec_by_key[key] = spec
        self._prev_counters: dict[str, float] = {}
        self.observations = 0
        self.events: list[RegressionEvent] = []

    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None else get_registry()

    def observe(self, snapshot: Optional[Mapping] = None) -> list[RegressionEvent]:
        """Consume one snapshot (taken live when omitted); returns new events."""
        snap = self._registry().snapshot() if snapshot is None else snapshot
        fresh: list[RegressionEvent] = []
        for key, watcher in self.watchers.items():
            spec = self._spec_by_key[key]
            value = _extract(snap, spec)
            if value is None:
                continue
            if spec.mode == "counter-rate":
                previous = self._prev_counters.get(key)
                self._prev_counters[key] = value
                if previous is None:
                    continue  # first sighting: no delta yet
                value = value - previous
            event = watcher.observe(value)
            if event is not None:
                fresh.append(event)
        self.observations += 1
        self.events.extend(fresh)
        return fresh

    def verdicts(self) -> list[dict]:
        """Per-series summaries (see :meth:`SeriesWatcher.verdict`)."""
        return [w.verdict() for w in self.watchers.values()]

    @property
    def regressed(self) -> bool:
        """True once any watched series has a confirmed regression."""
        return any(w.status == "regression" for w in self.watchers.values())

    # -- PeriodicScraper duck interface ---------------------------------

    @property
    def scrapes(self) -> int:
        """Scraper-protocol counter: inner scrapes, else observations."""
        return self.scraper.scrapes if self.scraper is not None else self.observations

    @property
    def path(self):
        """Scraper-protocol attribute: the inner scraper's path, if any."""
        return self.scraper.path if self.scraper is not None else None

    def maybe_scrape(self, now: Optional[float] = None) -> bool:
        """Observe once, then delegate to the inner scraper (if any)."""
        self.observe()
        if self.scraper is not None:
            return bool(self.scraper.maybe_scrape(now))
        return False

    def scrape(self) -> None:
        """Force the inner scraper's final write (if any) — no observation.

        ``scrape()`` is the shutdown flush a service's ``close()`` (or a
        fleet's run end) triggers, not a new processing round: taking an
        observation here would feed a counter-rate stream a phantom
        zero-delta sample and raise a spurious alarm.
        """
        if self.scraper is not None:
            self.scraper.scrape()


__all__ = ["HealthWatcher", "WatchSpec"]
