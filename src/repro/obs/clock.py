"""Wall-clock access for every layer outside :mod:`repro.obs`.

The reproduction's replay guarantees (bit-identical CEGIS sessions, fleet
runs, and ``serve.replay``) require that wall-clock reads never influence
replayable state — clocks may only feed *reporting*: elapsed diagnostics,
throughput gauges, latency histograms, and solver time budgets.  To keep
that auditable, :mod:`repro.obs` is the single subsystem allowed to touch
:mod:`time` directly (enforced by lint rule ``REP001`` in
:mod:`repro.lint`), and everything else measures durations through the
:class:`Stopwatch` defined here.

A :class:`Stopwatch` starts at construction and only ever reports *elapsed*
time — it deliberately exposes no absolute timestamp, so a call site cannot
accidentally persist a wall-clock instant into an event log or result row.
"""

from __future__ import annotations

import time


class Stopwatch:
    """Elapsed-seconds measurement started at construction.

    The one sanctioned way for code outside :mod:`repro.obs` to consume
    wall clock: durations for diagnostics (``elapsed()``) and solver
    time budgets (``exceeded()``).  Monotonic — immune to system clock
    adjustments.
    """

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = time.perf_counter()

    def elapsed(self) -> float:
        """Fractional seconds since construction."""
        return time.perf_counter() - self._started

    def exceeded(self, budget: float | None) -> bool:
        """Whether ``budget`` seconds have passed (``None`` = no budget)."""
        return budget is not None and self.elapsed() > budget


__all__ = ["Stopwatch"]
