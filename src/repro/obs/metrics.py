"""Process-local metrics: labelled counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a plain-Python, zero-dependency metrics store in
the Prometheus data model: *counters* only go up, *gauges* hold the last set
value, *histograms* count observations into fixed buckets.  Every instrument
accepts string labels (``counter.inc(3, detector="cusum")``), so one metric
family covers a whole detector bank or backend set.

Three properties shape the design:

* **Disabled is near-free.**  The module-level default registry starts
  *disabled* (opt-in via :func:`enable_metrics` or the ``REPRO_METRICS``
  environment variable), and a disabled instrument's record call is a single
  attribute check — cheap enough to leave compiled into hot paths like the
  fleet step loop, which is gated by
  ``benchmarks/test_bench_obs_overhead.py``.
* **Snapshots are plain JSON.**  :meth:`MetricsRegistry.snapshot` returns a
  deterministic JSON-compatible dict and :meth:`MetricsRegistry.merge` folds
  such a snapshot back in (counters and histograms add, gauges last-write-
  wins) — which is how ``multiprocessing`` workers in
  :class:`~repro.api.runner.BatchRunner` ship their per-group metrics back
  to the parent process alongside result rows.
* **One process-wide default.**  Instrumented layers resolve
  :func:`get_registry` at use time, so :func:`use_registry` can scope a
  fresh registry around a unit of work (a worker's group execution) without
  threading a registry argument through every constructor.
"""

from __future__ import annotations

import os
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Iterator

from repro.utils.validation import ValidationError

#: Default histogram bucket upper bounds (seconds-flavoured, Prometheus style).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _label_key(labels: dict) -> tuple:
    """Canonical hashable form of one label set (values coerced to str)."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared base of the three instrument kinds.

    An instrument belongs to exactly one registry and checks the registry's
    ``enabled`` flag on every record call — that check is the entire cost of
    instrumentation when metrics are off.
    """

    kind = "abstract"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str):
        self._registry = registry
        self.name = name
        self.help = help
        self._values: dict[tuple, object] = {}

    def labelsets(self) -> list[tuple]:
        """Recorded label sets, in deterministic (sorted) order."""
        return sorted(self._values)

    def clear(self) -> None:
        """Drop every recorded value (the instrument itself stays registered)."""
        self._values.clear()


class Counter(_Instrument):
    """A monotonically increasing metric (events, items, bytes, ...)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (>= 0) to the counter for this label set."""
        if not self._registry._enabled:
            return
        if amount < 0:
            raise ValidationError(f"counter {self.name!r} cannot decrease (got {amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels) -> float:
        """Current value for one label set (0.0 when never incremented)."""
        return float(self._values.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum over every label set."""
        return float(sum(self._values.values()))


class Gauge(_Instrument):
    """A point-in-time value (queue depth, utilization, throughput)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Record the current value for this label set."""
        if not self._registry._enabled:
            return
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        if not self._registry._enabled:
            return
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + float(amount)

    def value(self, **labels) -> float:
        """Current value for one label set (0.0 when never set)."""
        return float(self._values.get(_label_key(labels), 0.0))


class Histogram(_Instrument):
    """Observations counted into fixed buckets, plus their sum and count.

    ``buckets`` are the *upper bounds* of each bucket, strictly increasing;
    an implicit overflow bucket (``+Inf``) catches everything above the last
    bound.  Per label set the histogram keeps non-cumulative bucket counts —
    the Prometheus exposition in :mod:`repro.obs.export` converts to the
    cumulative form on the way out.
    """

    kind = "histogram"

    def __init__(self, registry, name, help, buckets=DEFAULT_BUCKETS):
        super().__init__(registry, name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValidationError(f"histogram {self.name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValidationError(
                f"histogram {self.name!r} buckets must be strictly increasing"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        """Count one observation into its bucket and the sum/count totals."""
        if not self._registry._enabled:
            return
        key = _label_key(labels)
        cell = self._values.get(key)
        if cell is None:
            cell = self._values[key] = {
                "counts": [0] * (len(self.buckets) + 1),
                "sum": 0.0,
                "count": 0,
            }
        value = float(value)
        cell["counts"][bisect_left(self.buckets, value)] += 1
        cell["sum"] += value
        cell["count"] += 1

    def count(self, **labels) -> int:
        """Number of observations for one label set."""
        cell = self._values.get(_label_key(labels))
        return 0 if cell is None else int(cell["count"])

    def sum(self, **labels) -> float:
        """Sum of observations for one label set."""
        cell = self._values.get(_label_key(labels))
        return 0.0 if cell is None else float(cell["sum"])

    def total_count(self) -> int:
        """Number of observations over every label set."""
        return int(sum(cell["count"] for cell in self._values.values()))


class MetricsRegistry:
    """A process-local collection of named instruments.

    Parameters
    ----------
    enabled:
        Whether record calls take effect.  A disabled registry still hands
        out instruments (so instrumentation code needs no conditionals) but
        every ``inc``/``set``/``observe`` returns after one flag check.

    Instruments are created idempotently: asking twice for the same name
    returns the same object, asking for an existing name as a different kind
    (or a histogram with different buckets) raises.
    """

    def __init__(self, enabled: bool = True):
        self._enabled = bool(enabled)
        self._instruments: dict[str, _Instrument] = {}

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether record calls currently take effect."""
        return self._enabled

    def enable(self) -> "MetricsRegistry":
        """Turn recording on; returns the registry for chaining."""
        self._enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        """Turn recording off (instruments and recorded values stay)."""
        self._enabled = False
        return self

    # ------------------------------------------------------------------
    def _instrument(self, cls, name: str, help: str, **kwargs) -> _Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValidationError(
                    f"metric {name!r} is already registered as a {existing.kind}, "
                    f"not a {cls.kind}"
                )
            if kwargs.get("buckets") is not None and tuple(
                float(b) for b in kwargs["buckets"]
            ) != existing.buckets:
                raise ValidationError(
                    f"histogram {name!r} is already registered with different buckets"
                )
            return existing
        instrument = cls(self, name, help, **{k: v for k, v in kwargs.items() if v is not None})
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._instrument(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._instrument(Gauge, name, help)

    def histogram(self, name: str, help: str = "", buckets=None) -> Histogram:
        """Get or create the histogram ``name`` (``buckets`` fixed at creation)."""
        return self._instrument(Histogram, name, help, buckets=buckets)

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Registered instrument names, sorted."""
        return sorted(self._instruments)

    def get(self, name: str) -> _Instrument | None:
        """The instrument registered under ``name`` (``None`` when absent)."""
        return self._instruments.get(name)

    def __iter__(self) -> Iterator[_Instrument]:
        return iter(self._instruments[name] for name in self.names())

    def reset(self) -> None:
        """Clear every recorded value (instruments stay registered)."""
        for instrument in self._instruments.values():
            instrument.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Deterministic JSON-compatible dump of every recorded value.

        The shape is ``{"counters": {...}, "gauges": {...}, "histograms":
        {...}}``; each family maps metric name to ``{"help", "values"}``
        (histograms additionally carry ``"buckets"``), and ``values`` is a
        list of ``{"labels": {...}, ...}`` entries sorted by label set.
        Instruments that never recorded anything are included with an empty
        ``values`` list, so a snapshot documents the full instrumented
        surface.
        """
        counters, gauges, histograms = {}, {}, {}
        for name in self.names():
            instrument = self._instruments[name]
            if instrument.kind == "counter":
                counters[name] = {
                    "help": instrument.help,
                    "values": [
                        {"labels": dict(key), "value": instrument._values[key]}
                        for key in instrument.labelsets()
                    ],
                }
            elif instrument.kind == "gauge":
                gauges[name] = {
                    "help": instrument.help,
                    "values": [
                        {"labels": dict(key), "value": instrument._values[key]}
                        for key in instrument.labelsets()
                    ],
                }
            else:
                histograms[name] = {
                    "help": instrument.help,
                    "buckets": list(instrument.buckets),
                    "values": [
                        {
                            "labels": dict(key),
                            "counts": list(instrument._values[key]["counts"]),
                            "sum": instrument._values[key]["sum"],
                            "count": instrument._values[key]["count"],
                        }
                        for key in instrument.labelsets()
                    ],
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histogram cells *add*; gauges take the snapshot's value
        (last-write-wins — a merged gauge is a report of the most recent
        state, not an accumulation).  Instruments absent here are created
        from the snapshot; a histogram arriving with different buckets
        raises.  Merging respects the enabled flag the same way record calls
        do not — merge always applies, because it moves already-recorded
        values between registries rather than recording new ones.
        """
        for name, entry in snapshot.get("counters", {}).items():
            counter = self.counter(name, entry.get("help", ""))
            for cell in entry["values"]:
                key = _label_key(cell["labels"])
                counter._values[key] = counter._values.get(key, 0.0) + float(cell["value"])
        for name, entry in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name, entry.get("help", ""))
            for cell in entry["values"]:
                gauge._values[_label_key(cell["labels"])] = float(cell["value"])
        for name, entry in snapshot.get("histograms", {}).items():
            histogram = self.histogram(
                name, entry.get("help", ""), buckets=entry["buckets"]
            )
            for cell in entry["values"]:
                key = _label_key(cell["labels"])
                existing = histogram._values.get(key)
                if existing is None:
                    existing = histogram._values[key] = {
                        "counts": [0] * (len(histogram.buckets) + 1),
                        "sum": 0.0,
                        "count": 0,
                    }
                if len(cell["counts"]) != len(existing["counts"]):
                    raise ValidationError(
                        f"histogram {name!r} merge: bucket count mismatch"
                    )
                existing["counts"] = [
                    a + b for a, b in zip(existing["counts"], cell["counts"])
                ]
                existing["sum"] += float(cell["sum"])
                existing["count"] += int(cell["count"])


# ----------------------------------------------------------------------
# The process-wide default registry.
# ----------------------------------------------------------------------
def _env_enabled() -> bool:
    return os.environ.get("REPRO_METRICS", "").strip().lower() in ("1", "true", "yes", "on")


_default_registry = MetricsRegistry(enabled=_env_enabled())


def get_registry() -> MetricsRegistry:
    """The process-wide default registry instrumented layers record into."""
    return _default_registry


def enable_metrics() -> MetricsRegistry:
    """Enable the default registry (idempotent); returns it."""
    return _default_registry.enable()


def disable_metrics() -> MetricsRegistry:
    """Disable the default registry; recorded values are kept."""
    return _default_registry.disable()


def metrics_enabled() -> bool:
    """Whether the default registry is currently recording."""
    return _default_registry.enabled


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Temporarily make ``registry`` the process default.

    Everything instrumented through :func:`get_registry` records into
    ``registry`` for the duration — the mechanism batch workers use to scope
    one fresh registry per executed group and ship its snapshot back with
    the group's rows.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    try:
        yield registry
    finally:
        _default_registry = previous


@contextmanager
def timed(histogram: Histogram, **labels):
    """Observe the wall-clock duration of a ``with`` block into ``histogram``."""
    started = time.perf_counter()
    try:
        yield
    finally:
        histogram.observe(time.perf_counter() - started, **labels)


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "disable_metrics",
    "enable_metrics",
    "get_registry",
    "metrics_enabled",
    "timed",
    "use_registry",
]
